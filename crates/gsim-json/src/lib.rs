//! A minimal, dependency-free JSON module shared across the workspace.
//!
//! The workspace deliberately has no external crates, so the pieces that
//! speak JSON — the `gsim-runner` JSONL metrics sink, the tinybench
//! `BENCH_*.json` reports, and the `gsim-serve` HTTP service — each used
//! to hand-roll string escaping and object assembly. This crate is the
//! one shared implementation:
//!
//! * [`Json`] — an insertion-ordered JSON value. Object member order is
//!   preserved verbatim, so rendering is deterministic and two renders of
//!   the same value are byte-identical (what the `gsim-serve` result
//!   cache relies on).
//! * [`Json::render`] — compact serialisation.
//! * [`parse`] / [`parse_with_limits`] — a recursive-descent parser with
//!   explicit input-size and nesting-depth limits, so a hostile HTTP body
//!   cannot blow the stack or the heap.
//! * [`json_string`] / [`escape_into`] — string-literal escaping, reused
//!   by the ad-hoc emitters that format lines directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

/// Default maximum nesting depth accepted by [`parse`].
pub const DEFAULT_MAX_DEPTH: usize = 64;

/// Default maximum input size in bytes accepted by [`parse`].
pub const DEFAULT_MAX_BYTES: usize = 4 << 20;

/// A JSON value.
///
/// Objects are a `Vec` of `(key, value)` pairs in insertion order —
/// deterministic rendering matters more to this workspace than O(1)
/// member lookup on huge documents (ours are small).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number. Rendering prints integral values in `±2^53`
    /// without a fractional part; non-finite values render as `null`
    /// (JSON has no NaN/Infinity).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, member order preserved.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::Num(f64::from(v))
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Num(v as f64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Num(v as f64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Num(v as f64)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Self {
        v.map_or(Json::Null, Into::into)
    }
}

/// Builds a [`Json::Obj`] from `(key, value)` pairs.
pub fn obj<K: Into<String>, V: Into<Json>>(pairs: impl IntoIterator<Item = (K, V)>) -> Json {
    Json::Obj(
        pairs
            .into_iter()
            .map(|(k, v)| (k.into(), v.into()))
            .collect(),
    )
}

impl Json {
    /// Member lookup on an object (first match); `None` on other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact non-negative integer, if this is a
    /// number with no fractional part in `0..=2^53`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && (0.0..=9_007_199_254_740_992.0).contains(n) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Compact, deterministic serialisation.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => render_number(*n, out),
            Json::Str(s) => {
                out.push('"');
                escape_into(s, out);
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_into(k, out);
                    out.push_str("\":");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Renders an `f64` the way the workspace's emitters always have:
/// integral values in `±2^53` print without a fractional part, everything
/// else uses Rust's shortest round-trip formatting, and non-finite values
/// become `null`.
fn render_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() <= 9_007_199_254_740_992.0 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

/// Appends the JSON string-literal escape of `s` (without surrounding
/// quotes) to `out`.
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders `s` as a JSON string literal, quotes included.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(s, &mut out);
    out.push('"');
    out
}

/// A parse failure: what went wrong and the byte offset it was noticed at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document with the default limits
/// ([`DEFAULT_MAX_DEPTH`], [`DEFAULT_MAX_BYTES`]).
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax error, limit
/// violation, or trailing garbage.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    parse_with_limits(input, DEFAULT_MAX_DEPTH, DEFAULT_MAX_BYTES)
}

/// Parses a complete JSON document, rejecting inputs larger than
/// `max_bytes` or nested deeper than `max_depth`.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax error, limit
/// violation, or trailing garbage.
pub fn parse_with_limits(
    input: &str,
    max_depth: usize,
    max_bytes: usize,
) -> Result<Json, ParseError> {
    if input.len() > max_bytes {
        return Err(ParseError {
            message: format!(
                "input of {} bytes exceeds the {max_bytes}-byte limit",
                input.len()
            ),
            offset: 0,
        });
    }
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        max_depth,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    max_depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{text}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > self.max_depth {
            return Err(self.err(format!("nesting deeper than {} levels", self.max_depth)));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            if self.pos > start {
                // The input is valid UTF-8 and the run stops on an ASCII
                // delimiter, so the slice is on char boundaries.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(digits, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("plain"), r#""plain""#);
        assert_eq!(json_string("a\"b\\c"), r#""a\"b\\c""#);
        assert_eq!(json_string("x\ny\tz"), r#""x\ny\tz""#);
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn render_is_compact_and_ordered() {
        let v = obj([
            ("b", Json::from(2u64)),
            ("a", Json::from("x")),
            ("list", Json::from(vec![1u64, 2, 3])),
            ("none", Json::Null),
        ]);
        assert_eq!(v.render(), r#"{"b":2,"a":"x","list":[1,2,3],"none":null}"#);
    }

    #[test]
    fn numbers_render_like_the_legacy_emitters() {
        assert_eq!(Json::Num(42.0).render(), "42");
        assert_eq!(Json::Num(-3.0).render(), "-3");
        assert_eq!(Json::Num(0.25).render(), "0.25");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn parse_round_trips() {
        let text = r#"{"a":1,"b":[true,false,null,"s\n"],"c":{"d":0.5},"e":-2}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.render(), text);
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_f64(), Some(0.5));
        assert_eq!(v.get("b").unwrap().as_arr().unwrap().len(), 4);
    }

    #[test]
    fn parse_accepts_whitespace_and_exponents() {
        let v = parse(" { \"x\" : 1e3 , \"y\" : [ ] } ").unwrap();
        assert_eq!(v.get("x").unwrap().as_f64(), Some(1000.0));
        assert_eq!(v.get("y").unwrap().as_arr().unwrap().len(), 0);
    }

    #[test]
    fn parse_unicode_escapes() {
        let v = parse(r#""a\u00e9\ud83d\ude00b""#).unwrap();
        assert_eq!(v.as_str(), Some("aé😀b"));
        assert!(parse(r#""\ud83d""#).is_err(), "unpaired surrogate");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("\"\u{1}\"").is_err(), "raw control character");
    }

    #[test]
    fn parse_enforces_limits() {
        let deep = format!("{}1{}", "[".repeat(40), "]".repeat(40));
        let err = parse(&deep);
        assert!(err.is_ok(), "40 levels fits the default limit");
        let err = parse_with_limits(&deep, 10, DEFAULT_MAX_BYTES).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        let err = parse_with_limits("[1]", DEFAULT_MAX_DEPTH, 2).unwrap_err();
        assert!(err.message.contains("limit"), "{err}");
    }

    #[test]
    fn as_u64_bounds() {
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(0.0).as_u64(), Some(0));
        assert_eq!(Json::Str("1".into()).as_u64(), None);
    }
}
