//! Randomized property tests on the network models: work conservation,
//! monotonicity, and routing invariants. Cases come from the in-tree
//! [`gsim_rng`] PRNG; the `ext-tests` feature multiplies the case count.

use gsim_noc::{BandwidthLink, ChipletInterconnect, Crossbar, Mesh};
use gsim_rng::Rng64;

fn cases(default: usize) -> usize {
    if cfg!(feature = "ext-tests") {
        default * 8
    } else {
        default
    }
}

fn f64_in(rng: &mut Rng64, lo: f64, hi: f64) -> f64 {
    lo + rng.next_f64() * (hi - lo)
}

/// A transfer never completes before its submission plus its own
/// serialisation time, and link state advances monotonically.
#[test]
fn link_completions_are_monotone_and_causal() {
    let mut rng = Rng64::seed_from_u64(0x0c_0001);
    for _ in 0..cases(64) {
        let bw = f64_in(&mut rng, 1.0, 4096.0);
        let n = rng.gen_range(1, 50);
        let submissions: Vec<(f64, u32)> = (0..n)
            .map(|_| {
                (
                    f64_in(&mut rng, 0.0, 10_000.0),
                    rng.gen_range(1, 4096) as u32,
                )
            })
            .collect();
        let mut link = BandwidthLink::new(bw);
        let mut last_done = 0.0f64;
        let mut total_bytes = 0u64;
        for &(now, bytes) in &submissions {
            let done = link.transfer(now, bytes);
            assert!(done >= now + f64::from(bytes) / bw - 1e-9);
            assert!(done >= last_done, "the channel serialises");
            last_done = done;
            total_bytes += u64::from(bytes);
        }
        assert_eq!(link.stats().bytes, total_bytes);
        assert_eq!(link.stats().transfers, submissions.len() as u64);
    }
}

/// Crossbar traversals cost at least the hop latency and respect the
/// bisection bandwidth in aggregate.
#[test]
fn crossbar_respects_bandwidth_ceiling() {
    let mut rng = Rng64::seed_from_u64(0x0c_0002);
    for _ in 0..cases(64) {
        let bw = f64_in(&mut rng, 32.0, 1024.0);
        let n = rng.gen_range(1, 200);
        let mut x = Crossbar::new(bw, 10);
        let mut last = 0.0f64;
        for _ in 0..n {
            last = x.traverse(0.0, 128);
        }
        // n transfers of 128 B cannot finish faster than n*128/bw.
        assert!(last >= (n as f64) * 128.0 / bw + 10.0 - 1e-6);
        assert!(x.utilization(last) <= 1.0);
    }
}

/// Mesh hop counts are symmetric, satisfy the triangle inequality, and
/// bound the traversal latency from below.
#[test]
fn mesh_routing_invariants() {
    let mut rng = Rng64::seed_from_u64(0x0c_0003);
    for _ in 0..cases(64) {
        let nodes = rng.gen_range(2, 64) as u32;
        let mut m = Mesh::new(nodes, 256.0, 2);
        let (c, r) = m.dims();
        let n = c * r;
        let src = rng.gen_range(0, 64) as u32 % n;
        let dst = rng.gen_range(0, 64) as u32 % n;
        let via = rng.gen_range(0, 64) as u32 % n;
        assert_eq!(m.hops(src, dst), m.hops(dst, src));
        assert!(m.hops(src, dst) <= m.hops(src, via) + m.hops(via, dst));
        let t = m.traverse(0.0, src, dst, 128);
        let hops = f64::from(m.hops(src, dst));
        assert!(t >= hops * 2.0 - 1e-9, "at least hop latency each");
    }
}

/// Chiplet transfers conserve bytes and local traffic is free.
#[test]
fn chiplet_byte_conservation() {
    let mut rng = Rng64::seed_from_u64(0x0c_0004);
    for _ in 0..cases(64) {
        let n_chiplets = rng.gen_range(1, 8) as u32;
        let n_msgs = rng.gen_range(0, 40);
        let msgs: Vec<(u32, u32, u32)> = (0..n_msgs)
            .map(|_| {
                (
                    rng.gen_range(0, 8) as u32,
                    rng.gen_range(0, 8) as u32,
                    rng.gen_range(1, 2048) as u32,
                )
            })
            .collect();
        let mut icn = ChipletInterconnect::new(n_chiplets, 128.0, 30);
        let mut remote_bytes = 0u64;
        for &(s, d, b) in &msgs {
            let (s, d) = (s % n_chiplets, d % n_chiplets);
            let t = icn.traverse(0.0, s, d, b);
            if s == d {
                assert_eq!(t, 0.0);
            } else {
                remote_bytes += u64::from(b);
                assert!(t >= 30.0);
            }
        }
        assert_eq!(icn.total_bytes(), remote_bytes);
    }
}
