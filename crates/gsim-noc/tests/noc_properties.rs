//! Property-based tests on the network models: work conservation,
//! monotonicity, and routing invariants.

use gsim_noc::{BandwidthLink, ChipletInterconnect, Crossbar, Mesh};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A transfer never completes before its submission plus its own
    /// serialisation time, and link state advances monotonically.
    #[test]
    fn link_completions_are_monotone_and_causal(
        bw in 1.0f64..4096.0,
        submissions in proptest::collection::vec((0.0f64..10_000.0, 1u32..4096), 1..50),
    ) {
        let mut link = BandwidthLink::new(bw);
        let mut last_done = 0.0f64;
        let mut total_bytes = 0u64;
        for &(now, bytes) in &submissions {
            let done = link.transfer(now, bytes);
            prop_assert!(done >= now + f64::from(bytes) / bw - 1e-9);
            prop_assert!(done >= last_done, "the channel serialises");
            last_done = done;
            total_bytes += u64::from(bytes);
        }
        prop_assert_eq!(link.stats().bytes, total_bytes);
        prop_assert_eq!(link.stats().transfers, submissions.len() as u64);
    }

    /// Crossbar traversals cost at least the hop latency and respect the
    /// bisection bandwidth in aggregate.
    #[test]
    fn crossbar_respects_bandwidth_ceiling(
        bw in 32.0f64..1024.0,
        n in 1u64..200,
    ) {
        let mut x = Crossbar::new(bw, 10);
        let mut last = 0.0f64;
        for _ in 0..n {
            last = x.traverse(0.0, 128);
        }
        // n transfers of 128 B cannot finish faster than n*128/bw.
        prop_assert!(last >= (n as f64) * 128.0 / bw + 10.0 - 1e-6);
        prop_assert!(x.utilization(last) <= 1.0);
    }

    /// Mesh hop counts are symmetric, satisfy the triangle inequality,
    /// and bound the traversal latency from below.
    #[test]
    fn mesh_routing_invariants(
        nodes in 2u32..64,
        src in 0u32..64,
        dst in 0u32..64,
        via in 0u32..64,
    ) {
        let mut m = Mesh::new(nodes, 256.0, 2);
        let (c, r) = m.dims();
        let n = c * r;
        let (src, dst, via) = (src % n, dst % n, via % n);
        prop_assert_eq!(m.hops(src, dst), m.hops(dst, src));
        prop_assert!(m.hops(src, dst) <= m.hops(src, via) + m.hops(via, dst));
        let t = m.traverse(0.0, src, dst, 128);
        let hops = f64::from(m.hops(src, dst));
        prop_assert!(t >= hops * 2.0 - 1e-9, "at least hop latency each");
    }

    /// Chiplet transfers conserve bytes and local traffic is free.
    #[test]
    fn chiplet_byte_conservation(
        n_chiplets in 1u32..8,
        msgs in proptest::collection::vec((0u32..8, 0u32..8, 1u32..2048), 0..40),
    ) {
        let mut icn = ChipletInterconnect::new(n_chiplets, 128.0, 30);
        let mut remote_bytes = 0u64;
        for &(s, d, b) in &msgs {
            let (s, d) = (s % n_chiplets, d % n_chiplets);
            let t = icn.traverse(0.0, s, d, b);
            if s == d {
                prop_assert_eq!(t, 0.0);
            } else {
                remote_bytes += u64::from(b);
                prop_assert!(t >= 30.0);
            }
        }
        prop_assert_eq!(icn.total_bytes(), remote_bytes);
    }
}
