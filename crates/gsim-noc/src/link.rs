//! A shared bandwidth-limited channel.

/// Statistics of a [`BandwidthLink`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LinkStats {
    /// Transfers served.
    pub transfers: u64,
    /// Bytes moved.
    pub bytes: u64,
    /// Accumulated queueing delay in cycles (time spent waiting for the
    /// channel, excluding service time).
    pub queue_cycles: f64,
}

impl LinkStats {
    /// Mean queueing delay per transfer; 0 if no transfers.
    pub fn mean_queue_cycles(&self) -> f64 {
        if self.transfers == 0 {
            0.0
        } else {
            self.queue_cycles / self.transfers as f64
        }
    }
}

/// A work-conserving channel with a fixed service bandwidth.
///
/// A transfer of `b` bytes submitted at time `t` starts at
/// `max(t, previous completion)` and occupies the channel for
/// `b / bytes_per_cycle` cycles. This first-order queueing model captures
/// exactly what the paper's scaling methodology depends on: a bandwidth
/// ceiling whose pressure is felt through growing latencies.
///
/// # Example
///
/// ```
/// use gsim_noc::BandwidthLink;
///
/// let mut link = BandwidthLink::new(128.0); // 128 B/cycle
/// assert_eq!(link.transfer(0.0, 128), 1.0);
/// assert_eq!(link.transfer(0.0, 128), 2.0); // queues behind the first
/// ```
#[derive(Debug, Clone)]
pub struct BandwidthLink {
    bytes_per_cycle: f64,
    next_free: f64,
    stats: LinkStats,
}

impl BandwidthLink {
    /// Creates a link with a service rate of `bytes_per_cycle`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is not positive and finite.
    pub fn new(bytes_per_cycle: f64) -> Self {
        assert!(
            bytes_per_cycle > 0.0 && bytes_per_cycle.is_finite(),
            "bandwidth must be positive and finite, got {bytes_per_cycle}"
        );
        Self {
            bytes_per_cycle,
            next_free: 0.0,
            stats: LinkStats::default(),
        }
    }

    /// Creates a link from a bandwidth in GB/s and a clock in GHz
    /// (GB/s ÷ GHz = bytes/cycle).
    pub fn from_gbs(gbs: f64, clock_ghz: f64) -> Self {
        assert!(clock_ghz > 0.0, "clock must be positive");
        Self::new(gbs / clock_ghz)
    }

    /// Service rate in bytes per cycle.
    pub fn bytes_per_cycle(&self) -> f64 {
        self.bytes_per_cycle
    }

    /// Submits a transfer of `bytes` at time `now` (cycles); returns the
    /// completion time.
    pub fn transfer(&mut self, now: f64, bytes: u32) -> f64 {
        let start = self.next_free.max(now);
        let done = start + f64::from(bytes) / self.bytes_per_cycle;
        self.next_free = done;
        self.stats.transfers += 1;
        self.stats.bytes += u64::from(bytes);
        self.stats.queue_cycles += start - now;
        done
    }

    /// Time at which the channel becomes free.
    pub fn next_free(&self) -> f64 {
        self.next_free
    }

    /// Utilisation over `elapsed_cycles`: fraction of time the channel was
    /// busy. Clamped to `[0, 1]`.
    pub fn utilization(&self, elapsed_cycles: f64) -> f64 {
        if elapsed_cycles <= 0.0 {
            return 0.0;
        }
        (self.stats.bytes as f64 / self.bytes_per_cycle / elapsed_cycles).clamp(0.0, 1.0)
    }

    /// Statistics so far.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Resets the queue and statistics.
    pub fn reset(&mut self) {
        self.next_free = 0.0;
        self.stats = LinkStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_time_is_bytes_over_bandwidth() {
        let mut l = BandwidthLink::new(64.0);
        assert_eq!(l.transfer(10.0, 128), 12.0);
    }

    #[test]
    fn queueing_accumulates() {
        let mut l = BandwidthLink::new(128.0);
        l.transfer(0.0, 1280); // busy until 10
        let done = l.transfer(2.0, 128);
        assert_eq!(done, 11.0);
        assert_eq!(l.stats().queue_cycles, 8.0);
        assert!(l.stats().mean_queue_cycles() > 0.0);
    }

    #[test]
    fn idle_gap_is_not_reclaimed() {
        let mut l = BandwidthLink::new(128.0);
        l.transfer(0.0, 128); // done at 1
        let done = l.transfer(100.0, 128);
        assert_eq!(done, 101.0, "work-conserving, no retroactive service");
    }

    #[test]
    fn from_gbs_converts_units() {
        let l = BandwidthLink::from_gbs(2700.0, 1.0);
        assert!((l.bytes_per_cycle() - 2700.0).abs() < 1e-9);
        let l = BandwidthLink::from_gbs(900.0, 1.7);
        assert!((l.bytes_per_cycle() - 529.411).abs() < 1e-2);
    }

    #[test]
    fn utilization_tracks_busy_fraction() {
        let mut l = BandwidthLink::new(100.0);
        l.transfer(0.0, 500); // 5 cycles busy
        assert!((l.utilization(10.0) - 0.5).abs() < 1e-12);
        assert_eq!(l.utilization(0.0), 0.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut l = BandwidthLink::new(100.0);
        l.transfer(0.0, 1000);
        l.reset();
        assert_eq!(l.stats(), LinkStats::default());
        assert_eq!(l.next_free(), 0.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_zero_bandwidth() {
        let _ = BandwidthLink::new(0.0);
    }
}
