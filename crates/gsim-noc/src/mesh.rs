//! A 2-D mesh NoC with XY routing.
//!
//! The paper's configurations use a crossbar (Table III), whose traversal
//! latency is independent of system size. Real large GPUs increasingly
//! use mesh-like fabrics, where the average hop count grows with the
//! network's side length — a *non-proportional* effect that the
//! scale-model methodology does not model, making the mesh a useful
//! what-if substrate: on a mesh, even a perfectly proportional scale
//! model underestimates the target's NoC latency.
//!
//! The model places the `n_nodes` endpoints on the smallest square-ish
//! grid, routes X-then-Y, charges every traversed link's bandwidth, and
//! adds a per-hop pipeline latency.

use crate::link::{BandwidthLink, LinkStats};

/// A 2-D mesh with XY dimension-ordered routing.
///
/// # Example
///
/// ```
/// use gsim_noc::Mesh;
///
/// let mut m = Mesh::new(16, 128.0, 3); // 4x4 mesh, 3 cycles per hop
/// let t = m.traverse(0.0, 0, 15, 128); // corner to corner: 6 hops
/// assert!(t >= 18.0);
/// ```
#[derive(Debug, Clone)]
pub struct Mesh {
    cols: u32,
    rows: u32,
    /// One link per (node, direction): E, W, S, N.
    links: Vec<BandwidthLink>,
    hop_latency: u32,
}

/// Direction indices into the per-node link array.
const EAST: usize = 0;
const WEST: usize = 1;
const SOUTH: usize = 2;
const NORTH: usize = 3;

impl Mesh {
    /// Creates a mesh of at least `n_nodes` endpoints with
    /// `bytes_per_cycle` per link and `hop_latency` cycles per hop.
    ///
    /// # Panics
    ///
    /// Panics if `n_nodes` is zero or bandwidth is non-positive.
    pub fn new(n_nodes: u32, bytes_per_cycle: f64, hop_latency: u32) -> Self {
        assert!(n_nodes > 0, "mesh needs at least one node");
        let cols = (f64::from(n_nodes)).sqrt().ceil() as u32;
        let rows = n_nodes.div_ceil(cols);
        let links = (0..rows * cols * 4)
            .map(|_| BandwidthLink::new(bytes_per_cycle))
            .collect();
        Self {
            cols,
            rows,
            links,
            hop_latency,
        }
    }

    /// Grid dimensions `(cols, rows)`.
    pub fn dims(&self) -> (u32, u32) {
        (self.cols, self.rows)
    }

    fn coords(&self, node: u32) -> (u32, u32) {
        (node % self.cols, node / self.cols)
    }

    /// Manhattan hop count between two nodes.
    pub fn hops(&self, src: u32, dst: u32) -> u32 {
        let (sx, sy) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        sx.abs_diff(dx) + sy.abs_diff(dy)
    }

    /// Average hop count under uniform traffic: `(cols + rows) / 3`,
    /// i.e. it grows with the mesh's side length — the non-proportional
    /// latency term a crossbar does not have.
    pub fn mean_hops(&self) -> f64 {
        (f64::from(self.cols) + f64::from(self.rows)) / 3.0
    }

    fn link_idx(&self, x: u32, y: u32, dir: usize) -> usize {
        ((y * self.cols + x) * 4) as usize + dir
    }

    /// Sends `bytes` from `src` to `dst` at time `now`, charging every
    /// traversed link; returns the arrival time.
    ///
    /// # Panics
    ///
    /// Panics if a node index is outside the grid.
    pub fn traverse(&mut self, now: f64, src: u32, dst: u32, bytes: u32) -> f64 {
        assert!(
            src < self.cols * self.rows && dst < self.cols * self.rows,
            "node outside the {}x{} mesh",
            self.cols,
            self.rows
        );
        let (mut x, mut y) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        let mut t = now;
        // X first, then Y (deadlock-free dimension order).
        while x != dx {
            let dir = if dx > x { EAST } else { WEST };
            let idx = self.link_idx(x, y, dir);
            t = self.links[idx].transfer(t, bytes) + f64::from(self.hop_latency);
            x = if dx > x { x + 1 } else { x - 1 };
        }
        while y != dy {
            let dir = if dy > y { SOUTH } else { NORTH };
            let idx = self.link_idx(x, y, dir);
            t = self.links[idx].transfer(t, bytes) + f64::from(self.hop_latency);
            y = if dy > y { y + 1 } else { y - 1 };
        }
        t
    }

    /// Aggregate statistics over all links.
    pub fn total_stats(&self) -> LinkStats {
        let mut out = LinkStats::default();
        for l in &self.links {
            let s = l.stats();
            out.transfers += s.transfers;
            out.bytes += s.bytes;
            out.queue_cycles += s.queue_cycles;
        }
        out
    }

    /// Resets all links.
    pub fn reset(&mut self) {
        for l in &mut self.links {
            l.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_delivery_is_free() {
        let mut m = Mesh::new(16, 128.0, 3);
        assert_eq!(m.traverse(5.0, 6, 6, 128), 5.0);
        assert_eq!(m.hops(6, 6), 0);
    }

    #[test]
    fn xy_route_charges_every_hop() {
        let mut m = Mesh::new(16, 128.0, 3);
        // Node 0 (0,0) -> node 15 (3,3): 6 hops, each 1 cycle service + 3.
        assert_eq!(m.hops(0, 15), 6);
        assert_eq!(m.traverse(0.0, 0, 15, 128), 24.0);
        assert_eq!(m.total_stats().transfers, 6);
    }

    #[test]
    fn mean_hops_grow_with_mesh_size() {
        let small = Mesh::new(8, 128.0, 3);
        let big = Mesh::new(128, 128.0, 3);
        assert!(
            big.mean_hops() > 2.0 * small.mean_hops(),
            "latency non-proportionality: {} vs {}",
            small.mean_hops(),
            big.mean_hops()
        );
    }

    #[test]
    fn contended_link_queues() {
        let mut m = Mesh::new(4, 128.0, 0);
        // Both messages use the (0,0) east link first.
        let a = m.traverse(0.0, 0, 1, 128);
        let b = m.traverse(0.0, 0, 3, 128);
        assert_eq!(a, 1.0);
        assert!(
            b > 2.0,
            "second message queues on the shared first hop: {b}"
        );
    }

    #[test]
    fn disjoint_paths_do_not_contend() {
        let mut m = Mesh::new(16, 128.0, 0);
        let a = m.traverse(0.0, 0, 1, 128);
        let b = m.traverse(0.0, 14, 15, 128);
        assert_eq!(a, 1.0);
        assert_eq!(b, 1.0);
    }

    #[test]
    fn non_square_counts_get_a_grid() {
        let m = Mesh::new(6, 128.0, 1);
        let (c, r) = m.dims();
        assert!(c * r >= 6);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_out_of_grid_nodes() {
        let mut m = Mesh::new(4, 128.0, 1);
        let _ = m.traverse(0.0, 0, 99, 64);
    }
}
