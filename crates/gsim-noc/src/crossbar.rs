//! The SM ↔ LLC crossbar.

use crate::link::{BandwidthLink, LinkStats};

/// A crossbar NoC characterised by its bisection bandwidth and a fixed
/// per-traversal latency, as in the paper's configurations (Table III:
/// crossbar, 2.7 TB/s).
///
/// Every request and response between the SMs and the LLC slices is charged
/// against the bisection-bandwidth channel; the completion time of a
/// traversal is the channel completion plus the hop latency. Under light
/// load a traversal costs just the hop latency plus its own serialisation
/// time; as offered load approaches the bisection bandwidth, queueing delay
/// grows without bound — which is precisely the congestion behaviour that
/// makes proportional resource scaling matter.
///
/// # Example
///
/// ```
/// use gsim_noc::Crossbar;
///
/// let mut noc = Crossbar::from_gbs(2700.0, 1.0, 20);
/// let arrive = noc.traverse(0.0, 128);
/// assert!(arrive >= 20.0);
/// ```
#[derive(Debug, Clone)]
pub struct Crossbar {
    bisection: BandwidthLink,
    hop_latency: u32,
}

impl Crossbar {
    /// Creates a crossbar with `bytes_per_cycle` bisection bandwidth and a
    /// fixed `hop_latency` in cycles.
    pub fn new(bytes_per_cycle: f64, hop_latency: u32) -> Self {
        Self {
            bisection: BandwidthLink::new(bytes_per_cycle),
            hop_latency,
        }
    }

    /// Creates a crossbar from a bisection bandwidth in GB/s at `clock_ghz`.
    pub fn from_gbs(gbs: f64, clock_ghz: f64, hop_latency: u32) -> Self {
        Self {
            bisection: BandwidthLink::from_gbs(gbs, clock_ghz),
            hop_latency,
        }
    }

    /// Sends `bytes` across the crossbar at time `now`; returns the arrival
    /// time at the destination (queueing + serialisation + hop latency).
    pub fn traverse(&mut self, now: f64, bytes: u32) -> f64 {
        self.bisection.transfer(now, bytes) + f64::from(self.hop_latency)
    }

    /// Fixed traversal latency in cycles.
    pub fn hop_latency(&self) -> u32 {
        self.hop_latency
    }

    /// Bisection bandwidth in bytes per cycle.
    pub fn bytes_per_cycle(&self) -> f64 {
        self.bisection.bytes_per_cycle()
    }

    /// Channel statistics.
    pub fn stats(&self) -> LinkStats {
        self.bisection.stats()
    }

    /// Bisection utilisation over `elapsed_cycles`.
    pub fn utilization(&self, elapsed_cycles: f64) -> f64 {
        self.bisection.utilization(elapsed_cycles)
    }

    /// Resets queue state and statistics.
    pub fn reset(&mut self) {
        self.bisection.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traversal_includes_hop_latency() {
        let mut x = Crossbar::new(128.0, 20);
        assert_eq!(x.traverse(0.0, 128), 21.0);
    }

    #[test]
    fn congestion_grows_latency() {
        let mut x = Crossbar::new(128.0, 20);
        let mut last = 0.0;
        for _ in 0..100 {
            last = x.traverse(0.0, 128);
        }
        assert_eq!(last, 120.0, "100 serialised lines at 1 cycle each + hop");
        assert!(x.stats().mean_queue_cycles() > 10.0);
    }

    #[test]
    fn proportionally_scaled_crossbars_behave_identically_per_sm() {
        // An F-times smaller crossbar serving F-times less traffic sees the
        // same queueing — the premise of proportional resource scaling.
        let mut big = Crossbar::new(2700.0, 20);
        let mut small = Crossbar::new(2700.0 / 8.0, 20);
        let mut last_big = 0.0;
        let mut last_small = 0.0;
        for i in 0..800 {
            last_big = big.traverse(0.0, 128);
            if i % 8 == 0 {
                last_small = small.traverse(0.0, 128);
            }
        }
        let rel = (last_big - last_small).abs() / last_big;
        assert!(rel < 0.05, "relative completion gap {rel}");
    }
}
