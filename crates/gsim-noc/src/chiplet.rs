//! Inter-chiplet interconnect for multi-chip-module (MCM) GPUs.

use crate::link::{BandwidthLink, LinkStats};

/// The inter-chiplet network of the paper's MCM case study (Table V): a
/// "fly" topology giving each chiplet a dedicated ingress/egress channel of
/// 900 GB/s, plus a fixed chiplet-crossing latency.
///
/// A remote access from chiplet `src` to data homed on chiplet `dst`
/// occupies the egress channel of `src` and the ingress channel of `dst`
/// (modelled as one shared per-chiplet channel each way, which is what
/// bounds throughput in a fly/point-to-multipoint topology).
///
/// # Example
///
/// ```
/// use gsim_noc::ChipletInterconnect;
///
/// let mut icn = ChipletInterconnect::from_gbs(4, 900.0, 1.7, 60);
/// let arrive = icn.traverse(0.0, 0, 2, 128);
/// assert!(arrive >= 60.0);
/// ```
#[derive(Debug, Clone)]
pub struct ChipletInterconnect {
    egress: Vec<BandwidthLink>,
    ingress: Vec<BandwidthLink>,
    crossing_latency: u32,
}

impl ChipletInterconnect {
    /// Creates an interconnect for `n_chiplets` chiplets with
    /// `bytes_per_cycle` per-chiplet channel bandwidth and a fixed
    /// `crossing_latency` in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `n_chiplets` is zero.
    pub fn new(n_chiplets: u32, bytes_per_cycle: f64, crossing_latency: u32) -> Self {
        assert!(n_chiplets > 0, "need at least one chiplet");
        Self {
            egress: (0..n_chiplets)
                .map(|_| BandwidthLink::new(bytes_per_cycle))
                .collect(),
            ingress: (0..n_chiplets)
                .map(|_| BandwidthLink::new(bytes_per_cycle))
                .collect(),
            crossing_latency,
        }
    }

    /// Creates an interconnect from per-chiplet bandwidth in GB/s at
    /// `clock_ghz`.
    pub fn from_gbs(
        n_chiplets: u32,
        gbs_per_chiplet: f64,
        clock_ghz: f64,
        crossing_latency: u32,
    ) -> Self {
        Self::new(n_chiplets, gbs_per_chiplet / clock_ghz, crossing_latency)
    }

    /// Number of chiplets.
    pub fn n_chiplets(&self) -> u32 {
        self.egress.len() as u32
    }

    /// Fixed crossing latency in cycles.
    pub fn crossing_latency(&self) -> u32 {
        self.crossing_latency
    }

    /// Moves `bytes` from chiplet `src` to chiplet `dst` starting at `now`;
    /// returns the arrival time. A local transfer (`src == dst`) is free.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is out of range.
    pub fn traverse(&mut self, now: f64, src: u32, dst: u32, bytes: u32) -> f64 {
        if src == dst {
            return now;
        }
        let sent = self.egress[src as usize].transfer(now, bytes);
        let received = self.ingress[dst as usize].transfer(sent, bytes);
        received + f64::from(self.crossing_latency)
    }

    /// Per-chiplet egress statistics.
    pub fn egress_stats(&self) -> Vec<LinkStats> {
        self.egress.iter().map(BandwidthLink::stats).collect()
    }

    /// Total bytes crossed between chiplets (counted once, at egress).
    pub fn total_bytes(&self) -> u64 {
        self.egress.iter().map(|l| l.stats().bytes).sum()
    }

    /// Resets all channels.
    pub fn reset(&mut self) {
        for l in self.egress.iter_mut().chain(self.ingress.iter_mut()) {
            l.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_transfer_is_free() {
        let mut icn = ChipletInterconnect::new(4, 128.0, 60);
        assert_eq!(icn.traverse(5.0, 2, 2, 4096), 5.0);
        assert_eq!(icn.total_bytes(), 0);
    }

    #[test]
    fn remote_transfer_pays_latency_and_serialisation() {
        let mut icn = ChipletInterconnect::new(4, 128.0, 60);
        let t = icn.traverse(0.0, 0, 1, 128);
        assert_eq!(t, 62.0); // 1 cycle egress + 1 cycle ingress + 60
        assert_eq!(icn.total_bytes(), 128);
    }

    #[test]
    fn hot_home_chiplet_saturates_its_ingress() {
        let mut icn = ChipletInterconnect::new(4, 128.0, 0);
        let mut last = 0.0f64;
        // Chiplets 1..3 all push to chiplet 0.
        for i in 0..300u32 {
            let src = 1 + (i % 3);
            last = last.max(icn.traverse(0.0, src, 0, 128));
        }
        // 300 lines through one 1-line/cycle ingress ≈ 300 cycles.
        assert!(
            last >= 299.0,
            "ingress of the home chiplet is the bottleneck"
        );
    }

    #[test]
    fn disjoint_pairs_proceed_in_parallel() {
        let mut icn = ChipletInterconnect::new(4, 128.0, 0);
        let a = icn.traverse(0.0, 0, 1, 128);
        let b = icn.traverse(0.0, 2, 3, 128);
        assert_eq!(a, 2.0);
        assert_eq!(b, 2.0, "independent chiplet pairs do not contend");
    }

    #[test]
    #[should_panic(expected = "at least one chiplet")]
    fn rejects_zero_chiplets() {
        let _ = ChipletInterconnect::new(0, 128.0, 0);
    }
}
