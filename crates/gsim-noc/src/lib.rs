//! On-chip and inter-chiplet network models for GPU scale-model simulation.
//!
//! The paper's target systems use a crossbar network-on-chip between the SMs
//! and the LLC slices, characterised by its *bisection bandwidth* (Table I:
//! 2.7 TB/s for the 128-SM target, scaled proportionally in the scale
//! models), and — for the multi-chip-module case study (Table V) — an
//! inter-chiplet "fly" topology with 900 GB/s per chiplet.
//!
//! What matters for scaling studies is bandwidth occupancy and the queueing
//! it induces, not per-flit routing, so the models here are work-conserving
//! bandwidth servers:
//!
//! * [`BandwidthLink`] — a single shared channel with a service rate in
//!   bytes per cycle; transfers occupy it back-to-back, producing queueing
//!   delay under load.
//! * [`Crossbar`] — the SM↔LLC crossbar: a bisection-bandwidth link plus a
//!   fixed per-hop latency.
//! * [`ChipletInterconnect`] — one link per chiplet plus a fixed
//!   chiplet-crossing latency, for the MCM case study.
//! * [`Mesh`] — a 2-D XY-routed mesh whose average hop count grows with
//!   system size, a what-if fabric the crossbar assumption hides.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chiplet;
mod crossbar;
mod link;
mod mesh;

pub use chiplet::ChipletInterconnect;
pub use crossbar::Crossbar;
pub use link::{BandwidthLink, LinkStats};
pub use mesh::Mesh;
