//! Baseline scaling predictors (Section VII's comparison points).
//!
//! All baselines are fit on the same information the scale-model method
//! uses: the two scale-model observations `(S, IPC_S)` and `(L, IPC_L)`.
//! The paper evaluates four of them:
//!
//! * [`Proportional`] — performance is `S×` higher on an `S×` bigger
//!   system.
//! * [`LinearRegression`] — `y = a·x + b` through the two points.
//! * [`PowerLawRegression`] — `y = a·x^b` through the two points.
//! * [`LogRegression`] — `y = a·log2(x)`, least-squares over the two
//!   points; this is what prior CPU scale-model work proposed and is the
//!   least accurate for GPUs.

use crate::error::ModelError;

/// A performance extrapolation model over system size.
///
/// Implementations are immutable once fit; [`predict`] may be called for
/// any positive size.
///
/// [`predict`]: ScalingPredictor::predict
pub trait ScalingPredictor {
    /// Short name used in reports ("proportional", "power-law", …).
    fn name(&self) -> &'static str;

    /// Predicted IPC at system size `size`.
    fn predict(&self, size: f64) -> f64;
}

fn check_obs(s: u32, ipc_s: f64, l: u32, ipc_l: f64) -> Result<(), ModelError> {
    if s == 0 || l == 0 || s >= l {
        return Err(ModelError::InvalidScaleModels { small: s, large: l });
    }
    for v in [ipc_s, ipc_l] {
        if !(v.is_finite() && v > 0.0) {
            return Err(ModelError::InvalidIpc(v));
        }
    }
    Ok(())
}

/// Proportional scaling: `IPC(T) = IPC_L × T / L` (the paper's "naive
/// approach that assumes performance increases proportionally with system
/// size").
#[derive(Debug, Clone, PartialEq)]
pub struct Proportional {
    large: f64,
    ipc_large: f64,
}

impl Proportional {
    /// Fits on the largest scale model.
    ///
    /// # Errors
    ///
    /// Returns an error if the observations are invalid.
    pub fn fit(s: u32, ipc_s: f64, l: u32, ipc_l: f64) -> Result<Self, ModelError> {
        check_obs(s, ipc_s, l, ipc_l)?;
        Ok(Self {
            large: f64::from(l),
            ipc_large: ipc_l,
        })
    }
}

impl ScalingPredictor for Proportional {
    fn name(&self) -> &'static str {
        "proportional"
    }

    fn predict(&self, size: f64) -> f64 {
        self.ipc_large * size / self.large
    }
}

/// Linear regression `y = a·x + b` through the two scale-model points.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearRegression {
    a: f64,
    b: f64,
}

impl LinearRegression {
    /// Fits the line through both observations.
    ///
    /// # Errors
    ///
    /// Returns an error if the observations are invalid.
    pub fn fit(s: u32, ipc_s: f64, l: u32, ipc_l: f64) -> Result<Self, ModelError> {
        check_obs(s, ipc_s, l, ipc_l)?;
        let (xs, xl) = (f64::from(s), f64::from(l));
        let a = (ipc_l - ipc_s) / (xl - xs);
        let b = ipc_s - a * xs;
        Ok(Self { a, b })
    }

    /// Slope of the fitted line.
    pub fn slope(&self) -> f64 {
        self.a
    }

    /// Intercept of the fitted line.
    pub fn intercept(&self) -> f64 {
        self.b
    }
}

impl ScalingPredictor for LinearRegression {
    fn name(&self) -> &'static str {
        "linear"
    }

    fn predict(&self, size: f64) -> f64 {
        self.a * size + self.b
    }
}

/// Power-law regression `y = a·x^b` through the two scale-model points
/// (the most accurate baseline in the paper, still poor on cliffs).
#[derive(Debug, Clone, PartialEq)]
pub struct PowerLawRegression {
    a: f64,
    b: f64,
}

impl PowerLawRegression {
    /// Fits the power law through both observations.
    ///
    /// # Errors
    ///
    /// Returns an error if the observations are invalid.
    pub fn fit(s: u32, ipc_s: f64, l: u32, ipc_l: f64) -> Result<Self, ModelError> {
        check_obs(s, ipc_s, l, ipc_l)?;
        let b = (ipc_l / ipc_s).ln() / (f64::from(l) / f64::from(s)).ln();
        let a = ipc_s / f64::from(s).powf(b);
        Ok(Self { a, b })
    }

    /// The fitted exponent (1.0 = perfectly linear scaling).
    pub fn exponent(&self) -> f64 {
        self.b
    }
}

impl ScalingPredictor for PowerLawRegression {
    fn name(&self) -> &'static str {
        "power-law"
    }

    fn predict(&self, size: f64) -> f64 {
        self.a * size.powf(self.b)
    }
}

/// Logarithmic regression `y = a·log2(x)`, least-squares over the two
/// points — the model prior CPU scale-model work found best \[46\], and the
/// paper's worst GPU baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct LogRegression {
    a: f64,
}

impl LogRegression {
    /// Least-squares fit of the single coefficient `a`.
    ///
    /// # Errors
    ///
    /// Returns an error if the observations are invalid or both sizes are
    /// 1 (log2(1) = 0 carries no information).
    pub fn fit(s: u32, ipc_s: f64, l: u32, ipc_l: f64) -> Result<Self, ModelError> {
        check_obs(s, ipc_s, l, ipc_l)?;
        let (xs, xl) = (f64::from(s).log2(), f64::from(l).log2());
        let denom = xs * xs + xl * xl;
        if denom == 0.0 {
            return Err(ModelError::InvalidScaleModels { small: s, large: l });
        }
        Ok(Self {
            a: (ipc_s * xs + ipc_l * xl) / denom,
        })
    }

    /// The fitted coefficient.
    pub fn coefficient(&self) -> f64 {
        self.a
    }
}

impl ScalingPredictor for LogRegression {
    fn name(&self) -> &'static str {
        "logarithmic"
    }

    fn predict(&self, size: f64) -> f64 {
        self.a * size.log2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: u32 = 8;
    const L: u32 = 16;

    #[test]
    fn proportional_matches_definition() {
        let p = Proportional::fit(S, 100.0, L, 200.0).unwrap();
        assert_eq!(p.predict(128.0), 1600.0);
        assert_eq!(p.name(), "proportional");
    }

    #[test]
    fn linear_passes_through_both_points() {
        let p = LinearRegression::fit(S, 100.0, L, 180.0).unwrap();
        assert!((p.predict(8.0) - 100.0).abs() < 1e-9);
        assert!((p.predict(16.0) - 180.0).abs() < 1e-9);
        // Sub-linear observations extrapolate below proportional.
        assert!(p.predict(128.0) < 1600.0);
        assert!((p.slope() - 10.0).abs() < 1e-9);
        assert!((p.intercept() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn power_law_passes_through_both_points() {
        let p = PowerLawRegression::fit(S, 100.0, L, 180.0).unwrap();
        assert!((p.predict(8.0) - 100.0).abs() < 1e-6);
        assert!((p.predict(16.0) - 180.0).abs() < 1e-6);
        assert!((p.exponent() - (1.8f64).log2()).abs() < 1e-9);
    }

    #[test]
    fn power_law_with_exact_doubling_is_proportional() {
        let p = PowerLawRegression::fit(S, 100.0, L, 200.0).unwrap();
        assert!((p.exponent() - 1.0).abs() < 1e-12);
        assert!((p.predict(128.0) - 1600.0).abs() < 1e-6);
    }

    #[test]
    fn log_regression_grossly_underpredicts_linear_scaling() {
        // The paper's point: log2(x) saturates, so a linearly scaling
        // workload is underpredicted by ~60-70% at 128 SMs.
        let p = LogRegression::fit(S, 100.0, L, 200.0).unwrap();
        let pred = p.predict(128.0);
        assert!(
            pred < 0.5 * 1600.0,
            "log regression should saturate: {pred}"
        );
    }

    #[test]
    fn log_regression_least_squares() {
        // With xs=3, xl=4: a = (3*y1 + 4*y2) / 25.
        let p = LogRegression::fit(S, 100.0, L, 200.0).unwrap();
        assert!((p.coefficient() - (300.0 + 800.0) / 25.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        assert!(Proportional::fit(8, 100.0, 8, 200.0).is_err());
        assert!(Proportional::fit(16, 100.0, 8, 200.0).is_err());
        assert!(LinearRegression::fit(8, -1.0, 16, 200.0).is_err());
        assert!(PowerLawRegression::fit(8, 100.0, 16, f64::NAN).is_err());
        assert!(LogRegression::fit(0, 100.0, 16, 200.0).is_err());
    }
}
