//! Ablation studies on the methodology's design choices.
//!
//! Three knobs the paper fixes by design are varied here to show *why*
//! they are fixed that way:
//!
//! * [`ScaleModelStyle`] — Section II's central rule is that scale
//!   models must scale the *shared* resources proportionally. The
//!   ablation builds scale models that violate the rule (full-size LLC,
//!   or full-size NoC/DRAM bandwidth) and measures how target-system
//!   prediction degrades.
//! * [`cliff_threshold_sweep`] — Section V.C defines a cliff as a >2×
//!   MPKI drop per doubling; the sweep shows how detection behaves at
//!   1.5×–4×.
//! * [`ablate_f_mem_source`] — Eq. (3) uses the *largest* scale model's
//!   memory-stall fraction; the ablation compares using the smallest's.

use gsim_sim::{collect_mrc, GpuConfig, Simulator};
use gsim_trace::suite::StrongBenchmark;
use gsim_trace::MemScale;

use crate::cliff::{detect_cliff_with, SizedMrc};
use crate::error::ModelError;
use crate::percent_error;
use crate::scale_model::{ScaleModelInputs, ScaleModelPredictor};

/// How the scale models' shared resources are derived from the target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleModelStyle {
    /// The paper's rule: everything shared scales with SM count.
    Proportional,
    /// Violation: scale models keep the *target's* full LLC capacity
    /// (and slice count) — interference in the cache disappears and
    /// cliffs are invisible.
    FullSizeLlc,
    /// Violation: scale models keep the target's full NoC and DRAM
    /// bandwidth — bandwidth pressure disappears.
    FullBandwidth,
}

impl ScaleModelStyle {
    /// Human-readable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            ScaleModelStyle::Proportional => "proportional (paper)",
            ScaleModelStyle::FullSizeLlc => "full-size LLC",
            ScaleModelStyle::FullBandwidth => "full bandwidth",
        }
    }

    /// Builds the scale-model configuration of `n_sms` SMs under this
    /// style. Violating styles copy the shared resource from `anchor_sms`
    /// — the *largest* system of interest — because scale models are a
    /// one-time cost reused across many targets; a capacity- or
    /// bandwidth-rich model built for the biggest target is exactly what
    /// a practitioner violating the proportionality rule would build.
    pub fn config(&self, n_sms: u32, anchor_sms: u32, scale: MemScale) -> GpuConfig {
        let target = GpuConfig::paper_target(anchor_sms, scale);
        let proportional = target.scaled_to(n_sms);
        match self {
            ScaleModelStyle::Proportional => proportional,
            ScaleModelStyle::FullSizeLlc => GpuConfig {
                llc_bytes_total: target.llc_bytes_total,
                llc_slices: target.llc_slices,
                ..proportional
            },
            ScaleModelStyle::FullBandwidth => GpuConfig {
                noc_gbs: target.noc_gbs,
                n_mcs: target.n_mcs,
                ..proportional
            },
        }
    }
}

/// Result of one scale-model-style ablation run.
#[derive(Debug, Clone, PartialEq)]
pub struct StyleAblation {
    /// The style under test.
    pub style: ScaleModelStyle,
    /// Measured scale-model IPCs (8- and 16-SM models built in `style`).
    pub ipc_models: (f64, f64),
    /// Prediction for the target, from those models.
    pub predicted: f64,
    /// Ground truth from simulating the (always unmodified) target.
    pub real: f64,
    /// Prediction error in percent.
    pub error_pct: f64,
}

/// Runs the scale-model-style ablation for one benchmark and target.
///
/// # Errors
///
/// Propagates predictor construction failures.
pub fn ablate_scale_model_style(
    bench: &StrongBenchmark,
    scale: MemScale,
    target_sms: u32,
    style: ScaleModelStyle,
) -> Result<StyleAblation, ModelError> {
    const ANCHOR_SMS: u32 = 128;
    let cfg8 = style.config(8, ANCHOR_SMS, scale);
    let cfg16 = style.config(16, ANCHOR_SMS, scale);
    let ipc8 = Simulator::new(cfg8.clone(), &bench.workload)
        .run()
        .sustained_ipc();
    let s16 = Simulator::new(cfg16.clone(), &bench.workload).run();
    let ipc16 = s16.sustained_ipc();

    // The miss-rate curve is collected over the *style's* capacity ladder
    // up to the target — with a full-size LLC every point is the target
    // capacity, which is exactly how the violation blinds the method.
    let mut ladder = vec![cfg8, cfg16];
    let mut sms = 32;
    while sms <= target_sms {
        ladder.push(style.config(sms, ANCHOR_SMS, scale));
        sms *= 2;
    }
    let curve = collect_mrc(&bench.workload, &ladder);
    let sizes: Vec<u32> = std::iter::successors(Some(8u32), |&s| Some(s * 2))
        .take(ladder.len())
        .collect();
    let mrc = SizedMrc::new(sizes.iter().zip(curve.points()).map(|(&s, p)| (s, p.mpki)));
    let predictor = ScaleModelPredictor::new(
        ScaleModelInputs::new(8, ipc8, 16, ipc16)
            .with_sized_mrc(mrc)
            .with_f_mem(s16.f_mem()),
    )?;
    let predicted = predictor.predict_checked(target_sms)?;
    let real = Simulator::new(GpuConfig::paper_target(target_sms, scale), &bench.workload)
        .run()
        .sustained_ipc();
    Ok(StyleAblation {
        style,
        ipc_models: (ipc8, ipc16),
        predicted,
        real,
        error_pct: percent_error(predicted, real),
    })
}

/// Sweeps the cliff-detection threshold over a miss-rate curve; returns
/// `(threshold, detected_cliff_upper_size)` per threshold.
pub fn cliff_threshold_sweep(mrc: &SizedMrc, thresholds: &[f64]) -> Vec<(f64, Option<u32>)> {
    thresholds
        .iter()
        .map(|&t| (t, detect_cliff_with(mrc, t).map(|i| mrc.points()[i + 1].0)))
        .collect()
}

/// Result of the f_mem-source ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct FMemAblation {
    /// Error when Eq. (3) uses the largest scale model's f_mem (paper).
    pub error_large_pct: f64,
    /// Error when it uses the smallest scale model's f_mem instead.
    pub error_small_pct: f64,
}

/// Compares predicting `target_sms` with `f_mem` taken from the largest
/// vs the smallest scale model, for a cliff benchmark.
///
/// # Errors
///
/// Propagates predictor construction failures.
pub fn ablate_f_mem_source(
    bench: &StrongBenchmark,
    scale: MemScale,
    target_sms: u32,
) -> Result<FMemAblation, ModelError> {
    let ladder: Vec<GpuConfig> = std::iter::successors(Some(8u32), |&s| Some(s * 2))
        .take_while(|&s| s <= target_sms)
        .map(|s| GpuConfig::paper_target(s, scale))
        .collect();
    let s8 = Simulator::new(ladder[0].clone(), &bench.workload).run();
    let s16 = Simulator::new(ladder[1].clone(), &bench.workload).run();
    let real = Simulator::new(
        ladder.last().expect("ladder non-empty").clone(),
        &bench.workload,
    )
    .run()
    .sustained_ipc();
    let curve = collect_mrc(&bench.workload, &ladder);
    let sizes: Vec<u32> = std::iter::successors(Some(8u32), |&s| Some(s * 2))
        .take(ladder.len())
        .collect();
    let mrc = SizedMrc::new(sizes.iter().zip(curve.points()).map(|(&s, p)| (s, p.mpki)));
    let predict_with = |f_mem: f64| -> Result<f64, ModelError> {
        ScaleModelPredictor::new(
            ScaleModelInputs::new(8, s8.sustained_ipc(), 16, s16.sustained_ipc())
                .with_sized_mrc(mrc.clone())
                .with_f_mem(f_mem),
        )?
        .predict_checked(target_sms)
    };
    Ok(FMemAblation {
        error_large_pct: percent_error(predict_with(s16.f_mem())?, real),
        error_small_pct: percent_error(predict_with(s8.f_mem())?, real),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsim_trace::suite::strong_benchmark;

    fn fast_scale() -> MemScale {
        MemScale::new(32)
    }

    #[test]
    fn full_size_llc_models_hide_the_cliff() {
        // dct's working set fits the capacity-rich (128-SM-sized) model
        // LLC but not the real 64-SM target: the violating models run
        // post-cliff, see no cliff in their flat miss-rate curve, and
        // grossly overpredict the pre-cliff target.
        let bench = strong_benchmark("dct", fast_scale()).expect("dct exists");
        let prop =
            ablate_scale_model_style(&bench, fast_scale(), 64, ScaleModelStyle::Proportional)
                .expect("runs");
        let full = ablate_scale_model_style(&bench, fast_scale(), 64, ScaleModelStyle::FullSizeLlc)
            .expect("runs");
        assert!(
            full.error_pct > prop.error_pct + 20.0,
            "full-size LLC must hurt: proportional {:.1}% vs full {:.1}%",
            prop.error_pct,
            full.error_pct
        );
        // The violating models run unrealistically fast.
        assert!(full.ipc_models.0 > prop.ipc_models.0);
    }

    #[test]
    fn full_bandwidth_models_overpredict_bandwidth_bound_workloads() {
        let bench = strong_benchmark("pf", fast_scale()).expect("pf exists");
        let prop =
            ablate_scale_model_style(&bench, fast_scale(), 64, ScaleModelStyle::Proportional)
                .expect("runs");
        let full =
            ablate_scale_model_style(&bench, fast_scale(), 64, ScaleModelStyle::FullBandwidth)
                .expect("runs");
        assert!(
            full.error_pct > prop.error_pct + 5.0,
            "full bandwidth must hurt pf: {:.1}% vs {:.1}%",
            prop.error_pct,
            full.error_pct
        );
    }

    #[test]
    fn threshold_sweep_brackets_detection() {
        let mrc = SizedMrc::new([(8, 8.0), (16, 8.0), (32, 8.0), (64, 8.0), (128, 3.2)]);
        let sweep = cliff_threshold_sweep(&mrc, &[1.5, 2.0, 3.0]);
        assert_eq!(sweep[0], (1.5, Some(128))); // 2.5x drop seen at 1.5x
        assert_eq!(sweep[1], (2.0, Some(128)));
        assert_eq!(sweep[2], (3.0, None));
    }

    #[test]
    fn f_mem_source_matters_for_cliff_benchmarks() {
        let bench = strong_benchmark("lu", fast_scale()).expect("lu exists");
        let r = ablate_f_mem_source(&bench, fast_scale(), 64).expect("runs");
        // Both are defined; the paper's choice should not be (much) worse.
        assert!(r.error_large_pct.is_finite() && r.error_small_pct.is_finite());
        assert!(r.error_large_pct < r.error_small_pct + 15.0);
    }
}
