//! Plain-text table rendering for experiment reports.
//!
//! The repro binaries print each of the paper's tables and figures as a
//! fixed-width text table built with [`TextTable`].

use std::fmt::Write as _;

/// A simple fixed-width text table: set a header, push rows, render.
///
/// # Example
///
/// ```
/// use gsim_core::report::TextTable;
///
/// let mut t = TextTable::new(vec!["bench", "error (%)"]);
/// t.row(vec!["dct".into(), "4.2".into()]);
/// let s = t.render();
/// assert!(s.contains("bench"));
/// assert!(s.contains("dct"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extra cells are kept.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns and a header separator.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut width = vec![0usize; cols];
        let all = std::iter::once(&self.header).chain(self.rows.iter());
        for row in all {
            for (i, cell) in row.iter().enumerate() {
                width[i] = width[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |row: &[String]| {
            let mut line = String::new();
            for (i, w) in width.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(line, "{cell:>w$}  ");
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * cols.saturating_sub(1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats an IPC value with one decimal.
pub fn ipc(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats a ratio (speedups, correction factors) with two decimals.
pub fn ratio(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["a", "long-header"]);
        t.row(vec!["xxxx".into(), "1".into()]);
        t.row(vec!["y".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4); // header, separator, 2 rows
        assert!(lines[1].starts_with('-'));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn tolerates_ragged_rows() {
        let mut t = TextTable::new(vec!["a"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec![]);
        let s = t.render();
        assert!(s.contains('2'));
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(12.34), "12.3");
        assert_eq!(ipc(1000.06), "1000.1");
        assert_eq!(ratio(9.333), "9.33");
    }
}
