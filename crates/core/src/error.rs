//! Error type for model construction and prediction.

use std::error::Error;
use std::fmt;

/// Why a predictor could not be built or evaluated.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// The two scale models must have distinct, positive sizes.
    InvalidScaleModels {
        /// Size of the smaller scale model.
        small: u32,
        /// Size of the larger scale model.
        large: u32,
    },
    /// IPC observations must be positive and finite.
    InvalidIpc(f64),
    /// The target size must be the largest scale model times a power of
    /// two (the paper predicts along capacity doublings).
    TargetNotDoubling {
        /// Largest scale-model size.
        large: u32,
        /// Requested target size.
        target: u32,
    },
    /// A cliff was detected but no memory-stall fraction was provided
    /// (the Eq. 3 boost needs `f_mem` of the largest scale model).
    MissingFMem,
    /// The miss-rate curve does not cover the requested target size.
    MrcDoesNotCover {
        /// Requested target size.
        target: u32,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidScaleModels { small, large } => write!(
                f,
                "scale models must have distinct positive sizes, got {small} and {large}"
            ),
            ModelError::InvalidIpc(v) => {
                write!(f, "IPC observations must be positive and finite, got {v}")
            }
            ModelError::TargetNotDoubling { large, target } => write!(
                f,
                "target size {target} is not the largest scale model ({large}) times a power of two"
            ),
            ModelError::MissingFMem => write!(
                f,
                "a miss-rate-curve cliff was detected but no memory-stall fraction was provided"
            ),
            ModelError::MrcDoesNotCover { target } => {
                write!(f, "miss-rate curve has no sample for target size {target}")
            }
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_meaningful() {
        let e = ModelError::InvalidScaleModels { small: 8, large: 8 };
        assert!(e.to_string().contains("distinct"));
        let e = ModelError::TargetNotDoubling {
            large: 16,
            target: 48,
        };
        assert!(e.to_string().contains("48"));
        assert!(ModelError::MissingFMem.to_string().contains("cliff"));
    }
}
