//! GPU scale-model simulation: the paper's prediction methodology.
//!
//! This crate implements the core contribution of *GPU Scale-Model
//! Simulation* (HPCA 2024): predicting the performance of a large target
//! GPU from the measured performance of two small, proportionally
//! scaled-down *scale models*, plus the workload's miss-rate curve —
//! without ever simulating the target.
//!
//! * [`ScaleModelPredictor`] — the per-workload model of Section V.C:
//!   the correction factor `C` of Eq. (1), pre-cliff extrapolation
//!   (Eq. 2), the memory-stall boost across a miss-rate-curve cliff
//!   (Eq. 3), and post-cliff extrapolation (Eq. 4).
//! * [`cliff`] — miss-rate-curve region analysis (pre-cliff / cliff /
//!   post-cliff) with the paper's ">2× drop per capacity doubling" rule.
//! * [`predictor`] — the four baselines the paper compares against:
//!   proportional scaling, linear regression, power-law regression and
//!   logarithmic regression, all behind the [`ScalingPredictor`] trait.
//! * [`experiment`] — the end-to-end pipeline driving the `gsim-sim`
//!   timing simulator and functional MRC collector to regenerate the
//!   paper's evaluation (Figures 4–8).
//! * [`classify`] — measured scaling-class detection (linear /
//!   sub-linear / super-linear), used to reproduce Table II's rightmost
//!   column.
//!
//! # Example
//!
//! ```
//! use gsim_core::{ScaleModelInputs, ScaleModelPredictor, ScalingPredictor};
//!
//! // Scale models: 8 SMs at IPC 120, 16 SMs at IPC 236 (C = 0.983);
//! // the miss-rate curve is flat (pre-cliff everywhere).
//! let inputs = ScaleModelInputs::new(8, 120.0, 16, 236.0)
//!     .with_mrc([(8, 10.0), (16, 10.0), (32, 10.0), (64, 10.0), (128, 10.0)])
//!     .with_f_mem(0.5);
//! let p = ScaleModelPredictor::new(inputs).unwrap();
//! let ipc_128 = p.predict(128.0);
//! assert!((ipc_128 - 236.0 * 8.0 * 0.983f64.powi(7)).abs() / ipc_128 < 0.01);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod classify;
pub mod cliff;
pub mod experiment;
pub mod multi_cliff;
pub mod oneshot;
pub mod parallel;
pub mod plan;
pub mod predictor;
pub mod report;
pub mod sampling;
mod scale_model;

mod error;

pub use classify::classify_scaling;
pub use cliff::{detect_cliff, detect_cliff_with, Region, SizedMrc};
pub use error::ModelError;
pub use multi_cliff::{detect_cliffs, MultiCliffPredictor};
pub use oneshot::{
    build_predictors, mrc_from_trace, predict_targets, Forecast, Observation, TargetForecast,
    TraceMrc,
};
pub use parallel::{SuiteRun, SweepFailure};
pub use plan::{
    collect_replay, collect_sampled, observe_scale_models, synthesize_observation, CollectEngine,
    CollectFailure, CollectStats, Collected, Fit, PlanWorkload, SampledCollectConfig,
};
pub use predictor::{
    LinearRegression, LogRegression, PowerLawRegression, Proportional, ScalingPredictor,
};
pub use scale_model::{ScaleModelInputs, ScaleModelPredictor};

/// Percent error of a prediction against a measurement:
/// `|pred − real| / real × 100`.
///
/// # Example
///
/// ```
/// assert_eq!(gsim_core::percent_error(110.0, 100.0), 10.0);
/// ```
pub fn percent_error(predicted: f64, real: f64) -> f64 {
    if real == 0.0 {
        if predicted == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        ((predicted - real) / real).abs() * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_error_basics() {
        assert_eq!(percent_error(90.0, 100.0), 10.0);
        assert_eq!(percent_error(0.0, 0.0), 0.0);
        assert!(percent_error(1.0, 0.0).is_infinite());
    }
}
