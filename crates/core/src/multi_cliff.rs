//! Multi-cliff scale-model prediction — the paper's Section V.D
//! extension.
//!
//! The paper observes a single miss-rate-curve cliff for its workloads
//! and system (one shared cache level) and leaves multiple cliffs as
//! future work, sketching the solution: "the cliffs around the L2 and L3
//! capacities will drastically reduce the respective stall components
//! which can be modeled similarly". This module implements that sketch.
//!
//! Generalisation: assume memory-stall time is proportional to the miss
//! rate. Let `f` be the current memory-stall fraction (initially
//! `f_mem` measured on the largest scale model) and let a cliff crossing
//! drop MPKI from `m_before` to `m_after`. The crossing eliminates the
//! share `w = (m_before − m_after) / m_before` of the remaining stalls,
//! so the doubling that crosses it multiplies IPC by
//!
//! ```text
//! 2 × 1 / (1 − f·w)
//! ```
//!
//! and the stall fraction carried forward becomes
//! `f' = f·(1 − w) / (1 − f·w)` (stall time scaled by `1 − w`, total
//! time by `1 − f·w`). For a single total cliff (`w = 1`) this reduces
//! exactly to Eq. (3) and `f' = 0`. Steady doublings compound the
//! correction factor as in [`ScaleModelPredictor`].
//!
//! [`ScaleModelPredictor`]: crate::ScaleModelPredictor

use crate::cliff::{SizedMrc, CLIFF_DROP_FACTOR};
use crate::error::ModelError;
use crate::predictor::ScalingPredictor;
use crate::scale_model::ScaleModelInputs;

/// Finds **all** cliffs: every index `i` where MPKI drops by more than
/// [`CLIFF_DROP_FACTOR`] from `points[i]` to `points[i+1]`.
///
/// # Example
///
/// ```
/// use gsim_core::{detect_cliffs, SizedMrc};
///
/// // Two nested working sets fitting at 32 and at 128 SMs.
/// let mrc = SizedMrc::new([(8, 9.0), (16, 8.8), (32, 4.0), (64, 3.8), (128, 0.5)]);
/// assert_eq!(detect_cliffs(&mrc), vec![1, 3]);
/// ```
pub fn detect_cliffs(mrc: &SizedMrc) -> Vec<usize> {
    mrc.points()
        .windows(2)
        .enumerate()
        .filter(|(_, w)| w[0].1 > 0.05 && w[1].1 < w[0].1 / CLIFF_DROP_FACTOR)
        .map(|(i, _)| i)
        .collect()
}

/// The multi-cliff generalisation of the scale-model predictor.
///
/// Requires a miss-rate curve (it is meaningless without one) and the
/// largest scale model's memory-stall fraction whenever any cliff lies
/// beyond the scale models.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiCliffPredictor {
    small_size: u32,
    large_size: u32,
    large_ipc: f64,
    correction: f64,
    f_mem: f64,
    mrc: SizedMrc,
    /// First size past each detected cliff, with the stall share `w`
    /// eliminated there.
    cliffs: Vec<(u32, f64)>,
}

impl MultiCliffPredictor {
    /// Builds the predictor from the same inputs as the single-cliff
    /// model. The miss-rate curve is mandatory here.
    ///
    /// # Errors
    ///
    /// Returns an error on inconsistent observations, a missing
    /// miss-rate curve, or a missing `f_mem` when cliffs exist beyond
    /// the scale models.
    pub fn new(inputs: &ScaleModelInputs) -> Result<Self, ModelError> {
        let (s, l) = (inputs.small_size(), inputs.large_size());
        if s == 0 || l == 0 || s >= l {
            return Err(ModelError::InvalidScaleModels { small: s, large: l });
        }
        for v in [inputs.small_ipc(), inputs.large_ipc()] {
            if !(v.is_finite() && v > 0.0) {
                return Err(ModelError::InvalidIpc(v));
            }
        }
        let mrc = inputs
            .mrc()
            .cloned()
            .ok_or(ModelError::MrcDoesNotCover { target: l })?;
        let cliffs: Vec<(u32, f64)> = detect_cliffs(&mrc)
            .into_iter()
            .map(|i| {
                let (_, before) = mrc.points()[i];
                let (hi, after) = mrc.points()[i + 1];
                (hi, ((before - after) / before).clamp(0.0, 1.0))
            })
            .collect();
        if cliffs.iter().any(|&(hi, _)| hi > l) && inputs.f_mem().is_none() {
            return Err(ModelError::MissingFMem);
        }
        let correction = (inputs.large_ipc() / inputs.small_ipc()) / (f64::from(l) / f64::from(s));
        Ok(Self {
            small_size: s,
            large_size: l,
            large_ipc: inputs.large_ipc(),
            correction,
            f_mem: inputs.f_mem().unwrap_or(0.0).clamp(0.0, 0.99),
            mrc,
            cliffs,
        })
    }

    /// The sizes just past each detected cliff.
    pub fn cliff_sizes(&self) -> Vec<u32> {
        self.cliffs.iter().map(|&(hi, _)| hi).collect()
    }

    /// The correction factor `C` of Eq. (1).
    pub fn correction_factor(&self) -> f64 {
        self.correction
    }

    /// Predicts IPC at `target`, which must be the largest scale model
    /// times a power of two and covered by the miss-rate curve.
    ///
    /// # Errors
    ///
    /// See [`ModelError`].
    pub fn predict_checked(&self, target: u32) -> Result<f64, ModelError> {
        let l = self.large_size;
        let mut size = l;
        let mut steps = 0u32;
        while size < target {
            size *= 2;
            steps += 1;
        }
        if size != target {
            return Err(ModelError::TargetNotDoubling { large: l, target });
        }
        if steps > 0 {
            self.mrc.ensure_covers(target)?;
        }
        let mut ipc = self.large_ipc;
        let mut size = l;
        let mut f = self.f_mem;
        let mut since_anchor = 0u32;
        for _ in 0..steps {
            let next = size * 2;
            if let Some(&(_, w)) = self.cliffs.iter().find(|&&(hi, _)| hi == next) {
                // Partial Eq. (3): eliminate the share `w` of the
                // remaining stalls and re-anchor the correction.
                let boost = 1.0 / (1.0 - f * w);
                ipc *= 2.0 * boost;
                f = (f * (1.0 - w)) * boost;
                since_anchor = 0;
            } else {
                since_anchor += 1;
                ipc *= 2.0 * self.correction.powi(1 << (since_anchor - 1));
            }
            size = next;
        }
        Ok(ipc)
    }
}

impl ScalingPredictor for MultiCliffPredictor {
    fn name(&self) -> &'static str {
        "multi-cliff"
    }

    /// # Panics
    ///
    /// Panics on invalid targets; use
    /// [`MultiCliffPredictor::predict_checked`] for a fallible variant.
    fn predict(&self, size: f64) -> f64 {
        self.predict_checked(size.round() as u32)
            .unwrap_or_else(|e| panic!("multi-cliff prediction failed: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(mrc: Vec<(u32, f64)>, f_mem: f64) -> ScaleModelInputs {
        ScaleModelInputs::new(8, 100.0, 16, 196.0)
            .with_mrc(mrc)
            .with_f_mem(f_mem)
    }

    #[test]
    fn single_total_cliff_reduces_to_eq_3() {
        // MPKI drops to ~0: w ≈ 1, so the boost matches the single-cliff
        // model's 1/(1-f).
        let mrc = vec![(8, 8.0), (16, 8.0), (32, 8.0), (64, 8.0), (128, 0.0)];
        let p = MultiCliffPredictor::new(&inputs(mrc, 0.5)).unwrap();
        let c = p.correction_factor();
        let expected = 196.0 * (2.0 * c) * (2.0 * c * c) * (2.0 / 0.5);
        assert!((p.predict(128.0) - expected).abs() < 1e-9);
    }

    #[test]
    fn two_cliffs_apply_two_partial_boosts() {
        // First cliff removes half the misses, second the rest.
        let mrc = vec![(8, 8.0), (16, 8.0), (32, 8.0), (64, 3.2), (128, 0.0)];
        let p = MultiCliffPredictor::new(&inputs(mrc, 0.6)).unwrap();
        assert_eq!(p.cliff_sizes(), vec![64, 128]);
        let c = p.correction_factor();
        // Cliff 1: w = (8-3.2)/8 = 0.6; boost = 1/(1-0.36); f' = 0.24/0.64.
        let b1 = 1.0 / (1.0 - 0.6 * 0.6);
        let f1 = 0.6 * 0.4 * b1;
        // Cliff 2: w = 1; boost = 1/(1-f1).
        let b2 = 1.0 / (1.0 - f1);
        let expected = 196.0 * (2.0 * c) * (2.0 * b1) * (2.0 * b2);
        assert!((p.predict(128.0) - expected).abs() < 1e-9);
    }

    #[test]
    fn partial_cliff_boost_is_smaller_than_total() {
        let partial = vec![(8, 8.0), (16, 8.0), (32, 8.0), (64, 8.0), (128, 3.0)];
        let total = vec![(8, 8.0), (16, 8.0), (32, 8.0), (64, 8.0), (128, 0.0)];
        let pp = MultiCliffPredictor::new(&inputs(partial, 0.5)).unwrap();
        let pt = MultiCliffPredictor::new(&inputs(total, 0.5)).unwrap();
        assert!(pp.predict(128.0) < pt.predict(128.0));
        assert!(pp.predict(128.0) > 196.0 * 8.0 * 0.98f64.powi(7) - 1e-9);
    }

    #[test]
    fn no_cliffs_behaves_like_pre_cliff_compounding() {
        let mrc = vec![(8, 8.0), (16, 7.9), (32, 7.8), (64, 7.7), (128, 7.6)];
        let p = MultiCliffPredictor::new(&inputs(mrc, 0.5)).unwrap();
        assert!(p.cliff_sizes().is_empty());
        let c = p.correction_factor();
        let expected = 196.0 * 8.0 * c.powi(7);
        assert!((p.predict(128.0) - expected).abs() < 1e-9);
    }

    #[test]
    fn requires_a_miss_rate_curve() {
        let inputs = ScaleModelInputs::new(8, 100.0, 16, 196.0).with_f_mem(0.5);
        assert!(MultiCliffPredictor::new(&inputs).is_err());
    }

    #[test]
    fn requires_f_mem_when_cliffs_lie_ahead() {
        let inputs = ScaleModelInputs::new(8, 100.0, 16, 196.0).with_mrc(vec![
            (8, 8.0),
            (16, 8.0),
            (32, 0.5),
        ]);
        assert_eq!(
            MultiCliffPredictor::new(&inputs).unwrap_err(),
            ModelError::MissingFMem
        );
    }

    #[test]
    fn detect_cliffs_finds_every_drop() {
        let mrc = SizedMrc::new([(8, 16.0), (16, 6.0), (32, 5.0), (64, 2.0), (128, 1.9)]);
        assert_eq!(detect_cliffs(&mrc), vec![0, 2]);
        let flat = SizedMrc::new([(8, 5.0), (16, 4.0)]);
        assert!(detect_cliffs(&flat).is_empty());
    }
}
