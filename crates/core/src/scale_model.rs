//! The GPU scale-model predictor (Section V.C, Equations 1–4).

use crate::cliff::{detect_cliff, SizedMrc};
use crate::error::ModelError;
use crate::predictor::ScalingPredictor;

/// Everything the scale-model predictor consumes (the paper's Figure 3
/// workflow): the two scale-model performance observations, the miss-rate
/// curve (strong scaling only), and — if a cliff must be crossed — the
/// memory-stall fraction of the largest scale model.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleModelInputs {
    small_size: u32,
    small_ipc: f64,
    large_size: u32,
    large_ipc: f64,
    mrc: Option<SizedMrc>,
    f_mem_large: Option<f64>,
}

impl ScaleModelInputs {
    /// Observations of the two scale models: sizes (SMs or chiplets) and
    /// measured IPC.
    pub fn new(small_size: u32, small_ipc: f64, large_size: u32, large_ipc: f64) -> Self {
        Self {
            small_size,
            small_ipc,
            large_size,
            large_ipc,
            mrc: None,
            f_mem_large: None,
        }
    }

    /// Attaches the miss-rate curve, indexed by system size (required for
    /// strong scaling; omit under weak scaling, where there is no cliff).
    pub fn with_mrc<I: IntoIterator<Item = (u32, f64)>>(mut self, points: I) -> Self {
        self.mrc = Some(SizedMrc::new(points));
        self
    }

    /// Attaches a pre-built [`SizedMrc`].
    pub fn with_sized_mrc(mut self, mrc: SizedMrc) -> Self {
        self.mrc = Some(mrc);
        self
    }

    /// Attaches the fraction of cycles the largest scale model's SMs
    /// could not issue because all warps waited on memory — `f_mem` of
    /// Eq. (3). Only consulted when a cliff must be crossed.
    pub fn with_f_mem(mut self, f_mem: f64) -> Self {
        self.f_mem_large = Some(f_mem);
        self
    }

    /// Size of the smaller scale model.
    pub fn small_size(&self) -> u32 {
        self.small_size
    }

    /// Size of the larger scale model.
    pub fn large_size(&self) -> u32 {
        self.large_size
    }

    /// Measured IPC of the smaller scale model.
    pub fn small_ipc(&self) -> f64 {
        self.small_ipc
    }

    /// Measured IPC of the larger scale model.
    pub fn large_ipc(&self) -> f64 {
        self.large_ipc
    }

    /// The attached miss-rate curve, if any.
    pub fn mrc(&self) -> Option<&SizedMrc> {
        self.mrc.as_ref()
    }

    /// The attached memory-stall fraction, if any.
    pub fn f_mem(&self) -> Option<f64> {
        self.f_mem_large
    }
}

/// The paper's per-workload scale-model predictor.
///
/// Prediction walks from the largest scale model `L` to the target `T` in
/// capacity doublings:
///
/// * in the **pre-cliff** and **post-cliff** regions (Eqs. 2 and 4) the
///   correction factor `C` of Eq. (1) — measured *per unit of relative
///   scale* between the two scale models — compounds with the relative
///   scale: `IPC(T) = IPC(anchor) × T/A × C^(T/A − 1)` where `A` is the
///   anchor (the largest scale model, or the first post-cliff size for
///   Eq. 4). For one doubling this is exactly `2 × C`, the relation the
///   scale models themselves exhibit; for larger targets the deviation
///   from ideal scaling keeps compounding, which is what lets the model
///   track the steadily *worsening* sub-linear trends (bfs-style
///   workload-architecture imbalance) that a fixed per-doubling ratio —
///   i.e. power-law regression — fundamentally cannot (Section VII.B.2);
/// * the doubling that **crosses the cliff** instead multiplies IPC by
///   `2 × 1/(1 − f_mem)` — the stall time that the newly fitting working
///   set eliminates (Eq. 3) — and re-anchors the correction.
///
/// Without a miss-rate curve (weak scaling) every step is pre-cliff,
/// which is Eq. (2).
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleModelPredictor {
    inputs: ScaleModelInputs,
    correction: f64,
    cliff_hi_size: Option<u32>,
}

impl ScaleModelPredictor {
    /// Builds the predictor, computing the correction factor `C` of
    /// Eq. (1) and locating the cliff (if any) on the miss-rate curve.
    ///
    /// # Errors
    ///
    /// Returns an error if the observations are inconsistent, or a cliff
    /// exists beyond the scale models but no `f_mem` was provided.
    pub fn new(inputs: ScaleModelInputs) -> Result<Self, ModelError> {
        let (s, l) = (inputs.small_size, inputs.large_size);
        if s == 0 || l == 0 || s >= l {
            return Err(ModelError::InvalidScaleModels { small: s, large: l });
        }
        for v in [inputs.small_ipc, inputs.large_ipc] {
            if !(v.is_finite() && v > 0.0) {
                return Err(ModelError::InvalidIpc(v));
            }
        }
        // Eq. (1): C = (IPC_L / IPC_S) / (L / S).
        let correction = (inputs.large_ipc / inputs.small_ipc) / (f64::from(l) / f64::from(s));
        let cliff_hi_size = match &inputs.mrc {
            Some(mrc) => detect_cliff(mrc).map(|i| mrc.points()[i + 1].0),
            None => None,
        };
        if let Some(hi) = cliff_hi_size {
            if hi > inputs.large_size && inputs.f_mem_large.is_none() {
                return Err(ModelError::MissingFMem);
            }
        }
        Ok(Self {
            inputs,
            correction,
            cliff_hi_size,
        })
    }

    /// The correction factor `C` of Eq. (1): >1 means the scale models
    /// already scale super-linearly, <1 sub-linearly.
    pub fn correction_factor(&self) -> f64 {
        self.correction
    }

    /// The first system size past the detected cliff, if any.
    pub fn cliff_at(&self) -> Option<u32> {
        self.cliff_hi_size
    }

    /// Predicts IPC at integer size `target`, validating that it is the
    /// largest scale model times a power of two and that the miss-rate
    /// curve covers it.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::TargetNotDoubling`] or
    /// [`ModelError::MrcDoesNotCover`] accordingly.
    pub fn predict_checked(&self, target: u32) -> Result<f64, ModelError> {
        let l = self.inputs.large_size;
        let mut steps = 0u32;
        let mut size = l;
        while size < target {
            size *= 2;
            steps += 1;
        }
        if size != target {
            return Err(ModelError::TargetNotDoubling { large: l, target });
        }
        if let Some(mrc) = &self.inputs.mrc {
            if steps > 0 {
                mrc.ensure_covers(target)?;
            }
        }
        let mut ipc = self.inputs.large_ipc;
        let mut size = l;
        // Doublings since the current anchor: the j-th doubling after an
        // anchor contributes 2 × C^(2^(j-1)), so k doublings accumulate
        // (T/A) × C^(T/A - 1).
        let mut since_anchor = 0u32;
        for _ in 0..steps {
            let next = size * 2;
            let crosses_cliff = self.cliff_hi_size == Some(next);
            ipc *= if crosses_cliff {
                // Eq. (3): the memory-stall fraction measured on the
                // largest scale model is eliminated past the cliff; the
                // post-cliff region re-anchors here (Eq. 4).
                since_anchor = 0;
                let f_mem = self
                    .inputs
                    .f_mem_large
                    .expect("checked at construction")
                    .clamp(0.0, 0.99);
                2.0 / (1.0 - f_mem)
            } else {
                // Eqs. (2)/(4): steady regions compound the per-unit-scale
                // correction.
                since_anchor += 1;
                2.0 * self.correction.powi(1 << (since_anchor - 1))
            };
            size = next;
        }
        Ok(ipc)
    }
}

impl ScalingPredictor for ScaleModelPredictor {
    fn name(&self) -> &'static str {
        "scale-model"
    }

    /// Predicts IPC at `size`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not the largest scale model times a power of
    /// two, or the miss-rate curve does not cover it — use
    /// [`ScaleModelPredictor::predict_checked`] for a fallible variant.
    fn predict(&self, size: f64) -> f64 {
        let target = size.round() as u32;
        self.predict_checked(target)
            .unwrap_or_else(|e| panic!("scale-model prediction failed: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_mrc() -> Vec<(u32, f64)> {
        vec![(8, 10.0), (16, 10.0), (32, 10.0), (64, 9.8), (128, 9.5)]
    }

    #[test]
    fn correction_factor_matches_eq_1() {
        // IPC 100 -> 190 over a 2x scale difference: C = 0.95.
        let p = ScaleModelPredictor::new(
            ScaleModelInputs::new(8, 100.0, 16, 190.0).with_mrc(flat_mrc()),
        )
        .unwrap();
        assert!((p.correction_factor() - 0.95).abs() < 1e-12);
        assert_eq!(p.cliff_at(), None);
    }

    #[test]
    fn pre_cliff_prediction_is_eq_2() {
        let p = ScaleModelPredictor::new(
            ScaleModelInputs::new(8, 100.0, 16, 190.0).with_mrc(flat_mrc()),
        )
        .unwrap();
        // Eq. (2): IPC_T = IPC_L * (T/L) * C^(T/L - 1).
        let expected = 190.0 * 8.0 * 0.95f64.powi(7);
        assert!((p.predict(128.0) - expected).abs() < 1e-9);
        // Identity: predicting the largest scale model returns it.
        assert_eq!(p.predict(16.0), 190.0);
    }

    #[test]
    fn weak_scaling_needs_no_mrc() {
        let p = ScaleModelPredictor::new(ScaleModelInputs::new(8, 100.0, 16, 196.0)).unwrap();
        let expected = 196.0 * 8.0 * 0.98f64.powi(7);
        assert!((p.predict(128.0) - expected).abs() < 1e-9);
    }

    #[test]
    fn cliff_crossing_applies_eq_3() {
        let mrc = vec![(8, 8.0), (16, 8.0), (32, 8.0), (64, 8.0), (128, 0.4)];
        let p = ScaleModelPredictor::new(
            ScaleModelInputs::new(8, 100.0, 16, 190.0)
                .with_mrc(mrc)
                .with_f_mem(0.5),
        )
        .unwrap();
        assert_eq!(p.cliff_at(), Some(128));
        // Two pre-cliff doublings (compounding correction) then the cliff.
        let expected = 190.0 * (2.0 * 0.95) * (2.0 * 0.95f64.powi(2)) * (2.0 / 0.5);
        assert!((p.predict(128.0) - expected).abs() < 1e-9);
        // Pre-cliff targets are unaffected by the later cliff.
        let expected_64 = 190.0 * (2.0 * 0.95) * (2.0 * 0.95f64.powi(2));
        assert!((p.predict(64.0) - expected_64).abs() < 1e-9);
    }

    #[test]
    fn post_cliff_prediction_is_eq_4() {
        // Cliff between 32 and 64; 128 is post-cliff.
        let mrc = vec![(8, 8.0), (16, 8.0), (32, 8.0), (64, 0.4), (128, 0.4)];
        let p = ScaleModelPredictor::new(
            ScaleModelInputs::new(8, 100.0, 16, 190.0)
                .with_mrc(mrc)
                .with_f_mem(0.5),
        )
        .unwrap();
        let ipc_64 = 190.0 * (2.0 * 0.95) * (2.0 / 0.5); // cliff at 64
        let expected_128 = ipc_64 * 2.0 * 0.95; // Eq. (4): re-anchored at K=64
        assert!((p.predict(128.0) - expected_128).abs() < 1e-9);
    }

    #[test]
    fn cliff_beyond_models_requires_f_mem() {
        let mrc = vec![(8, 8.0), (16, 8.0), (32, 8.0), (64, 8.0), (128, 0.4)];
        let err =
            ScaleModelPredictor::new(ScaleModelInputs::new(8, 100.0, 16, 190.0).with_mrc(mrc))
                .unwrap_err();
        assert_eq!(err, ModelError::MissingFMem);
    }

    #[test]
    fn invalid_targets_are_reported() {
        let p = ScaleModelPredictor::new(
            ScaleModelInputs::new(8, 100.0, 16, 190.0).with_mrc(flat_mrc()),
        )
        .unwrap();
        assert!(matches!(
            p.predict_checked(48),
            Err(ModelError::TargetNotDoubling { .. })
        ));
        assert!(matches!(
            p.predict_checked(256),
            Err(ModelError::MrcDoesNotCover { target: 256 })
        ));
    }

    #[test]
    fn super_linear_models_carry_their_momentum() {
        // C > 1: the scale models already scale super-linearly.
        let p = ScaleModelPredictor::new(ScaleModelInputs::new(8, 100.0, 16, 220.0)).unwrap();
        assert!(p.correction_factor() > 1.0);
        assert!(p.predict(32.0) > 440.0);
    }

    #[test]
    fn rejects_bad_observations() {
        assert!(ScaleModelPredictor::new(ScaleModelInputs::new(16, 1.0, 8, 1.0)).is_err());
        assert!(ScaleModelPredictor::new(ScaleModelInputs::new(8, 0.0, 16, 1.0)).is_err());
    }
}
