//! End-to-end experiment pipelines reproducing the paper's evaluation.
//!
//! Each pipeline follows the Figure 3 workflow: simulate the scale models
//! with the detailed timing simulator, collect the miss-rate curve with
//! the (much faster) functional collector, build the per-workload
//! predictors, and compare their target-system predictions against
//! ground-truth simulations of the targets:
//!
//! * [`StrongScalingExperiment`] — Figures 1, 2, 4, 5 and Table II.
//! * [`WeakScalingExperiment`] — Figures 6 and 7.
//! * [`McmExperiment`] — Figure 8 (multi-chiplet GPUs, Table V).

use gsim_sim::{ChipletConfig, GpuConfig, Simulator};
use gsim_trace::suite::{ScalingClass, StrongBenchmark};
use gsim_trace::weak::WeakBenchmark;
use gsim_trace::MemScale;

use crate::classify::classify_scaling;
use crate::cliff::SizedMrc;
use crate::error::ModelError;
use crate::oneshot::{build_predictors, NamedPredictor, Observation};
use crate::percent_error;

/// One simulated system point.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredPoint {
    /// System size (SMs, or chiplets for MCM).
    pub size: u32,
    /// Measured IPC (thread instructions per cycle).
    pub ipc: f64,
    /// Measured LLC MPKI.
    pub mpki: f64,
    /// Memory-stall fraction (Eq. 3's `f_mem`).
    pub f_mem: f64,
    /// Idle (no-CTA) fraction.
    pub f_idle: f64,
    /// Simulated cycles.
    pub cycles: u64,
    /// Wall-clock seconds the simulation took.
    pub sim_seconds: f64,
}

/// One prediction for one target size by one method.
#[derive(Debug, Clone, PartialEq)]
pub struct TargetPrediction {
    /// Target system size.
    pub target: u32,
    /// Predicted IPC.
    pub predicted: f64,
    /// Ground-truth IPC from simulating the target.
    pub real: f64,
    /// `|predicted − real| / real × 100`.
    pub error_pct: f64,
}

/// All predictions of one method for one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodOutcome {
    /// Method name ("scale-model", "proportional", …).
    pub method: &'static str,
    /// One entry per target size.
    pub by_target: Vec<TargetPrediction>,
}

impl MethodOutcome {
    /// The prediction for `target`, if present.
    pub fn at(&self, target: u32) -> Option<&TargetPrediction> {
        self.by_target.iter().find(|p| p.target == target)
    }
}

/// Everything measured and predicted for one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkOutcome {
    /// Benchmark abbreviation.
    pub abbr: String,
    /// The paper's expected scaling class.
    pub expected: ScalingClass,
    /// Class measured from the simulated IPC curve.
    pub measured_class: ScalingClass,
    /// Simulated points, smallest size first.
    pub measured: Vec<MeasuredPoint>,
    /// Functional miss-rate curve by system size (empty for weak/MCM).
    pub mrc: Option<SizedMrc>,
    /// First size past the detected cliff, if any.
    pub cliff_at: Option<u32>,
    /// Predictions of all five methods.
    pub methods: Vec<MethodOutcome>,
}

impl BenchmarkOutcome {
    /// The measured point at `size`, if simulated.
    pub fn measured_at(&self, size: u32) -> Option<&MeasuredPoint> {
        self.measured.iter().find(|m| m.size == size)
    }

    /// The outcome of `method`, if present.
    pub fn method(&self, method: &str) -> Option<&MethodOutcome> {
        self.methods.iter().find(|m| m.method == method)
    }
}

/// The names of the five methods, in the paper's Figure 4 order.
pub const METHODS: [&str; 5] = [
    "logarithmic",
    "proportional",
    "linear",
    "power-law",
    "scale-model",
];

fn measure(stats: &gsim_sim::SimStats, size: u32) -> MeasuredPoint {
    MeasuredPoint {
        size,
        ipc: stats.sustained_ipc(),
        mpki: stats.mpki(),
        f_mem: stats.f_mem(),
        f_idle: stats.f_idle(),
        cycles: stats.cycles,
        sim_seconds: stats.sim_wall_seconds,
    }
}

/// Builds the five predictors through the shared roster in
/// [`oneshot`](crate::oneshot), so the experiment pipelines and the
/// one-shot service entry point can never disagree on the method set.
fn build_methods(
    s: u32,
    ipc_s: f64,
    l: u32,
    ipc_l: f64,
    mrc: Option<&SizedMrc>,
    f_mem_l: f64,
) -> Result<Vec<NamedPredictor>, ModelError> {
    build_predictors(
        Observation {
            size: s,
            ipc: ipc_s,
            f_mem: 0.0,
        },
        Observation {
            size: l,
            ipc: ipc_l,
            f_mem: f_mem_l,
        },
        mrc,
    )
}

fn predict_all(methods: Vec<NamedPredictor>, targets: &[(u32, f64)]) -> Vec<MethodOutcome> {
    methods
        .into_iter()
        .map(|(name, model)| MethodOutcome {
            method: name,
            by_target: targets
                .iter()
                .map(|&(t, real)| {
                    let predicted = model.predict(f64::from(t));
                    TargetPrediction {
                        target: t,
                        predicted,
                        real,
                        error_pct: percent_error(predicted, real),
                    }
                })
                .collect(),
        })
        .collect()
}

/// The strong-scaling pipeline (Sections VII.A/VII.B): fixed workload,
/// scale models of 8 and 16 SMs, targets of 32/64/128 SMs.
#[derive(Debug, Clone)]
pub struct StrongScalingExperiment {
    scale: MemScale,
    sizes: Vec<u32>,
    model_sizes: (u32, u32),
    sim_threads: u32,
    sync_slack: u32,
}

impl StrongScalingExperiment {
    /// The paper's setup: sizes 8–128, scale models 8 and 16.
    pub fn new(scale: MemScale) -> Self {
        Self {
            scale,
            sizes: vec![8, 16, 32, 64, 128],
            model_sizes: (8, 16),
            sim_threads: 1,
            sync_slack: 0,
        }
    }

    /// Shards each simulation's per-SM phase over `sim_threads` threads
    /// (`GpuConfig::sim_threads`); results are bit-identical either way.
    /// Composes with sweep-level parallelism: a sweep of small configs
    /// keeps one simulation per core, a single big run fans out inside.
    #[must_use]
    pub fn with_sim_threads(mut self, sim_threads: u32) -> Self {
        self.sim_threads = sim_threads.max(1);
        self
    }

    /// Bounded-slack relaxed synchronisation (`GpuConfig::sync_slack`):
    /// 0 (the default) is bit-exact; `s > 0` trades a documented accuracy
    /// envelope for fewer merge barriers (DESIGN.md §15).
    #[must_use]
    pub fn with_sync_slack(mut self, sync_slack: u32) -> Self {
        self.sync_slack = sync_slack;
        self
    }

    /// Uses different scale-model sizes (the artifact appendix evaluates
    /// 16 + 32 predicting 64/128).
    ///
    /// # Panics
    ///
    /// Panics if the sizes are not both in the simulated ladder.
    pub fn with_scale_models(mut self, small: u32, large: u32) -> Self {
        assert!(
            self.sizes.contains(&small) && self.sizes.contains(&large) && small < large,
            "scale models must be simulated sizes with small < large"
        );
        self.model_sizes = (small, large);
        self
    }

    /// The simulated size ladder.
    pub fn sizes(&self) -> &[u32] {
        &self.sizes
    }

    /// Runs the full pipeline for one benchmark.
    ///
    /// # Errors
    ///
    /// Returns an error if a predictor cannot be built (degenerate
    /// observations).
    pub fn run_benchmark(&self, bench: &StrongBenchmark) -> Result<BenchmarkOutcome, ModelError> {
        let configs: Vec<GpuConfig> = self
            .sizes
            .iter()
            .map(|&s| {
                let mut cfg = GpuConfig::paper_target(s, self.scale);
                cfg.sim_threads = self.sim_threads;
                cfg.sync_slack = self.sync_slack;
                cfg
            })
            .collect();
        // Detailed simulation of every size (targets are the ground truth;
        // scale models are the predictor inputs).
        let measured: Vec<MeasuredPoint> = configs
            .iter()
            .map(|cfg| {
                measure(
                    &Simulator::new(cfg.clone(), &bench.workload).run(),
                    cfg.n_sms,
                )
            })
            .collect();
        // Stage 1: functional miss-rate curve over the same capacities,
        // via the shared staged-plan collector.
        let mrc = crate::plan::collect_replay(&bench.workload, &configs).sized_mrc();
        let (s, l) = self.model_sizes;
        let obs = |size: u32| {
            measured
                .iter()
                .find(|m| m.size == size)
                .expect("scale model size is simulated")
        };
        let (ipc_s, ipc_l, f_mem_l) = (obs(s).ipc, obs(l).ipc, obs(l).f_mem);
        // Stage 2: the shared fit (also the source of cliff detection).
        let fit = crate::plan::Fit::new(
            Observation {
                size: s,
                ipc: ipc_s,
                f_mem: 0.0,
            },
            Observation {
                size: l,
                ipc: ipc_l,
                f_mem: f_mem_l,
            },
            Some(&mrc),
        )?;
        let cliff_at = fit.scale_model().cliff_at();
        let methods = fit.predictors();
        let targets: Vec<(u32, f64)> = measured
            .iter()
            .filter(|m| m.size > l)
            .map(|m| (m.size, m.ipc))
            .collect();
        let points: Vec<(u32, f64)> = measured.iter().map(|m| (m.size, m.ipc)).collect();
        Ok(BenchmarkOutcome {
            abbr: bench.abbr.to_string(),
            expected: bench.expected,
            measured_class: classify_scaling(&points),
            measured,
            mrc: Some(mrc),
            cliff_at,
            methods: predict_all(methods, &targets),
        })
    }

    /// Runs the pipeline for every benchmark in `suite`.
    ///
    /// # Errors
    ///
    /// Propagates the first benchmark failure.
    pub fn run_suite(
        &self,
        suite: &[StrongBenchmark],
    ) -> Result<Vec<BenchmarkOutcome>, ModelError> {
        suite.iter().map(|b| self.run_benchmark(b)).collect()
    }
}

/// Weak-scaling outcome: includes the simulation-time speedups of
/// Figure 7.
#[derive(Debug, Clone, PartialEq)]
pub struct WeakOutcome {
    /// The per-benchmark predictions and measurements.
    pub outcome: BenchmarkOutcome,
    /// `(target size, speedup)`: time to simulate the target input on the
    /// target system divided by the time to simulate both scale models.
    pub speedups: Vec<(u32, f64)>,
}

/// The weak-scaling pipeline (Section VII.C): the workload input grows
/// with the system; no miss-rate curve is needed (no cliff exists).
#[derive(Debug, Clone)]
pub struct WeakScalingExperiment {
    scale: MemScale,
    sim_threads: u32,
    sync_slack: u32,
}

impl WeakScalingExperiment {
    /// The paper's setup (8/16-SM scale models, 32/64/128-SM targets).
    pub fn new(scale: MemScale) -> Self {
        Self {
            scale,
            sim_threads: 1,
            sync_slack: 0,
        }
    }

    /// Shards each simulation's per-SM phase over `sim_threads` threads
    /// (`GpuConfig::sim_threads`); results are bit-identical either way.
    #[must_use]
    pub fn with_sim_threads(mut self, sim_threads: u32) -> Self {
        self.sim_threads = sim_threads.max(1);
        self
    }

    /// Bounded-slack relaxed synchronisation (`GpuConfig::sync_slack`);
    /// see [`StrongScalingExperiment::with_sync_slack`].
    #[must_use]
    pub fn with_sync_slack(mut self, sync_slack: u32) -> Self {
        self.sync_slack = sync_slack;
        self
    }

    /// Runs the pipeline for one weak-scalable benchmark.
    ///
    /// # Errors
    ///
    /// Returns an error if a predictor cannot be built.
    pub fn run_benchmark(&self, bench: &WeakBenchmark) -> Result<WeakOutcome, ModelError> {
        let sizes = gsim_trace::weak::WEAK_SM_SIZES;
        let measured: Vec<MeasuredPoint> = sizes
            .iter()
            .map(|&s| {
                let wl = bench.workload_for_sms(s);
                let mut cfg = GpuConfig::paper_target(s, self.scale);
                cfg.sim_threads = self.sim_threads;
                cfg.sync_slack = self.sync_slack;
                measure(&Simulator::new(cfg, &wl).run(), s)
            })
            .collect();
        let (s, l) = (8, 16);
        let (ipc_s, ipc_l, f_mem_l) = (measured[0].ipc, measured[1].ipc, measured[1].f_mem);
        let methods = build_methods(s, ipc_s, l, ipc_l, None, f_mem_l)?;
        let targets: Vec<(u32, f64)> = measured
            .iter()
            .filter(|m| m.size > l)
            .map(|m| (m.size, m.ipc))
            .collect();
        let model_cost = measured[0].sim_seconds + measured[1].sim_seconds;
        let speedups = measured
            .iter()
            .filter(|m| m.size > l)
            .map(|m| (m.size, m.sim_seconds / model_cost.max(1e-9)))
            .collect();
        let points: Vec<(u32, f64)> = measured.iter().map(|m| (m.size, m.ipc)).collect();
        Ok(WeakOutcome {
            outcome: BenchmarkOutcome {
                abbr: bench.abbr.to_string(),
                expected: bench.expected,
                measured_class: classify_scaling(&points),
                measured,
                mrc: None,
                cliff_at: None,
                methods: predict_all(methods, &targets),
            },
            speedups,
        })
    }
}

/// The multi-chiplet pipeline (Section VII.D): 4- and 8-chiplet scale
/// models predicting the 16-chiplet target, weak-scaling workloads.
#[derive(Debug, Clone)]
pub struct McmExperiment {
    scale: MemScale,
    chiplet_counts: [u32; 3],
    sim_threads: u32,
    sync_slack: u32,
}

impl McmExperiment {
    /// The paper's setup: 4 and 8 chiplets predicting 16.
    pub fn new(scale: MemScale) -> Self {
        Self {
            scale,
            chiplet_counts: [4, 8, 16],
            sim_threads: 1,
            sync_slack: 0,
        }
    }

    /// Shards each simulation's per-SM phase over `sim_threads` threads
    /// (`GpuConfig::sim_threads`); results are bit-identical either way.
    #[must_use]
    pub fn with_sim_threads(mut self, sim_threads: u32) -> Self {
        self.sim_threads = sim_threads.max(1);
        self
    }

    /// Bounded-slack relaxed synchronisation (`GpuConfig::sync_slack`);
    /// see [`StrongScalingExperiment::with_sync_slack`].
    #[must_use]
    pub fn with_sync_slack(mut self, sync_slack: u32) -> Self {
        self.sync_slack = sync_slack;
        self
    }

    /// Runs the pipeline for one benchmark; returns `None` if the
    /// benchmark is excluded from the MCM study (btree).
    ///
    /// # Errors
    ///
    /// Returns an error if a predictor cannot be built.
    pub fn run_benchmark(&self, bench: &WeakBenchmark) -> Result<Option<WeakOutcome>, ModelError> {
        if bench.mcm_rows().is_none() {
            return Ok(None);
        }
        let measured: Vec<MeasuredPoint> = self
            .chiplet_counts
            .iter()
            .map(|&c| {
                let wl = bench.workload_for_chiplets(c);
                let mut mcm = ChipletConfig::paper_mcm(c, self.scale);
                mcm.chiplet.sim_threads = self.sim_threads;
                mcm.chiplet.sync_slack = self.sync_slack;
                measure(&Simulator::new_mcm(&mcm, &wl).run(), c)
            })
            .collect();
        let (s, l) = (self.chiplet_counts[0], self.chiplet_counts[1]);
        let (ipc_s, ipc_l, f_mem_l) = (measured[0].ipc, measured[1].ipc, measured[1].f_mem);
        let methods = build_methods(s, ipc_s, l, ipc_l, None, f_mem_l)?;
        let target = self.chiplet_counts[2];
        let real = measured[2].ipc;
        let model_cost = measured[0].sim_seconds + measured[1].sim_seconds;
        let speedups = vec![(target, measured[2].sim_seconds / model_cost.max(1e-9))];
        let points: Vec<(u32, f64)> = measured.iter().map(|m| (m.size, m.ipc)).collect();
        Ok(Some(WeakOutcome {
            outcome: BenchmarkOutcome {
                abbr: bench.abbr.to_string(),
                expected: bench.expected,
                measured_class: classify_scaling(&points),
                measured,
                mrc: None,
                cliff_at: None,
                methods: predict_all(methods, &[(target, real)]),
            },
            speedups,
        }))
    }
}

/// Re-derives all predictions of a strong-scaling outcome using different
/// scale-model sizes, without re-simulating anything — the measured points
/// and the miss-rate curve already contain every input. This is how the
/// artifact appendix evaluates 16+32-SM scale models predicting 64/128.
///
/// # Errors
///
/// Returns an error if `small`/`large` were not simulated or a predictor
/// cannot be built.
pub fn reanalyze(
    outcome: &BenchmarkOutcome,
    small: u32,
    large: u32,
) -> Result<BenchmarkOutcome, ModelError> {
    let obs = |size: u32| {
        outcome
            .measured_at(size)
            .ok_or(ModelError::InvalidScaleModels { small, large })
    };
    let (ipc_s, ipc_l, f_mem_l) = (obs(small)?.ipc, obs(large)?.ipc, obs(large)?.f_mem);
    let methods = build_methods(small, ipc_s, large, ipc_l, outcome.mrc.as_ref(), f_mem_l)?;
    let targets: Vec<(u32, f64)> = outcome
        .measured
        .iter()
        .filter(|m| m.size > large)
        .map(|m| (m.size, m.ipc))
        .collect();
    Ok(BenchmarkOutcome {
        methods: predict_all(methods, &targets),
        ..outcome.clone()
    })
}

/// Average and maximum error of `method` over `outcomes` at `target`.
pub fn aggregate_error(
    outcomes: &[BenchmarkOutcome],
    method: &str,
    target: u32,
) -> Option<(f64, f64)> {
    let errors: Vec<f64> = outcomes
        .iter()
        .filter_map(|o| o.method(method)?.at(target).map(|p| p.error_pct))
        .collect();
    if errors.is_empty() {
        return None;
    }
    let avg = errors.iter().sum::<f64>() / errors.len() as f64;
    let max = errors.iter().copied().fold(0.0, f64::max);
    Some((avg, max))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsim_trace::suite::strong_benchmark;
    use gsim_trace::weak::weak_benchmark;

    // A coarser miniature keeps the experiment-pipeline tests quick; the
    // full divisor-8 runs live in the integration suite and repro binary.
    fn fast_scale() -> MemScale {
        MemScale::new(32)
    }

    #[test]
    fn strong_pipeline_runs_and_beats_baselines_on_a_cliff() {
        let bench = strong_benchmark("lu", fast_scale()).expect("lu exists");
        let exp = StrongScalingExperiment::new(fast_scale());
        let out = exp.run_benchmark(&bench).expect("pipeline runs");
        assert_eq!(out.measured.len(), 5);
        assert_eq!(out.methods.len(), 5);
        assert_eq!(out.measured_class, ScalingClass::SuperLinear);
        assert!(out.cliff_at.is_some(), "lu must show a cliff");
        let sm = out.method("scale-model").unwrap().at(128).unwrap();
        let prop = out.method("proportional").unwrap().at(128).unwrap();
        let log = out.method("logarithmic").unwrap().at(128).unwrap();
        assert!(
            sm.error_pct < prop.error_pct,
            "scale-model {} vs proportional {}",
            sm.error_pct,
            prop.error_pct
        );
        assert!(sm.error_pct < log.error_pct);
    }

    #[test]
    fn weak_pipeline_reports_speedups() {
        let bench = weak_benchmark("va", fast_scale()).expect("va exists");
        let exp = WeakScalingExperiment::new(fast_scale());
        let out = exp.run_benchmark(&bench).expect("pipeline runs");
        assert_eq!(out.outcome.measured.len(), 5);
        assert_eq!(out.speedups.len(), 3);
        // Bigger targets must yield bigger simulation-time speedups.
        let s: Vec<f64> = out.speedups.iter().map(|&(_, v)| v).collect();
        assert!(s[2] > s[0], "speedup should grow with target size: {s:?}");
        let sm = out.outcome.method("scale-model").unwrap().at(128).unwrap();
        assert!(
            sm.error_pct < 25.0,
            "weak va scale-model error {}",
            sm.error_pct
        );
    }

    #[test]
    fn mcm_pipeline_skips_btree() {
        let exp = McmExperiment::new(fast_scale());
        let btree = weak_benchmark("btree", fast_scale()).unwrap();
        assert!(exp.run_benchmark(&btree).unwrap().is_none());
    }

    #[test]
    fn aggregate_error_summarises() {
        let bench = strong_benchmark("gemm", fast_scale()).unwrap();
        let exp = StrongScalingExperiment::new(fast_scale());
        let outcomes = vec![exp.run_benchmark(&bench).unwrap()];
        let (avg, max) = aggregate_error(&outcomes, "scale-model", 64).unwrap();
        assert!(avg <= max);
        assert!(aggregate_error(&outcomes, "nope", 64).is_none());
    }
}
