//! Measured scaling-class detection.
//!
//! Table II's rightmost column classifies each benchmark as linear,
//! sub-linear or super-linear from its measured performance across system
//! sizes. This module reproduces that classification from an IPC-vs-size
//! curve: the geometric-mean per-doubling growth ratio is compared against
//! a band around the ideal 2×.

use gsim_trace::suite::ScalingClass;

/// Per-doubling geometric growth above which a workload is called
/// super-linear (ideal linear scaling is 2.0).
pub const SUPER_LINEAR_RATIO: f64 = 2.15;

/// Per-doubling geometric growth below which a workload is called
/// sub-linear.
pub const SUB_LINEAR_RATIO: f64 = 1.85;

/// Classifies a measured IPC curve over doubling system sizes.
///
/// `points` are `(size, ipc)` pairs; they are sorted internally. The
/// classification compares the geometric mean growth per doubling with
/// [`SUPER_LINEAR_RATIO`] / [`SUB_LINEAR_RATIO`]. A workload whose *any*
/// single doubling exceeds the paper's cliff-like jump (2.5×) is also
/// super-linear, since a cliff can be diluted by several linear doublings
/// around it.
///
/// # Panics
///
/// Panics if fewer than two points are given or any IPC is non-positive.
///
/// # Example
///
/// ```
/// use gsim_core::classify_scaling;
/// use gsim_trace::suite::ScalingClass;
///
/// let linear = [(8, 100.0), (16, 197.0), (32, 395.0)];
/// assert_eq!(classify_scaling(&linear), ScalingClass::Linear);
/// ```
pub fn classify_scaling(points: &[(u32, f64)]) -> ScalingClass {
    assert!(points.len() >= 2, "need at least two sizes to classify");
    let mut pts = points.to_vec();
    pts.sort_by_key(|&(s, _)| s);
    for &(s, ipc) in &pts {
        assert!(ipc > 0.0, "IPC at size {s} must be positive");
    }
    let (s0, ipc0) = pts[0];
    let (s1, ipc1) = pts[pts.len() - 1];
    let doublings = (f64::from(s1) / f64::from(s0)).log2();
    let geo = (ipc1 / ipc0).powf(1.0 / doublings);
    let max_step = pts
        .windows(2)
        .map(|w| {
            let steps = (f64::from(w[1].0) / f64::from(w[0].0)).log2();
            (w[1].1 / w[0].1).powf(1.0 / steps)
        })
        .fold(0.0f64, f64::max);
    if geo > SUPER_LINEAR_RATIO || max_step > 2.5 {
        ScalingClass::SuperLinear
    } else if geo < SUB_LINEAR_RATIO {
        ScalingClass::SubLinear
    } else {
        ScalingClass::Linear
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_linear() {
        let pts = [(8, 100.0), (16, 200.0), (32, 400.0), (64, 800.0)];
        assert_eq!(classify_scaling(&pts), ScalingClass::Linear);
    }

    #[test]
    fn nearly_linear_within_band() {
        let pts = [(8, 100.0), (16, 196.0), (32, 384.0), (64, 750.0)];
        assert_eq!(classify_scaling(&pts), ScalingClass::Linear);
    }

    #[test]
    fn sub_linear_curve() {
        let pts = [(8, 100.0), (16, 180.0), (32, 300.0), (64, 460.0)];
        assert_eq!(classify_scaling(&pts), ScalingClass::SubLinear);
    }

    #[test]
    fn cliff_makes_super_linear_even_when_diluted() {
        // Three linear doublings plus one 3.4x cliff: geometric mean is
        // only 2.27 but the single jump marks it super-linear.
        let pts = [
            (8, 100.0),
            (16, 197.0),
            (32, 390.0),
            (64, 770.0),
            (128, 2600.0),
        ];
        assert_eq!(classify_scaling(&pts), ScalingClass::SuperLinear);
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let pts = [(64, 460.0), (8, 100.0), (32, 300.0), (16, 180.0)];
        assert_eq!(classify_scaling(&pts), ScalingClass::SubLinear);
    }

    #[test]
    #[should_panic(expected = "at least two sizes")]
    fn needs_two_points() {
        let _ = classify_scaling(&[(8, 1.0)]);
    }
}
