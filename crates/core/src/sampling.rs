//! Kernel-sampling baseline: the simulation-acceleration alternative the
//! paper positions itself against.
//!
//! Sampling approaches (e.g. principal kernel analysis \[8\], TBPoint \[32\])
//! speed simulation up by running only a fraction of each kernel's CTAs
//! on the *target* configuration and extrapolating. Two properties
//! distinguish them from scale-model simulation, both demonstrated here:
//!
//! 1. **They require a simulator (and simulation host) capable of the
//!    target system** — the whole premise the paper removes.
//! 2. **Truncating a grid distorts shared-resource behaviour**: the
//!    sampled CTAs' working set is a fraction of the real one, so an LLC
//!    that would thrash under the full grid can swallow the sample —
//!    sampling then *overpredicts* exactly the memory-bound cases where
//!    accurate scaling studies matter.

use gsim_sim::{GpuConfig, SimStats, Simulator};
use gsim_trace::{TracedWorkload, Workload, WorkloadModel};

use crate::percent_error;

/// Result of a sampled-simulation estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplingEstimate {
    /// CTA fraction simulated.
    pub fraction: f64,
    /// Estimated full-run IPC.
    pub ipc_estimate: f64,
    /// Wall-clock seconds the sampled simulation took.
    pub sim_seconds: f64,
    /// Statistics of the sampled run (for diagnostics).
    pub sampled: SimStats,
}

/// Estimates full-run IPC on `cfg` by simulating only the first
/// `fraction` of each kernel's CTAs and scaling each kernel's measured
/// cycles by its truncation factor.
///
/// # Panics
///
/// Panics unless `0 < fraction <= 1`.
pub fn estimate_by_sampling(wl: &Workload, cfg: &GpuConfig, fraction: f64) -> SamplingEstimate {
    let mut trace = Vec::new();
    gsim_trace::write_trace(wl, &mut trace).expect("in-memory trace");
    let traced = TracedWorkload::read(&trace[..]).expect("own trace is well-formed");
    let (sampled_wl, factors) = traced.with_cta_fraction(fraction);
    let stats = Simulator::new(cfg.clone(), &sampled_wl).run();
    // Extrapolate per kernel: a kernel truncated by factor f would have
    // taken ~f times its sampled cycles.
    let est_cycles: f64 = stats
        .kernel_cycles
        .iter()
        .zip(&factors)
        .map(|(&c, &f)| c as f64 * f)
        .sum();
    let full_thread_instrs = traced.approx_warp_instrs() as f64 * 32.0;
    SamplingEstimate {
        fraction,
        ipc_estimate: if est_cycles > 0.0 {
            full_thread_instrs / est_cycles
        } else {
            0.0
        },
        sim_seconds: stats.sim_wall_seconds,
        sampled: stats,
    }
}

/// Side-by-side accuracy of sampling vs the ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplingComparison {
    /// The sampled estimate.
    pub estimate: SamplingEstimate,
    /// Ground-truth IPC of the full run on the target.
    pub real_ipc: f64,
    /// Wall-clock seconds of the full target simulation.
    pub full_sim_seconds: f64,
    /// `|estimate − real| / real × 100`.
    pub error_pct: f64,
}

/// Runs both the sampled and the full simulation of `wl` on `cfg`.
pub fn compare_sampling(wl: &Workload, cfg: &GpuConfig, fraction: f64) -> SamplingComparison {
    let estimate = estimate_by_sampling(wl, cfg, fraction);
    let full = Simulator::new(cfg.clone(), wl).run();
    SamplingComparison {
        error_pct: percent_error(estimate.ipc_estimate, full.ipc()),
        real_ipc: full.ipc(),
        full_sim_seconds: full.sim_wall_seconds,
        estimate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsim_trace::suite::strong_benchmark;
    use gsim_trace::MemScale;

    fn scale() -> MemScale {
        MemScale::new(32)
    }

    #[test]
    fn full_fraction_reproduces_the_run() {
        let bench = strong_benchmark("ht", scale()).expect("ht exists");
        let cfg = GpuConfig::paper_target(8, scale());
        let c = compare_sampling(&bench.workload, &cfg, 1.0);
        assert!(
            c.error_pct < 1.0,
            "fraction 1.0 must match the full run, got {:.2}%",
            c.error_pct
        );
    }

    #[test]
    fn sampling_is_faster_but_distorts_capacity_sensitive_workloads() {
        // lu's working set thrashes the 32-SM LLC under the full grid but
        // an eighth of it fits: sampling overpredicts.
        let bench = strong_benchmark("lu", scale()).expect("lu exists");
        let cfg = GpuConfig::paper_target(32, scale());
        let c = compare_sampling(&bench.workload, &cfg, 0.125);
        assert!(
            c.estimate.ipc_estimate > c.real_ipc * 1.15,
            "sampled working set fits the LLC, so sampling should overpredict: \
             est {:.0} vs real {:.0}",
            c.estimate.ipc_estimate,
            c.real_ipc
        );
    }

    #[test]
    #[should_panic(expected = "fraction must be in")]
    fn rejects_zero_fraction() {
        let bench = strong_benchmark("ht", scale()).expect("ht exists");
        let cfg = GpuConfig::paper_target(8, scale());
        let _ = estimate_by_sampling(&bench.workload, &cfg, 0.0);
    }
}
