//! Miss-rate-curve regions: pre-cliff, cliff, post-cliff.
//!
//! Section V.C: the prediction model distinguishes three regions of the
//! miss-rate curve. The *cliff* "marks a disproportional drop in the miss
//! rate curve, i.e., the miss rate reduces by more than 2× when doubling
//! cache size"; everything below is *pre-cliff*, everything above is
//! *post-cliff* (mostly cold misses). The paper observes at most one cliff
//! per workload, which this module assumes as well: the *first* drop
//! exceeding the threshold is the cliff.

use crate::error::ModelError;

/// The factor by which MPKI must drop across one capacity doubling to be
/// called a cliff (Section V.C: "more than 2×").
pub const CLIFF_DROP_FACTOR: f64 = 2.0;

/// MPKI values that are effectively "no traffic"; drops between two
/// near-zero samples are noise, not cliffs.
const MPKI_NOISE_FLOOR: f64 = 0.05;

/// A miss-rate curve indexed by *system size* (number of SMs or chiplets)
/// rather than raw capacity: because the scale models derive their LLC
/// capacity proportionally from the system size, the two axes are
/// interchangeable, and size is what Equations (2)–(4) reason in.
///
/// Sizes must be stored in increasing order and double from one entry to
/// the next (the paper's Table I ladder: 8, 16, 32, 64, 128).
#[derive(Debug, Clone, PartialEq)]
pub struct SizedMrc {
    points: Vec<(u32, f64)>,
}

impl SizedMrc {
    /// Builds a curve from `(size, mpki)` pairs; sorts by size.
    ///
    /// # Panics
    ///
    /// Panics if sizes are not strictly doubling once sorted, or any MPKI
    /// is negative / non-finite.
    pub fn new<I: IntoIterator<Item = (u32, f64)>>(points: I) -> Self {
        let mut points: Vec<(u32, f64)> = points.into_iter().collect();
        points.sort_by_key(|&(s, _)| s);
        for w in points.windows(2) {
            assert_eq!(
                w[1].0,
                w[0].0 * 2,
                "sizes must double along the curve: {} then {}",
                w[0].0,
                w[1].0
            );
        }
        for &(s, m) in &points {
            assert!(
                m.is_finite() && m >= 0.0,
                "MPKI at size {s} must be finite and non-negative, got {m}"
            );
        }
        Self { points }
    }

    /// The `(size, mpki)` samples, in increasing size order.
    pub fn points(&self) -> &[(u32, f64)] {
        &self.points
    }

    /// MPKI at `size`, if sampled.
    pub fn mpki_at(&self, size: u32) -> Option<f64> {
        self.points
            .iter()
            .find(|&&(s, _)| s == size)
            .map(|&(_, m)| m)
    }

    /// Largest sampled size.
    pub fn max_size(&self) -> Option<u32> {
        self.points.last().map(|&(s, _)| s)
    }

    /// Whether a cliff (per [`detect_cliff`]) lies strictly between
    /// `from` and `to`.
    pub fn cliff_between(&self, from: u32, to: u32) -> bool {
        match detect_cliff(self) {
            Some(i) => {
                let (lo, _) = self.points[i];
                let (hi, _) = self.points[i + 1];
                lo >= from && hi <= to
            }
            None => false,
        }
    }

    /// The region each sampled size falls in. Before the cliff step:
    /// [`Region::PreCliff`]; the first size after the drop:
    /// [`Region::Cliff`] (the crossing); later sizes:
    /// [`Region::PostCliff`]. Without a cliff everything is pre-cliff.
    pub fn regions(&self) -> Vec<(u32, Region)> {
        let cliff = detect_cliff(self);
        self.points
            .iter()
            .enumerate()
            .map(|(i, &(s, _))| {
                let region = match cliff {
                    None => Region::PreCliff,
                    Some(c) if i <= c => Region::PreCliff,
                    Some(c) if i == c + 1 => Region::Cliff,
                    _ => Region::PostCliff,
                };
                (s, region)
            })
            .collect()
    }

    /// Validates that the curve covers `target`; convenience for model
    /// construction.
    pub fn ensure_covers(&self, target: u32) -> Result<(), ModelError> {
        if self.mpki_at(target).is_some() {
            Ok(())
        } else {
            Err(ModelError::MrcDoesNotCover { target })
        }
    }
}

/// Which of the paper's three miss-rate-curve regions a system size
/// belongs to (Section V.C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// The curve evolves at a steady pace: extrapolate with Eq. (2).
    PreCliff,
    /// The first size past the disproportional drop: apply the
    /// memory-stall boost of Eq. (3).
    Cliff,
    /// Beyond the cliff, the curve is flat again: extrapolate from the
    /// smallest post-cliff size with Eq. (4).
    PostCliff,
}

/// Finds the cliff: the first index `i` such that MPKI drops by more than
/// [`CLIFF_DROP_FACTOR`] from `points[i]` to `points[i+1]`. Returns `None`
/// for a steadily evolving curve. Drops within the noise floor (both
/// samples effectively zero) are ignored.
///
/// # Example
///
/// ```
/// use gsim_core::{detect_cliff, SizedMrc};
///
/// let mrc = SizedMrc::new([(8, 8.0), (16, 7.8), (32, 7.5), (64, 7.4), (128, 0.6)]);
/// assert_eq!(detect_cliff(&mrc), Some(3)); // cliff between 64 and 128
/// ```
pub fn detect_cliff(mrc: &SizedMrc) -> Option<usize> {
    detect_cliff_with(mrc, CLIFF_DROP_FACTOR)
}

/// [`detect_cliff`] with an explicit drop threshold, for sensitivity
/// studies (the ablation harness sweeps 1.5×–4×).
pub fn detect_cliff_with(mrc: &SizedMrc, drop_factor: f64) -> Option<usize> {
    assert!(drop_factor > 1.0, "a cliff must at least be a drop");
    mrc.points.windows(2).position(|w| {
        let (_, before) = w[0];
        let (_, after) = w[1];
        before > MPKI_NOISE_FLOOR && after < before / drop_factor
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_curve_has_no_cliff() {
        let mrc = SizedMrc::new([(8, 10.0), (16, 10.0), (32, 9.8), (64, 9.5), (128, 9.7)]);
        assert_eq!(detect_cliff(&mrc), None);
        assert!(mrc.regions().iter().all(|&(_, r)| r == Region::PreCliff));
    }

    #[test]
    fn gradual_decline_is_not_a_cliff() {
        // bfs-style curve: ratios stay below 2x per doubling.
        let mrc = SizedMrc::new([(8, 8.0), (16, 6.5), (32, 5.0), (64, 3.8), (128, 2.4)]);
        assert_eq!(detect_cliff(&mrc), None);
    }

    #[test]
    fn sharp_drop_is_a_cliff() {
        let mrc = SizedMrc::new([(8, 8.0), (16, 8.0), (32, 8.0), (64, 7.5), (128, 0.5)]);
        assert_eq!(detect_cliff(&mrc), Some(3));
        let regions = mrc.regions();
        assert_eq!(regions[3], (64, Region::PreCliff));
        assert_eq!(regions[4], (128, Region::Cliff));
    }

    #[test]
    fn early_cliff_has_post_cliff_region() {
        // lu-style: cliff between 32 and 64.
        let mrc = SizedMrc::new([(8, 7.5), (16, 7.5), (32, 7.5), (64, 0.6), (128, 0.6)]);
        assert_eq!(detect_cliff(&mrc), Some(2));
        let regions = mrc.regions();
        assert_eq!(regions[2].1, Region::PreCliff);
        assert_eq!(regions[3].1, Region::Cliff);
        assert_eq!(regions[4].1, Region::PostCliff);
        assert!(mrc.cliff_between(32, 64));
        assert!(!mrc.cliff_between(64, 128));
    }

    #[test]
    fn custom_threshold_changes_sensitivity() {
        let mrc = SizedMrc::new([(8, 8.0), (16, 4.5)]);
        assert_eq!(detect_cliff(&mrc), None); // 1.78x < 2x
        assert_eq!(detect_cliff_with(&mrc, 1.5), Some(0));
        assert_eq!(detect_cliff_with(&mrc, 3.0), None);
    }

    #[test]
    fn exactly_two_x_is_not_a_cliff() {
        // "more than 2x": a drop of exactly 2x stays pre-cliff.
        let mrc = SizedMrc::new([(8, 8.0), (16, 4.0)]);
        assert_eq!(detect_cliff(&mrc), None);
    }

    #[test]
    fn noise_floor_drops_are_ignored() {
        let mrc = SizedMrc::new([(8, 0.04), (16, 0.01)]);
        assert_eq!(detect_cliff(&mrc), None);
    }

    #[test]
    fn lookup_and_coverage() {
        let mrc = SizedMrc::new([(16, 5.0), (8, 6.0)]);
        assert_eq!(mrc.mpki_at(8), Some(6.0));
        assert_eq!(mrc.mpki_at(64), None);
        assert_eq!(mrc.max_size(), Some(16));
        assert!(mrc.ensure_covers(16).is_ok());
        assert!(mrc.ensure_covers(64).is_err());
    }

    #[test]
    #[should_panic(expected = "sizes must double")]
    fn rejects_non_doubling_sizes() {
        let _ = SizedMrc::new([(8, 1.0), (24, 1.0)]);
    }
}
