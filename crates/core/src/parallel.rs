//! Running experiment suites on a [`gsim_runner`] worker pool.
//!
//! Each benchmark's pipeline (simulate every size, collect the MRC, fit
//! the predictors) is independent of every other benchmark's, so a suite
//! is embarrassingly parallel at benchmark granularity. The helpers here
//! turn a suite into [`Job`]s and fold the pool's ordered reports back
//! into the exact vectors the serial `run_suite` loops used to produce —
//! plus an explicit record of anything that failed instead of a panic
//! tearing down the whole sweep.

use gsim_runner::{Job, JobReport, Runner};
use gsim_trace::suite::StrongBenchmark;
use gsim_trace::weak::WeakBenchmark;

use crate::error::ModelError;
use crate::experiment::{
    BenchmarkOutcome, McmExperiment, StrongScalingExperiment, WeakOutcome, WeakScalingExperiment,
};

/// One benchmark that did not produce an outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepFailure {
    /// The benchmark's abbreviation (the job name).
    pub abbr: String,
    /// What happened: a model error, a panic message, or a timeout.
    pub reason: String,
}

impl std::fmt::Display for SweepFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.abbr, self.reason)
    }
}

/// The aggregated result of a suite sweep: outcomes in suite order
/// (failed benchmarks simply absent), failures listed separately.
#[derive(Debug, Clone)]
pub struct SuiteRun<T> {
    /// Successful outcomes, in suite (submission) order.
    pub outcomes: Vec<T>,
    /// Benchmarks that errored, panicked, or timed out.
    pub failures: Vec<SweepFailure>,
}

impl<T> SuiteRun<T> {
    /// Whether every benchmark produced an outcome.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Folds ordered job reports into a [`SuiteRun`]. `Ok(None)` results
/// (benchmarks excluded from a study) are skipped silently. Public so
/// callers that post-process the job vector (e.g. fault injection in the
/// repro binary) can still aggregate the standard way.
pub fn collect<T>(reports: Vec<JobReport<Result<Option<T>, ModelError>>>) -> SuiteRun<T> {
    let mut run = SuiteRun {
        outcomes: Vec::with_capacity(reports.len()),
        failures: Vec::new(),
    };
    for report in reports {
        let failure = report.failure();
        match report.status {
            gsim_runner::JobStatus::Done(Ok(Some(outcome))) => run.outcomes.push(outcome),
            gsim_runner::JobStatus::Done(Ok(None)) => {}
            gsim_runner::JobStatus::Done(Err(e)) => run.failures.push(SweepFailure {
                abbr: report.name,
                reason: e.to_string(),
            }),
            _ => run.failures.push(SweepFailure {
                abbr: report.name,
                reason: failure.unwrap_or_else(|| "unknown failure".to_string()),
            }),
        }
    }
    run
}

impl StrongScalingExperiment {
    /// One job per benchmark, each running the full strong pipeline.
    pub fn jobs(
        &self,
        suite: &[StrongBenchmark],
    ) -> Vec<Job<Result<Option<BenchmarkOutcome>, ModelError>>> {
        suite
            .iter()
            .map(|bench| {
                let exp = self.clone();
                let bench = bench.clone();
                Job::new(bench.abbr, move || exp.run_benchmark(&bench).map(Some))
            })
            .collect()
    }

    /// Runs the whole suite on `runner`. Outcomes come back in suite
    /// order, identical to what the serial [`run_suite`] loop produces.
    ///
    /// [`run_suite`]: StrongScalingExperiment::run_suite
    pub fn run_suite_on(
        &self,
        suite: &[StrongBenchmark],
        label: &str,
        runner: &Runner,
    ) -> SuiteRun<BenchmarkOutcome> {
        collect(runner.run(label, self.jobs(suite)))
    }
}

impl WeakScalingExperiment {
    /// One job per benchmark, each running the full weak pipeline.
    pub fn jobs(
        &self,
        suite: &[WeakBenchmark],
    ) -> Vec<Job<Result<Option<WeakOutcome>, ModelError>>> {
        suite
            .iter()
            .map(|bench| {
                let exp = self.clone();
                let bench = bench.clone();
                Job::new(bench.abbr, move || exp.run_benchmark(&bench).map(Some))
            })
            .collect()
    }

    /// Runs the whole weak suite on `runner`, outcomes in suite order.
    pub fn run_suite_on(
        &self,
        suite: &[WeakBenchmark],
        label: &str,
        runner: &Runner,
    ) -> SuiteRun<WeakOutcome> {
        collect(runner.run(label, self.jobs(suite)))
    }
}

impl McmExperiment {
    /// One job per benchmark; benchmarks excluded from the MCM study
    /// yield no outcome (and no failure).
    pub fn jobs(
        &self,
        suite: &[WeakBenchmark],
    ) -> Vec<Job<Result<Option<WeakOutcome>, ModelError>>> {
        suite
            .iter()
            .map(|bench| {
                let exp = self.clone();
                let bench = bench.clone();
                Job::new(bench.abbr, move || exp.run_benchmark(&bench))
            })
            .collect()
    }

    /// Runs the MCM study on `runner`, outcomes in suite order.
    pub fn run_suite_on(
        &self,
        suite: &[WeakBenchmark],
        label: &str,
        runner: &Runner,
    ) -> SuiteRun<WeakOutcome> {
        collect(runner.run(label, self.jobs(suite)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsim_runner::RunnerConfig;
    use gsim_trace::suite::strong_suite;
    use gsim_trace::weak::weak_suite;
    use gsim_trace::MemScale;

    fn runner(threads: usize) -> Runner {
        Runner::new(RunnerConfig {
            threads,
            ..RunnerConfig::default()
        })
    }

    #[test]
    fn parallel_strong_suite_matches_serial() {
        // The coarse divisor keeps this test fast; the fine-grained run
        // lives in the repro binary.
        let scale = MemScale::new(32);
        let suite: Vec<StrongBenchmark> = strong_suite(scale).into_iter().take(2).collect();
        let exp = StrongScalingExperiment::new(scale);
        let serial = exp.run_suite(&suite).expect("serial suite runs");
        let mut run = exp.run_suite_on(&suite, "test-strong", &runner(4));
        assert!(run.is_complete(), "failures: {:?}", run.failures);
        assert_eq!(run.outcomes.len(), serial.len());
        for (p, s) in run.outcomes.iter_mut().zip(serial) {
            // Wall-clock differs between any two runs; everything else is
            // bit-identical.
            for (mp, ms) in p.measured.iter_mut().zip(&s.measured) {
                mp.sim_seconds = ms.sim_seconds;
            }
            assert_eq!(*p, s);
        }
    }

    #[test]
    fn mcm_exclusions_are_not_failures() {
        let scale = MemScale::new(32);
        // btree is excluded from the MCM study, so its job returns
        // Ok(None) immediately: no outcome, but no failure either.
        let suite: Vec<WeakBenchmark> = weak_suite(scale)
            .into_iter()
            .filter(|b| b.abbr == "btree")
            .collect();
        assert_eq!(suite.len(), 1);
        let exp = McmExperiment::new(scale);
        let run = exp.run_suite_on(&suite, "test-mcm", &runner(2));
        assert!(run.is_complete(), "failures: {:?}", run.failures);
        assert!(run.outcomes.is_empty());
    }

    #[test]
    fn collect_separates_outcomes_errors_and_panics() {
        let jobs: Vec<Job<Result<Option<u32>, ModelError>>> = vec![
            Job::new("good", || Ok(Some(1))),
            Job::new("excluded", || Ok(None)),
            Job::new("model-error", || {
                Err(ModelError::InvalidScaleModels { small: 8, large: 8 })
            }),
            Job::new("bomb", || panic!("injected")),
        ];
        let run = collect(runner(2).run("collect", jobs));
        assert_eq!(run.outcomes, vec![1]);
        assert_eq!(run.failures.len(), 2);
        assert_eq!(run.failures[0].abbr, "model-error");
        assert_eq!(run.failures[1].abbr, "bomb");
        assert!(run.failures[1].reason.contains("injected"));
        assert!(!run.is_complete());
    }
}
