//! One-shot prediction: the predictor entry point reusable outside the
//! experiment pipelines.
//!
//! The [`experiment`](crate::experiment) pipelines are built for the
//! paper's evaluation: they simulate the *target* systems too, because
//! the whole point there is comparing predictions against ground truth.
//! A consumer that just wants an answer — "how fast would this workload
//! run on a 128-SM GPU?", the `gsim-serve` HTTP service's entire job —
//! has only the scale-model observations and must not be forced through
//! a pipeline that simulates what it is trying to avoid simulating.
//!
//! [`predict_targets`] is that entry point: scale-model observations in,
//! per-method IPC predictions out, no ground truth anywhere. The
//! experiment pipelines build their predictors through the same
//! [`build_predictors`] so the two paths cannot drift apart. Both are
//! thin wrappers over the Stage-2 [`Fit`](crate::plan::Fit) of the
//! staged [`plan`](crate::plan) pipeline — the fit/predict arithmetic
//! lives in exactly one place.

use std::io::Read;

use gsim_mem::mrc::{DistanceEngine, TreeStack};
use gsim_sim::GpuConfig;
use gsim_trace::{Op, TraceLimits, TraceReadError, TraceReader};

use crate::cliff::SizedMrc;
use crate::error::ModelError;
use crate::predictor::ScalingPredictor;

/// One simulated scale-model observation, as a prediction input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// System size (SMs, or chiplets for MCM predictions).
    pub size: u32,
    /// Measured sustained IPC.
    pub ipc: f64,
    /// Measured memory-stall fraction (`f_mem` of Eq. 3). Only the larger
    /// scale model's value is consulted, and only across a cliff.
    pub f_mem: f64,
}

/// A named, boxed predictor, as both the experiment pipelines and the
/// one-shot entry point carry them.
pub type NamedPredictor = (&'static str, Box<dyn ScalingPredictor>);

/// Builds the four baseline predictors plus the scale-model predictor
/// from the two scale-model observations — the one place the method
/// roster is defined.
///
/// # Errors
///
/// Returns an error if the observations are degenerate (sizes not
/// `small < large`, non-positive IPC) or a cliff lies beyond the scale
/// models but no `f_mem` is usable.
pub fn build_predictors(
    small: Observation,
    large: Observation,
    mrc: Option<&SizedMrc>,
) -> Result<Vec<NamedPredictor>, ModelError> {
    Ok(crate::plan::Fit::new(small, large, mrc)?.predictors())
}

/// One method's prediction at one target size.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodPrediction {
    /// Method name ("scale-model", "proportional", …).
    pub method: &'static str,
    /// Predicted IPC at the target.
    pub predicted_ipc: f64,
}

/// All methods' predictions at one target size.
#[derive(Debug, Clone, PartialEq)]
pub struct TargetForecast {
    /// Target system size.
    pub target: u32,
    /// One entry per method, in [`METHODS`](crate::experiment::METHODS)
    /// order.
    pub by_method: Vec<MethodPrediction>,
}

impl TargetForecast {
    /// The prediction of `method`, if present.
    pub fn method(&self, method: &str) -> Option<f64> {
        self.by_method
            .iter()
            .find(|p| p.method == method)
            .map(|p| p.predicted_ipc)
    }
}

/// The complete output of a one-shot prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct Forecast {
    /// The correction factor `C` of Eq. (1) measured between the scale
    /// models.
    pub correction_factor: f64,
    /// First size past the detected miss-rate-curve cliff, if any.
    pub cliff_at: Option<u32>,
    /// One forecast per requested target, in request order.
    pub targets: Vec<TargetForecast>,
}

/// Predicts IPC at each of `targets` with all five methods, from the two
/// scale-model observations and (for strong scaling) the miss-rate
/// curve. No target is ever simulated.
///
/// # Errors
///
/// Returns an error if the observations are degenerate, a target is not
/// the larger scale model times a power of two, or the miss-rate curve
/// does not cover a target past the scale models.
pub fn predict_targets(
    small: Observation,
    large: Observation,
    mrc: Option<&SizedMrc>,
    targets: &[u32],
) -> Result<Forecast, ModelError> {
    crate::plan::Fit::new(small, large, mrc)?.forecast(targets)
}

/// The output of [`mrc_from_trace`]: a per-size miss-rate curve plus the
/// streaming totals it was derived from.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceMrc {
    /// MPKI at each configuration's LLC capacity, keyed by SM count.
    pub mrc: SizedMrc,
    /// Warp instructions in the trace.
    pub total_warp_instrs: u64,
    /// Line-level memory accesses recorded into the engine.
    pub line_accesses: u64,
    /// Content identity of the trace (see
    /// [`gsim_trace::semantic_hash_of`]).
    pub semantic_hash: u64,
    /// Peak decoder buffer occupancy — bounded by the trace chunk size.
    pub peak_buffer_bytes: usize,
}

/// Collects a miss-rate curve **directly from a streamed trace** via the
/// single-pass stack-distance engine — no timing simulation, no
/// materialised workload, memory bounded by the trace chunk size.
///
/// This is the millisecond fast path for memory-bound workloads
/// (ROADMAP's staged hot path): one pass over the file yields the MPKI at
/// *every* candidate LLC capacity at once, because the stack-distance
/// histogram is capacity-oblivious. Predictors that need timing fits (the
/// IPC observations of Eq. 1) still escalate to the 8/16-SM scale-model
/// simulations — but capacity screening, cliff detection, and
/// `gsim trace info --mrc` need only this.
///
/// Compared to the functional replay
/// ([`gsim_sim::collect_mrc`]), the stream is consumed in file order
/// (warp-major) without L1 filtering or the round-robin resident-warp
/// interleave, so the curve is an approximation of the replayed one —
/// cliff positions agree, absolute MPKI can differ. Byte-exact prediction
/// paths use the functional replay; this path is for screening and
/// interactive inspection.
///
/// # Errors
///
/// Returns any [`TraceReadError`] from the streaming decoder.
///
/// # Panics
///
/// Panics if `configs` is empty.
pub fn mrc_from_trace<R: Read>(
    input: R,
    limits: TraceLimits,
    configs: &[GpuConfig],
) -> Result<TraceMrc, TraceReadError> {
    assert!(!configs.is_empty(), "need at least one configuration");
    let mut reader = TraceReader::with_limits(input, limits)?;
    let mut engine = TreeStack::new();
    let mut line_accesses = 0u64;
    while let Some(warp) = reader.next_warp()? {
        for op in &warp.ops {
            let Some(access) = op.mem() else { continue };
            // Stores are write-through no-write-allocate: they consume
            // bandwidth but do not create reuse, matching the functional
            // replay's LLC write handling as closely as a single pass can.
            if matches!(op, Op::Store(_)) {
                continue;
            }
            for line in access.lines() {
                engine.record(line);
                line_accesses += 1;
            }
        }
    }
    let stats = *reader.stats().expect("fully streamed");
    let hist = engine.finish();
    let kinsns = (stats.total_warp_instrs * u64::from(gsim_trace::THREADS_PER_WARP)) as f64 / 1e3;
    let points = configs.iter().map(|cfg| {
        let capacity_lines = cfg.llc_bytes_total / u64::from(cfg.line_bytes);
        let mpki = if kinsns > 0.0 {
            hist.misses_at(capacity_lines) / kinsns
        } else {
            0.0
        };
        (cfg.n_sms, mpki)
    });
    Ok(TraceMrc {
        mrc: SizedMrc::new(points),
        total_warp_instrs: stats.total_warp_instrs,
        line_accesses,
        semantic_hash: stats.semantic_hash,
        peak_buffer_bytes: stats.peak_buffer_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsim_trace::{write_trace, Kernel, MemScale, PatternKind, PatternSpec, Workload};

    fn obs(size: u32, ipc: f64, f_mem: f64) -> Observation {
        Observation { size, ipc, f_mem }
    }

    #[test]
    fn forecast_matches_direct_predictors() {
        let mrc = SizedMrc::new([(8, 10.0), (16, 10.0), (32, 10.0), (64, 9.8), (128, 9.5)]);
        let f = predict_targets(
            obs(8, 100.0, 0.3),
            obs(16, 190.0, 0.4),
            Some(&mrc),
            &[32, 64, 128],
        )
        .unwrap();
        assert_eq!(f.targets.len(), 3);
        assert!((f.correction_factor - 0.95).abs() < 1e-12);
        assert_eq!(f.cliff_at, None);
        let at128 = &f.targets[2];
        assert_eq!(at128.target, 128);
        // Five methods, scale-model equal to the checked standalone path.
        assert_eq!(at128.by_method.len(), 5);
        let expected_sm = 190.0 * 8.0 * 0.95f64.powi(7);
        assert!((at128.method("scale-model").unwrap() - expected_sm).abs() < 1e-9);
        let expected_prop = 190.0 * 128.0 / 16.0;
        assert!((at128.method("proportional").unwrap() - expected_prop).abs() < 1e-9);
    }

    #[test]
    fn weak_scaling_needs_no_mrc() {
        let f = predict_targets(obs(8, 100.0, 0.2), obs(16, 196.0, 0.2), None, &[128]).unwrap();
        let expected = 196.0 * 8.0 * 0.98f64.powi(7);
        assert!((f.targets[0].method("scale-model").unwrap() - expected).abs() < 1e-9);
    }

    #[test]
    fn cliff_crossing_uses_f_mem() {
        let mrc = SizedMrc::new([(8, 8.0), (16, 8.0), (32, 8.0), (64, 8.0), (128, 0.4)]);
        let f =
            predict_targets(obs(8, 100.0, 0.3), obs(16, 190.0, 0.5), Some(&mrc), &[128]).unwrap();
        assert_eq!(f.cliff_at, Some(128));
        let expected = 190.0 * (2.0 * 0.95) * (2.0 * 0.95f64.powi(2)) * (2.0 / 0.5);
        assert!((f.targets[0].method("scale-model").unwrap() - expected).abs() < 1e-9);
    }

    #[test]
    fn bad_targets_are_errors_not_panics() {
        let err = predict_targets(obs(8, 100.0, 0.2), obs(16, 190.0, 0.2), None, &[48]);
        assert!(matches!(err, Err(ModelError::TargetNotDoubling { .. })));
        let mrc = SizedMrc::new([(8, 8.0), (16, 8.0)]);
        let err = predict_targets(obs(8, 100.0, 0.2), obs(16, 190.0, 0.2), Some(&mrc), &[64]);
        assert!(matches!(err, Err(ModelError::MrcDoesNotCover { .. })));
    }

    #[test]
    fn degenerate_observations_are_rejected() {
        assert!(predict_targets(obs(16, 100.0, 0.2), obs(8, 190.0, 0.2), None, &[32]).is_err());
        assert!(predict_targets(obs(8, 0.0, 0.2), obs(16, 190.0, 0.2), None, &[32]).is_err());
    }

    #[test]
    fn trace_mrc_streams_without_timing_simulation() {
        // A re-swept working set that fits the larger LLCs: the streamed
        // stack-distance curve must fall with capacity and show the cliff.
        let spec =
            PatternSpec::new(PatternKind::GlobalSweep { passes: 1 }, 6_000).compute_per_mem(1.0);
        let kernel = Kernel::new("k", 64, 256, spec);
        let wl = Workload::new("cliff", 2, vec![kernel; 4]);
        let mut bytes = Vec::new();
        write_trace(&wl, &mut bytes).expect("write");
        let configs: Vec<GpuConfig> = [8u32, 16, 32, 64]
            .iter()
            .map(|&s| GpuConfig::paper_target(s, MemScale::default()))
            .collect();
        let out =
            mrc_from_trace(&bytes[..], TraceLimits::default(), &configs).expect("streamed mrc");
        assert_eq!(out.total_warp_instrs, wl.approx_warp_instrs());
        assert_eq!(out.semantic_hash, gsim_trace::semantic_hash_of(&wl));
        assert!(out.line_accesses > 0);
        let pts = out.mrc.points();
        assert_eq!(pts.len(), 4);
        assert_eq!(pts[0].0, 8);
        // 6000 lines thrash the 8-SM LLC but fit the 32-SM one.
        assert!(
            pts[0].1 > 2.0 * pts[2].1.max(0.01),
            "expected a capacity cliff, got {pts:?}"
        );
        // Memory stays bounded by the chunk size, not the trace size.
        assert!(
            out.peak_buffer_bytes < 4 * 1024 * 1024,
            "peak buffer {} too large",
            out.peak_buffer_bytes
        );
    }
}
