//! The staged predict pipeline: **collect → fit → predict**.
//!
//! [`oneshot`](crate::oneshot) answers "how fast at 128 SMs?" from two
//! scale-model observations and a miss-rate curve, but says nothing about
//! how those inputs are produced. This module makes the production side
//! explicit, following Accel-Sim's decoupled front-end (arXiv 1810.07269):
//! separate the cheap functional *collection* of memory behaviour from the
//! expensive timing simulation, so consumers can cache, parallelise, and —
//! when the workload is memory-bound — skip the timing stage entirely.
//!
//! * **Stage 1 — collect** ([`collect_replay`], [`collect_sampled`]):
//!   functional replay of the workload's line stream into a miss-rate
//!   curve plus the stream statistics a compute-intensity gate needs.
//!   The sampled collector shards the stream across a
//!   [`Runner`](gsim_runner::Runner) pool with a deterministic merge
//!   order, so it produces bit-identical results serial or parallel.
//! * **Stage 2 — fit** ([`Fit`]): the five predictor fits from the
//!   observations and curve. A [`Fit`] is a plain value — cloneable,
//!   comparable, cacheable.
//! * **Stage 3 — predict** ([`Fit::forecast`]): target evaluation,
//!   byte-identical to [`oneshot::predict_targets`] (which is now a thin
//!   wrapper over this type).
//!
//! The **functional-first fast path** rests on the gate in
//! [`Collected::memory_pressure`]: a workload whose measured memory
//! traffic per instruction exceeds the machine's DRAM balance point is
//! answered from synthesized roofline observations
//! ([`synthesize_observation`]) plus the replayed curve, with no timing
//! simulation at all. Compute-sensitive workloads escalate to the real
//! 8/16-SM simulations, run concurrently via [`observe_scale_models`].
//!
//! [`oneshot`]: crate::oneshot
//! [`oneshot::predict_targets`]: crate::oneshot::predict_targets

use std::ops::Range;
use std::sync::Arc;

use gsim_mem::mrc::{DistanceEngine, LineRouter, StackDistanceHistogram, TreeStack};
use gsim_runner::{Job, RunOverrides, Runner};
use gsim_sim::{FunctionalReplay, GpuConfig, SimStats, Simulator};
use gsim_trace::{
    semantic_hash_of, Op, SpecStream, TraceStream, TracedWorkload, WarpStream, Workload,
    WorkloadModel, THREADS_PER_WARP,
};

use crate::cliff::SizedMrc;
use crate::error::ModelError;
use crate::oneshot::{Forecast, MethodPrediction, NamedPredictor, Observation, TargetForecast};
use crate::predictor::{
    LinearRegression, LogRegression, PowerLawRegression, Proportional, ScalingPredictor,
};
use crate::scale_model::{ScaleModelInputs, ScaleModelPredictor};

/// Stage tag for the sampled (sharded, fast-path) collection.
pub const STAGE_COLLECT_SAMPLED: &str = "collect.sampled";
/// Stage tag for the exact functional-replay collection.
pub const STAGE_COLLECT_REPLAY: &str = "collect.replay";
/// Stage tag for the scale-model timing observations.
pub const STAGE_OBSERVE: &str = "observe";
/// Stage tag for the predictor fits.
pub const STAGE_FIT: &str = "fit";

/// A fixed workload a staged plan runs: synthetic (generated streams) or
/// trace-driven (replayed streams). Both sides implement
/// [`WorkloadModel`], so the simulator, the collectors, and the semantic
/// hash treat them uniformly; this enum exists because `WorkloadModel`
/// has an associated stream type and is not object-safe.
#[derive(Debug, Clone)]
pub enum PlanWorkload {
    /// A generated workload (benchmark suite entry or synthetic pattern).
    Synthetic(Workload),
    /// A recorded trace.
    Traced(Arc<TracedWorkload>),
}

/// The per-warp stream of a [`PlanWorkload`].
#[derive(Debug)]
pub enum PlanStream {
    /// Stream of a synthetic workload.
    Synthetic(SpecStream),
    /// Stream of a recorded trace.
    Traced(TraceStream),
}

impl WarpStream for PlanStream {
    fn next_op(&mut self) -> Option<Op> {
        match self {
            Self::Synthetic(s) => s.next_op(),
            Self::Traced(s) => s.next_op(),
        }
    }
}

impl WorkloadModel for PlanWorkload {
    type Stream = PlanStream;

    fn name(&self) -> &str {
        match self {
            Self::Synthetic(wl) => WorkloadModel::name(wl),
            Self::Traced(wl) => WorkloadModel::name(&**wl),
        }
    }

    fn n_kernels(&self) -> usize {
        match self {
            Self::Synthetic(wl) => wl.n_kernels(),
            Self::Traced(wl) => wl.n_kernels(),
        }
    }

    fn grid(&self, kernel: usize) -> (u32, u32) {
        match self {
            Self::Synthetic(wl) => wl.grid(kernel),
            Self::Traced(wl) => wl.grid(kernel),
        }
    }

    fn warp_stream(&self, kernel: usize, cta: u32, warp: u32) -> PlanStream {
        match self {
            Self::Synthetic(wl) => PlanStream::Synthetic(wl.warp_stream(kernel, cta, warp)),
            Self::Traced(wl) => PlanStream::Traced(wl.warp_stream(kernel, cta, warp)),
        }
    }

    fn approx_warp_instrs(&self) -> u64 {
        match self {
            Self::Synthetic(wl) => WorkloadModel::approx_warp_instrs(wl),
            Self::Traced(wl) => WorkloadModel::approx_warp_instrs(&**wl),
        }
    }

    fn kernel_name(&self, kernel: usize) -> String {
        match self {
            Self::Synthetic(wl) => WorkloadModel::kernel_name(wl, kernel),
            Self::Traced(wl) => WorkloadModel::kernel_name(&**wl, kernel),
        }
    }
}

impl PlanWorkload {
    /// Content identity shared between a synthetic workload and its trace.
    pub fn semantic_hash(&self) -> u64 {
        match self {
            Self::Synthetic(wl) => semantic_hash_of(wl),
            Self::Traced(wl) => semantic_hash_of(&**wl),
        }
    }

    /// Runs one timing simulation.
    pub fn simulate(&self, cfg: GpuConfig) -> SimStats {
        match self {
            Self::Synthetic(wl) => Simulator::new(cfg, wl).run(),
            Self::Traced(wl) => Simulator::new(cfg, &**wl).run(),
        }
    }
}

/// Which collector produced a [`Collected`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectEngine {
    /// Exact functional replay (L1-filtered, set-associative LLCs) —
    /// the curve the full prediction path embeds in its responses.
    Replay,
    /// Sampled sharded stack-distance collection — the millisecond
    /// estimate the fast path and the gate run on.
    Sampled,
}

/// Stream statistics from Stage 1, the inputs of the compute-intensity
/// gate. For sampled collection these are totals *of the sampled
/// stream*; the gate uses only per-instruction ratios, in which the
/// sampling rates cancel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollectStats {
    /// Thread instructions replayed.
    pub thread_instrs: u64,
    /// Memory thread instructions replayed (loads/stores/atomics).
    pub mem_thread_instrs: u64,
    /// Pre-L1 line accesses (every line of every memory operation).
    pub line_accesses: u64,
    /// Fraction of CTAs replayed (1.0 for exact collection).
    pub cta_rate: f64,
    /// Spatial line-sampling keep rate (1.0 for exact collection).
    pub line_rate: f64,
}

impl CollectStats {
    /// Raw memory traffic per thread instruction, in bytes: line accesses
    /// times the line size over instructions. Sampling-rate-free because
    /// both counters are measured on the same (sub)stream.
    pub fn intensity_bytes_per_instr(&self, line_bytes: u32) -> f64 {
        if self.thread_instrs == 0 {
            return 0.0;
        }
        self.line_accesses as f64 * f64::from(line_bytes) / self.thread_instrs as f64
    }
}

/// The machine's DRAM balance point in bytes per thread instruction: the
/// traffic intensity at which full-rate issue exactly saturates DRAM.
/// Under proportional scaling this is size-independent (both DRAM
/// bandwidth and issue width grow with the SM count), so one gate
/// threshold covers every ladder size.
pub fn machine_balance_bytes_per_instr(cfg: &GpuConfig) -> f64 {
    let issue_per_cycle = f64::from(cfg.n_sms) * f64::from(THREADS_PER_WARP);
    let bytes_per_cycle = cfg.dram_gbs_total() / cfg.sm_clock_ghz;
    bytes_per_cycle / issue_per_cycle
}

/// The output of Stage 1: a per-size miss-rate curve plus the stream
/// statistics it was measured from.
#[derive(Debug, Clone, PartialEq)]
pub struct Collected {
    /// Which collector ran.
    pub engine: CollectEngine,
    /// `(size, MPKI)` at each configuration's LLC capacity, in input
    /// config order.
    pub points: Vec<(u32, f64)>,
    /// Stream statistics for the gate.
    pub stats: CollectStats,
}

impl Collected {
    /// The curve as a [`SizedMrc`] for the predictor fits.
    pub fn sized_mrc(&self) -> SizedMrc {
        SizedMrc::new(self.points.iter().copied())
    }

    /// MPKI at system size `size`, if collected.
    pub fn mpki_at(&self, size: u32) -> Option<f64> {
        self.points
            .iter()
            .find(|(s, _)| *s == size)
            .map(|(_, m)| *m)
    }

    /// The compute-intensity gate: measured traffic intensity over the
    /// machine balance point. `>= threshold` (conventionally 1.0) means
    /// DRAM saturates before issue does — the workload is memory-bound
    /// and the fast path's roofline observations are trustworthy.
    pub fn memory_pressure(&self, cfg: &GpuConfig) -> f64 {
        let balance = machine_balance_bytes_per_instr(cfg);
        if balance <= 0.0 {
            return f64::INFINITY;
        }
        self.stats.intensity_bytes_per_instr(cfg.line_bytes) / balance
    }

    /// Whether the gate classifies the workload as memory-bound at
    /// `threshold` (see [`Collected::memory_pressure`]).
    pub fn is_memory_bound(&self, cfg: &GpuConfig, threshold: f64) -> bool {
        self.memory_pressure(cfg) >= threshold
    }
}

/// Why a pooled collection did not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CollectFailure {
    /// A shard job exceeded the deadline.
    TimedOut,
    /// A shard job crashed; the message is kept.
    Failed(String),
}

impl std::fmt::Display for CollectFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::TimedOut => write!(f, "collection timed out"),
            Self::Failed(msg) => write!(f, "collection failed: {msg}"),
        }
    }
}

/// Exact Stage-1 collection: the full functional replay
/// ([`gsim_sim::collect_mrc`] plus gate statistics in the same pass).
/// The curve is numerically identical to `collect_mrc` over the same
/// configs — this is what the full prediction path embeds in responses.
///
/// # Panics
///
/// Panics if `configs` is empty.
pub fn collect_replay<W: WorkloadModel>(wl: &W, configs: &[GpuConfig]) -> Collected {
    assert!(!configs.is_empty(), "need at least one configuration");
    let caps: Vec<(u64, u32)> = configs
        .iter()
        .map(|c| (c.llc_bytes_total, c.llc_slices))
        .collect();
    let biggest = configs
        .iter()
        .max_by_key(|c| c.n_sms)
        .expect("non-empty configs");
    let mut replay = FunctionalReplay::new(biggest, &caps);
    replay.run(wl, |threads_per_cta| biggest.ctas_per_sm(threads_per_cta));
    let points = configs
        .iter()
        .zip(replay.curve().points())
        .map(|(cfg, p)| (cfg.n_sms, p.mpki))
        .collect();
    Collected {
        engine: CollectEngine::Replay,
        points,
        stats: CollectStats {
            thread_instrs: replay.thread_instrs(),
            mem_thread_instrs: replay.mem_thread_instrs(),
            line_accesses: replay.line_accesses(),
            cta_rate: 1.0,
            line_rate: 1.0,
        },
    }
}

/// Tuning of the sampled sharded collector.
#[derive(Debug, Clone, PartialEq)]
pub struct SampledCollectConfig {
    /// CTA-stride sampling: at most this many CTAs per kernel are
    /// replayed (evenly strided through the grid).
    pub max_ctas_per_kernel: u32,
    /// Spatial line-sampling keep rate (SHARDS).
    pub line_rate: f64,
    /// Spatial shards the kept lines are routed across. Fixed — results
    /// never depend on the pool's thread count.
    pub n_shards: u32,
    /// Sampled CTAs per generation job (phase-A granularity).
    pub ctas_per_job: u32,
}

impl Default for SampledCollectConfig {
    fn default() -> Self {
        Self {
            max_ctas_per_kernel: 64,
            line_rate: 0.25,
            n_shards: 8,
            ctas_per_job: 8,
        }
    }
}

impl SampledCollectConfig {
    /// Deterministic encoding for content-addressed stage-cache keys.
    pub fn cache_tag(&self) -> String {
        format!(
            "sampled(ctas={},rate={},shards={})",
            self.max_ctas_per_kernel, self.line_rate, self.n_shards
        )
    }
}

/// One phase-A generation job's output.
struct ChunkOut {
    /// Kept line addresses, already routed: `shards[s]` in stream order.
    shards: Vec<Vec<u64>>,
    thread_instrs: u64,
    mem_thread_instrs: u64,
    line_accesses: u64,
}

/// One phase-A work item: a strided range of sampled CTAs of one kernel.
#[derive(Clone)]
struct Chunk {
    kernel: usize,
    /// Range of sampled *slots*; slot `i` replays CTA `i * stride`.
    slots: Range<u32>,
    stride: u32,
}

fn replay_chunk<W: WorkloadModel>(wl: &W, router: &LineRouter, chunk: &Chunk) -> ChunkOut {
    let mut out = ChunkOut {
        shards: vec![Vec::new(); router.n_shards() as usize],
        thread_instrs: 0,
        mem_thread_instrs: 0,
        line_accesses: 0,
    };
    let warps = wl.warps_per_cta(chunk.kernel);
    for slot in chunk.slots.clone() {
        let cta = slot * chunk.stride;
        for w in 0..warps {
            let mut stream = wl.warp_stream(chunk.kernel, cta, w);
            while let Some(op) = stream.next_op() {
                out.thread_instrs += op.warp_instrs() * u64::from(THREADS_PER_WARP);
                let Some(access) = op.mem() else { continue };
                out.mem_thread_instrs += op.warp_instrs() * u64::from(THREADS_PER_WARP);
                for line in access.lines() {
                    out.line_accesses += 1;
                    if let Some(s) = router.route(line) {
                        out.shards[s as usize].push(line);
                    }
                }
            }
        }
    }
    out
}

/// Sampled Stage-1 collection: CTA-stride sampling plus SHARDS spatial
/// line sampling, with the kept lines routed across
/// [`SampledCollectConfig::n_shards`] fixed spatial shards whose exact
/// stack-distance histograms are computed independently — concurrently on
/// `pool` when one is given — and merged in ascending shard order.
///
/// **Deterministic by construction**: sampling decisions are pure
/// functions of CTA index and line address, phase outputs are combined in
/// submission order, and the shard count never follows the thread count,
/// so serial and pooled runs return bit-identical [`Collected`] values.
///
/// The curve is an estimate (warp-major streams, no L1 filter, no
/// associativity): cliff positions and shape track the exact replay,
/// absolute MPKI can deviate — which is why the full path keeps
/// [`collect_replay`]. CTA sampling is compensated by evaluating each
/// capacity at `capacity × cta_rate`, matching the proportionally
/// shrunken footprint.
///
/// # Errors
///
/// Returns a [`CollectFailure`] when a pooled job times out (deadline in
/// `overrides`) or crashes. The serial path (`pool: None`) only
/// propagates panics.
///
/// # Panics
///
/// Panics if `configs` is empty or `cfg` is degenerate.
pub fn collect_sampled<W>(
    wl: &W,
    configs: &[GpuConfig],
    cfg: &SampledCollectConfig,
    pool: Option<(&Runner, RunOverrides)>,
) -> Result<Collected, CollectFailure>
where
    W: WorkloadModel + Clone + Send + Sync + 'static,
{
    assert!(!configs.is_empty(), "need at least one configuration");
    assert!(cfg.max_ctas_per_kernel > 0 && cfg.ctas_per_job > 0);
    let router = LineRouter::new(cfg.n_shards, cfg.line_rate);

    // Enumerate sampled work.
    let mut chunks: Vec<Chunk> = Vec::new();
    let mut sampled_ctas = 0u64;
    let mut total_ctas = 0u64;
    for kernel in 0..wl.n_kernels() {
        let (n_ctas, _) = wl.grid(kernel);
        total_ctas += u64::from(n_ctas);
        if n_ctas == 0 {
            continue;
        }
        let stride = n_ctas.div_ceil(cfg.max_ctas_per_kernel).max(1);
        let n_slots = n_ctas.div_ceil(stride);
        sampled_ctas += u64::from(n_slots);
        let mut s = 0;
        while s < n_slots {
            let e = (s + cfg.ctas_per_job).min(n_slots);
            chunks.push(Chunk {
                kernel,
                slots: s..e,
                stride,
            });
            s = e;
        }
    }
    let cta_rate = if total_ctas == 0 {
        1.0
    } else {
        sampled_ctas as f64 / total_ctas as f64
    };

    // Phase A: generate + route, in parallel when a pool is available.
    let outs: Vec<ChunkOut> = match pool {
        Some((runner, overrides)) if chunks.len() > 1 => {
            let jobs: Vec<Job<ChunkOut>> = chunks
                .iter()
                .map(|chunk| {
                    let wl = wl.clone();
                    let router = router.clone();
                    let chunk = chunk.clone();
                    Job::new(
                        format!("collect-k{}c{}", chunk.kernel, chunk.slots.start),
                        move || replay_chunk(&wl, &router, &chunk),
                    )
                })
                .collect();
            collect_reports(runner.run_with("collect-sampled", jobs, overrides))?
        }
        _ => chunks
            .iter()
            .map(|c| replay_chunk(wl, &router, c))
            .collect(),
    };

    let mut stats = CollectStats {
        thread_instrs: 0,
        mem_thread_instrs: 0,
        line_accesses: 0,
        cta_rate,
        line_rate: router.keep_rate(),
    };
    let mut shard_lines: Vec<Vec<u64>> = vec![Vec::new(); cfg.n_shards as usize];
    for out in outs {
        stats.thread_instrs += out.thread_instrs;
        stats.mem_thread_instrs += out.mem_thread_instrs;
        stats.line_accesses += out.line_accesses;
        for (acc, lines) in shard_lines.iter_mut().zip(out.shards) {
            acc.extend(lines);
        }
    }

    // Phase B: one exact tree per shard, merged in shard order.
    let hists: Vec<StackDistanceHistogram> = match pool {
        Some((runner, overrides)) if cfg.n_shards > 1 => {
            let jobs: Vec<Job<StackDistanceHistogram>> = shard_lines
                .into_iter()
                .enumerate()
                .map(|(s, lines)| {
                    Job::new(format!("shard{s}"), move || {
                        let mut tree = TreeStack::new();
                        tree.record_all(lines.iter().copied());
                        tree.finish()
                    })
                })
                .collect();
            collect_reports(runner.run_with("collect-shards", jobs, overrides))?
        }
        _ => shard_lines
            .into_iter()
            .map(|lines| {
                let mut tree = TreeStack::new();
                tree.record_all(lines);
                tree.finish()
            })
            .collect(),
    };
    let hist = router.merge(&hists);

    let kinsns = stats.thread_instrs as f64 / 1e3;
    let points = configs
        .iter()
        .map(|c| {
            let capacity_lines = c.llc_bytes_total / u64::from(c.line_bytes);
            let effective = ((capacity_lines as f64 * cta_rate).round() as u64).max(1);
            let mpki = if kinsns > 0.0 {
                hist.misses_at(effective) / kinsns
            } else {
                0.0
            };
            (c.n_sms, mpki)
        })
        .collect();
    Ok(Collected {
        engine: CollectEngine::Sampled,
        points,
        stats,
    })
}

/// Unwraps a pooled run's reports (already sorted by submission index)
/// into their values, or the first failure.
fn collect_reports<T>(reports: Vec<gsim_runner::JobReport<T>>) -> Result<Vec<T>, CollectFailure> {
    let mut out = Vec::with_capacity(reports.len());
    for r in reports {
        match r.status {
            gsim_runner::JobStatus::Done(v) => out.push(v),
            gsim_runner::JobStatus::TimedOut => return Err(CollectFailure::TimedOut),
            gsim_runner::JobStatus::Panicked(msg) => return Err(CollectFailure::Failed(msg)),
        }
    }
    Ok(out)
}

/// Synthesizes a scale-model observation from Stage-1 statistics alone —
/// the fast path's replacement for a timing simulation.
///
/// Roofline model per thread instruction: issue takes
/// `1 / (n_sms × 32)` cycles, memory takes
/// `MPKI/1000 × line_bytes / DRAM-bytes-per-cycle`; execution runs at
/// whichever is slower, and `f_mem` is the fraction of the bottleneck
/// cycle not covered by issue. Exact for the bandwidth-saturated
/// workloads the gate admits; meaningless for compute-sensitive ones —
/// which is precisely what the gate screens out.
///
/// # Panics
///
/// Panics if the collected curve has no point at `cfg.n_sms`.
pub fn synthesize_observation(collected: &Collected, cfg: &GpuConfig) -> Observation {
    let mpki = collected
        .mpki_at(cfg.n_sms)
        .expect("collected curve must cover the observation size");
    let issue_cycles = 1.0 / (f64::from(cfg.n_sms) * f64::from(THREADS_PER_WARP));
    let bytes_per_cycle = cfg.dram_gbs_total() / cfg.sm_clock_ghz;
    let mem_cycles = mpki / 1000.0 * f64::from(cfg.line_bytes) / bytes_per_cycle;
    let bottleneck = issue_cycles.max(mem_cycles);
    let f_mem = if mem_cycles > issue_cycles {
        (mem_cycles - issue_cycles) / mem_cycles
    } else {
        0.0
    };
    Observation {
        size: cfg.n_sms,
        ipc: 1.0 / bottleneck,
        f_mem,
    }
}

/// Converts one timing simulation's stats into a prediction observation
/// (sustained IPC, `f_mem`) — the one place this conversion is defined.
pub fn observation_of(size: u32, stats: &SimStats) -> Observation {
    Observation {
        size,
        ipc: stats.sustained_ipc(),
        f_mem: stats.f_mem(),
    }
}

/// Runs the two scale-model timing simulations **concurrently** on the
/// runner pool and returns their stats in `(small, large)` order — the
/// escalation path's Stage 1b. With a multi-thread pool this halves the
/// escalated-miss latency over running them back-to-back.
///
/// # Errors
///
/// Returns a [`CollectFailure`] if either simulation times out or
/// crashes.
pub fn observe_scale_models(
    runner: &Runner,
    wl: &PlanWorkload,
    small: &GpuConfig,
    large: &GpuConfig,
    overrides: RunOverrides,
) -> Result<(SimStats, SimStats), CollectFailure> {
    let jobs: Vec<Job<SimStats>> = [small, large]
        .into_iter()
        .map(|cfg| {
            let wl = wl.clone();
            let cfg = cfg.clone();
            Job::new(format!("sim@{}sm", cfg.n_sms), move || {
                wl.simulate(cfg.clone())
            })
        })
        .collect();
    let mut stats = collect_reports(runner.run_with("scale-models", jobs, overrides))?;
    let large_stats = stats.pop().expect("two reports");
    let small_stats = stats.pop().expect("two reports");
    Ok((small_stats, large_stats))
}

/// Stage 2: the five predictor fits as one cacheable value.
///
/// Holds the concretely typed predictors so it is `Clone + PartialEq`
/// (content-addressable) and its [`forecast`](Fit::forecast) reproduces
/// [`predict_targets`](crate::oneshot::predict_targets) byte for byte —
/// `oneshot` is implemented on top of this type.
#[derive(Debug, Clone, PartialEq)]
pub struct Fit {
    small: Observation,
    large: Observation,
    logarithmic: LogRegression,
    proportional: Proportional,
    linear: LinearRegression,
    power_law: PowerLawRegression,
    scale_model: ScaleModelPredictor,
}

impl Fit {
    /// Fits all five methods from the two scale-model observations and
    /// (for strong scaling) the miss-rate curve.
    ///
    /// # Errors
    ///
    /// Returns an error if the observations are degenerate (sizes not
    /// `small < large`, non-positive IPC) or a cliff lies beyond the
    /// scale models but no `f_mem` is usable.
    pub fn new(
        small: Observation,
        large: Observation,
        mrc: Option<&SizedMrc>,
    ) -> Result<Self, ModelError> {
        let (s, l) = (small.size, large.size);
        let (ipc_s, ipc_l) = (small.ipc, large.ipc);
        let logarithmic = LogRegression::fit(s, ipc_s, l, ipc_l)?;
        let proportional = Proportional::fit(s, ipc_s, l, ipc_l)?;
        let linear = LinearRegression::fit(s, ipc_s, l, ipc_l)?;
        let power_law = PowerLawRegression::fit(s, ipc_s, l, ipc_l)?;
        let mut inputs = ScaleModelInputs::new(s, ipc_s, l, ipc_l).with_f_mem(large.f_mem);
        if let Some(mrc) = mrc {
            inputs = inputs.with_sized_mrc(mrc.clone());
        }
        let scale_model = ScaleModelPredictor::new(inputs)?;
        Ok(Self {
            small,
            large,
            logarithmic,
            proportional,
            linear,
            power_law,
            scale_model,
        })
    }

    /// The small scale-model observation the fit was built from.
    pub fn small(&self) -> Observation {
        self.small
    }

    /// The large scale-model observation the fit was built from.
    pub fn large(&self) -> Observation {
        self.large
    }

    /// The concrete scale-model predictor (cliff detection, correction
    /// factor, checked prediction).
    pub fn scale_model(&self) -> &ScaleModelPredictor {
        &self.scale_model
    }

    /// The method roster as named boxed predictors, in the fixed order
    /// (`logarithmic`, `proportional`, `linear`, `power-law`,
    /// `scale-model`) the experiment pipelines carry them.
    pub fn predictors(&self) -> Vec<NamedPredictor> {
        vec![
            (
                "logarithmic",
                Box::new(self.logarithmic.clone()) as Box<dyn ScalingPredictor>,
            ),
            ("proportional", Box::new(self.proportional.clone())),
            ("linear", Box::new(self.linear.clone())),
            ("power-law", Box::new(self.power_law.clone())),
            ("scale-model", Box::new(self.scale_model.clone())),
        ]
    }

    /// Stage 3: evaluates every method at each of `targets`.
    ///
    /// # Errors
    ///
    /// Returns an error if a target is not the larger scale model times a
    /// power of two, or the miss-rate curve does not cover a target past
    /// the scale models.
    pub fn forecast(&self, targets: &[u32]) -> Result<Forecast, ModelError> {
        let mut forecasts = Vec::with_capacity(targets.len());
        for &target in targets {
            // Validate once through the checked path so a bad target
            // surfaces as an error instead of a panic inside `predict`.
            let checked = self.scale_model.predict_checked(target)?;
            let t = f64::from(target);
            let by_method = vec![
                MethodPrediction {
                    method: "logarithmic",
                    predicted_ipc: self.logarithmic.predict(t),
                },
                MethodPrediction {
                    method: "proportional",
                    predicted_ipc: self.proportional.predict(t),
                },
                MethodPrediction {
                    method: "linear",
                    predicted_ipc: self.linear.predict(t),
                },
                MethodPrediction {
                    method: "power-law",
                    predicted_ipc: self.power_law.predict(t),
                },
                MethodPrediction {
                    method: "scale-model",
                    predicted_ipc: checked,
                },
            ];
            forecasts.push(TargetForecast { target, by_method });
        }
        Ok(Forecast {
            correction_factor: self.scale_model.correction_factor(),
            cliff_at: self.scale_model.cliff_at(),
            targets: forecasts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsim_runner::RunnerConfig;
    use gsim_trace::{Kernel, MemScale, PatternKind, PatternSpec};

    fn ladder(sizes: &[u32], scale: MemScale) -> Vec<GpuConfig> {
        sizes
            .iter()
            .map(|&s| GpuConfig::paper_target(s, scale))
            .collect()
    }

    fn membound_workload() -> Workload {
        let spec =
            PatternSpec::new(PatternKind::GlobalSweep { passes: 1 }, 60_000).compute_per_mem(1.0);
        Workload::new("mem", 3, vec![Kernel::new("k", 256, 256, spec); 2])
    }

    fn compute_workload() -> Workload {
        let spec = PatternSpec::new(PatternKind::Streaming, 2_000).compute_per_mem(30.0);
        Workload::new("cmp", 3, vec![Kernel::new("k", 128, 256, spec)])
    }

    #[test]
    fn fit_forecast_matches_oneshot_predict_targets() {
        let mrc = SizedMrc::new([(8, 10.0), (16, 10.0), (32, 10.0), (64, 9.8), (128, 9.5)]);
        let small = Observation {
            size: 8,
            ipc: 100.0,
            f_mem: 0.3,
        };
        let large = Observation {
            size: 16,
            ipc: 190.0,
            f_mem: 0.4,
        };
        let via_fit = Fit::new(small, large, Some(&mrc))
            .unwrap()
            .forecast(&[32, 64, 128])
            .unwrap();
        let via_oneshot =
            crate::oneshot::predict_targets(small, large, Some(&mrc), &[32, 64, 128]).unwrap();
        assert_eq!(via_fit, via_oneshot);
        for t in &via_fit.targets {
            for m in &t.by_method {
                assert!(m.predicted_ipc.is_finite());
            }
        }
    }

    #[test]
    fn replay_collect_matches_collect_mrc() {
        let wl = membound_workload();
        let cfgs = ladder(&[8, 16, 32], MemScale::default());
        let collected = collect_replay(&wl, &cfgs);
        let reference = gsim_sim::collect_mrc(&wl, &cfgs);
        assert_eq!(collected.engine, CollectEngine::Replay);
        for ((size, mpki), p) in collected.points.iter().zip(reference.points()) {
            assert_eq!(
                *size,
                cfgs.iter()
                    .find(|c| c.llc_bytes_total == p.capacity_bytes)
                    .unwrap()
                    .n_sms
            );
            assert_eq!(mpki.to_bits(), p.mpki.to_bits());
        }
        assert!(collected.stats.thread_instrs > 0);
        assert!(collected.stats.line_accesses > 0);
    }

    #[test]
    fn sampled_collect_is_pool_invariant() {
        let wl = membound_workload();
        let cfgs = ladder(&[8, 16, 32, 64], MemScale::default());
        let scfg = SampledCollectConfig::default();
        let serial = collect_sampled(&wl, &cfgs, &scfg, None).unwrap();
        let runner = Runner::new(RunnerConfig {
            threads: 2,
            ..RunnerConfig::default()
        });
        let pooled =
            collect_sampled(&wl, &cfgs, &scfg, Some((&runner, RunOverrides::default()))).unwrap();
        assert_eq!(
            serial, pooled,
            "sampled collection must not depend on the pool"
        );
        assert_eq!(serial.engine, CollectEngine::Sampled);
    }

    #[test]
    fn sampled_curve_tracks_replayed_shape() {
        // A working set that thrashes the small LLCs and fits the large
        // ones: both collectors must agree a cliff exists.
        let spec =
            PatternSpec::new(PatternKind::GlobalSweep { passes: 1 }, 6_000).compute_per_mem(1.0);
        let wl = Workload::new("cliff", 2, vec![Kernel::new("k", 192, 256, spec); 6]);
        let cfgs = ladder(&[8, 16, 32, 64, 128], MemScale::default());
        let exact = collect_replay(&wl, &cfgs);
        let sampled = collect_sampled(&wl, &cfgs, &SampledCollectConfig::default(), None).unwrap();
        let drop = |c: &Collected| c.points[0].1 / c.points[4].1.max(1e-6);
        assert!(
            drop(&exact) > 2.0 && drop(&sampled) > 2.0,
            "both collectors must see the cliff: exact {:?} sampled {:?}",
            exact.points,
            sampled.points
        );
    }

    #[test]
    fn gate_separates_memory_and_compute_bound() {
        let cfgs = ladder(&[8, 16], MemScale::default());
        let scfg = SampledCollectConfig::default();
        let mem = collect_sampled(&membound_workload(), &cfgs, &scfg, None).unwrap();
        let cmp = collect_sampled(&compute_workload(), &cfgs, &scfg, None).unwrap();
        assert!(
            mem.is_memory_bound(&cfgs[1], 1.0),
            "sweep pressure {}",
            mem.memory_pressure(&cfgs[1])
        );
        assert!(
            !cmp.is_memory_bound(&cfgs[1], 1.0),
            "compute pressure {}",
            cmp.memory_pressure(&cfgs[1])
        );
        // Proportional scaling keeps the balance point size-independent.
        let b8 = machine_balance_bytes_per_instr(&cfgs[0]);
        let b16 = machine_balance_bytes_per_instr(&cfgs[1]);
        assert!((b8 - b16).abs() / b8 < 0.01, "balance {b8} vs {b16}");
    }

    #[test]
    fn synthesized_observations_fit_and_forecast() {
        let cfgs = ladder(&[8, 16, 32, 64, 128], MemScale::default());
        let collected = collect_sampled(
            &membound_workload(),
            &cfgs,
            &SampledCollectConfig::default(),
            None,
        )
        .unwrap();
        let small = synthesize_observation(&collected, &cfgs[0]);
        let large = synthesize_observation(&collected, &cfgs[1]);
        assert!(small.ipc > 0.0 && large.ipc >= small.ipc);
        assert!((0.0..1.0).contains(&large.f_mem));
        let mrc = collected.sized_mrc();
        let forecast = Fit::new(small, large, Some(&mrc))
            .unwrap()
            .forecast(&[32, 64, 128])
            .unwrap();
        assert_eq!(forecast.targets.len(), 3);
        for t in &forecast.targets {
            let sm = t.method("scale-model").unwrap();
            assert!(sm.is_finite() && sm > 0.0);
        }
    }

    #[test]
    fn traced_and_synthetic_plan_workloads_collect_identically() {
        let wl = membound_workload();
        let mut bytes = Vec::new();
        gsim_trace::write_trace(&wl, &mut bytes).expect("write");
        let traced = gsim_trace::TracedWorkload::read(&bytes[..]).expect("read");
        let synth = PlanWorkload::Synthetic(wl);
        let traced = PlanWorkload::Traced(Arc::new(traced));
        assert_eq!(synth.semantic_hash(), traced.semantic_hash());
        let cfgs = ladder(&[8, 16, 32], MemScale::default());
        let scfg = SampledCollectConfig::default();
        let a = collect_sampled(&synth, &cfgs, &scfg, None).unwrap();
        let b = collect_sampled(&traced, &cfgs, &scfg, None).unwrap();
        assert_eq!(a, b, "a trace must collect exactly like its source");
    }

    #[test]
    fn concurrent_scale_models_match_direct_simulation() {
        let wl = PlanWorkload::Synthetic(compute_workload());
        let scale = MemScale::default();
        let small = GpuConfig::paper_target(8, scale);
        let large = GpuConfig::paper_target(16, scale);
        let runner = Runner::new(RunnerConfig {
            threads: 2,
            ..RunnerConfig::default()
        });
        let (s, l) =
            observe_scale_models(&runner, &wl, &small, &large, RunOverrides::default()).unwrap();
        s.assert_deterministic_eq(&wl.simulate(small));
        l.assert_deterministic_eq(&wl.simulate(large));
    }
}
