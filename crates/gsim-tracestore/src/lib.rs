//! Content-addressed trace store: validated ingest, atomic writes,
//! indexed metadata, and size-budget eviction.
//!
//! Accel-Sim-style trace-driven simulation separates *capture* from
//! *replay*: a workload is traced once and replayed by many simulations.
//! This crate is the capture side's home. A [`TraceStore`] keeps every
//! ingested trace under a directory, named by its **semantic hash** (the
//! FNV-1a content identity from
//! [`gsim_trace::semantic_hash_of`]), so:
//!
//! * identical instruction streams deduplicate to one blob no matter how
//!   many times — or in which format version — they are uploaded;
//! * a trace reference (`16` lowercase hex digits) is stable across
//!   machines and sessions, making it a safe cache key for downstream
//!   prediction services.
//!
//! # Layout and ingest protocol
//!
//! ```text
//! <root>/
//!   traces.jsonl          index: one JSON object per entry, append-only,
//!                         rewritten atomically on eviction/compaction
//!   traces/<ref>.gstr     blobs, always stored transcoded to format v2
//! ```
//!
//! Ingest fully *validates* the upload by decoding it (both format
//! versions accepted, resource limits enforced), transcodes it to v2,
//! writes the blob to a temp file, `fsync`s it, `rename`s it into place
//! (atomic on POSIX) and `fsync`s the containing directory so the rename
//! itself survives power loss, then appends (and `fsync`s) the index
//! entry. A crash can therefore leave only a temp file or an unindexed
//! blob, never a corrupt index entry pointing at a bad blob — and open
//! repairs both: temp files are deleted, stale or unparsable index lines
//! (including a torn tail from a crash mid-append) are dropped, and
//! valid blobs the index never recorded are re-validated and re-indexed
//! (counted in [`StoreStats::recovered`]).
//!
//! Eviction is oldest-first by ingest sequence once the configured byte
//! budget is exceeded; the most recent ingest is never evicted.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use gsim_json::{obj, Json};
use gsim_trace::{write_trace, TraceLimits, TraceReadError, TraceReader, TracedWorkload};

/// Store configuration.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Byte budget for stored blobs; oldest entries are evicted beyond
    /// it. The most recent ingest always survives, even alone over
    /// budget.
    pub max_bytes: u64,
    /// Decode limits applied when validating ingests and opening blobs.
    pub limits: TraceLimits,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            max_bytes: 1 << 30,
            limits: TraceLimits::default(),
        }
    }
}

/// Index metadata of one stored trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceMeta {
    /// Content address: the semantic hash as 16 lowercase hex digits.
    pub trace_ref: String,
    /// Workload name recorded in the trace (informational only; not part
    /// of the content address).
    pub name: String,
    /// Number of kernels.
    pub n_kernels: u64,
    /// Total warps.
    pub total_warps: u64,
    /// Total ops.
    pub total_ops: u64,
    /// Total warp instructions.
    pub total_warp_instrs: u64,
    /// Stored blob size in bytes (v2 encoding).
    pub bytes: u64,
    /// Monotonic ingest sequence number (eviction order).
    pub seq: u64,
}

/// Session counters and gauges of a [`TraceStore`]. Counters reset on
/// open; `store_bytes`/`entries` reflect durable state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Successful ingests of new content.
    pub ingests: u64,
    /// Ingests whose content was already stored.
    pub dedup_hits: u64,
    /// Rejected ingests (decode/validation failures) plus index entries
    /// dropped as stale on open.
    pub validation_failures: u64,
    /// Entries evicted to fit the byte budget.
    pub evictions: u64,
    /// Valid blobs found on open that the index had no entry for
    /// (crash between blob rename and index append), re-indexed.
    pub recovered: u64,
    /// Bytes currently stored.
    pub store_bytes: u64,
    /// Entries currently stored.
    pub entries: u64,
}

/// Why a store operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// The ingested bytes are not a valid trace.
    Invalid(TraceReadError),
    /// No trace with the given reference exists.
    NotFound(String),
    /// Filesystem failure.
    Io(io::Error),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Invalid(e) => write!(f, "invalid trace: {e}"),
            Self::NotFound(r) => write!(f, "no trace {r} in store"),
            Self::Io(e) => write!(f, "trace store I/O error: {e}"),
        }
    }
}

impl Error for StoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Invalid(e) => Some(e),
            Self::Io(e) => Some(e),
            Self::NotFound(_) => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

struct Inner {
    root: PathBuf,
    cfg: StoreConfig,
    /// Entries in ingest order (oldest first).
    entries: Vec<TraceMeta>,
    next_seq: u64,
    ingests: u64,
    dedup_hits: u64,
    validation_failures: u64,
    evictions: u64,
    recovered: u64,
    /// Fault injector consulted on blob I/O. Defaults to the
    /// process-wide plan; tests swap in a private one.
    faults: Option<&'static gsim_faults::Injector>,
}

/// Flushes a directory's own metadata (the rename/unlink journal on
/// POSIX). Best effort: platforms where directories cannot be fsynced
/// (or opened) still get the file-level syncs.
fn fsync_dir(dir: &Path) -> io::Result<()> {
    match File::open(dir) {
        Ok(d) => d.sync_all().or(Ok(())),
        Err(_) => Ok(()),
    }
}

/// Fully streams an orphaned blob and, if it decodes cleanly and its
/// semantic hash matches its file name, returns a fresh index entry
/// for it.
fn validate_blob(path: &Path, trace_ref: &str, limits: TraceLimits, seq: u64) -> Option<TraceMeta> {
    let bytes = fs::metadata(path).ok()?.len();
    let f = File::open(path).ok()?;
    let mut reader = TraceReader::with_limits(io::BufReader::new(f), limits).ok()?;
    while reader.next_warp().ok()?.is_some() {}
    let name = reader.name().to_string();
    let n_kernels = reader.n_kernels() as u64;
    let stats = *reader.stats()?;
    if format!("{:016x}", stats.semantic_hash) != trace_ref {
        return None;
    }
    Some(TraceMeta {
        trace_ref: trace_ref.to_string(),
        name,
        n_kernels,
        total_warps: stats.total_warps,
        total_ops: stats.total_ops,
        total_warp_instrs: stats.total_warp_instrs,
        bytes,
        seq,
    })
}

/// A thread-safe, content-addressed store of validated traces.
pub struct TraceStore {
    inner: Mutex<Inner>,
}

const INDEX_FILE: &str = "traces.jsonl";
const BLOB_DIR: &str = "traces";

fn blob_rel(trace_ref: &str) -> String {
    format!("{BLOB_DIR}/{trace_ref}.gstr")
}

fn meta_to_json(m: &TraceMeta) -> Json {
    obj([
        ("ref", Json::from(m.trace_ref.as_str())),
        ("name", Json::from(m.name.as_str())),
        ("kernels", Json::from(m.n_kernels)),
        ("warps", Json::from(m.total_warps)),
        ("ops", Json::from(m.total_ops)),
        ("warp_instrs", Json::from(m.total_warp_instrs)),
        ("bytes", Json::from(m.bytes)),
        ("seq", Json::from(m.seq)),
    ])
}

fn meta_from_json(j: &Json) -> Option<TraceMeta> {
    let trace_ref = j.get("ref")?.as_str()?.to_string();
    if trace_ref.len() != 16 || !trace_ref.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    Some(TraceMeta {
        trace_ref,
        name: j.get("name")?.as_str()?.to_string(),
        n_kernels: j.get("kernels")?.as_u64()?,
        total_warps: j.get("warps")?.as_u64()?,
        total_ops: j.get("ops")?.as_u64()?,
        total_warp_instrs: j.get("warp_instrs")?.as_u64()?,
        bytes: j.get("bytes")?.as_u64()?,
        seq: j.get("seq")?.as_u64()?,
    })
}

impl Inner {
    fn blob_path(&self, trace_ref: &str) -> PathBuf {
        self.root.join(blob_rel(trace_ref))
    }

    fn store_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.bytes).sum()
    }

    /// Rewrites the whole index atomically (temp file + rename).
    fn rewrite_index(&self) -> io::Result<()> {
        let tmp = self.root.join(".traces.jsonl.tmp");
        {
            let mut f = File::create(&tmp)?;
            for e in &self.entries {
                writeln!(f, "{}", meta_to_json(e).render())?;
            }
            f.sync_all()?;
        }
        fs::rename(&tmp, self.root.join(INDEX_FILE))?;
        fsync_dir(&self.root)
    }

    fn append_index(&self, meta: &TraceMeta) -> io::Result<()> {
        let mut f = OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.root.join(INDEX_FILE))?;
        writeln!(f, "{}", meta_to_json(meta).render())?;
        f.sync_all()?;
        // The append may have created the file; persist its dirent too.
        fsync_dir(&self.root)
    }

    /// Evicts oldest entries until the budget fits, sparing the entry
    /// with sequence number `keep_seq`.
    fn evict_to_budget(&mut self, keep_seq: u64) -> io::Result<()> {
        let mut evicted = false;
        while self.store_bytes() > self.cfg.max_bytes {
            let Some(idx) = self.entries.iter().position(|e| e.seq != keep_seq) else {
                break;
            };
            let victim = self.entries.remove(idx);
            // A missing blob is already gone; don't fail eviction on it.
            match fs::remove_file(self.blob_path(&victim.trace_ref)) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => {
                    self.entries.insert(idx, victim);
                    return Err(e);
                }
            }
            self.evictions += 1;
            evicted = true;
        }
        if evicted {
            self.rewrite_index()?;
        }
        Ok(())
    }
}

impl TraceStore {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// The index is re-validated: unparsable lines, duplicate refs, and
    /// entries whose blob is missing or has the wrong size are dropped
    /// (counted as validation failures) and the index is compacted.
    ///
    /// # Errors
    ///
    /// Returns any filesystem error creating the directories or reading
    /// the index.
    pub fn open(root: impl Into<PathBuf>, cfg: StoreConfig) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(root.join(BLOB_DIR))?;
        let mut entries: Vec<TraceMeta> = Vec::new();
        let mut seen: HashMap<String, usize> = HashMap::new();
        let mut dropped = 0u64;
        let index_path = root.join(INDEX_FILE);
        let raw = match fs::read_to_string(&index_path) {
            Ok(s) => s,
            Err(e) if e.kind() == io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(e),
        };
        for line in raw.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let Some(meta) = gsim_json::parse(line)
                .ok()
                .as_ref()
                .and_then(meta_from_json)
            else {
                dropped += 1;
                continue;
            };
            let ok = fs::metadata(root.join(blob_rel(&meta.trace_ref)))
                .map(|m| m.is_file() && m.len() == meta.bytes)
                .unwrap_or(false);
            if !ok {
                dropped += 1;
                continue;
            }
            // Last write wins on duplicate refs.
            if let Some(&i) = seen.get(&meta.trace_ref) {
                dropped += 1;
                entries[i] = meta;
            } else {
                seen.insert(meta.trace_ref.clone(), entries.len());
                entries.push(meta);
            }
        }
        entries.sort_by_key(|e| e.seq);
        let mut next_seq = entries.last().map_or(0, |e| e.seq + 1);

        // Crash recovery: a crash after the blob rename but before the
        // index append leaves a valid blob the index never saw. Find such
        // orphans, re-validate them, and give them fresh index entries
        // instead of losing the data; interrupted ingests' temp files are
        // deleted. Orphans are re-indexed in name order (deterministic).
        let mut recovered = 0u64;
        let mut orphans: Vec<String> = Vec::new();
        for dirent in fs::read_dir(root.join(BLOB_DIR))? {
            let dirent = dirent?;
            let name = dirent.file_name().to_string_lossy().into_owned();
            if name.starts_with(".tmp-") {
                let _ = fs::remove_file(dirent.path());
                continue;
            }
            let Some(stem) = name.strip_suffix(".gstr") else {
                continue;
            };
            let canonical = stem.len() == 16
                && stem
                    .bytes()
                    .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b));
            if canonical && !seen.contains_key(stem) {
                orphans.push(stem.to_string());
            }
        }
        orphans.sort_unstable();
        for trace_ref in orphans {
            let path = root.join(blob_rel(&trace_ref));
            let Some(meta) = validate_blob(&path, &trace_ref, cfg.limits, next_seq) else {
                // Not a decodable v2 trace under our limits, or content
                // doesn't match its name: corrupt, not recoverable.
                dropped += 1;
                let _ = fs::remove_file(&path);
                continue;
            };
            next_seq += 1;
            recovered += 1;
            entries.push(meta);
        }

        let inner = Inner {
            root,
            cfg,
            entries,
            next_seq,
            ingests: 0,
            dedup_hits: 0,
            validation_failures: dropped,
            evictions: 0,
            recovered,
            faults: gsim_faults::active(),
        };
        if dropped > 0 || recovered > 0 {
            inner.rewrite_index()?;
        }
        Ok(Self {
            inner: Mutex::new(inner),
        })
    }

    /// Validates, transcodes to v2, and stores a trace. Returns its
    /// metadata and whether the content was already present (dedup).
    ///
    /// # Errors
    ///
    /// [`StoreError::Invalid`] if `bytes` fail to decode under the
    /// configured limits; [`StoreError::Io`] on filesystem failure.
    ///
    /// # Panics
    ///
    /// Panics if the store mutex was poisoned.
    pub fn ingest_bytes(&self, bytes: &[u8]) -> Result<(TraceMeta, bool), StoreError> {
        let mut inner = self.inner.lock().expect("trace store lock");
        // Validate and materialise (accepts v1 and v2).
        let wl = match TracedWorkload::read_with_limits(bytes, inner.cfg.limits) {
            Ok(wl) => wl,
            Err(e) => {
                inner.validation_failures += 1;
                return Err(StoreError::Invalid(e));
            }
        };
        // Canonical v2 blob; stream it back once for totals + identity
        // (also a self-check of our own transcode).
        let mut blob = Vec::new();
        write_trace(&wl, &mut blob).map_err(StoreError::Io)?;
        let mut reader =
            TraceReader::with_limits(&blob[..], inner.cfg.limits).map_err(StoreError::Invalid)?;
        while reader.next_warp().map_err(StoreError::Invalid)?.is_some() {}
        let stats = *reader.stats().expect("fully streamed");
        let trace_ref = format!("{:016x}", stats.semantic_hash);

        if let Some(existing) = inner.entries.iter().find(|e| e.trace_ref == trace_ref) {
            let meta = existing.clone();
            inner.dedup_hits += 1;
            return Ok((meta, true));
        }

        let blob_dir = inner.root.join(BLOB_DIR);
        let tmp = blob_dir.join(format!(".tmp-{trace_ref}"));
        let faults = inner.faults;
        let write_result = (|| -> io::Result<()> {
            let mut f = File::create(&tmp)?;
            // Injected fault: persist only a prefix, as a crash mid-write
            // would, and fail the ingest. The rename never happens, so the
            // store must stay consistent (no index entry, no blob).
            if let Some(short) = faults.and_then(|inj| inj.store_short_write(blob.len())) {
                f.write_all(&blob[..short])?;
                f.sync_all()?;
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "injected fault: short blob write",
                ));
            }
            f.write_all(&blob)?;
            f.sync_all()?;
            Ok(())
        })();
        if let Err(e) = write_result {
            let _ = fs::remove_file(&tmp);
            return Err(StoreError::Io(e));
        }
        fs::rename(&tmp, inner.blob_path(&trace_ref))?;
        fsync_dir(&blob_dir)?;

        let meta = TraceMeta {
            trace_ref,
            name: gsim_trace::WorkloadModel::name(&wl).to_string(),
            n_kernels: reader.n_kernels() as u64,
            total_warps: stats.total_warps,
            total_ops: stats.total_ops,
            total_warp_instrs: stats.total_warp_instrs,
            bytes: blob.len() as u64,
            seq: inner.next_seq,
        };
        inner.next_seq += 1;
        inner.append_index(&meta)?;
        inner.entries.push(meta.clone());
        inner.ingests += 1;
        inner.evict_to_budget(meta.seq)?;
        Ok((meta, false))
    }

    /// Reads and ingests a trace file from the filesystem.
    ///
    /// # Errors
    ///
    /// As [`TraceStore::ingest_bytes`], plus I/O errors reading `path`.
    ///
    /// # Panics
    ///
    /// Panics if the store mutex was poisoned.
    pub fn ingest_file(&self, path: &Path) -> Result<(TraceMeta, bool), StoreError> {
        let max = self
            .inner
            .lock()
            .expect("trace store lock")
            .cfg
            .limits
            .max_file_bytes;
        let f = File::open(path)?;
        let mut bytes = Vec::new();
        // Bound the read so a huge file fails cleanly instead of OOMing.
        f.take(max.saturating_add(1)).read_to_end(&mut bytes)?;
        if bytes.len() as u64 > max {
            self.inner
                .lock()
                .expect("trace store lock")
                .validation_failures += 1;
            return Err(StoreError::Invalid(TraceReadError::TooLarge(format!(
                "file exceeds max_file_bytes = {max}"
            ))));
        }
        self.ingest_bytes(&bytes)
    }

    /// Looks up a trace's metadata by reference.
    ///
    /// # Panics
    ///
    /// Panics if the store mutex was poisoned.
    pub fn get(&self, trace_ref: &str) -> Option<TraceMeta> {
        let inner = self.inner.lock().expect("trace store lock");
        inner
            .entries
            .iter()
            .find(|e| e.trace_ref == trace_ref)
            .cloned()
    }

    /// Loads and fully decodes a stored trace.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] for an unknown reference;
    /// [`StoreError::Invalid`] if the blob no longer decodes (on-disk
    /// corruption); [`StoreError::Io`] on filesystem failure.
    ///
    /// # Panics
    ///
    /// Panics if the store mutex was poisoned.
    pub fn load(&self, trace_ref: &str) -> Result<TracedWorkload, StoreError> {
        let (path, limits, faults) = {
            let inner = self.inner.lock().expect("trace store lock");
            if !inner.entries.iter().any(|e| e.trace_ref == trace_ref) {
                return Err(StoreError::NotFound(trace_ref.to_string()));
            }
            (inner.blob_path(trace_ref), inner.cfg.limits, inner.faults)
        };
        if let Some(delay) = faults.and_then(|inj| inj.store_read_delay()) {
            std::thread::sleep(delay);
        }
        let f = File::open(path)?;
        TracedWorkload::read_with_limits(io::BufReader::new(f), limits).map_err(StoreError::Invalid)
    }

    /// The on-disk path of a stored trace's blob, if the reference is
    /// indexed. Useful for streaming readers that want the raw v2 file
    /// without materialising the whole workload.
    ///
    /// # Panics
    ///
    /// Panics if the store mutex was poisoned.
    pub fn blob_path(&self, trace_ref: &str) -> Option<PathBuf> {
        let inner = self.inner.lock().expect("trace store lock");
        inner
            .entries
            .iter()
            .any(|e| e.trace_ref == trace_ref)
            .then(|| inner.blob_path(trace_ref))
    }

    /// All entries, oldest first.
    ///
    /// # Panics
    ///
    /// Panics if the store mutex was poisoned.
    pub fn list(&self) -> Vec<TraceMeta> {
        self.inner.lock().expect("trace store lock").entries.clone()
    }

    /// Replaces the fault injector this store consults on blob I/O
    /// (default: the process-wide plan from [`gsim_faults::install`]).
    /// For tests and chaos harnesses that need store-local faults.
    ///
    /// # Panics
    ///
    /// Panics if the store mutex was poisoned.
    pub fn set_faults(&self, faults: Option<&'static gsim_faults::Injector>) {
        self.inner.lock().expect("trace store lock").faults = faults;
    }

    /// Session counters and current gauges.
    ///
    /// # Panics
    ///
    /// Panics if the store mutex was poisoned.
    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.lock().expect("trace store lock");
        StoreStats {
            ingests: inner.ingests,
            dedup_hits: inner.dedup_hits,
            validation_failures: inner.validation_failures,
            evictions: inner.evictions,
            recovered: inner.recovered,
            store_bytes: inner.store_bytes(),
            entries: inner.entries.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsim_trace::{
        semantic_hash_of, write_trace_v1, Kernel, PatternKind, PatternSpec, Workload,
    };
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmpdir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let d =
            std::env::temp_dir().join(format!("gsim-tracestore-{tag}-{}-{n}", std::process::id()));
        fs::create_dir_all(&d).expect("create temp dir");
        d
    }

    fn workload(seed: u64, footprint: u64) -> Workload {
        let spec = PatternSpec::new(PatternKind::GlobalSweep { passes: 2 }, footprint)
            .compute_per_mem(1.0);
        Workload::new("wl", seed, vec![Kernel::new("k", 8, 128, spec)])
    }

    fn trace_bytes(wl: &Workload) -> Vec<u8> {
        let mut b = Vec::new();
        write_trace(wl, &mut b).expect("write");
        b
    }

    #[test]
    fn ingest_dedupes_across_format_versions() {
        let dir = tmpdir("dedupe");
        let store = TraceStore::open(&dir, StoreConfig::default()).expect("open");
        let wl = workload(1, 4096);
        let (meta, dup) = store.ingest_bytes(&trace_bytes(&wl)).expect("ingest v2");
        assert!(!dup);
        assert_eq!(meta.trace_ref, format!("{:016x}", semantic_hash_of(&wl)));
        assert_eq!(meta.n_kernels, 1);
        assert_eq!(meta.total_warps, 8 * 4);
        assert_eq!(meta.total_warp_instrs, wl.approx_warp_instrs());

        // The same workload as a v1 file is the same content.
        let mut v1 = Vec::new();
        write_trace_v1(&wl, &mut v1).expect("write v1");
        let (meta2, dup2) = store.ingest_bytes(&v1).expect("ingest v1");
        assert!(dup2);
        assert_eq!(meta2.trace_ref, meta.trace_ref);

        let s = store.stats();
        assert_eq!((s.ingests, s.dedup_hits, s.entries), (1, 1, 1));
        assert_eq!(s.store_bytes, meta.bytes);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_replays_the_same_streams() {
        let dir = tmpdir("load");
        let store = TraceStore::open(&dir, StoreConfig::default()).expect("open");
        let wl = workload(2, 2048);
        let (meta, _) = store.ingest_bytes(&trace_bytes(&wl)).expect("ingest");
        let loaded = store.load(&meta.trace_ref).expect("load");
        assert_eq!(semantic_hash_of(&loaded), semantic_hash_of(&wl));
        assert!(matches!(
            store.load("0000000000000000"),
            Err(StoreError::NotFound(_))
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_garbage_and_counts_it() {
        let dir = tmpdir("garbage");
        let store = TraceStore::open(&dir, StoreConfig::default()).expect("open");
        assert!(matches!(
            store.ingest_bytes(b"not a trace at all"),
            Err(StoreError::Invalid(_))
        ));
        assert_eq!(store.stats().validation_failures, 1);
        assert_eq!(store.stats().entries, 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn evicts_oldest_beyond_budget_but_spares_newest() {
        let dir = tmpdir("evict");
        let one = trace_bytes(&workload(10, 1024));
        let budget = (one.len() as u64 * 5) / 2; // fits two traces, not three
        let cfg = StoreConfig {
            max_bytes: budget,
            ..StoreConfig::default()
        };
        let store = TraceStore::open(&dir, cfg).expect("open");
        let refs: Vec<String> = (0..3u64)
            .map(|i| {
                let (m, _) = store
                    .ingest_bytes(&trace_bytes(&workload(10 + i, 1024 + i * 64)))
                    .expect("ingest");
                m.trace_ref
            })
            .collect();
        let s = store.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 2);
        assert!(s.store_bytes <= budget);
        assert!(store.get(&refs[0]).is_none(), "oldest evicted");
        assert!(store.get(&refs[2]).is_some(), "newest kept");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_recovers_index_and_drops_stale_entries() {
        let dir = tmpdir("reopen");
        let wl_a = workload(20, 1024);
        let wl_b = workload(21, 2048);
        let (keep, gone) = {
            let store = TraceStore::open(&dir, StoreConfig::default()).expect("open");
            let (a, _) = store.ingest_bytes(&trace_bytes(&wl_a)).expect("a");
            let (b, _) = store.ingest_bytes(&trace_bytes(&wl_b)).expect("b");
            (a.trace_ref, b.trace_ref)
        };
        // Sabotage: delete one blob and append garbage to the index.
        fs::remove_file(dir.join(BLOB_DIR).join(format!("{gone}.gstr"))).expect("rm");
        let mut f = OpenOptions::new()
            .append(true)
            .open(dir.join(INDEX_FILE))
            .expect("index");
        writeln!(f, "{{ not json").expect("garbage");
        drop(f);

        let store = TraceStore::open(&dir, StoreConfig::default()).expect("reopen");
        assert!(store.get(&keep).is_some());
        assert!(store.get(&gone).is_none());
        assert_eq!(store.stats().entries, 1);
        assert_eq!(store.stats().validation_failures, 2);
        // The loadable survivor still decodes to the right content.
        let loaded = store.load(&keep).expect("load");
        assert_eq!(semantic_hash_of(&loaded), semantic_hash_of(&wl_a));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_reindexes_orphaned_blobs_and_sweeps_temp_files() {
        let dir = tmpdir("orphan");
        let wl_a = workload(30, 1024);
        let wl_b = workload(31, 2048);
        let (indexed, orphan) = {
            let store = TraceStore::open(&dir, StoreConfig::default()).expect("open");
            let (a, _) = store.ingest_bytes(&trace_bytes(&wl_a)).expect("a");
            let (b, _) = store.ingest_bytes(&trace_bytes(&wl_b)).expect("b");
            (a, b)
        };
        // Simulate a crash between blob rename and index append: keep b's
        // blob but rewrite the index without its entry, with a torn tail.
        let index = dir.join(INDEX_FILE);
        let keep_line = fs::read_to_string(&index)
            .expect("index")
            .lines()
            .find(|l| l.contains(&indexed.trace_ref))
            .expect("indexed line")
            .to_string();
        fs::write(&index, format!("{keep_line}\n{{\"ref\":\"torn")).expect("rewrite");
        // Plus leftovers a crash mid-ingest would leave behind.
        let tmp = dir.join(BLOB_DIR).join(".tmp-deadbeefdeadbeef");
        fs::write(&tmp, b"partial").expect("tmp");
        // And a canonical-looking blob whose content doesn't match its
        // name — must be dropped, not recovered.
        let fake = dir.join(BLOB_DIR).join("00000000000000aa.gstr");
        fs::write(&fake, trace_bytes(&wl_a)).expect("fake");

        let store = TraceStore::open(&dir, StoreConfig::default()).expect("reopen");
        let s = store.stats();
        assert_eq!(s.entries, 2, "indexed + recovered orphan");
        assert_eq!(s.recovered, 1);
        // Dropped: the torn index tail and the mismatched fake blob.
        assert_eq!(s.validation_failures, 2);
        assert!(!tmp.exists(), "temp file swept");
        assert!(!fake.exists(), "mismatched blob deleted");
        let loaded = store.load(&orphan.trace_ref).expect("recovered loads");
        assert_eq!(semantic_hash_of(&loaded), semantic_hash_of(&wl_b));
        // Recovered entry is re-sequenced after survivors and durable: a
        // third open sees a clean index, nothing recovered or dropped.
        assert!(store.get(&orphan.trace_ref).expect("meta").seq > indexed.seq);
        drop(store);
        let again = TraceStore::open(&dir, StoreConfig::default()).expect("third open");
        let s = again.stats();
        assert_eq!((s.entries, s.recovered, s.validation_failures), (2, 0, 0));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_short_write_fails_ingest_and_leaves_store_consistent() {
        let dir = tmpdir("shortwrite");
        // A store-local injector (not the process-wide plan, which would
        // leak the fault into every other test): cut every blob write.
        let plan = gsim_faults::FaultPlan::parse("seed=1,store_short_write_p=1.0").expect("plan");
        let faults: &'static gsim_faults::Injector =
            Box::leak(Box::new(gsim_faults::Injector::new(plan)));
        let store = TraceStore::open(&dir, StoreConfig::default()).expect("open");
        store.set_faults(Some(faults));
        let bytes = trace_bytes(&workload(40, 1024));
        let err = store
            .ingest_bytes(&bytes)
            .expect_err("short write must fail ingest");
        assert!(matches!(err, StoreError::Io(_)));
        let s = store.stats();
        assert_eq!((s.entries, s.ingests), (0, 0));
        let blobs: Vec<_> = fs::read_dir(dir.join(BLOB_DIR))
            .expect("blob dir")
            .collect();
        assert!(blobs.is_empty(), "no blob or temp file left behind");

        // With faults off again the identical bytes ingest fine — the
        // failed attempt left nothing poisoned behind.
        store.set_faults(None);
        let (meta, dup) = store.ingest_bytes(&bytes).expect("clean retry");
        assert!(!dup);
        assert!(store.load(&meta.trace_ref).is_ok());
        fs::remove_dir_all(&dir).ok();
    }
}
