//! Content-addressed trace store: validated ingest, atomic writes,
//! indexed metadata, and size-budget eviction.
//!
//! Accel-Sim-style trace-driven simulation separates *capture* from
//! *replay*: a workload is traced once and replayed by many simulations.
//! This crate is the capture side's home. A [`TraceStore`] keeps every
//! ingested trace under a directory, named by its **semantic hash** (the
//! FNV-1a content identity from
//! [`gsim_trace::semantic_hash_of`]), so:
//!
//! * identical instruction streams deduplicate to one blob no matter how
//!   many times — or in which format version — they are uploaded;
//! * a trace reference (`16` lowercase hex digits) is stable across
//!   machines and sessions, making it a safe cache key for downstream
//!   prediction services.
//!
//! # Layout and ingest protocol
//!
//! ```text
//! <root>/
//!   traces.jsonl          index: one JSON object per entry, append-only,
//!                         rewritten atomically on eviction/compaction
//!   traces/<ref>.gstr     blobs, always stored transcoded to format v2
//! ```
//!
//! Ingest fully *validates* the upload by decoding it (both format
//! versions accepted, resource limits enforced), transcodes it to v2,
//! writes the blob to a temp file and `rename`s it into place (atomic on
//! POSIX), then appends the index entry. A crash can leave a temp file or
//! an unindexed blob, never a corrupt index entry pointing at a bad blob;
//! stale index lines and size mismatches are dropped on open.
//!
//! Eviction is oldest-first by ingest sequence once the configured byte
//! budget is exceeded; the most recent ingest is never evicted.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use gsim_json::{obj, Json};
use gsim_trace::{write_trace, TraceLimits, TraceReadError, TraceReader, TracedWorkload};

/// Store configuration.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Byte budget for stored blobs; oldest entries are evicted beyond
    /// it. The most recent ingest always survives, even alone over
    /// budget.
    pub max_bytes: u64,
    /// Decode limits applied when validating ingests and opening blobs.
    pub limits: TraceLimits,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            max_bytes: 1 << 30,
            limits: TraceLimits::default(),
        }
    }
}

/// Index metadata of one stored trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceMeta {
    /// Content address: the semantic hash as 16 lowercase hex digits.
    pub trace_ref: String,
    /// Workload name recorded in the trace (informational only; not part
    /// of the content address).
    pub name: String,
    /// Number of kernels.
    pub n_kernels: u64,
    /// Total warps.
    pub total_warps: u64,
    /// Total ops.
    pub total_ops: u64,
    /// Total warp instructions.
    pub total_warp_instrs: u64,
    /// Stored blob size in bytes (v2 encoding).
    pub bytes: u64,
    /// Monotonic ingest sequence number (eviction order).
    pub seq: u64,
}

/// Session counters and gauges of a [`TraceStore`]. Counters reset on
/// open; `store_bytes`/`entries` reflect durable state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Successful ingests of new content.
    pub ingests: u64,
    /// Ingests whose content was already stored.
    pub dedup_hits: u64,
    /// Rejected ingests (decode/validation failures) plus index entries
    /// dropped as stale on open.
    pub validation_failures: u64,
    /// Entries evicted to fit the byte budget.
    pub evictions: u64,
    /// Bytes currently stored.
    pub store_bytes: u64,
    /// Entries currently stored.
    pub entries: u64,
}

/// Why a store operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// The ingested bytes are not a valid trace.
    Invalid(TraceReadError),
    /// No trace with the given reference exists.
    NotFound(String),
    /// Filesystem failure.
    Io(io::Error),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Invalid(e) => write!(f, "invalid trace: {e}"),
            Self::NotFound(r) => write!(f, "no trace {r} in store"),
            Self::Io(e) => write!(f, "trace store I/O error: {e}"),
        }
    }
}

impl Error for StoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Invalid(e) => Some(e),
            Self::Io(e) => Some(e),
            Self::NotFound(_) => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

struct Inner {
    root: PathBuf,
    cfg: StoreConfig,
    /// Entries in ingest order (oldest first).
    entries: Vec<TraceMeta>,
    next_seq: u64,
    ingests: u64,
    dedup_hits: u64,
    validation_failures: u64,
    evictions: u64,
}

/// A thread-safe, content-addressed store of validated traces.
pub struct TraceStore {
    inner: Mutex<Inner>,
}

const INDEX_FILE: &str = "traces.jsonl";
const BLOB_DIR: &str = "traces";

fn blob_rel(trace_ref: &str) -> String {
    format!("{BLOB_DIR}/{trace_ref}.gstr")
}

fn meta_to_json(m: &TraceMeta) -> Json {
    obj([
        ("ref", Json::from(m.trace_ref.as_str())),
        ("name", Json::from(m.name.as_str())),
        ("kernels", Json::from(m.n_kernels)),
        ("warps", Json::from(m.total_warps)),
        ("ops", Json::from(m.total_ops)),
        ("warp_instrs", Json::from(m.total_warp_instrs)),
        ("bytes", Json::from(m.bytes)),
        ("seq", Json::from(m.seq)),
    ])
}

fn meta_from_json(j: &Json) -> Option<TraceMeta> {
    let trace_ref = j.get("ref")?.as_str()?.to_string();
    if trace_ref.len() != 16 || !trace_ref.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    Some(TraceMeta {
        trace_ref,
        name: j.get("name")?.as_str()?.to_string(),
        n_kernels: j.get("kernels")?.as_u64()?,
        total_warps: j.get("warps")?.as_u64()?,
        total_ops: j.get("ops")?.as_u64()?,
        total_warp_instrs: j.get("warp_instrs")?.as_u64()?,
        bytes: j.get("bytes")?.as_u64()?,
        seq: j.get("seq")?.as_u64()?,
    })
}

impl Inner {
    fn blob_path(&self, trace_ref: &str) -> PathBuf {
        self.root.join(blob_rel(trace_ref))
    }

    fn store_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.bytes).sum()
    }

    /// Rewrites the whole index atomically (temp file + rename).
    fn rewrite_index(&self) -> io::Result<()> {
        let tmp = self.root.join(".traces.jsonl.tmp");
        {
            let mut f = File::create(&tmp)?;
            for e in &self.entries {
                writeln!(f, "{}", meta_to_json(e).render())?;
            }
            f.sync_all()?;
        }
        fs::rename(&tmp, self.root.join(INDEX_FILE))
    }

    fn append_index(&self, meta: &TraceMeta) -> io::Result<()> {
        let mut f = OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.root.join(INDEX_FILE))?;
        writeln!(f, "{}", meta_to_json(meta).render())?;
        f.sync_all()
    }

    /// Evicts oldest entries until the budget fits, sparing the entry
    /// with sequence number `keep_seq`.
    fn evict_to_budget(&mut self, keep_seq: u64) -> io::Result<()> {
        let mut evicted = false;
        while self.store_bytes() > self.cfg.max_bytes {
            let Some(idx) = self.entries.iter().position(|e| e.seq != keep_seq) else {
                break;
            };
            let victim = self.entries.remove(idx);
            // A missing blob is already gone; don't fail eviction on it.
            match fs::remove_file(self.blob_path(&victim.trace_ref)) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => {
                    self.entries.insert(idx, victim);
                    return Err(e);
                }
            }
            self.evictions += 1;
            evicted = true;
        }
        if evicted {
            self.rewrite_index()?;
        }
        Ok(())
    }
}

impl TraceStore {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// The index is re-validated: unparsable lines, duplicate refs, and
    /// entries whose blob is missing or has the wrong size are dropped
    /// (counted as validation failures) and the index is compacted.
    ///
    /// # Errors
    ///
    /// Returns any filesystem error creating the directories or reading
    /// the index.
    pub fn open(root: impl Into<PathBuf>, cfg: StoreConfig) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(root.join(BLOB_DIR))?;
        let mut entries: Vec<TraceMeta> = Vec::new();
        let mut seen: HashMap<String, usize> = HashMap::new();
        let mut dropped = 0u64;
        let index_path = root.join(INDEX_FILE);
        let raw = match fs::read_to_string(&index_path) {
            Ok(s) => s,
            Err(e) if e.kind() == io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(e),
        };
        for line in raw.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let Some(meta) = gsim_json::parse(line)
                .ok()
                .as_ref()
                .and_then(meta_from_json)
            else {
                dropped += 1;
                continue;
            };
            let ok = fs::metadata(root.join(blob_rel(&meta.trace_ref)))
                .map(|m| m.is_file() && m.len() == meta.bytes)
                .unwrap_or(false);
            if !ok {
                dropped += 1;
                continue;
            }
            // Last write wins on duplicate refs.
            if let Some(&i) = seen.get(&meta.trace_ref) {
                dropped += 1;
                entries[i] = meta;
            } else {
                seen.insert(meta.trace_ref.clone(), entries.len());
                entries.push(meta);
            }
        }
        entries.sort_by_key(|e| e.seq);
        let next_seq = entries.last().map_or(0, |e| e.seq + 1);
        let inner = Inner {
            root,
            cfg,
            entries,
            next_seq,
            ingests: 0,
            dedup_hits: 0,
            validation_failures: dropped,
            evictions: 0,
        };
        if dropped > 0 {
            inner.rewrite_index()?;
        }
        Ok(Self {
            inner: Mutex::new(inner),
        })
    }

    /// Validates, transcodes to v2, and stores a trace. Returns its
    /// metadata and whether the content was already present (dedup).
    ///
    /// # Errors
    ///
    /// [`StoreError::Invalid`] if `bytes` fail to decode under the
    /// configured limits; [`StoreError::Io`] on filesystem failure.
    ///
    /// # Panics
    ///
    /// Panics if the store mutex was poisoned.
    pub fn ingest_bytes(&self, bytes: &[u8]) -> Result<(TraceMeta, bool), StoreError> {
        let mut inner = self.inner.lock().expect("trace store lock");
        // Validate and materialise (accepts v1 and v2).
        let wl = match TracedWorkload::read_with_limits(bytes, inner.cfg.limits) {
            Ok(wl) => wl,
            Err(e) => {
                inner.validation_failures += 1;
                return Err(StoreError::Invalid(e));
            }
        };
        // Canonical v2 blob; stream it back once for totals + identity
        // (also a self-check of our own transcode).
        let mut blob = Vec::new();
        write_trace(&wl, &mut blob).map_err(StoreError::Io)?;
        let mut reader =
            TraceReader::with_limits(&blob[..], inner.cfg.limits).map_err(StoreError::Invalid)?;
        while reader.next_warp().map_err(StoreError::Invalid)?.is_some() {}
        let stats = *reader.stats().expect("fully streamed");
        let trace_ref = format!("{:016x}", stats.semantic_hash);

        if let Some(existing) = inner.entries.iter().find(|e| e.trace_ref == trace_ref) {
            let meta = existing.clone();
            inner.dedup_hits += 1;
            return Ok((meta, true));
        }

        let tmp = inner.root.join(BLOB_DIR).join(format!(".tmp-{trace_ref}"));
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&blob)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, inner.blob_path(&trace_ref))?;

        let meta = TraceMeta {
            trace_ref,
            name: gsim_trace::WorkloadModel::name(&wl).to_string(),
            n_kernels: reader.n_kernels() as u64,
            total_warps: stats.total_warps,
            total_ops: stats.total_ops,
            total_warp_instrs: stats.total_warp_instrs,
            bytes: blob.len() as u64,
            seq: inner.next_seq,
        };
        inner.next_seq += 1;
        inner.append_index(&meta)?;
        inner.entries.push(meta.clone());
        inner.ingests += 1;
        inner.evict_to_budget(meta.seq)?;
        Ok((meta, false))
    }

    /// Reads and ingests a trace file from the filesystem.
    ///
    /// # Errors
    ///
    /// As [`TraceStore::ingest_bytes`], plus I/O errors reading `path`.
    ///
    /// # Panics
    ///
    /// Panics if the store mutex was poisoned.
    pub fn ingest_file(&self, path: &Path) -> Result<(TraceMeta, bool), StoreError> {
        let max = self
            .inner
            .lock()
            .expect("trace store lock")
            .cfg
            .limits
            .max_file_bytes;
        let f = File::open(path)?;
        let mut bytes = Vec::new();
        // Bound the read so a huge file fails cleanly instead of OOMing.
        f.take(max.saturating_add(1)).read_to_end(&mut bytes)?;
        if bytes.len() as u64 > max {
            self.inner
                .lock()
                .expect("trace store lock")
                .validation_failures += 1;
            return Err(StoreError::Invalid(TraceReadError::TooLarge(format!(
                "file exceeds max_file_bytes = {max}"
            ))));
        }
        self.ingest_bytes(&bytes)
    }

    /// Looks up a trace's metadata by reference.
    ///
    /// # Panics
    ///
    /// Panics if the store mutex was poisoned.
    pub fn get(&self, trace_ref: &str) -> Option<TraceMeta> {
        let inner = self.inner.lock().expect("trace store lock");
        inner
            .entries
            .iter()
            .find(|e| e.trace_ref == trace_ref)
            .cloned()
    }

    /// Loads and fully decodes a stored trace.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] for an unknown reference;
    /// [`StoreError::Invalid`] if the blob no longer decodes (on-disk
    /// corruption); [`StoreError::Io`] on filesystem failure.
    ///
    /// # Panics
    ///
    /// Panics if the store mutex was poisoned.
    pub fn load(&self, trace_ref: &str) -> Result<TracedWorkload, StoreError> {
        let (path, limits) = {
            let inner = self.inner.lock().expect("trace store lock");
            if !inner.entries.iter().any(|e| e.trace_ref == trace_ref) {
                return Err(StoreError::NotFound(trace_ref.to_string()));
            }
            (inner.blob_path(trace_ref), inner.cfg.limits)
        };
        let f = File::open(path)?;
        TracedWorkload::read_with_limits(io::BufReader::new(f), limits).map_err(StoreError::Invalid)
    }

    /// The on-disk path of a stored trace's blob, if the reference is
    /// indexed. Useful for streaming readers that want the raw v2 file
    /// without materialising the whole workload.
    ///
    /// # Panics
    ///
    /// Panics if the store mutex was poisoned.
    pub fn blob_path(&self, trace_ref: &str) -> Option<PathBuf> {
        let inner = self.inner.lock().expect("trace store lock");
        inner
            .entries
            .iter()
            .any(|e| e.trace_ref == trace_ref)
            .then(|| inner.blob_path(trace_ref))
    }

    /// All entries, oldest first.
    ///
    /// # Panics
    ///
    /// Panics if the store mutex was poisoned.
    pub fn list(&self) -> Vec<TraceMeta> {
        self.inner.lock().expect("trace store lock").entries.clone()
    }

    /// Session counters and current gauges.
    ///
    /// # Panics
    ///
    /// Panics if the store mutex was poisoned.
    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.lock().expect("trace store lock");
        StoreStats {
            ingests: inner.ingests,
            dedup_hits: inner.dedup_hits,
            validation_failures: inner.validation_failures,
            evictions: inner.evictions,
            store_bytes: inner.store_bytes(),
            entries: inner.entries.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsim_trace::{
        semantic_hash_of, write_trace_v1, Kernel, PatternKind, PatternSpec, Workload,
    };
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmpdir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let d =
            std::env::temp_dir().join(format!("gsim-tracestore-{tag}-{}-{n}", std::process::id()));
        fs::create_dir_all(&d).expect("create temp dir");
        d
    }

    fn workload(seed: u64, footprint: u64) -> Workload {
        let spec = PatternSpec::new(PatternKind::GlobalSweep { passes: 2 }, footprint)
            .compute_per_mem(1.0);
        Workload::new("wl", seed, vec![Kernel::new("k", 8, 128, spec)])
    }

    fn trace_bytes(wl: &Workload) -> Vec<u8> {
        let mut b = Vec::new();
        write_trace(wl, &mut b).expect("write");
        b
    }

    #[test]
    fn ingest_dedupes_across_format_versions() {
        let dir = tmpdir("dedupe");
        let store = TraceStore::open(&dir, StoreConfig::default()).expect("open");
        let wl = workload(1, 4096);
        let (meta, dup) = store.ingest_bytes(&trace_bytes(&wl)).expect("ingest v2");
        assert!(!dup);
        assert_eq!(meta.trace_ref, format!("{:016x}", semantic_hash_of(&wl)));
        assert_eq!(meta.n_kernels, 1);
        assert_eq!(meta.total_warps, 8 * 4);
        assert_eq!(meta.total_warp_instrs, wl.approx_warp_instrs());

        // The same workload as a v1 file is the same content.
        let mut v1 = Vec::new();
        write_trace_v1(&wl, &mut v1).expect("write v1");
        let (meta2, dup2) = store.ingest_bytes(&v1).expect("ingest v1");
        assert!(dup2);
        assert_eq!(meta2.trace_ref, meta.trace_ref);

        let s = store.stats();
        assert_eq!((s.ingests, s.dedup_hits, s.entries), (1, 1, 1));
        assert_eq!(s.store_bytes, meta.bytes);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_replays_the_same_streams() {
        let dir = tmpdir("load");
        let store = TraceStore::open(&dir, StoreConfig::default()).expect("open");
        let wl = workload(2, 2048);
        let (meta, _) = store.ingest_bytes(&trace_bytes(&wl)).expect("ingest");
        let loaded = store.load(&meta.trace_ref).expect("load");
        assert_eq!(semantic_hash_of(&loaded), semantic_hash_of(&wl));
        assert!(matches!(
            store.load("0000000000000000"),
            Err(StoreError::NotFound(_))
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_garbage_and_counts_it() {
        let dir = tmpdir("garbage");
        let store = TraceStore::open(&dir, StoreConfig::default()).expect("open");
        assert!(matches!(
            store.ingest_bytes(b"not a trace at all"),
            Err(StoreError::Invalid(_))
        ));
        assert_eq!(store.stats().validation_failures, 1);
        assert_eq!(store.stats().entries, 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn evicts_oldest_beyond_budget_but_spares_newest() {
        let dir = tmpdir("evict");
        let one = trace_bytes(&workload(10, 1024));
        let budget = (one.len() as u64 * 5) / 2; // fits two traces, not three
        let cfg = StoreConfig {
            max_bytes: budget,
            ..StoreConfig::default()
        };
        let store = TraceStore::open(&dir, cfg).expect("open");
        let refs: Vec<String> = (0..3u64)
            .map(|i| {
                let (m, _) = store
                    .ingest_bytes(&trace_bytes(&workload(10 + i, 1024 + i * 64)))
                    .expect("ingest");
                m.trace_ref
            })
            .collect();
        let s = store.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 2);
        assert!(s.store_bytes <= budget);
        assert!(store.get(&refs[0]).is_none(), "oldest evicted");
        assert!(store.get(&refs[2]).is_some(), "newest kept");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_recovers_index_and_drops_stale_entries() {
        let dir = tmpdir("reopen");
        let wl_a = workload(20, 1024);
        let wl_b = workload(21, 2048);
        let (keep, gone) = {
            let store = TraceStore::open(&dir, StoreConfig::default()).expect("open");
            let (a, _) = store.ingest_bytes(&trace_bytes(&wl_a)).expect("a");
            let (b, _) = store.ingest_bytes(&trace_bytes(&wl_b)).expect("b");
            (a.trace_ref, b.trace_ref)
        };
        // Sabotage: delete one blob and append garbage to the index.
        fs::remove_file(dir.join(BLOB_DIR).join(format!("{gone}.gstr"))).expect("rm");
        let mut f = OpenOptions::new()
            .append(true)
            .open(dir.join(INDEX_FILE))
            .expect("index");
        writeln!(f, "{{ not json").expect("garbage");
        drop(f);

        let store = TraceStore::open(&dir, StoreConfig::default()).expect("reopen");
        assert!(store.get(&keep).is_some());
        assert!(store.get(&gone).is_none());
        assert_eq!(store.stats().entries, 1);
        assert_eq!(store.stats().validation_failures, 2);
        // The loadable survivor still decodes to the right content.
        let loaded = store.load(&keep).expect("load");
        assert_eq!(semantic_hash_of(&loaded), semantic_hash_of(&wl_a));
        fs::remove_dir_all(&dir).ok();
    }
}
