//! Deterministic fault injection for the serve stack.
//!
//! A [`FaultPlan`] is a seeded description of *which faults to inject
//! where*: delayed socket reads and mid-body disconnects in the HTTP
//! layer, panics in runner jobs, delayed reads and short writes in the
//! trace store. The plan is installed once per process (from the
//! `GSIM_FAULTS` environment variable or a CLI flag) and queried at
//! each injection *site* by name; every query is a pure function of
//! `(seed, site, per-site sequence number)`, so a given plan replays the
//! same fault sequence at every site on every run — which is what lets
//! the chaos harness (`scripts/chaos_smoke.sh`) assert exact service
//! behavior under faults instead of eyeballing flakes.
//!
//! # Spec grammar
//!
//! A plan is a comma-separated list of `key=value` pairs:
//!
//! ```text
//! seed=42,http_delay_p=0.05,http_delay_ms=20,http_disconnect_p=0.02,
//! job_panic_p=0.05,store_read_delay_p=0.1,store_read_delay_ms=5,
//! store_short_write_p=0.5
//! ```
//!
//! Probabilities (`*_p`) are in `[0, 1]`; unknown keys are errors (a
//! typo must not silently disable the chaos run). An empty spec is a
//! valid plan that injects nothing.
//!
//! # Determinism
//!
//! Each site keeps an atomic sequence counter; decision `n` at site `s`
//! hashes `(seed, s, n)` through [`SplitMix64`](gsim_rng::SplitMix64).
//! Within one site the fault sequence is therefore fixed; across sites
//! it is independent. (Which *request* hits fault `n` still depends on
//! scheduling — the guarantee is a fixed fault density and pattern per
//! site, not a fixed request↔fault pairing.)

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

use gsim_rng::SplitMix64;

/// Environment variable the serve binaries read a plan spec from.
pub const ENV_VAR: &str = "GSIM_FAULTS";

/// A seeded fault-injection plan. All probabilities default to zero: a
/// default plan injects nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every per-site decision stream.
    pub seed: u64,
    /// Probability of delaying an HTTP request read.
    pub http_delay_p: f64,
    /// Delay applied when an HTTP read is chosen for delay.
    pub http_delay_ms: u64,
    /// Probability of disconnecting mid-body while writing an HTTP
    /// response.
    pub http_disconnect_p: f64,
    /// Probability that a runner job attempt panics.
    pub job_panic_p: f64,
    /// Probability of delaying a trace-store blob read.
    pub store_read_delay_p: f64,
    /// Delay applied when a store read is chosen for delay.
    pub store_read_delay_ms: u64,
    /// Probability that a trace-store blob write is cut short (the
    /// write fails after persisting a prefix, as a crash would).
    pub store_short_write_p: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            http_delay_p: 0.0,
            http_delay_ms: 10,
            http_disconnect_p: 0.0,
            job_panic_p: 0.0,
            store_read_delay_p: 0.0,
            store_read_delay_ms: 5,
            store_short_write_p: 0.0,
        }
    }
}

/// A malformed plan spec (unknown key, unparsable value, probability out
/// of range).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault plan: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

impl FaultPlan {
    /// Parses a `key=value,key=value` spec. The empty string is a valid
    /// no-op plan.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] on unknown keys, unparsable values, or
    /// probabilities outside `[0, 1]`.
    pub fn parse(spec: &str) -> Result<Self, ParseError> {
        let mut plan = Self::default();
        for pair in spec.split(',') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| ParseError(format!("{pair:?} is not key=value")))?;
            let prob = || -> Result<f64, ParseError> {
                let p: f64 = value
                    .parse()
                    .map_err(|_| ParseError(format!("{key} takes a number, got {value:?}")))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(ParseError(format!("{key} must be in [0, 1], got {value}")));
                }
                Ok(p)
            };
            let int = || -> Result<u64, ParseError> {
                value
                    .parse()
                    .map_err(|_| ParseError(format!("{key} takes an integer, got {value:?}")))
            };
            match key.trim() {
                "seed" => plan.seed = int()?,
                "http_delay_p" => plan.http_delay_p = prob()?,
                "http_delay_ms" => plan.http_delay_ms = int()?,
                "http_disconnect_p" => plan.http_disconnect_p = prob()?,
                "job_panic_p" => plan.job_panic_p = prob()?,
                "store_read_delay_p" => plan.store_read_delay_p = prob()?,
                "store_read_delay_ms" => plan.store_read_delay_ms = int()?,
                "store_short_write_p" => plan.store_short_write_p = prob()?,
                other => return Err(ParseError(format!("unknown key {other:?}"))),
            }
        }
        Ok(plan)
    }

    /// Whether the plan injects anything at all.
    pub fn is_active(&self) -> bool {
        self.http_delay_p > 0.0
            || self.http_disconnect_p > 0.0
            || self.job_panic_p > 0.0
            || self.store_read_delay_p > 0.0
            || self.store_short_write_p > 0.0
    }
}

/// One decision stream: a site name, its sequence counter, and the
/// injected-fault tally.
struct Site {
    next: AtomicU64,
    injected: AtomicU64,
}

/// An installed plan plus its per-site decision state.
pub struct Injector {
    plan: FaultPlan,
    sites: Mutex<HashMap<&'static str, &'static Site>>,
}

/// FNV-1a 64-bit, used to fold the site name into the decision seed.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Injector {
    /// Creates a standalone injector. Most code uses the process-wide
    /// one ([`install`] + [`active`]); a standalone instance is for
    /// tests and harnesses that must not leak faults into the rest of
    /// the process.
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            sites: Mutex::new(HashMap::new()),
        }
    }

    /// The installed plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    fn site(&self, name: &'static str) -> &'static Site {
        let mut sites = self.sites.lock().expect("fault site registry");
        sites.entry(name).or_insert_with(|| {
            // Sites are named by string literals at a handful of call
            // sites; leaking one registry entry per site per process is
            // the cost of lock-free decisions afterwards.
            Box::leak(Box::new(Site {
                next: AtomicU64::new(0),
                injected: AtomicU64::new(0),
            }))
        })
    }

    /// Decision `n` of `site`: true with probability `p`, deterministic
    /// in `(seed, site, n)`.
    fn decide(&self, name: &'static str, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        let site = self.site(name);
        let n = site.next.fetch_add(1, Ordering::Relaxed);
        let mut sm = SplitMix64::new(self.plan.seed ^ fnv1a(name.as_bytes()).wrapping_add(n));
        // 53 uniform bits -> [0, 1).
        let u = (sm.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let hit = u < p;
        if hit {
            site.injected.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Should this HTTP request read be delayed? Returns the delay.
    pub fn http_read_delay(&self) -> Option<Duration> {
        self.decide("http.read_delay", self.plan.http_delay_p)
            .then(|| Duration::from_millis(self.plan.http_delay_ms))
    }

    /// Should this HTTP response be cut off mid-body?
    pub fn http_disconnect(&self) -> bool {
        self.decide("http.disconnect", self.plan.http_disconnect_p)
    }

    /// Should this runner job attempt panic?
    pub fn job_panic(&self) -> bool {
        self.decide("job.panic", self.plan.job_panic_p)
    }

    /// Should this trace-store read be delayed? Returns the delay.
    pub fn store_read_delay(&self) -> Option<Duration> {
        self.decide("store.read_delay", self.plan.store_read_delay_p)
            .then(|| Duration::from_millis(self.plan.store_read_delay_ms))
    }

    /// Should this trace-store write of `len` bytes be cut short?
    /// Returns the number of bytes to actually persist (always < `len`).
    pub fn store_short_write(&self, len: usize) -> Option<usize> {
        (len > 0 && self.decide("store.short_write", self.plan.store_short_write_p))
            .then_some(len / 2)
    }

    /// Injected-fault tallies per site, sorted by site name — the
    /// `faults` group of the serve `/metrics` document.
    pub fn injected(&self) -> Vec<(&'static str, u64)> {
        let sites = self.sites.lock().expect("fault site registry");
        let mut out: Vec<(&'static str, u64)> = sites
            .iter()
            .map(|(&name, site)| (name, site.injected.load(Ordering::Relaxed)))
            .collect();
        out.sort_unstable_by_key(|&(name, _)| name);
        out
    }
}

static GLOBAL: OnceLock<Injector> = OnceLock::new();

/// Installs `plan` as the process-wide injector. The first install wins;
/// later calls are ignored (and return `false`).
pub fn install(plan: FaultPlan) -> bool {
    GLOBAL.set(Injector::new(plan)).is_ok()
}

/// Installs a plan parsed from the `GSIM_FAULTS` environment variable,
/// if set. Returns the spec error instead of installing a partial plan.
///
/// # Errors
///
/// Returns a [`ParseError`] when the variable is set but malformed.
pub fn install_from_env() -> Result<(), ParseError> {
    if let Ok(spec) = std::env::var(ENV_VAR) {
        if !spec.trim().is_empty() {
            install(FaultPlan::parse(&spec)?);
        }
    }
    Ok(())
}

/// The process-wide injector, when a plan with any active fault is
/// installed. Injection sites call this on their hot path; `None` (the
/// production case) costs one atomic load.
pub fn active() -> Option<&'static Injector> {
    GLOBAL.get().filter(|inj| inj.plan.is_active())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_and_rejects_garbage() {
        let plan = FaultPlan::parse(
            "seed=7, http_delay_p=0.25, http_delay_ms=3, http_disconnect_p=0.5,\
             job_panic_p=0.1, store_read_delay_p=1.0, store_read_delay_ms=2,\
             store_short_write_p=0.75",
        )
        .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.http_delay_ms, 3);
        assert!((plan.http_disconnect_p - 0.5).abs() < 1e-12);
        assert!(plan.is_active());

        assert!(FaultPlan::parse("").unwrap() == FaultPlan::default());
        assert!(!FaultPlan::parse("seed=9").unwrap().is_active());
        assert!(FaultPlan::parse("job_panic_p=1.5").is_err());
        assert!(FaultPlan::parse("jop_panic_p=0.5").is_err());
        assert!(FaultPlan::parse("seed").is_err());
    }

    #[test]
    fn decisions_are_deterministic_per_seed_and_site() {
        let plan = FaultPlan {
            seed: 42,
            job_panic_p: 0.5,
            ..FaultPlan::default()
        };
        let a = Injector::new(plan.clone());
        let b = Injector::new(plan.clone());
        let seq_a: Vec<bool> = (0..64).map(|_| a.job_panic()).collect();
        let seq_b: Vec<bool> = (0..64).map(|_| b.job_panic()).collect();
        assert_eq!(seq_a, seq_b, "same seed, same sequence");
        assert!(seq_a.iter().any(|&x| x) && seq_a.iter().any(|&x| !x));

        let c = Injector::new(FaultPlan { seed: 43, ..plan });
        let seq_c: Vec<bool> = (0..64).map(|_| c.job_panic()).collect();
        assert_ne!(seq_a, seq_c, "different seed, different sequence");
    }

    #[test]
    fn probability_extremes_and_tallies() {
        let never = Injector::new(FaultPlan {
            seed: 1,
            ..FaultPlan::default()
        });
        assert!((0..32).all(|_| !never.http_disconnect()));
        assert!(never.injected().iter().all(|&(_, n)| n == 0));

        let always = Injector::new(FaultPlan {
            seed: 1,
            http_disconnect_p: 1.0,
            store_short_write_p: 1.0,
            ..FaultPlan::default()
        });
        assert!((0..32).all(|_| always.http_disconnect()));
        assert_eq!(always.store_short_write(100), Some(50));
        assert_eq!(always.store_short_write(0), None, "empty write never cut");
        let tallies = always.injected();
        assert!(tallies
            .iter()
            .any(|&(name, n)| name == "http.disconnect" && n == 32));
    }

    #[test]
    fn default_plan_is_inert() {
        assert!(!FaultPlan::default().is_active());
    }
}
