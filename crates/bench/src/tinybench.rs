//! A tiny dependency-free micro-benchmark harness.
//!
//! The bench targets (`cargo bench`) used to be Criterion benches; this
//! module replaces them with an in-tree harness so the workspace builds
//! with no external crates. It keeps the parts that matter for our use:
//! warmup, batch-size calibration so fast functions are timed over
//! batches rather than single calls, several samples with min/median/mean
//! reporting, and optional element throughput.
//!
//! Filtering works like Criterion's: `cargo bench -- <substring>` runs
//! only benchmarks whose `group/name` id contains the substring.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-exported optimizer barrier; wrap inputs/outputs you do not want
/// folded away.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How long a calibrated batch should roughly take.
const TARGET_BATCH: Duration = Duration::from_millis(20);
/// Upper bound on iterations per batch (guards degenerate calibration).
const MAX_BATCH: u64 = 1 << 22;

/// A named group of benchmarks, mirroring Criterion's `benchmark_group`.
pub struct Group {
    name: String,
    samples: usize,
    throughput: Option<u64>,
    filter: Option<String>,
}

impl Group {
    /// Starts a group; the CLI filter (first non-flag argument after
    /// `--`) is captured from the process arguments.
    pub fn new(name: impl Into<String>) -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        Self {
            name: name.into(),
            samples: 10,
            throughput: None,
            filter,
        }
    }

    /// Sets the number of timed samples per benchmark (default 10).
    #[must_use]
    pub fn samples(mut self, n: usize) -> Self {
        self.samples = n.max(2);
        self
    }

    /// Declares that one iteration processes `elements` items; the report
    /// then includes a throughput column.
    #[must_use]
    pub fn throughput(mut self, elements: u64) -> Self {
        self.throughput = Some(elements);
        self
    }

    /// Times `f`, printing one summary line. Returns the median
    /// per-iteration time for programmatic use.
    pub fn bench<T>(&self, name: &str, mut f: impl FnMut() -> T) -> Option<Duration> {
        let id = format!("{}/{}", self.name, name);
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return None;
            }
        }

        // Warmup + batch calibration: grow the batch until it takes long
        // enough for the clock to resolve it well.
        let mut batch: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let took = t0.elapsed();
            if took >= TARGET_BATCH || batch >= MAX_BATCH {
                break;
            }
            batch = if took.is_zero() {
                batch * 64
            } else {
                let scale = TARGET_BATCH.as_secs_f64() / took.as_secs_f64();
                ((batch as f64 * scale * 1.2) as u64).clamp(batch + 1, MAX_BATCH)
            };
        }

        let mut per_iter: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..batch {
                    black_box(f());
                }
                t0.elapsed() / u32::try_from(batch).unwrap_or(u32::MAX)
            })
            .collect();
        per_iter.sort();

        let min = per_iter[0];
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<Duration>() / self.samples as u32;
        let rate = self
            .throughput
            .map(|n| {
                let eps = n as f64 / median.as_secs_f64();
                format!("  {:>10.2} Melem/s", eps / 1e6)
            })
            .unwrap_or_default();
        println!(
            "{id:<44} min {:>12}  median {:>12}  mean {:>12}{rate}",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean),
        );
        Some(median)
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_returns_a_sane_median() {
        let g = Group::new("test").samples(3);
        let median = g
            .bench("spin", || {
                let mut acc = 0u64;
                for i in 0..100u64 {
                    acc = acc.wrapping_add(black_box(i));
                }
                acc
            })
            .expect("no filter set in tests");
        assert!(median < Duration::from_millis(100));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_nanos(1_500)), "1.50 us");
        assert_eq!(fmt_duration(Duration::from_millis(2)), "2.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(3)), "3.000 s");
    }
}
