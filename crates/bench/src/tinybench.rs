//! A tiny dependency-free micro-benchmark harness.
//!
//! The bench targets (`cargo bench`) used to be Criterion benches; this
//! module replaces them with an in-tree harness so the workspace builds
//! with no external crates. It keeps the parts that matter for our use:
//! warmup, batch-size calibration so fast functions are timed over
//! batches rather than single calls, several samples with min/median/mean
//! reporting, and optional element throughput.
//!
//! Filtering works like Criterion's: `cargo bench -- <substring>` runs
//! only benchmarks whose `group/name` id contains the substring.
//!
//! Besides the human-readable lines, a bench target can collect its
//! results into a [`JsonReport`] and write a `BENCH_<name>.json` file at
//! the repo root, so successive runs can be diffed for regressions
//! (`make bench` refreshes them). Setting `GSIM_BENCH_FAST=1` asks bench
//! targets for a smoke-test-sized run — fewer samples on shrunk inputs —
//! for CI, where only the harness and the JSON schema are under test.

use std::hint::black_box as std_black_box;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Re-exported optimizer barrier; wrap inputs/outputs you do not want
/// folded away.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How long a calibrated batch should roughly take.
const TARGET_BATCH: Duration = Duration::from_millis(20);
/// Upper bound on iterations per batch (guards degenerate calibration).
const MAX_BATCH: u64 = 1 << 22;

/// A named group of benchmarks, mirroring Criterion's `benchmark_group`.
pub struct Group {
    name: String,
    samples: usize,
    throughput: Option<u64>,
    filter: Option<String>,
}

impl Group {
    /// Starts a group; the CLI filter (first non-flag argument after
    /// `--`) is captured from the process arguments.
    pub fn new(name: impl Into<String>) -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        Self {
            name: name.into(),
            samples: 10,
            throughput: None,
            filter,
        }
    }

    /// Sets the number of timed samples per benchmark (default 10).
    #[must_use]
    pub fn samples(mut self, n: usize) -> Self {
        self.samples = n.max(2);
        self
    }

    /// Declares that one iteration processes `elements` items; the report
    /// then includes a throughput column.
    #[must_use]
    pub fn throughput(mut self, elements: u64) -> Self {
        self.throughput = Some(elements);
        self
    }

    /// Times `f`, printing one summary line. Returns the median
    /// per-iteration time for programmatic use.
    pub fn bench<T>(&self, name: &str, mut f: impl FnMut() -> T) -> Option<Duration> {
        let id = format!("{}/{}", self.name, name);
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return None;
            }
        }

        // Warmup + batch calibration: grow the batch until it takes long
        // enough for the clock to resolve it well.
        let mut batch: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let took = t0.elapsed();
            if took >= TARGET_BATCH || batch >= MAX_BATCH {
                break;
            }
            batch = if took.is_zero() {
                batch * 64
            } else {
                let scale = TARGET_BATCH.as_secs_f64() / took.as_secs_f64();
                ((batch as f64 * scale * 1.2) as u64).clamp(batch + 1, MAX_BATCH)
            };
        }

        let mut per_iter: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..batch {
                    black_box(f());
                }
                t0.elapsed() / u32::try_from(batch).unwrap_or(u32::MAX)
            })
            .collect();
        per_iter.sort();

        let min = per_iter[0];
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<Duration>() / self.samples as u32;
        let rate = self
            .throughput
            .map(|n| {
                let eps = n as f64 / median.as_secs_f64();
                format!("  {:>10.2} Melem/s", eps / 1e6)
            })
            .unwrap_or_default();
        println!(
            "{id:<44} min {:>12}  median {:>12}  mean {:>12}{rate}",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean),
        );
        Some(median)
    }
}

/// Whether `GSIM_BENCH_FAST` asks for a smoke-test-sized run (CI): bench
/// targets should cut sample counts and shrink inputs so the whole target
/// finishes in seconds. Timings from fast runs are not comparable to full
/// runs; only the emitted JSON's shape is.
pub fn fast_mode() -> bool {
    std::env::var_os("GSIM_BENCH_FAST").is_some_and(|v| !v.is_empty() && v != "0")
}

/// One benchmark's distilled result inside a [`JsonReport`].
#[derive(Debug, Clone)]
pub struct Record {
    /// The `group/name` benchmark id.
    pub name: String,
    /// Median wall time of one iteration, in nanoseconds. `None` when
    /// the run was oversubscribed: such timings measure scheduler
    /// contention, not the simulator, and committing them would invite
    /// meaningless diffs — the record keeps its identity fields but
    /// refuses to carry a number.
    pub median_ns: Option<u128>,
    /// Intra-simulation threads the measured run used (1 = serial).
    pub sim_threads: u32,
    /// Relaxed-sync slack window the run used, in cycles (0 = the
    /// bit-exact default; see `--sync-slack`).
    pub sync_slack: u32,
    /// Whether the run asked for more simulation threads than the host
    /// has logical CPUs — such timings measure scheduler contention,
    /// not the simulator, and diffs against them are not meaningful.
    /// `false` when the host size is unknown (`host_logical_cpus` 0).
    pub oversubscribed: bool,
    /// Wall-time speedup relative to this record's family `t1` run
    /// (`median_t1 / median_tN`); `None` for records outside a
    /// strong-scaling family or when either side is oversubscribed.
    pub speedup_vs_t1: Option<f64>,
    /// Simulated cycles per wall-clock second, for simulator benches
    /// (`None` for benches that do not run the timing simulator).
    pub cycles_per_second: Option<f64>,
    /// GPUs the measured run simulated (1 = single-package runs).
    pub n_gpus: u32,
    /// Page-placement policy of a multi-GPU run (`None` for
    /// single-package runs).
    pub placement: Option<String>,
}

/// Collects [`Record`]s and writes them as `BENCH_<target>.json` at the
/// repo root. The format is a stable, diffable schema:
///
/// ```json
/// {
///   "schema": "gsim-tinybench-v1",
///   "fast_mode": false,
///   "host_logical_cpus": 8,
///   "records": [
///     {"name": "g/t2", "median_ns": 12, "sim_threads": 2,
///      "sync_slack": 0, "oversubscribed": false,
///      "speedup_vs_t1": 1.8, "cycles_per_second": 3.1e6,
///      "n_gpus": 1, "placement": null}
///   ]
/// }
/// ```
///
/// Oversubscribed records (thread ask beyond the host's CPUs) keep
/// their identity fields but emit `median_ns`, `speedup_vs_t1` and
/// `cycles_per_second` as `null`: a contended timing committed as a
/// number would silently poison every later diff.
///
/// `host_logical_cpus` records the machine the numbers came from —
/// timings from hosts with different logical-CPU counts are not
/// comparable, and the field makes such diffs self-explaining.
pub struct JsonReport {
    path: PathBuf,
    records: Vec<Record>,
}

impl JsonReport {
    /// A report that will land at `<repo root>/BENCH_<target>.json`.
    pub fn for_target(target: &str) -> Self {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("bench crate sits two levels under the repo root");
        Self {
            path: root.join(format!("BENCH_{target}.json")),
            records: Vec::new(),
        }
    }

    /// Adds one result. `cycles` (the deterministic simulated-cycle count
    /// of one iteration) turns into a cycles-per-second rate.
    pub fn record(
        &mut self,
        name: impl Into<String>,
        median: Duration,
        sim_threads: u32,
        cycles: Option<u64>,
    ) {
        self.record_scaled(name, median, sim_threads, 0, cycles, None);
    }

    /// Adds one result with the full strong-scaling identity: the slack
    /// window the run used and (for family members past `t1`) its
    /// speedup over the family's serial run. On an oversubscribed ask
    /// the timing-derived fields are dropped to `null` — only the
    /// record's identity is committed.
    pub fn record_scaled(
        &mut self,
        name: impl Into<String>,
        median: Duration,
        sim_threads: u32,
        sync_slack: u32,
        cycles: Option<u64>,
        speedup_vs_t1: Option<f64>,
    ) {
        self.push(
            name,
            median,
            sim_threads,
            sync_slack,
            cycles,
            speedup_vs_t1,
            1,
            None,
        );
    }

    /// Adds one multi-GPU system result: like [`JsonReport::record_scaled`]
    /// but carrying the system shape (GPU count and placement policy) so
    /// strong-scaling families over GPUs are diffable by identity.
    #[allow(clippy::too_many_arguments)]
    pub fn record_multigpu(
        &mut self,
        name: impl Into<String>,
        median: Duration,
        sim_threads: u32,
        n_gpus: u32,
        placement: &str,
        cycles: Option<u64>,
        speedup_vs_t1: Option<f64>,
    ) {
        self.push(
            name,
            median,
            sim_threads,
            0,
            cycles,
            speedup_vs_t1,
            n_gpus,
            Some(placement.to_string()),
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn push(
        &mut self,
        name: impl Into<String>,
        median: Duration,
        sim_threads: u32,
        sync_slack: u32,
        cycles: Option<u64>,
        speedup_vs_t1: Option<f64>,
        n_gpus: u32,
        placement: Option<String>,
    ) {
        let secs = median.as_secs_f64();
        let cpus = host_logical_cpus();
        let oversubscribed = cpus > 0 && sim_threads as usize > cpus;
        self.records.push(Record {
            name: name.into(),
            median_ns: (!oversubscribed).then_some(median.as_nanos()),
            sim_threads,
            sync_slack,
            oversubscribed,
            speedup_vs_t1: speedup_vs_t1.filter(|s| s.is_finite() && !oversubscribed),
            cycles_per_second: cycles
                .filter(|_| secs > 0.0 && !oversubscribed)
                .map(|c| c as f64 / secs),
            n_gpus,
            placement,
        });
    }

    /// The JSON document (pretty-printed by hand; string escaping via
    /// the shared `gsim-json` implementation).
    pub fn render(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"gsim-tinybench-v1\",\n");
        out.push_str(&format!("  \"fast_mode\": {},\n", fast_mode()));
        out.push_str(&format!(
            "  \"host_logical_cpus\": {},\n",
            host_logical_cpus()
        ));
        out.push_str("  \"records\": [");
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"name\": {}, \"median_ns\": {}, \"sim_threads\": {}, \
                 \"sync_slack\": {}, \"oversubscribed\": {}, \
                 \"speedup_vs_t1\": {}, \"cycles_per_second\": {}, \
                 \"n_gpus\": {}, \"placement\": {}}}",
                gsim_json::json_string(&r.name),
                r.median_ns.map_or_else(|| "null".into(), |n| n.to_string()),
                r.sim_threads,
                r.sync_slack,
                r.oversubscribed,
                match r.speedup_vs_t1 {
                    Some(s) if s.is_finite() => format!("{s:.3}"),
                    _ => "null".into(),
                },
                match r.cycles_per_second {
                    Some(c) if c.is_finite() => format!("{c:.1}"),
                    _ => "null".into(),
                },
                r.n_gpus,
                r.placement
                    .as_deref()
                    .map_or_else(|| "null".into(), gsim_json::json_string),
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Writes the report; prints where it went. Call once at target exit.
    /// Skipped when a CLI filter deselected every benchmark, so partial
    /// runs never clobber a full report.
    pub fn write(&self) {
        if self.records.is_empty() {
            return;
        }
        std::fs::write(&self.path, self.render())
            .unwrap_or_else(|e| panic!("write {}: {e}", self.path.display()));
        println!("wrote {}", self.path.display());
    }
}

/// Logical CPUs on the host running the bench (0 when the platform
/// cannot report it — never silently wrong, always present).
pub fn host_logical_cpus() -> usize {
    std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get)
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use gsim_json::Json;

    use super::*;

    #[test]
    fn bench_returns_a_sane_median() {
        let g = Group::new("test").samples(3);
        let median = g
            .bench("spin", || {
                let mut acc = 0u64;
                for i in 0..100u64 {
                    acc = acc.wrapping_add(black_box(i));
                }
                acc
            })
            .expect("no filter set in tests");
        assert!(median < Duration::from_millis(100));
    }

    #[test]
    fn json_report_renders_schema() {
        let mut rep = JsonReport::for_target("test");
        rep.record("g/serial", Duration::from_micros(3), 1, Some(6_000));
        rep.record("g/\"odd\"", Duration::from_nanos(0), 1, Some(1));
        rep.record("g/no_sim", Duration::from_millis(1), 1, None);
        let json = rep.render();
        assert!(json.contains("\"schema\": \"gsim-tinybench-v1\""));
        // The whole document is valid JSON and records the host size.
        let doc = gsim_json::parse(&json).expect("report is valid JSON");
        let cpus = doc.get("host_logical_cpus").unwrap().as_u64().unwrap();
        assert_eq!(cpus, host_logical_cpus() as u64);
        // 6000 cycles in 3 us = 2e9 cycles/sec.
        assert!(json.contains("\"cycles_per_second\": 2000000000.0"));
        // Every record says whether its thread ask fit the host, and
        // carries the full identity even through the legacy entry point.
        for (i, rec) in doc
            .get("records")
            .and_then(gsim_json::Json::as_arr)
            .unwrap()
            .iter()
            .enumerate()
        {
            let threads = rec.get("sim_threads").unwrap().as_u64().unwrap();
            let expected = cpus > 0 && threads > cpus;
            assert_eq!(
                rec.get("oversubscribed").unwrap().as_bool(),
                Some(expected),
                "record {i}"
            );
            assert_eq!(rec.get("sync_slack").unwrap().as_u64(), Some(0));
            assert!(
                matches!(rec.get("speedup_vs_t1"), Some(Json::Null)),
                "record {i}: legacy entry point has no scaling family"
            );
        }
        // Serial asks never oversubscribe, so the medians are committed.
        assert!(json.contains("\"median_ns\": 3000, \"sim_threads\": 1,"));
        // Zero-duration medians cannot produce a rate.
        assert!(json.contains("\\\"odd\\\""));
        assert!(json.contains("\"median_ns\": 0, \"sim_threads\": 1,"));
        assert!(json.matches("\"cycles_per_second\": null").count() >= 1);
        // Non-simulator benches carry no rate either.
        assert!(json.contains("\"name\": \"g/no_sim\""));
        assert_eq!(json.matches("\"cycles_per_second\": null").count(), 2);
    }

    #[test]
    fn scaled_records_carry_slack_and_speedup() {
        let mut rep = JsonReport::for_target("test");
        rep.record_scaled(
            "g/t2_slack16",
            Duration::from_micros(2),
            1,
            16,
            Some(4_000),
            Some(1.5),
        );
        let json = rep.render();
        assert!(json.contains("\"sync_slack\": 16,"));
        assert!(json.contains("\"speedup_vs_t1\": 1.500,"));
        assert!(json.contains("\"cycles_per_second\": 2000000000.0"));
    }

    #[test]
    fn multigpu_records_carry_the_system_shape() {
        let mut rep = JsonReport::for_target("test");
        rep.record("g/single", Duration::from_micros(3), 1, Some(6_000));
        rep.record_multigpu(
            "g/g4",
            Duration::from_micros(4),
            1,
            4,
            "interleave",
            Some(8_000),
            Some(2.5),
        );
        let json = rep.render();
        let doc = gsim_json::parse(&json).expect("report is valid JSON");
        let records = doc
            .get("records")
            .and_then(gsim_json::Json::as_arr)
            .unwrap();
        // Single-package records keep the single-GPU identity.
        assert_eq!(records[0].get("n_gpus").unwrap().as_u64(), Some(1));
        assert!(matches!(records[0].get("placement"), Some(Json::Null)));
        // Multi-GPU records carry the system shape.
        assert_eq!(records[1].get("n_gpus").unwrap().as_u64(), Some(4));
        assert_eq!(
            records[1].get("placement").and_then(Json::as_str),
            Some("interleave")
        );
        assert!(json.contains("\"speedup_vs_t1\": 2.500,"));
    }

    #[test]
    fn oversubscribed_records_refuse_to_commit_timings() {
        let cpus = host_logical_cpus();
        if cpus == 0 {
            return; // Host size unknown: oversubscription undetectable.
        }
        let threads = u32::try_from(cpus).unwrap_or(u32::MAX).saturating_add(1);
        let mut rep = JsonReport::for_target("test");
        rep.record_scaled(
            "g/overloaded",
            Duration::from_micros(5),
            threads,
            0,
            Some(9_000),
            Some(0.4),
        );
        let json = rep.render();
        let doc = gsim_json::parse(&json).expect("report is valid JSON");
        let rec = &doc
            .get("records")
            .and_then(gsim_json::Json::as_arr)
            .unwrap()[0];
        assert_eq!(rec.get("oversubscribed").unwrap().as_bool(), Some(true));
        // Identity survives; every timing-derived field is null.
        assert_eq!(
            rec.get("sim_threads").unwrap().as_u64(),
            Some(u64::from(threads))
        );
        for field in ["median_ns", "speedup_vs_t1", "cycles_per_second"] {
            assert!(
                matches!(rec.get(field), Some(Json::Null)),
                "{field} must be null when oversubscribed"
            );
        }
    }

    #[test]
    fn empty_reports_are_not_written() {
        // A filtered-out run must not clobber BENCH_*.json with `[]`.
        let rep = JsonReport::for_target("nonexistent-target");
        rep.write();
        assert!(!rep.path.exists());
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_nanos(1_500)), "1.50 us");
        assert_eq!(fmt_duration(Duration::from_millis(2)), "2.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(3)), "3.000 s");
    }
}
