//! `gsim` — command-line front-end to the GPU timing simulator.
//!
//! ```text
//! gsim list
//! gsim run <benchmark> [--sms N] [--scale D] [--banked-dram BANKS] [--weak]
//!          [--sim-threads N] [--sync-slack S] [--assert-determinism]
//! gsim sweep <benchmark> [--scale D] [--threads N] [--weak] [--sim-threads N] [--sync-slack S]
//! gsim mcm <benchmark> [--chiplets C] [--scale D] [--sim-threads N] [--sync-slack S]
//!          [--assert-determinism]
//! gsim mrc <benchmark> [--scale D]
//! gsim trace record <benchmark> [-o FILE] [--scale D] [--format 1|2] [--weak --sms N]
//! gsim trace ingest <file> [--store DIR] [--max-trace-mb N]
//! gsim trace info <file|ref> [--store DIR] [--mrc] [--max-trace-mb N]
//! gsim trace ls [--store DIR]
//! gsim trace-dump <benchmark> -o <file> [--scale D]
//! gsim trace-run <file> [--sms N] [--scale D] [--sim-threads N]
//! gsim predict <benchmark> [targets...] [--scale D] [--threads N]
//!              [--path auto|fast|full] [--fast-path-gate X]
//! gsim serve [--addr HOST:PORT] [--threads N] [--cache-dir DIR] [--store DIR]
//!            [--default-deadline-ms N] [--max-inflight-predicts N]
//!            [--max-inflight-cheap N] [--degrade-threshold N]
//!            [--drain-grace-ms N] [--fast-path-gate X] [--fault-plan SPEC]
//! ```
//!
//! `run` simulates a Table II benchmark (or, with `--weak`, the Table IV
//! input matched to `--sms`); `sweep` simulates the whole 8–128-SM size
//! ladder on a gsim-runner worker pool; `trace-dump`/`trace-run` exercise
//! the trace-driven front-end; `mrc` prints the functional miss-rate
//! curve with region labels; `serve` runs the gsim-serve HTTP prediction
//! service until `POST /v1/shutdown` arrives or stdin reaches EOF.
//!
//! `trace` manages the content-addressed trace store (default
//! `./tracestore`, override with `--store`): `record` captures a suite
//! benchmark to a `.gstr` file (v2 framed format by default, `--format 1`
//! for the legacy buffer format), `ingest` validates and stores a trace
//! under its content hash, `info` streams a file (or a stored `ref`)
//! printing its metadata — with `--mrc`, also a stack-distance miss-rate
//! curve collected without the timing simulator — and `ls` lists the
//! store. Trace decode failures map to distinct exit codes: 3 = not a
//! trace, 4 = unsupported version, 5 = corrupt, 6 = over the size limit
//! (`--max-trace-mb`), 1 = I/O.
//!
//! `predict` drives the staged collect→fit→predict plan (DESIGN.md §14)
//! from the command line: a sampled sharded Stage-1 collection feeds the
//! compute-intensity gate, memory-bound workloads are answered from
//! roofline-synthesized fits in milliseconds, and compute-sensitive ones
//! escalate to the two scale-model timing simulations run concurrently
//! on the runner pool. `--path` forces either path; `--fast-path-gate`
//! moves the memory-pressure threshold (default 1.0; under `serve` the
//! same flag tunes the service's gate, `inf` escalates every `auto`
//! request).
//!
//! `--sim-threads N` shards each simulation's per-SM phase *and* its
//! owner-sharded memory partitions over N threads (`--threads`
//! parallelises *across* sweep jobs instead; under `serve` it sizes the
//! HTTP worker pool). Results are bit-identical for any N ≥ 1.
//! `--sync-slack S` opts into bounded-slack relaxed synchronisation: SMs
//! run up to S cycles past the memory merge barrier (DESIGN.md §15).
//! S = 0 (the default) is bit-exact; S > 0 is still deterministic for a
//! given S but drifts within a small envelope, so it cannot be combined
//! with `--assert-determinism`, which re-runs the simulation serially and
//! asserts the sharded run is bit-identical (exit 2 on the combination,
//! non-zero if the assertion trips). The run summary prints the effective
//! phase-B mode: owner-sharded, or the serial fallback when
//! `--sim-threads 1`.
//!
//! `serve`'s overload knobs (DESIGN.md §13): `--default-deadline-ms`
//! bounds every predict unless the request's `X-Gsim-Deadline-Ms` header
//! overrides it; `--max-inflight-predicts` / `--max-inflight-cheap` are
//! the per-class admission budgets (shed with 429 + `Retry-After`
//! beyond them); `--degrade-threshold` sets how many concurrent leaders
//! saturate the simulation pool before MRC-capable predicts degrade to
//! the MRC-only fast path; `--drain-grace-ms` bounds the shutdown
//! drain. `--fault-plan SPEC` (or the `GSIM_FAULTS` env var; the flag
//! wins) installs a deterministic fault-injection plan, e.g.
//! `seed=42,http_delay_p=0.05,job_panic_p=0.02` — see `gsim-faults`.

use std::fs::File;
use std::process::exit;

use gsim_core::{detect_cliff, mrc_from_trace, SizedMrc};
use gsim_runner::{ProgressReporter, Runner, RunnerConfig};
use gsim_sim::{collect_mrc, ChipletConfig, GpuConfig, SimStats, Simulator};
use gsim_trace::suite::{strong_benchmark, strong_suite};
use gsim_trace::weak::{weak_benchmark, weak_suite};
use gsim_trace::{
    MemScale, TraceLimits, TraceReadError, TraceReader, TracedWorkload, Workload, WorkloadModel,
};
use gsim_tracestore::{StoreConfig, StoreError, TraceStore};

fn usage() -> ! {
    eprintln!(
        "usage:\n  gsim list\n  gsim run <benchmark> [--sms N] [--scale D] \
         [--banked-dram BANKS] [--weak] [--sim-threads N] [--sync-slack S] \
         [--assert-determinism]\n  gsim sweep <benchmark> [--scale D] \
         [--threads N] [--weak] [--sim-threads N] [--sync-slack S]\n  \
         gsim mcm <benchmark> [--chiplets C] \
         [--scale D] [--sim-threads N] [--sync-slack S] [--assert-determinism]\n  \
         gsim mrc <benchmark> [--scale D]\n  \
         gsim trace record <benchmark> [-o FILE] [--scale D] [--format 1|2] [--weak --sms N]\n  \
         gsim trace ingest <file> [--store DIR] [--max-trace-mb N]\n  \
         gsim trace info <file|ref> [--store DIR] [--mrc] [--max-trace-mb N]\n  \
         gsim trace ls [--store DIR]\n  \
         gsim trace-dump <benchmark> -o <file> [--scale D]\n  \
         gsim trace-run <file> [--sms N] [--scale D] [--sim-threads N]\n  \
         gsim predict <benchmark> [targets...] [--scale D] [--threads N] \
         [--path auto|fast|full] [--fast-path-gate X]\n  \
         gsim serve [--addr HOST:PORT] [--threads N] [--cache-dir DIR] [--store DIR] \
         [--runner-threads N] [--default-deadline-ms N] [--max-inflight-predicts N] \
         [--max-inflight-cheap N] [--degrade-threshold N] [--drain-grace-ms N] \
         [--fast-path-gate X] [--fault-plan SPEC]"
    );
    exit(2)
}

struct Flags {
    sms: u32,
    chiplets: u32,
    scale: MemScale,
    banked_dram: u32,
    threads: Option<usize>,
    runner_threads: usize,
    sim_threads: u32,
    sync_slack: u32,
    assert_determinism: bool,
    weak: bool,
    addr: String,
    cache_dir: Option<String>,
    store: Option<String>,
    format: u8,
    max_trace_mb: u64,
    mrc: bool,
    output: Option<String>,
    default_deadline_ms: u64,
    max_inflight_predicts: usize,
    max_inflight_cheap: usize,
    degrade_threshold: usize,
    drain_grace_ms: u64,
    fast_path_gate: f64,
    path: String,
    fault_plan: Option<String>,
    positional: Vec<String>,
}

fn parse(args: &[String]) -> Flags {
    let mut f = Flags {
        sms: 32,
        chiplets: 4,
        scale: MemScale::default(),
        banked_dram: 0,
        threads: None,
        runner_threads: 0,
        sim_threads: 1,
        sync_slack: 0,
        assert_determinism: false,
        weak: false,
        addr: "127.0.0.1:8191".to_string(),
        cache_dir: None,
        store: None,
        format: 2,
        max_trace_mb: 0,
        mrc: false,
        output: None,
        default_deadline_ms: 0,
        max_inflight_predicts: 0,
        max_inflight_cheap: 0,
        degrade_threshold: 0,
        drain_grace_ms: 5000,
        fast_path_gate: 0.0,
        path: "auto".to_string(),
        fault_plan: None,
        positional: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut num = |name: &str| -> u32 {
            it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("{name} takes an integer");
                exit(2)
            })
        };
        match a.as_str() {
            "--sms" => f.sms = num("--sms"),
            "--chiplets" => f.chiplets = num("--chiplets"),
            "--scale" => f.scale = MemScale::new(num("--scale")),
            "--banked-dram" => f.banked_dram = num("--banked-dram"),
            "--threads" => f.threads = Some(num("--threads") as usize),
            "--runner-threads" => f.runner_threads = num("--runner-threads") as usize,
            "--sim-threads" => {
                f.sim_threads = num("--sim-threads");
                if f.sim_threads == 0 {
                    eprintln!("--sim-threads must be >= 1");
                    exit(2)
                }
            }
            // `num` already exits 2 on negatives and garbage (u32 parse).
            "--sync-slack" => f.sync_slack = num("--sync-slack"),
            "--assert-determinism" => f.assert_determinism = true,
            "--weak" => f.weak = true,
            "--addr" => match it.next() {
                Some(a) => f.addr = a.clone(),
                None => {
                    eprintln!("--addr takes HOST:PORT");
                    exit(2)
                }
            },
            "--cache-dir" => match it.next() {
                Some(d) => f.cache_dir = Some(d.clone()),
                None => {
                    eprintln!("--cache-dir takes a directory");
                    exit(2)
                }
            },
            "--store" => match it.next() {
                Some(d) => f.store = Some(d.clone()),
                None => {
                    eprintln!("--store takes a directory");
                    exit(2)
                }
            },
            "--format" => {
                f.format = num("--format") as u8;
                if !matches!(f.format, 1 | 2) {
                    eprintln!("--format must be 1 or 2");
                    exit(2)
                }
            }
            "--max-trace-mb" => {
                f.max_trace_mb = u64::from(num("--max-trace-mb"));
                if f.max_trace_mb == 0 {
                    eprintln!("--max-trace-mb must be >= 1");
                    exit(2)
                }
            }
            "--mrc" => f.mrc = true,
            "-o" | "--output" => f.output = it.next().cloned(),
            "--default-deadline-ms" => {
                f.default_deadline_ms = u64::from(num("--default-deadline-ms"))
            }
            "--max-inflight-predicts" => {
                f.max_inflight_predicts = num("--max-inflight-predicts") as usize;
            }
            "--max-inflight-cheap" => f.max_inflight_cheap = num("--max-inflight-cheap") as usize,
            "--degrade-threshold" => f.degrade_threshold = num("--degrade-threshold") as usize,
            "--drain-grace-ms" => f.drain_grace_ms = u64::from(num("--drain-grace-ms")),
            "--fast-path-gate" => {
                f.fast_path_gate = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|g: &f64| *g >= 0.0)
                    .unwrap_or_else(|| {
                        eprintln!("--fast-path-gate takes a non-negative number (or inf)");
                        exit(2)
                    });
            }
            "--path" => match it.next().map(String::as_str) {
                Some(p @ ("auto" | "fast" | "full")) => f.path = p.to_string(),
                _ => {
                    eprintln!("--path takes auto, fast, or full");
                    exit(2)
                }
            },
            "--fault-plan" => match it.next() {
                Some(spec) => f.fault_plan = Some(spec.clone()),
                None => {
                    eprintln!("--fault-plan takes a spec, e.g. seed=42,http_delay_p=0.05");
                    exit(2)
                }
            },
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}");
                usage()
            }
            other => f.positional.push(other.to_string()),
        }
    }
    if f.assert_determinism && f.sync_slack > 0 {
        eprintln!(
            "--assert-determinism requires bit-exact mode; drop --sync-slack {} (relaxed \
             sync is deterministic per slack value but not bit-identical to the exact run)",
            f.sync_slack
        );
        exit(2)
    }
    f
}

/// The effective phase-B execution mode of `cfg`, for the run summary.
fn phase_b_mode(cfg: &GpuConfig) -> String {
    let partitions = cfg.mem_shards.max(1).min(cfg.llc_slices).min(cfg.n_mcs);
    let mut mode = if cfg.sim_threads > 1 {
        format!(
            "owner-sharded ({partitions} partition{}, {} threads)",
            if partitions == 1 { "" } else { "s" },
            cfg.sim_threads
        )
    } else {
        format!(
            "serial fallback ({partitions} partition{})",
            if partitions == 1 { "" } else { "s" }
        )
    };
    if cfg.sync_slack > 0 {
        mode.push_str(&format!(", slack {} cycles", cfg.sync_slack));
    }
    mode
}

/// Re-runs `wl` on the serial driver and asserts the sharded run's stats
/// are bit-identical (the `--assert-determinism` test flag; panics — and
/// thus exits non-zero — on divergence).
fn check_determinism<W: WorkloadModel>(cfg: &GpuConfig, wl: &W, sharded: &SimStats)
where
    W::Stream: Send,
{
    let mut serial = cfg.clone();
    serial.sim_threads = 1;
    let base = Simulator::new(serial, wl).run();
    base.assert_deterministic_eq(sharded);
    println!(
        "determinism: t{} bit-identical to t1 ({} cycles)",
        cfg.sim_threads.max(1),
        sharded.cycles
    );
}

fn print_stats(label: &str, st: &SimStats) {
    println!("{label}:");
    println!("  cycles            {:>14}", st.cycles);
    println!("  thread instrs     {:>14}", st.thread_instrs);
    println!("  IPC               {:>14.1}", st.ipc());
    println!("  sustained IPC     {:>14.1}", st.sustained_ipc());
    println!("  LLC accesses      {:>14}", st.llc_accesses);
    println!("  LLC MPKI          {:>14.2}", st.mpki());
    println!("  L1 miss rate      {:>14.2}", st.l1_miss_rate());
    println!("  f_mem             {:>14.2}", st.f_mem());
    println!("  f_idle            {:>14.2}", st.f_idle());
    println!("  DRAM bytes        {:>14}", st.dram_bytes);
    println!(
        "  CTAs / kernels    {:>9} / {:<4}",
        st.ctas_executed, st.kernels_executed
    );
    println!("  simulated in      {:>12.2} s", st.sim_wall_seconds);
    println!("  sim cycles/sec    {:>14.0}", st.sim_cycles_per_second());
}

/// Exit code for a trace decode failure. Each failure class gets its own
/// code so scripts (and the CI smoke job) can distinguish "you fed me a
/// PNG" from "this trace is truncated".
fn trace_exit(context: &str, e: &TraceReadError) -> ! {
    eprintln!("{context}: {e}");
    exit(match e {
        TraceReadError::NotATrace => 3,
        TraceReadError::UnsupportedVersion(_) => 4,
        TraceReadError::Corrupt(_) => 5,
        TraceReadError::TooLarge(_) => 6,
        TraceReadError::Io(_) => 1,
    })
}

/// Decode limits honouring `--max-trace-mb`.
fn trace_limits(f: &Flags) -> TraceLimits {
    let limits = TraceLimits::default();
    if f.max_trace_mb == 0 {
        limits
    } else {
        limits.with_max_file_bytes(f.max_trace_mb * 1024 * 1024)
    }
}

/// Opens the content-addressed trace store at `--store` (default
/// `./tracestore`).
fn open_store(f: &Flags) -> TraceStore {
    let root = f.store.clone().unwrap_or_else(|| "tracestore".to_string());
    TraceStore::open(
        root.clone(),
        StoreConfig {
            limits: trace_limits(f),
            ..StoreConfig::default()
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("cannot open trace store {root}: {e}");
        exit(1)
    })
}

/// `gsim trace <record|ingest|info|ls>`.
fn cmd_trace(f: &Flags) {
    let sub = f.positional.first().map(String::as_str);
    match sub {
        Some("record") => {
            let Some(name) = f.positional.get(1) else {
                eprintln!("trace record takes a benchmark name");
                exit(2)
            };
            let wl = if f.weak {
                weak_benchmark(name, f.scale)
                    .unwrap_or_else(|| {
                        eprintln!("unknown weak benchmark {name}");
                        exit(2)
                    })
                    .workload_for_sms(f.sms)
            } else {
                strong_benchmark(name, f.scale)
                    .unwrap_or_else(|| {
                        eprintln!("unknown benchmark {name}; try `gsim list`");
                        exit(2)
                    })
                    .workload
            };
            let out = f.output.clone().unwrap_or_else(|| format!("{name}.gstr"));
            let file = File::create(&out).unwrap_or_else(|e| {
                eprintln!("cannot create {out}: {e}");
                exit(1)
            });
            let write = if f.format == 1 {
                gsim_trace::write_trace_v1
            } else {
                gsim_trace::write_trace
            };
            let bytes = write(&wl, file).unwrap_or_else(|e| {
                eprintln!("trace write failed: {e}");
                exit(1)
            });
            println!(
                "wrote {out}: v{} format, {bytes} bytes, ref {:016x}",
                f.format,
                gsim_trace::semantic_hash_of(&wl)
            );
        }
        Some("ingest") => {
            let Some(path) = f.positional.get(1) else {
                eprintln!("trace ingest takes a trace file");
                exit(2)
            };
            let store = open_store(f);
            match store.ingest_file(std::path::Path::new(path)) {
                Ok((meta, dedup)) => println!(
                    "{} {} ({} warps, {} warp instrs, {} bytes){}",
                    meta.trace_ref,
                    meta.name,
                    meta.total_warps,
                    meta.total_warp_instrs,
                    meta.bytes,
                    if dedup { "  [already stored]" } else { "" }
                ),
                Err(StoreError::Invalid(e)) => trace_exit(&format!("cannot ingest {path}"), &e),
                Err(e) => {
                    eprintln!("cannot ingest {path}: {e}");
                    exit(1)
                }
            }
        }
        Some("info") => {
            let Some(target) = f.positional.get(1) else {
                eprintln!("trace info takes a trace file or a stored ref");
                exit(2)
            };
            // A bare 16-hex-digit name that is not a file resolves
            // through the store.
            let path = if !std::path::Path::new(target).exists()
                && target.len() == 16
                && target.chars().all(|c| c.is_ascii_hexdigit())
            {
                open_store(f)
                    .blob_path(&target.to_ascii_lowercase())
                    .unwrap_or_else(|| {
                        eprintln!("no trace {target} in store");
                        exit(1)
                    })
            } else {
                std::path::PathBuf::from(target)
            };
            let file = File::open(&path).unwrap_or_else(|e| {
                eprintln!("cannot open {}: {e}", path.display());
                exit(1)
            });
            let mut reader = TraceReader::with_limits(file, trace_limits(f))
                .unwrap_or_else(|e| trace_exit(&format!("bad trace {}", path.display()), &e));
            let version = reader.version();
            let name = reader.name().to_string();
            let kernels = reader.kernels().to_vec();
            // Stream the whole file for totals and the content hash; the
            // decoder holds one chunk at a time.
            loop {
                match reader.next_warp() {
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                    Err(e) => trace_exit(&format!("bad trace {}", path.display()), &e),
                }
            }
            let st = reader.stats().expect("stats after full pass");
            println!("trace {} (v{version} format)", path.display());
            println!("  name              {name}");
            println!("  ref               {:016x}", st.semantic_hash);
            println!("  kernels           {}", kernels.len());
            for k in &kernels {
                println!(
                    "    {:<20} {:>6} CTAs x {:>4} threads",
                    k.name, k.n_ctas, k.threads_per_cta
                );
            }
            println!("  warps             {}", st.total_warps);
            println!("  ops               {}", st.total_ops);
            println!("  warp instrs       {}", st.total_warp_instrs);
            println!("  bytes             {}", st.bytes_read);
            println!("  peak decode buf   {}", st.peak_buffer_bytes);
            if f.mrc {
                let sizes = [8u32, 16, 32, 64, 128];
                let configs: Vec<GpuConfig> = sizes
                    .iter()
                    .map(|&z| GpuConfig::paper_target(z, f.scale))
                    .collect();
                let file = File::open(&path).unwrap_or_else(|e| {
                    eprintln!("cannot reopen {}: {e}", path.display());
                    exit(1)
                });
                let out = mrc_from_trace(file, trace_limits(f), &configs)
                    .unwrap_or_else(|e| trace_exit(&format!("bad trace {}", path.display()), &e));
                println!("  miss-rate curve (stack-distance, no timing sim):");
                for (size, mpki) in out.mrc.points() {
                    println!("    {size:>3} SMs  MPKI {mpki:>7.2}");
                }
            }
        }
        Some("ls") => {
            let store = open_store(f);
            let traces = store.list();
            if traces.is_empty() {
                println!("trace store is empty");
            }
            for m in traces {
                println!(
                    "{} {:<16} {:>3} kernels {:>9} warps {:>12} warp instrs {:>10} bytes",
                    m.trace_ref, m.name, m.n_kernels, m.total_warps, m.total_warp_instrs, m.bytes
                );
            }
        }
        _ => {
            eprintln!("trace takes a subcommand: record, ingest, info, ls");
            exit(2)
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let f = parse(&args[1..]);
    match cmd.as_str() {
        "list" => {
            println!("strong-scaling benchmarks (Table II):");
            for b in strong_suite(f.scale) {
                println!(
                    "  {:>6}  {:<38} {:>8.1} MB  {}",
                    b.abbr,
                    b.full_name,
                    b.workload.footprint_mb_paper(),
                    b.expected
                );
            }
            println!("\nweak-scaling benchmarks (Table IV):");
            for b in weak_suite(f.scale) {
                println!("  {:>6}  {}", b.abbr, b.expected);
            }
        }
        "run" => {
            let name = f.positional.first().unwrap_or_else(|| usage());
            let wl = if f.weak {
                weak_benchmark(name, f.scale)
                    .unwrap_or_else(|| {
                        eprintln!("unknown weak benchmark {name}");
                        exit(2)
                    })
                    .workload_for_sms(f.sms)
            } else {
                strong_benchmark(name, f.scale)
                    .unwrap_or_else(|| {
                        eprintln!("unknown benchmark {name}; try `gsim list`");
                        exit(2)
                    })
                    .workload
            };
            let mut cfg = GpuConfig::paper_target(f.sms, f.scale);
            cfg.dram_banks_per_mc = f.banked_dram;
            cfg.sim_threads = f.sim_threads;
            cfg.sync_slack = f.sync_slack;
            let st = Simulator::new(cfg.clone(), &wl).run();
            print_stats(&format!("{name} on {} SMs ({})", f.sms, f.scale), &st);
            println!("  phase B           {}", phase_b_mode(&cfg));
            if f.assert_determinism {
                check_determinism(&cfg, &wl, &st);
            }
        }
        "sweep" => {
            let name = f.positional.first().unwrap_or_else(|| usage());
            // One simulation job per system size, run on the worker pool.
            let workload_for: Box<dyn Fn(u32) -> Workload + Send + Sync> = if f.weak {
                let bench = weak_benchmark(name, f.scale).unwrap_or_else(|| {
                    eprintln!("unknown weak benchmark {name}");
                    exit(2)
                });
                Box::new(move |sms| bench.workload_for_sms(sms))
            } else {
                let bench = strong_benchmark(name, f.scale).unwrap_or_else(|| {
                    eprintln!("unknown benchmark {name}; try `gsim list`");
                    exit(2)
                });
                Box::new(move |_| bench.workload.clone())
            };
            let scale = f.scale;
            let sim_threads = f.sim_threads;
            let sync_slack = f.sync_slack;
            let sizes = [8u32, 16, 32, 64, 128];
            let runner = Runner::new(RunnerConfig {
                threads: f.threads.unwrap_or(0),
                ..RunnerConfig::default()
            })
            .with_sink(ProgressReporter::new());
            let reports = runner.map(
                &format!("sweep-{name}"),
                sizes
                    .iter()
                    .map(|&z| (format!("{name}@{z}sm"), z))
                    .collect(),
                move |&sms: &u32| {
                    let mut cfg = GpuConfig::paper_target(sms, scale);
                    cfg.sim_threads = sim_threads;
                    cfg.sync_slack = sync_slack;
                    Simulator::new(cfg, &workload_for(sms)).run()
                },
            );
            println!(
                "{name} {} sweep over the size ladder ({}):",
                if f.weak {
                    "weak-scaling"
                } else {
                    "strong-scaling"
                },
                f.scale
            );
            println!(
                "  {:>5}  {:>12}  {:>10}  {:>7}  {:>7}",
                "#SMs", "cycles", "IPC", "MPKI", "f_mem"
            );
            let mut failed = false;
            for (report, &sms) in reports.iter().zip(&sizes) {
                match report.ok() {
                    Some(st) => println!(
                        "  {:>5}  {:>12}  {:>10.1}  {:>7.2}  {:>7.2}",
                        sms,
                        st.cycles,
                        st.sustained_ipc(),
                        st.mpki(),
                        st.f_mem()
                    ),
                    None => {
                        failed = true;
                        println!(
                            "  {:>5}  {}",
                            sms,
                            report.failure().unwrap_or_else(|| "failed".into())
                        );
                    }
                }
            }
            if failed {
                exit(1);
            }
        }
        "mcm" => {
            let name = f.positional.first().unwrap_or_else(|| usage());
            let bench = weak_benchmark(name, f.scale).unwrap_or_else(|| {
                eprintln!("unknown weak benchmark {name}");
                exit(2)
            });
            let wl = bench.workload_for_chiplets(f.chiplets);
            let mut mcm = ChipletConfig::paper_mcm(f.chiplets, f.scale);
            mcm.chiplet.sim_threads = f.sim_threads;
            mcm.chiplet.sync_slack = f.sync_slack;
            let st = Simulator::new_mcm(&mcm, &wl).run();
            print_stats(
                &format!(
                    "{name} on {} chiplets = {} SMs ({})",
                    f.chiplets,
                    mcm.total_sms(),
                    f.scale
                ),
                &st,
            );
            println!("  phase B           {}", phase_b_mode(&mcm.chiplet));
            if f.assert_determinism {
                let mut serial = mcm.clone();
                serial.chiplet.sim_threads = 1;
                let base = Simulator::new_mcm(&serial, &wl).run();
                base.assert_deterministic_eq(&st);
                println!(
                    "determinism: t{} bit-identical to t1 ({} cycles)",
                    f.sim_threads.max(1),
                    st.cycles
                );
            }
        }
        "mrc" => {
            let name = f.positional.first().unwrap_or_else(|| usage());
            let bench = strong_benchmark(name, f.scale).unwrap_or_else(|| {
                eprintln!("unknown benchmark {name}");
                exit(2)
            });
            let sizes = [8u32, 16, 32, 64, 128];
            let configs: Vec<GpuConfig> = sizes
                .iter()
                .map(|&z| GpuConfig::paper_target(z, f.scale))
                .collect();
            let curve = collect_mrc(&bench.workload, &configs);
            let mrc = SizedMrc::new(sizes.iter().zip(curve.points()).map(|(&z, p)| (z, p.mpki)));
            println!("{name} miss-rate curve:");
            for ((size, region), cfg) in mrc.regions().iter().zip(&configs) {
                println!(
                    "  {:>3} SMs  {:>7.3} MB  MPKI {:>7.2}   {:?}",
                    size,
                    cfg.llc_paper_bytes() as f64 / (1024.0 * 1024.0),
                    mrc.mpki_at(*size).expect("sampled"),
                    region
                );
            }
            match detect_cliff(&mrc) {
                Some(i) => println!(
                    "cliff between {} and {} SMs",
                    mrc.points()[i].0,
                    mrc.points()[i + 1].0
                ),
                None => println!("no cliff detected"),
            }
        }
        "trace" => cmd_trace(&f),
        "trace-dump" => {
            let name = f.positional.first().unwrap_or_else(|| usage());
            let out = f.output.unwrap_or_else(|| format!("{name}.gstr"));
            let bench = strong_benchmark(name, f.scale).unwrap_or_else(|| {
                eprintln!("unknown benchmark {name}");
                exit(2)
            });
            let file = File::create(&out).unwrap_or_else(|e| {
                eprintln!("cannot create {out}: {e}");
                exit(1)
            });
            let bytes = gsim_trace::write_trace(&bench.workload, file).unwrap_or_else(|e| {
                eprintln!("trace write failed: {e}");
                exit(1)
            });
            println!(
                "wrote {out}: {bytes} bytes, {} warp instructions ({:.2} B/instr)",
                bench.workload.approx_warp_instrs(),
                bytes as f64 / bench.workload.approx_warp_instrs() as f64
            );
        }
        "trace-run" => {
            let path = f.positional.first().unwrap_or_else(|| usage());
            let file = File::open(path).unwrap_or_else(|e| {
                eprintln!("cannot open {path}: {e}");
                exit(1)
            });
            let traced = TracedWorkload::read_with_limits(file, trace_limits(&f))
                .unwrap_or_else(|e| trace_exit(&format!("bad trace {path}"), &e));
            let mut cfg = GpuConfig::paper_target(f.sms, f.scale);
            cfg.dram_banks_per_mc = f.banked_dram;
            cfg.sim_threads = f.sim_threads;
            cfg.sync_slack = f.sync_slack;
            let st = Simulator::new(cfg.clone(), &traced).run();
            print_stats(
                &format!("trace {} on {} SMs ({})", traced.name(), f.sms, f.scale),
                &st,
            );
            println!("  phase B           {}", phase_b_mode(&cfg));
            if f.assert_determinism {
                check_determinism(&cfg, &traced, &st);
            }
        }
        "predict" => {
            use std::time::Instant;

            use gsim_core::plan::{
                collect_sampled, observation_of, observe_scale_models, synthesize_observation, Fit,
                PlanWorkload, SampledCollectConfig,
            };
            use gsim_runner::RunOverrides;

            let name = f.positional.first().unwrap_or_else(|| usage());
            let bench = strong_benchmark(name, f.scale).unwrap_or_else(|| {
                eprintln!("unknown benchmark {name}; try `gsim list`");
                exit(2)
            });
            let mut targets: Vec<u32> = f.positional[1..]
                .iter()
                .map(|t| {
                    t.parse().unwrap_or_else(|_| {
                        eprintln!("bad target {t}: targets are SM counts");
                        exit(2)
                    })
                })
                .collect();
            if targets.is_empty() {
                targets = vec![32, 64, 128];
            }
            targets.sort_unstable();
            targets.dedup();

            let (small, large) = (8u32, 16u32);
            let cfg_of = |sms: u32| GpuConfig::paper_target(sms, f.scale);
            // Collect over the whole doubling ladder through the largest
            // target: the replay pass dominates, the readout is cheap.
            let mut ladder = vec![small];
            while *ladder.last().expect("non-empty") < *targets.last().expect("non-empty") {
                ladder.push(ladder.last().expect("non-empty").saturating_mul(2));
            }
            let configs: Vec<GpuConfig> = ladder.iter().map(|&z| cfg_of(z)).collect();
            let wl = PlanWorkload::Synthetic(bench.workload.clone());
            let runner = Runner::new(RunnerConfig {
                threads: f.threads.unwrap_or(0),
                ..RunnerConfig::default()
            });
            let gate = if f.fast_path_gate == 0.0 {
                1.0
            } else {
                f.fast_path_gate
            };

            let t_collect = Instant::now();
            let collected = collect_sampled(
                &wl,
                &configs,
                &SampledCollectConfig::default(),
                Some((&runner, RunOverrides::default())),
            )
            .unwrap_or_else(|e| {
                eprintln!("collection failed: {e}");
                exit(1)
            });
            let collect_time = t_collect.elapsed();
            let pressure = collected.memory_pressure(&cfg_of(*targets.last().expect("non-empty")));
            let fast = match f.path.as_str() {
                "fast" => true,
                "full" => false,
                _ => pressure >= gate,
            };
            let mrc = collected.sized_mrc();

            let t_fit = Instant::now();
            let fit = if fast {
                Fit::new(
                    synthesize_observation(&collected, &cfg_of(small)),
                    synthesize_observation(&collected, &cfg_of(large)),
                    Some(&mrc),
                )
            } else {
                let (st_s, st_l) = observe_scale_models(
                    &runner,
                    &wl,
                    &cfg_of(small),
                    &cfg_of(large),
                    RunOverrides::default(),
                )
                .unwrap_or_else(|e| {
                    eprintln!("scale-model simulation failed: {e}");
                    exit(1)
                });
                Fit::new(
                    observation_of(small, &st_s),
                    observation_of(large, &st_l),
                    Some(&mrc),
                )
            }
            .unwrap_or_else(|e| {
                eprintln!("fit failed: {e}");
                exit(1)
            });
            let fit_time = t_fit.elapsed();

            let t_predict = Instant::now();
            let forecast = fit.forecast(&targets).unwrap_or_else(|e| {
                eprintln!("prediction failed: {e}");
                exit(2)
            });
            let predict_time = t_predict.elapsed();

            println!(
                "{name} staged predict ({}): pressure {pressure:.2} vs gate {gate:.2} -> {} path",
                f.scale,
                if fast { "fast" } else { "full" }
            );
            println!(
                "  stages: collect {:.2} ms, fit {:.2} ms ({}), predict {:.3} ms",
                collect_time.as_secs_f64() * 1e3,
                fit_time.as_secs_f64() * 1e3,
                if fast {
                    "roofline synthesis"
                } else {
                    "2 concurrent timing sims"
                },
                predict_time.as_secs_f64() * 1e3,
            );
            println!(
                "  scale models: {} SMs IPC {:.1} (f_mem {:.2}), {} SMs IPC {:.1} (f_mem {:.2})",
                fit.small().size,
                fit.small().ipc,
                fit.small().f_mem,
                fit.large().size,
                fit.large().ipc,
                fit.large().f_mem,
            );
            match forecast.cliff_at {
                Some(at) => println!(
                    "  correction factor {:.3}, cliff at {at} SMs",
                    forecast.correction_factor
                ),
                None => println!(
                    "  correction factor {:.3}, no cliff on the ladder",
                    forecast.correction_factor
                ),
            }
            for t in &forecast.targets {
                println!("  {:>6} SMs:", t.target);
                for m in &t.by_method {
                    println!("    {:<14} IPC {:>10.1}", m.method, m.predicted_ipc);
                }
            }
        }
        "serve" => {
            use std::net::ToSocketAddrs;
            use std::sync::Arc;

            use gsim_serve::{PredictService, ServeConfig, Server, ServerConfig, ShutdownFlag};

            // Flag validation failures mirror the usage() style: message + exit 2.
            let threads = match f.threads {
                Some(0) => {
                    eprintln!("--threads must be >= 1");
                    exit(2)
                }
                Some(n) => n,
                None => 4,
            };
            if f.addr
                .to_socket_addrs()
                .map_or(true, |mut it| it.next().is_none())
            {
                eprintln!("--addr takes HOST:PORT, got {:?}", f.addr);
                exit(2)
            }
            // Install the fault-injection plan before the service opens
            // any store: the flag wins over the GSIM_FAULTS env var.
            match &f.fault_plan {
                Some(spec) => match gsim_faults::FaultPlan::parse(spec) {
                    Ok(plan) => {
                        gsim_faults::install(plan);
                    }
                    Err(e) => {
                        eprintln!("--fault-plan: {e}");
                        exit(2)
                    }
                },
                None => {
                    if let Err(e) = gsim_faults::install_from_env() {
                        eprintln!("{}: {e}", gsim_faults::ENV_VAR);
                        exit(2)
                    }
                }
            }
            if let Some(inj) = gsim_faults::active() {
                eprintln!("gsim-serve: fault injection ACTIVE: {:?}", inj.plan());
            }
            let shutdown = ShutdownFlag::new();
            let service = PredictService::new(
                ServeConfig {
                    runner_threads: f.runner_threads,
                    cache_capacity: 0,
                    cache_dir: f.cache_dir.clone().map(Into::into),
                    trace_store_dir: f.store.clone().map(Into::into),
                    default_deadline_ms: f.default_deadline_ms,
                    max_inflight_predicts: f.max_inflight_predicts,
                    max_inflight_cheap: f.max_inflight_cheap,
                    degrade_threshold: f.degrade_threshold,
                    fast_path_gate: f.fast_path_gate,
                    ..ServeConfig::default()
                },
                shutdown.clone(),
            )
            .unwrap_or_else(|e| {
                eprintln!("cannot start prediction service: {e}");
                exit(1)
            });
            let server = Server::bind(
                &f.addr,
                ServerConfig {
                    threads,
                    drain_grace: std::time::Duration::from_millis(f.drain_grace_ms),
                    ..ServerConfig::default()
                },
                shutdown.clone(),
            )
            .unwrap_or_else(|e| {
                eprintln!("cannot bind {}: {e}", f.addr);
                exit(1)
            });
            match server.local_addr() {
                Ok(local) => println!("gsim-serve listening on {local}"),
                Err(_) => println!("gsim-serve listening on {}", f.addr),
            }
            // Without signal handling (no unsafe, no deps) the shutdown paths
            // are `POST /v1/shutdown` and stdin reaching EOF — the latter lets
            // a parent process stop us by closing our stdin.
            {
                let shutdown = shutdown.clone();
                std::thread::spawn(move || {
                    let _ = std::io::copy(&mut std::io::stdin().lock(), &mut std::io::sink());
                    shutdown.trigger();
                });
            }
            if let Err(e) = server.serve(Arc::new(move |req| service.handle(req))) {
                eprintln!("server error: {e}");
                exit(1)
            }
            println!("gsim-serve shut down cleanly");
        }
        _ => usage(),
    }
}
