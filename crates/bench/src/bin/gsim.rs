//! `gsim` — command-line front-end to the GPU timing simulator.
//!
//! ```text
//! gsim list
//! gsim run <benchmark> [--sms N] [--scale D] [--banked-dram BANKS] [--weak]
//!          [--sim-threads N] [--sync-slack S] [--assert-determinism]
//! gsim sweep <benchmark> [--scale D] [--threads N] [--weak] [--sim-threads N] [--sync-slack S]
//! gsim mcm <benchmark> [--chiplets C] [--scale D] [--sim-threads N] [--sync-slack S]
//!          [--assert-determinism]
//! gsim mrc <benchmark> [--scale D]
//! gsim trace record <benchmark> [-o FILE] [--scale D] [--format 1|2] [--weak --sms N]
//! gsim trace ingest <file> [--store DIR] [--max-trace-mb N]
//! gsim trace info <file|ref> [--store DIR] [--mrc] [--max-trace-mb N]
//! gsim trace ls [--store DIR]
//! gsim trace-dump <benchmark> -o <file> [--scale D]
//! gsim trace-run <file> [--sms N] [--scale D] [--sim-threads N]
//! gsim predict <benchmark> [targets...] [--scale D] [--threads N]
//!              [--path auto|fast|full] [--fast-path-gate X]
//! gsim serve [--addr HOST:PORT] [--threads N] [--cache-dir DIR] [--store DIR]
//!            [--default-deadline-ms N] [--max-inflight-predicts N]
//!            [--max-inflight-cheap N] [--degrade-threshold N]
//!            [--drain-grace-ms N] [--fast-path-gate X] [--fault-plan SPEC]
//! gsim multigpu [--gpus N] [--sms N] [--scale D] [--topology ring|full]
//!               [--placement first-touch|interleave|replicate] [--link-gbs X]
//!               [--link-latency C] [--tenants N] [--dag-kernels N] [--seed S]
//!               [--sharing K] [--page-lines L] [--sim-threads N]
//!               [--assert-determinism] [--validate [--smoke]]
//! ```
//!
//! `run` simulates a Table II benchmark (or, with `--weak`, the Table IV
//! input matched to `--sms`); `sweep` simulates the whole 8–128-SM size
//! ladder on a gsim-runner worker pool; `trace-dump`/`trace-run` exercise
//! the trace-driven front-end; `mrc` prints the functional miss-rate
//! curve with region labels; `serve` runs the gsim-serve HTTP prediction
//! service until `POST /v1/shutdown` arrives or stdin reaches EOF.
//!
//! `trace` manages the content-addressed trace store (default
//! `./tracestore`, override with `--store`): `record` captures a suite
//! benchmark to a `.gstr` file (v2 framed format by default, `--format 1`
//! for the legacy buffer format), `ingest` validates and stores a trace
//! under its content hash, `info` streams a file (or a stored `ref`)
//! printing its metadata — with `--mrc`, also a stack-distance miss-rate
//! curve collected without the timing simulator — and `ls` lists the
//! store. Trace decode failures map to distinct exit codes: 3 = not a
//! trace, 4 = unsupported version, 5 = corrupt, 6 = over the size limit
//! (`--max-trace-mb`), 1 = I/O.
//!
//! `predict` drives the staged collect→fit→predict plan (DESIGN.md §14)
//! from the command line: a sampled sharded Stage-1 collection feeds the
//! compute-intensity gate, memory-bound workloads are answered from
//! roofline-synthesized fits in milliseconds, and compute-sensitive ones
//! escalate to the two scale-model timing simulations run concurrently
//! on the runner pool. `--path` forces either path; `--fast-path-gate`
//! moves the memory-pressure threshold (default 1.0; under `serve` the
//! same flag tunes the service's gate, `inf` escalates every `auto`
//! request).
//!
//! `--sim-threads N` shards each simulation's per-SM phase *and* its
//! owner-sharded memory partitions over N threads (`--threads`
//! parallelises *across* sweep jobs instead; under `serve` it sizes the
//! HTTP worker pool). Results are bit-identical for any N ≥ 1.
//! `--sync-slack S` opts into bounded-slack relaxed synchronisation: SMs
//! run up to S cycles past the memory merge barrier (DESIGN.md §15).
//! S = 0 (the default) is bit-exact; S > 0 is still deterministic for a
//! given S but drifts within a small envelope, so it cannot be combined
//! with `--assert-determinism`, which re-runs the simulation serially and
//! asserts the sharded run is bit-identical (exit 2 on the combination,
//! non-zero if the assertion trips). The run summary prints the effective
//! phase-B mode: owner-sharded, or the serial fallback when
//! `--sim-threads 1`.
//!
//! `multigpu` runs the multi-GPU system model (DESIGN.md §16): `--gpus`
//! GPUs of `--sms` SMs each, connected by a `--topology` fabric of
//! `--link-gbs` GB/s links with `--link-latency` cycles per hop, running
//! `--tenants` concurrent tenants whose workloads are deterministic
//! kernel-dependency DAGs of `--dag-kernels` kernels seeded by `--seed`.
//! `--placement` picks the page-placement policy, `--sharing K` splits
//! each GPU into K MIG-style kernel slots, and `--page-lines` sets the
//! page granularity. `--assert-determinism` re-runs the system serially
//! and asserts bit-identical aggregate stats. `--validate` runs the
//! scale-model validation experiment instead: the five predictors are
//! fitted on 1- and 2-GPU system runs and forecast 4/8/16 GPUs (just
//! 4 with `--smoke`), each checked against an actual run.
//!
//! `serve`'s overload knobs (DESIGN.md §13): `--default-deadline-ms`
//! bounds every predict unless the request's `X-Gsim-Deadline-Ms` header
//! overrides it; `--max-inflight-predicts` / `--max-inflight-cheap` are
//! the per-class admission budgets (shed with 429 + `Retry-After`
//! beyond them); `--degrade-threshold` sets how many concurrent leaders
//! saturate the simulation pool before MRC-capable predicts degrade to
//! the MRC-only fast path; `--drain-grace-ms` bounds the shutdown
//! drain. `--fault-plan SPEC` (or the `GSIM_FAULTS` env var; the flag
//! wins) installs a deterministic fault-injection plan, e.g.
//! `seed=42,http_delay_p=0.05,job_panic_p=0.02` — see `gsim-faults`.

use std::fs::File;
use std::process::exit;

use gsim_core::{detect_cliff, mrc_from_trace, SizedMrc};
use gsim_runner::{ProgressReporter, Runner, RunnerConfig};
use gsim_sim::{collect_mrc, ChipletConfig, GpuConfig, SimStats, Simulator};
use gsim_trace::suite::{strong_benchmark, strong_suite};
use gsim_trace::weak::{weak_benchmark, weak_suite};
use gsim_trace::{
    MemScale, TraceLimits, TraceReadError, TraceReader, TracedWorkload, Workload, WorkloadModel,
};
use gsim_tracestore::{StoreConfig, StoreError, TraceStore};

fn usage() -> ! {
    eprintln!(
        "usage:\n  gsim list\n  gsim run <benchmark> [--sms N] [--scale D] \
         [--banked-dram BANKS] [--weak] [--sim-threads N] [--sync-slack S] \
         [--assert-determinism]\n  gsim sweep <benchmark> [--scale D] \
         [--threads N] [--weak] [--sim-threads N] [--sync-slack S]\n  \
         gsim mcm <benchmark> [--chiplets C] \
         [--scale D] [--sim-threads N] [--sync-slack S] [--assert-determinism]\n  \
         gsim mrc <benchmark> [--scale D]\n  \
         gsim trace record <benchmark> [-o FILE] [--scale D] [--format 1|2] [--weak --sms N]\n  \
         gsim trace ingest <file> [--store DIR] [--max-trace-mb N]\n  \
         gsim trace info <file|ref> [--store DIR] [--mrc] [--max-trace-mb N]\n  \
         gsim trace ls [--store DIR]\n  \
         gsim trace-dump <benchmark> -o <file> [--scale D]\n  \
         gsim trace-run <file> [--sms N] [--scale D] [--sim-threads N]\n  \
         gsim predict <benchmark> [targets...] [--scale D] [--threads N] \
         [--path auto|fast|full] [--fast-path-gate X]\n  \
         gsim serve [--addr HOST:PORT] [--threads N] [--cache-dir DIR] [--store DIR] \
         [--runner-threads N] [--default-deadline-ms N] [--max-inflight-predicts N] \
         [--max-inflight-cheap N] [--degrade-threshold N] [--drain-grace-ms N] \
         [--fast-path-gate X] [--fault-plan SPEC]\n  \
         gsim multigpu [--gpus N] [--sms N] [--scale D] [--topology ring|full] \
         [--placement first-touch|interleave|replicate] [--link-gbs X] [--link-latency C] \
         [--tenants N] [--dag-kernels N] [--seed S] [--sharing K] [--page-lines L] \
         [--sim-threads N] [--assert-determinism] [--validate [--smoke]]"
    );
    exit(2)
}

// ---------------------------------------------------------------------
// Shared usage-style flag validation. Every helper consumes the flag's
// value from the argument iterator and, on garbage, prints a one-line
// message and exits 2 — so subcommands never copy-paste the pattern.

type ArgIter<'a> = std::slice::Iter<'a, String>;

/// The flag's value as a string; `what` names the expected shape.
fn flag_str(it: &mut ArgIter<'_>, name: &str, what: &str) -> String {
    it.next().cloned().unwrap_or_else(|| {
        eprintln!("{name} takes {what}");
        exit(2)
    })
}

/// A non-negative integer (rejects garbage and negatives via u32 parse).
fn flag_u32(it: &mut ArgIter<'_>, name: &str) -> u32 {
    it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("{name} takes an integer");
        exit(2)
    })
}

/// An integer with a lower bound.
fn flag_u32_min(it: &mut ArgIter<'_>, name: &str, min: u32) -> u32 {
    let v = flag_u32(it, name);
    if v < min {
        eprintln!("{name} must be >= {min}");
        exit(2)
    }
    v
}

/// A float accepted by `ok`; `hint` names the expected shape.
fn flag_f64(it: &mut ArgIter<'_>, name: &str, hint: &str, ok: impl Fn(f64) -> bool) -> f64 {
    it.next()
        .and_then(|v| v.parse().ok())
        .filter(|g: &f64| ok(*g))
        .unwrap_or_else(|| {
            eprintln!("{name} takes {hint}");
            exit(2)
        })
}

/// One of a fixed set of spellings.
fn flag_choice(it: &mut ArgIter<'_>, name: &str, options: &[&str]) -> String {
    match it.next().map(String::as_str) {
        Some(v) if options.contains(&v) => v.to_string(),
        _ => {
            eprintln!("{name} takes one of: {}", options.join(", "));
            exit(2)
        }
    }
}

struct Flags {
    sms: u32,
    chiplets: u32,
    scale: MemScale,
    banked_dram: u32,
    threads: Option<usize>,
    runner_threads: usize,
    sim_threads: u32,
    sync_slack: u32,
    assert_determinism: bool,
    weak: bool,
    addr: String,
    cache_dir: Option<String>,
    store: Option<String>,
    format: u8,
    max_trace_mb: u64,
    mrc: bool,
    output: Option<String>,
    default_deadline_ms: u64,
    max_inflight_predicts: usize,
    max_inflight_cheap: usize,
    degrade_threshold: usize,
    drain_grace_ms: u64,
    fast_path_gate: f64,
    path: String,
    fault_plan: Option<String>,
    // gsim multigpu
    gpus: u32,
    topology: String,
    placement: String,
    link_gbs: f64,
    link_latency: u32,
    tenants: u32,
    dag_kernels: u32,
    seed: u64,
    sharing: u32,
    page_lines: u64,
    validate: bool,
    smoke: bool,
    positional: Vec<String>,
}

fn parse(args: &[String]) -> Flags {
    let mut f = Flags {
        sms: 32,
        chiplets: 4,
        scale: MemScale::default(),
        banked_dram: 0,
        threads: None,
        runner_threads: 0,
        sim_threads: 1,
        sync_slack: 0,
        assert_determinism: false,
        weak: false,
        addr: "127.0.0.1:8191".to_string(),
        cache_dir: None,
        store: None,
        format: 2,
        max_trace_mb: 0,
        mrc: false,
        output: None,
        default_deadline_ms: 0,
        max_inflight_predicts: 0,
        max_inflight_cheap: 0,
        degrade_threshold: 0,
        drain_grace_ms: 5000,
        fast_path_gate: 0.0,
        path: "auto".to_string(),
        fault_plan: None,
        gpus: 2,
        topology: "ring".to_string(),
        placement: "interleave".to_string(),
        link_gbs: 300.0,
        link_latency: 400,
        tenants: 2,
        dag_kernels: 4,
        seed: 42,
        sharing: 1,
        page_lines: 16,
        validate: false,
        smoke: false,
        positional: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--sms" => f.sms = flag_u32(&mut it, "--sms"),
            "--chiplets" => f.chiplets = flag_u32(&mut it, "--chiplets"),
            "--scale" => f.scale = MemScale::new(flag_u32(&mut it, "--scale")),
            "--banked-dram" => f.banked_dram = flag_u32(&mut it, "--banked-dram"),
            "--threads" => f.threads = Some(flag_u32(&mut it, "--threads") as usize),
            "--runner-threads" => f.runner_threads = flag_u32(&mut it, "--runner-threads") as usize,
            "--sim-threads" => f.sim_threads = flag_u32_min(&mut it, "--sim-threads", 1),
            // u32 parse already exits 2 on negatives and garbage.
            "--sync-slack" => f.sync_slack = flag_u32(&mut it, "--sync-slack"),
            "--assert-determinism" => f.assert_determinism = true,
            "--weak" => f.weak = true,
            "--addr" => f.addr = flag_str(&mut it, "--addr", "HOST:PORT"),
            "--cache-dir" => f.cache_dir = Some(flag_str(&mut it, "--cache-dir", "a directory")),
            "--store" => f.store = Some(flag_str(&mut it, "--store", "a directory")),
            "--format" => {
                f.format = flag_choice(&mut it, "--format", &["1", "2"])
                    .parse()
                    .expect("validated")
            }
            "--max-trace-mb" => {
                f.max_trace_mb = u64::from(flag_u32_min(&mut it, "--max-trace-mb", 1))
            }
            "--mrc" => f.mrc = true,
            "-o" | "--output" => f.output = it.next().cloned(),
            "--default-deadline-ms" => {
                f.default_deadline_ms = u64::from(flag_u32(&mut it, "--default-deadline-ms"))
            }
            "--max-inflight-predicts" => {
                f.max_inflight_predicts = flag_u32(&mut it, "--max-inflight-predicts") as usize;
            }
            "--max-inflight-cheap" => {
                f.max_inflight_cheap = flag_u32(&mut it, "--max-inflight-cheap") as usize
            }
            "--degrade-threshold" => {
                f.degrade_threshold = flag_u32(&mut it, "--degrade-threshold") as usize
            }
            "--drain-grace-ms" => {
                f.drain_grace_ms = u64::from(flag_u32(&mut it, "--drain-grace-ms"))
            }
            "--fast-path-gate" => {
                f.fast_path_gate = flag_f64(
                    &mut it,
                    "--fast-path-gate",
                    "a non-negative number (or inf)",
                    |g| g >= 0.0,
                );
            }
            "--path" => f.path = flag_choice(&mut it, "--path", &["auto", "fast", "full"]),
            "--fault-plan" => {
                f.fault_plan = Some(flag_str(
                    &mut it,
                    "--fault-plan",
                    "a spec, e.g. seed=42,http_delay_p=0.05",
                ))
            }
            "--gpus" => f.gpus = flag_u32_min(&mut it, "--gpus", 1),
            "--topology" => f.topology = flag_choice(&mut it, "--topology", &["ring", "full"]),
            "--placement" => {
                f.placement = flag_choice(
                    &mut it,
                    "--placement",
                    &["first-touch", "interleave", "replicate"],
                )
            }
            "--link-gbs" => {
                f.link_gbs = flag_f64(&mut it, "--link-gbs", "a positive number", |g| {
                    g > 0.0 && g.is_finite()
                })
            }
            "--link-latency" => f.link_latency = flag_u32(&mut it, "--link-latency"),
            "--tenants" => f.tenants = flag_u32_min(&mut it, "--tenants", 1),
            "--dag-kernels" => f.dag_kernels = flag_u32_min(&mut it, "--dag-kernels", 1),
            "--seed" => f.seed = u64::from(flag_u32(&mut it, "--seed")),
            "--sharing" => f.sharing = flag_u32_min(&mut it, "--sharing", 1),
            "--page-lines" => f.page_lines = u64::from(flag_u32_min(&mut it, "--page-lines", 1)),
            "--validate" => f.validate = true,
            "--smoke" => f.smoke = true,
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}");
                usage()
            }
            other => f.positional.push(other.to_string()),
        }
    }
    if f.assert_determinism && f.sync_slack > 0 {
        eprintln!(
            "--assert-determinism requires bit-exact mode; drop --sync-slack {} (relaxed \
             sync is deterministic per slack value but not bit-identical to the exact run)",
            f.sync_slack
        );
        exit(2)
    }
    f
}

/// The effective phase-B execution mode of `cfg`, for the run summary.
fn phase_b_mode(cfg: &GpuConfig) -> String {
    let partitions = cfg.mem_shards.max(1).min(cfg.llc_slices).min(cfg.n_mcs);
    let mut mode = if cfg.sim_threads > 1 {
        format!(
            "owner-sharded ({partitions} partition{}, {} threads)",
            if partitions == 1 { "" } else { "s" },
            cfg.sim_threads
        )
    } else {
        format!(
            "serial fallback ({partitions} partition{})",
            if partitions == 1 { "" } else { "s" }
        )
    };
    if cfg.sync_slack > 0 {
        mode.push_str(&format!(", slack {} cycles", cfg.sync_slack));
    }
    mode
}

/// Re-runs `wl` on the serial driver and asserts the sharded run's stats
/// are bit-identical (the `--assert-determinism` test flag; panics — and
/// thus exits non-zero — on divergence).
fn check_determinism<W: WorkloadModel>(cfg: &GpuConfig, wl: &W, sharded: &SimStats)
where
    W::Stream: Send,
{
    let mut serial = cfg.clone();
    serial.sim_threads = 1;
    let base = Simulator::new(serial, wl).run();
    base.assert_deterministic_eq(sharded);
    println!(
        "determinism: t{} bit-identical to t1 ({} cycles)",
        cfg.sim_threads.max(1),
        sharded.cycles
    );
}

fn print_stats(label: &str, st: &SimStats) {
    println!("{label}:");
    println!("  cycles            {:>14}", st.cycles);
    println!("  thread instrs     {:>14}", st.thread_instrs);
    println!("  IPC               {:>14.1}", st.ipc());
    println!("  sustained IPC     {:>14.1}", st.sustained_ipc());
    println!("  LLC accesses      {:>14}", st.llc_accesses);
    println!("  LLC MPKI          {:>14.2}", st.mpki());
    println!("  L1 miss rate      {:>14.2}", st.l1_miss_rate());
    println!("  f_mem             {:>14.2}", st.f_mem());
    println!("  f_idle            {:>14.2}", st.f_idle());
    println!("  DRAM bytes        {:>14}", st.dram_bytes);
    println!(
        "  CTAs / kernels    {:>9} / {:<4}",
        st.ctas_executed, st.kernels_executed
    );
    println!("  simulated in      {:>12.2} s", st.sim_wall_seconds);
    println!("  sim cycles/sec    {:>14.0}", st.sim_cycles_per_second());
}

/// `gsim multigpu`: runs the multi-GPU system model, or the scale-model
/// validation experiment with `--validate` (DESIGN.md §16).
fn cmd_multigpu(f: &Flags) {
    use gsim_multigpu::{validate_scaling, Placement, SystemConfig, SystemSim, Tenant, Topology};
    use gsim_trace::DagParams;

    let mut gpu = GpuConfig::paper_target(f.sms, f.scale);
    gpu.dram_banks_per_mc = f.banked_dram;
    gpu.sim_threads = f.sim_threads;
    gpu.sync_slack = f.sync_slack;
    let cfg = SystemConfig {
        n_gpus: f.gpus,
        gpu,
        topology: Topology::parse(&f.topology).expect("validated by --topology"),
        link_gbs: f.link_gbs,
        link_latency: f.link_latency,
        placement: Placement::parse(&f.placement).expect("validated by --placement"),
        page_lines: f.page_lines,
        sharing: f.sharing,
    };
    if let Err(e) = cfg.validate() {
        eprintln!("{e}");
        exit(2)
    }
    let params = DagParams {
        n_kernels: f.dag_kernels,
        ..DagParams::default()
    };
    let tenants: Vec<Tenant> = (0..f.tenants)
        .map(|i| {
            Tenant::generate(
                format!("tenant{i}"),
                f.seed.wrapping_add(u64::from(i)),
                &params,
            )
        })
        .collect();

    if f.validate {
        let targets: &[u32] = if f.smoke { &[4] } else { &[4, 8, 16] };
        let report = validate_scaling(&cfg, &tenants, (1, 2), targets).unwrap_or_else(|e| {
            eprintln!("validation failed: {e}");
            exit(1)
        });
        let (small, large) = &report.observations;
        println!(
            "multi-GPU scale-model validation ({}, {}, {}-SM GPUs, {} tenants x {} kernels):",
            cfg.topology.as_str(),
            cfg.placement.as_str(),
            f.sms,
            f.tenants,
            f.dag_kernels
        );
        println!(
            "  fit: {} GPU IPC {:.1} (f_mem {:.2}); {} GPUs IPC {:.1} (f_mem {:.2})",
            small.size, small.ipc, small.f_mem, large.size, large.ipc, large.f_mem
        );
        for t in &report.targets {
            println!(
                "  {} GPUs, actual sustained IPC {:.1}:",
                t.n_gpus, t.actual_ipc
            );
            for m in &t.methods {
                println!(
                    "    {:<14} {:>10.1}  {:>+7.1}%",
                    m.method, m.predicted_ipc, m.pct_error
                );
            }
        }
        return;
    }

    let report = SystemSim::new(cfg.clone(), &tenants).run();
    print_stats(
        &format!(
            "{} GPUs x {} SMs ({}, {}, {} tenants, {})",
            f.gpus,
            f.sms,
            cfg.topology.as_str(),
            cfg.placement.as_str(),
            f.tenants,
            f.scale
        ),
        &report.stats,
    );
    println!("  phase B           {}", phase_b_mode(&cfg.gpu));
    println!("  fabric transfers  {:>14}", report.fabric.transfers);
    println!("  fabric bytes      {:>14}", report.fabric.link_bytes);
    println!("  fabric queue cyc  {:>14.0}", report.fabric.queue_cycles);
    let slots = u64::from(cfg.sharing);
    for (g, &busy) in report.gpu_busy_cycles.iter().enumerate() {
        println!(
            "  gpu{g} busy         {:>13.1}%",
            busy as f64 / (report.stats.cycles.max(1) * slots) as f64 * 100.0
        );
    }
    if f.assert_determinism {
        let mut serial = cfg.clone();
        serial.gpu.sim_threads = 1;
        let base = SystemSim::new(serial, &tenants).run();
        base.stats.assert_deterministic_eq(&report.stats);
        println!(
            "determinism: t{} bit-identical to t1 ({} cycles)",
            cfg.gpu.sim_threads.max(1),
            report.stats.cycles
        );
    }
}

/// Exit code for a trace decode failure. Each failure class gets its own
/// code so scripts (and the CI smoke job) can distinguish "you fed me a
/// PNG" from "this trace is truncated".
fn trace_exit(context: &str, e: &TraceReadError) -> ! {
    eprintln!("{context}: {e}");
    exit(match e {
        TraceReadError::NotATrace => 3,
        TraceReadError::UnsupportedVersion(_) => 4,
        TraceReadError::Corrupt(_) => 5,
        TraceReadError::TooLarge(_) => 6,
        TraceReadError::Io(_) => 1,
    })
}

/// Decode limits honouring `--max-trace-mb`.
fn trace_limits(f: &Flags) -> TraceLimits {
    let limits = TraceLimits::default();
    if f.max_trace_mb == 0 {
        limits
    } else {
        limits.with_max_file_bytes(f.max_trace_mb * 1024 * 1024)
    }
}

/// Opens the content-addressed trace store at `--store` (default
/// `./tracestore`).
fn open_store(f: &Flags) -> TraceStore {
    let root = f.store.clone().unwrap_or_else(|| "tracestore".to_string());
    TraceStore::open(
        root.clone(),
        StoreConfig {
            limits: trace_limits(f),
            ..StoreConfig::default()
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("cannot open trace store {root}: {e}");
        exit(1)
    })
}

/// `gsim trace <record|ingest|info|ls>`.
fn cmd_trace(f: &Flags) {
    let sub = f.positional.first().map(String::as_str);
    match sub {
        Some("record") => {
            let Some(name) = f.positional.get(1) else {
                eprintln!("trace record takes a benchmark name");
                exit(2)
            };
            let wl = if f.weak {
                weak_benchmark(name, f.scale)
                    .unwrap_or_else(|| {
                        eprintln!("unknown weak benchmark {name}");
                        exit(2)
                    })
                    .workload_for_sms(f.sms)
            } else {
                strong_benchmark(name, f.scale)
                    .unwrap_or_else(|| {
                        eprintln!("unknown benchmark {name}; try `gsim list`");
                        exit(2)
                    })
                    .workload
            };
            let out = f.output.clone().unwrap_or_else(|| format!("{name}.gstr"));
            let file = File::create(&out).unwrap_or_else(|e| {
                eprintln!("cannot create {out}: {e}");
                exit(1)
            });
            let write = if f.format == 1 {
                gsim_trace::write_trace_v1
            } else {
                gsim_trace::write_trace
            };
            let bytes = write(&wl, file).unwrap_or_else(|e| {
                eprintln!("trace write failed: {e}");
                exit(1)
            });
            println!(
                "wrote {out}: v{} format, {bytes} bytes, ref {:016x}",
                f.format,
                gsim_trace::semantic_hash_of(&wl)
            );
        }
        Some("ingest") => {
            let Some(path) = f.positional.get(1) else {
                eprintln!("trace ingest takes a trace file");
                exit(2)
            };
            let store = open_store(f);
            match store.ingest_file(std::path::Path::new(path)) {
                Ok((meta, dedup)) => println!(
                    "{} {} ({} warps, {} warp instrs, {} bytes){}",
                    meta.trace_ref,
                    meta.name,
                    meta.total_warps,
                    meta.total_warp_instrs,
                    meta.bytes,
                    if dedup { "  [already stored]" } else { "" }
                ),
                Err(StoreError::Invalid(e)) => trace_exit(&format!("cannot ingest {path}"), &e),
                Err(e) => {
                    eprintln!("cannot ingest {path}: {e}");
                    exit(1)
                }
            }
        }
        Some("info") => {
            let Some(target) = f.positional.get(1) else {
                eprintln!("trace info takes a trace file or a stored ref");
                exit(2)
            };
            // A bare 16-hex-digit name that is not a file resolves
            // through the store.
            let path = if !std::path::Path::new(target).exists()
                && target.len() == 16
                && target.chars().all(|c| c.is_ascii_hexdigit())
            {
                open_store(f)
                    .blob_path(&target.to_ascii_lowercase())
                    .unwrap_or_else(|| {
                        eprintln!("no trace {target} in store");
                        exit(1)
                    })
            } else {
                std::path::PathBuf::from(target)
            };
            let file = File::open(&path).unwrap_or_else(|e| {
                eprintln!("cannot open {}: {e}", path.display());
                exit(1)
            });
            let mut reader = TraceReader::with_limits(file, trace_limits(f))
                .unwrap_or_else(|e| trace_exit(&format!("bad trace {}", path.display()), &e));
            let version = reader.version();
            let name = reader.name().to_string();
            let kernels = reader.kernels().to_vec();
            // Stream the whole file for totals and the content hash; the
            // decoder holds one chunk at a time.
            loop {
                match reader.next_warp() {
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                    Err(e) => trace_exit(&format!("bad trace {}", path.display()), &e),
                }
            }
            let st = reader.stats().expect("stats after full pass");
            println!("trace {} (v{version} format)", path.display());
            println!("  name              {name}");
            println!("  ref               {:016x}", st.semantic_hash);
            println!("  kernels           {}", kernels.len());
            for k in &kernels {
                println!(
                    "    {:<20} {:>6} CTAs x {:>4} threads",
                    k.name, k.n_ctas, k.threads_per_cta
                );
            }
            println!("  warps             {}", st.total_warps);
            println!("  ops               {}", st.total_ops);
            println!("  warp instrs       {}", st.total_warp_instrs);
            println!("  bytes             {}", st.bytes_read);
            println!("  peak decode buf   {}", st.peak_buffer_bytes);
            if f.mrc {
                let sizes = [8u32, 16, 32, 64, 128];
                let configs: Vec<GpuConfig> = sizes
                    .iter()
                    .map(|&z| GpuConfig::paper_target(z, f.scale))
                    .collect();
                let file = File::open(&path).unwrap_or_else(|e| {
                    eprintln!("cannot reopen {}: {e}", path.display());
                    exit(1)
                });
                let out = mrc_from_trace(file, trace_limits(f), &configs)
                    .unwrap_or_else(|e| trace_exit(&format!("bad trace {}", path.display()), &e));
                println!("  miss-rate curve (stack-distance, no timing sim):");
                for (size, mpki) in out.mrc.points() {
                    println!("    {size:>3} SMs  MPKI {mpki:>7.2}");
                }
            }
        }
        Some("ls") => {
            let store = open_store(f);
            let traces = store.list();
            if traces.is_empty() {
                println!("trace store is empty");
            }
            for m in traces {
                println!(
                    "{} {:<16} {:>3} kernels {:>9} warps {:>12} warp instrs {:>10} bytes",
                    m.trace_ref, m.name, m.n_kernels, m.total_warps, m.total_warp_instrs, m.bytes
                );
            }
        }
        _ => {
            eprintln!("trace takes a subcommand: record, ingest, info, ls");
            exit(2)
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let f = parse(&args[1..]);
    match cmd.as_str() {
        "list" => {
            println!("strong-scaling benchmarks (Table II):");
            for b in strong_suite(f.scale) {
                println!(
                    "  {:>6}  {:<38} {:>8.1} MB  {}",
                    b.abbr,
                    b.full_name,
                    b.workload.footprint_mb_paper(),
                    b.expected
                );
            }
            println!("\nweak-scaling benchmarks (Table IV):");
            for b in weak_suite(f.scale) {
                println!("  {:>6}  {}", b.abbr, b.expected);
            }
        }
        "run" => {
            let name = f.positional.first().unwrap_or_else(|| usage());
            let wl = if f.weak {
                weak_benchmark(name, f.scale)
                    .unwrap_or_else(|| {
                        eprintln!("unknown weak benchmark {name}");
                        exit(2)
                    })
                    .workload_for_sms(f.sms)
            } else {
                strong_benchmark(name, f.scale)
                    .unwrap_or_else(|| {
                        eprintln!("unknown benchmark {name}; try `gsim list`");
                        exit(2)
                    })
                    .workload
            };
            let mut cfg = GpuConfig::paper_target(f.sms, f.scale);
            cfg.dram_banks_per_mc = f.banked_dram;
            cfg.sim_threads = f.sim_threads;
            cfg.sync_slack = f.sync_slack;
            let st = Simulator::new(cfg.clone(), &wl).run();
            print_stats(&format!("{name} on {} SMs ({})", f.sms, f.scale), &st);
            println!("  phase B           {}", phase_b_mode(&cfg));
            if f.assert_determinism {
                check_determinism(&cfg, &wl, &st);
            }
        }
        "multigpu" => cmd_multigpu(&f),
        "sweep" => {
            let name = f.positional.first().unwrap_or_else(|| usage());
            // One simulation job per system size, run on the worker pool.
            let workload_for: Box<dyn Fn(u32) -> Workload + Send + Sync> = if f.weak {
                let bench = weak_benchmark(name, f.scale).unwrap_or_else(|| {
                    eprintln!("unknown weak benchmark {name}");
                    exit(2)
                });
                Box::new(move |sms| bench.workload_for_sms(sms))
            } else {
                let bench = strong_benchmark(name, f.scale).unwrap_or_else(|| {
                    eprintln!("unknown benchmark {name}; try `gsim list`");
                    exit(2)
                });
                Box::new(move |_| bench.workload.clone())
            };
            let scale = f.scale;
            let sim_threads = f.sim_threads;
            let sync_slack = f.sync_slack;
            let sizes = [8u32, 16, 32, 64, 128];
            let runner = Runner::new(RunnerConfig {
                threads: f.threads.unwrap_or(0),
                ..RunnerConfig::default()
            })
            .with_sink(ProgressReporter::new());
            let reports = runner.map(
                &format!("sweep-{name}"),
                sizes
                    .iter()
                    .map(|&z| (format!("{name}@{z}sm"), z))
                    .collect(),
                move |&sms: &u32| {
                    let mut cfg = GpuConfig::paper_target(sms, scale);
                    cfg.sim_threads = sim_threads;
                    cfg.sync_slack = sync_slack;
                    Simulator::new(cfg, &workload_for(sms)).run()
                },
            );
            println!(
                "{name} {} sweep over the size ladder ({}):",
                if f.weak {
                    "weak-scaling"
                } else {
                    "strong-scaling"
                },
                f.scale
            );
            println!(
                "  {:>5}  {:>12}  {:>10}  {:>7}  {:>7}",
                "#SMs", "cycles", "IPC", "MPKI", "f_mem"
            );
            let mut failed = false;
            for (report, &sms) in reports.iter().zip(&sizes) {
                match report.ok() {
                    Some(st) => println!(
                        "  {:>5}  {:>12}  {:>10.1}  {:>7.2}  {:>7.2}",
                        sms,
                        st.cycles,
                        st.sustained_ipc(),
                        st.mpki(),
                        st.f_mem()
                    ),
                    None => {
                        failed = true;
                        println!(
                            "  {:>5}  {}",
                            sms,
                            report.failure().unwrap_or_else(|| "failed".into())
                        );
                    }
                }
            }
            if failed {
                exit(1);
            }
        }
        "mcm" => {
            let name = f.positional.first().unwrap_or_else(|| usage());
            let bench = weak_benchmark(name, f.scale).unwrap_or_else(|| {
                eprintln!("unknown weak benchmark {name}");
                exit(2)
            });
            let wl = bench.workload_for_chiplets(f.chiplets);
            let mut mcm = ChipletConfig::paper_mcm(f.chiplets, f.scale);
            mcm.chiplet.sim_threads = f.sim_threads;
            mcm.chiplet.sync_slack = f.sync_slack;
            let st = Simulator::new_mcm(&mcm, &wl).run();
            print_stats(
                &format!(
                    "{name} on {} chiplets = {} SMs ({})",
                    f.chiplets,
                    mcm.total_sms(),
                    f.scale
                ),
                &st,
            );
            println!("  phase B           {}", phase_b_mode(&mcm.chiplet));
            if f.assert_determinism {
                let mut serial = mcm.clone();
                serial.chiplet.sim_threads = 1;
                let base = Simulator::new_mcm(&serial, &wl).run();
                base.assert_deterministic_eq(&st);
                println!(
                    "determinism: t{} bit-identical to t1 ({} cycles)",
                    f.sim_threads.max(1),
                    st.cycles
                );
            }
        }
        "mrc" => {
            let name = f.positional.first().unwrap_or_else(|| usage());
            let bench = strong_benchmark(name, f.scale).unwrap_or_else(|| {
                eprintln!("unknown benchmark {name}");
                exit(2)
            });
            let sizes = [8u32, 16, 32, 64, 128];
            let configs: Vec<GpuConfig> = sizes
                .iter()
                .map(|&z| GpuConfig::paper_target(z, f.scale))
                .collect();
            let curve = collect_mrc(&bench.workload, &configs);
            let mrc = SizedMrc::new(sizes.iter().zip(curve.points()).map(|(&z, p)| (z, p.mpki)));
            println!("{name} miss-rate curve:");
            for ((size, region), cfg) in mrc.regions().iter().zip(&configs) {
                println!(
                    "  {:>3} SMs  {:>7.3} MB  MPKI {:>7.2}   {:?}",
                    size,
                    cfg.llc_paper_bytes() as f64 / (1024.0 * 1024.0),
                    mrc.mpki_at(*size).expect("sampled"),
                    region
                );
            }
            match detect_cliff(&mrc) {
                Some(i) => println!(
                    "cliff between {} and {} SMs",
                    mrc.points()[i].0,
                    mrc.points()[i + 1].0
                ),
                None => println!("no cliff detected"),
            }
        }
        "trace" => cmd_trace(&f),
        "trace-dump" => {
            let name = f.positional.first().unwrap_or_else(|| usage());
            let out = f.output.unwrap_or_else(|| format!("{name}.gstr"));
            let bench = strong_benchmark(name, f.scale).unwrap_or_else(|| {
                eprintln!("unknown benchmark {name}");
                exit(2)
            });
            let file = File::create(&out).unwrap_or_else(|e| {
                eprintln!("cannot create {out}: {e}");
                exit(1)
            });
            let bytes = gsim_trace::write_trace(&bench.workload, file).unwrap_or_else(|e| {
                eprintln!("trace write failed: {e}");
                exit(1)
            });
            println!(
                "wrote {out}: {bytes} bytes, {} warp instructions ({:.2} B/instr)",
                bench.workload.approx_warp_instrs(),
                bytes as f64 / bench.workload.approx_warp_instrs() as f64
            );
        }
        "trace-run" => {
            let path = f.positional.first().unwrap_or_else(|| usage());
            let file = File::open(path).unwrap_or_else(|e| {
                eprintln!("cannot open {path}: {e}");
                exit(1)
            });
            let traced = TracedWorkload::read_with_limits(file, trace_limits(&f))
                .unwrap_or_else(|e| trace_exit(&format!("bad trace {path}"), &e));
            let mut cfg = GpuConfig::paper_target(f.sms, f.scale);
            cfg.dram_banks_per_mc = f.banked_dram;
            cfg.sim_threads = f.sim_threads;
            cfg.sync_slack = f.sync_slack;
            let st = Simulator::new(cfg.clone(), &traced).run();
            print_stats(
                &format!("trace {} on {} SMs ({})", traced.name(), f.sms, f.scale),
                &st,
            );
            println!("  phase B           {}", phase_b_mode(&cfg));
            if f.assert_determinism {
                check_determinism(&cfg, &traced, &st);
            }
        }
        "predict" => {
            use std::time::Instant;

            use gsim_core::plan::{
                collect_sampled, observation_of, observe_scale_models, synthesize_observation, Fit,
                PlanWorkload, SampledCollectConfig,
            };
            use gsim_runner::RunOverrides;

            let name = f.positional.first().unwrap_or_else(|| usage());
            let bench = strong_benchmark(name, f.scale).unwrap_or_else(|| {
                eprintln!("unknown benchmark {name}; try `gsim list`");
                exit(2)
            });
            let mut targets: Vec<u32> = f.positional[1..]
                .iter()
                .map(|t| {
                    t.parse().unwrap_or_else(|_| {
                        eprintln!("bad target {t}: targets are SM counts");
                        exit(2)
                    })
                })
                .collect();
            if targets.is_empty() {
                targets = vec![32, 64, 128];
            }
            targets.sort_unstable();
            targets.dedup();

            let (small, large) = (8u32, 16u32);
            let cfg_of = |sms: u32| GpuConfig::paper_target(sms, f.scale);
            // Collect over the whole doubling ladder through the largest
            // target: the replay pass dominates, the readout is cheap.
            let mut ladder = vec![small];
            while *ladder.last().expect("non-empty") < *targets.last().expect("non-empty") {
                ladder.push(ladder.last().expect("non-empty").saturating_mul(2));
            }
            let configs: Vec<GpuConfig> = ladder.iter().map(|&z| cfg_of(z)).collect();
            let wl = PlanWorkload::Synthetic(bench.workload.clone());
            let runner = Runner::new(RunnerConfig {
                threads: f.threads.unwrap_or(0),
                ..RunnerConfig::default()
            });
            let gate = if f.fast_path_gate == 0.0 {
                1.0
            } else {
                f.fast_path_gate
            };

            let t_collect = Instant::now();
            let collected = collect_sampled(
                &wl,
                &configs,
                &SampledCollectConfig::default(),
                Some((&runner, RunOverrides::default())),
            )
            .unwrap_or_else(|e| {
                eprintln!("collection failed: {e}");
                exit(1)
            });
            let collect_time = t_collect.elapsed();
            let pressure = collected.memory_pressure(&cfg_of(*targets.last().expect("non-empty")));
            let fast = match f.path.as_str() {
                "fast" => true,
                "full" => false,
                _ => pressure >= gate,
            };
            let mrc = collected.sized_mrc();

            let t_fit = Instant::now();
            let fit = if fast {
                Fit::new(
                    synthesize_observation(&collected, &cfg_of(small)),
                    synthesize_observation(&collected, &cfg_of(large)),
                    Some(&mrc),
                )
            } else {
                let (st_s, st_l) = observe_scale_models(
                    &runner,
                    &wl,
                    &cfg_of(small),
                    &cfg_of(large),
                    RunOverrides::default(),
                )
                .unwrap_or_else(|e| {
                    eprintln!("scale-model simulation failed: {e}");
                    exit(1)
                });
                Fit::new(
                    observation_of(small, &st_s),
                    observation_of(large, &st_l),
                    Some(&mrc),
                )
            }
            .unwrap_or_else(|e| {
                eprintln!("fit failed: {e}");
                exit(1)
            });
            let fit_time = t_fit.elapsed();

            let t_predict = Instant::now();
            let forecast = fit.forecast(&targets).unwrap_or_else(|e| {
                eprintln!("prediction failed: {e}");
                exit(2)
            });
            let predict_time = t_predict.elapsed();

            println!(
                "{name} staged predict ({}): pressure {pressure:.2} vs gate {gate:.2} -> {} path",
                f.scale,
                if fast { "fast" } else { "full" }
            );
            println!(
                "  stages: collect {:.2} ms, fit {:.2} ms ({}), predict {:.3} ms",
                collect_time.as_secs_f64() * 1e3,
                fit_time.as_secs_f64() * 1e3,
                if fast {
                    "roofline synthesis"
                } else {
                    "2 concurrent timing sims"
                },
                predict_time.as_secs_f64() * 1e3,
            );
            println!(
                "  scale models: {} SMs IPC {:.1} (f_mem {:.2}), {} SMs IPC {:.1} (f_mem {:.2})",
                fit.small().size,
                fit.small().ipc,
                fit.small().f_mem,
                fit.large().size,
                fit.large().ipc,
                fit.large().f_mem,
            );
            match forecast.cliff_at {
                Some(at) => println!(
                    "  correction factor {:.3}, cliff at {at} SMs",
                    forecast.correction_factor
                ),
                None => println!(
                    "  correction factor {:.3}, no cliff on the ladder",
                    forecast.correction_factor
                ),
            }
            for t in &forecast.targets {
                println!("  {:>6} SMs:", t.target);
                for m in &t.by_method {
                    println!("    {:<14} IPC {:>10.1}", m.method, m.predicted_ipc);
                }
            }
        }
        "serve" => {
            use std::net::ToSocketAddrs;
            use std::sync::Arc;

            use gsim_serve::{PredictService, ServeConfig, Server, ServerConfig, ShutdownFlag};

            // Flag validation failures mirror the usage() style: message + exit 2.
            let threads = match f.threads {
                Some(0) => {
                    eprintln!("--threads must be >= 1");
                    exit(2)
                }
                Some(n) => n,
                None => 4,
            };
            if f.addr
                .to_socket_addrs()
                .map_or(true, |mut it| it.next().is_none())
            {
                eprintln!("--addr takes HOST:PORT, got {:?}", f.addr);
                exit(2)
            }
            // Install the fault-injection plan before the service opens
            // any store: the flag wins over the GSIM_FAULTS env var.
            match &f.fault_plan {
                Some(spec) => match gsim_faults::FaultPlan::parse(spec) {
                    Ok(plan) => {
                        gsim_faults::install(plan);
                    }
                    Err(e) => {
                        eprintln!("--fault-plan: {e}");
                        exit(2)
                    }
                },
                None => {
                    if let Err(e) = gsim_faults::install_from_env() {
                        eprintln!("{}: {e}", gsim_faults::ENV_VAR);
                        exit(2)
                    }
                }
            }
            if let Some(inj) = gsim_faults::active() {
                eprintln!("gsim-serve: fault injection ACTIVE: {:?}", inj.plan());
            }
            let shutdown = ShutdownFlag::new();
            let service = PredictService::new(
                ServeConfig {
                    runner_threads: f.runner_threads,
                    cache_capacity: 0,
                    cache_dir: f.cache_dir.clone().map(Into::into),
                    trace_store_dir: f.store.clone().map(Into::into),
                    default_deadline_ms: f.default_deadline_ms,
                    max_inflight_predicts: f.max_inflight_predicts,
                    max_inflight_cheap: f.max_inflight_cheap,
                    degrade_threshold: f.degrade_threshold,
                    fast_path_gate: f.fast_path_gate,
                    ..ServeConfig::default()
                },
                shutdown.clone(),
            )
            .unwrap_or_else(|e| {
                eprintln!("cannot start prediction service: {e}");
                exit(1)
            });
            let server = Server::bind(
                &f.addr,
                ServerConfig {
                    threads,
                    drain_grace: std::time::Duration::from_millis(f.drain_grace_ms),
                    ..ServerConfig::default()
                },
                shutdown.clone(),
            )
            .unwrap_or_else(|e| {
                eprintln!("cannot bind {}: {e}", f.addr);
                exit(1)
            });
            match server.local_addr() {
                Ok(local) => println!("gsim-serve listening on {local}"),
                Err(_) => println!("gsim-serve listening on {}", f.addr),
            }
            // Without signal handling (no unsafe, no deps) the shutdown paths
            // are `POST /v1/shutdown` and stdin reaching EOF — the latter lets
            // a parent process stop us by closing our stdin.
            {
                let shutdown = shutdown.clone();
                std::thread::spawn(move || {
                    let _ = std::io::copy(&mut std::io::stdin().lock(), &mut std::io::sink());
                    shutdown.trigger();
                });
            }
            if let Err(e) = server.serve(Arc::new(move |req| service.handle(req))) {
                eprintln!("server error: {e}");
                exit(1)
            }
            println!("gsim-serve shut down cleanly");
        }
        _ => usage(),
    }
}
