//! Scratch probe: scaling shapes for selected benchmarks (dev tool).

use gsim_sim::{collect_mrc, GpuConfig, Simulator};
use gsim_trace::suite::strong_suite;
use gsim_trace::MemScale;

fn main() {
    let scale = MemScale::default();
    let sizes = [8u32, 16, 32, 64, 128];
    let args: Vec<String> = std::env::args().skip(1).collect();
    let pick: Vec<&str> = if args.is_empty() {
        vec!["dct", "bfs", "pf"]
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    let configs: Vec<GpuConfig> = sizes
        .iter()
        .map(|&s| GpuConfig::paper_target(s, scale))
        .collect();
    let suite = strong_suite(scale);
    for p in &pick {
        if !suite.iter().any(|b| &b.abbr == p) {
            eprintln!("probe: unknown benchmark {p} (known: Table II abbreviations)");
        }
    }
    for b in suite {
        if !pick.contains(&b.abbr) {
            continue;
        }
        println!("=== {} (expect {}) ===", b.abbr, b.expected);
        let t0 = std::time::Instant::now();
        let mrc = collect_mrc(&b.workload, &configs);
        println!("  mrc ({:.2}s): {}", t0.elapsed().as_secs_f64(), mrc);
        let mut prev = 0.0;
        for cfg in &configs {
            let t0 = std::time::Instant::now();
            let st = Simulator::new(cfg.clone(), &b.workload).run();
            let ratio = if prev > 0.0 { st.ipc() / prev } else { 0.0 };
            prev = st.ipc();
            println!(
                "  {:>3} SMs: IPC {:8.1} (x{:.2})  mpki {:6.2}  f_mem {:.2}  f_idle {:.2}  cyc {:>9}  [{:.2}s]",
                cfg.n_sms,
                st.ipc(),
                ratio,
                st.mpki(),
                st.f_mem(),
                st.f_idle(),
                st.cycles,
                t0.elapsed().as_secs_f64()
            );
        }
    }
}
