//! `serve_bench` — seeded closed-loop load generator for gsim-serve.
//!
//! ```text
//! serve_bench --addr HOST:PORT [--duration-secs N] [--concurrency N]
//!             [--seed N] [--deadline-ms N] [-o BENCH_serve.json]
//! ```
//!
//! Drives a running `gsim serve` instance with a deterministic request
//! mix (mostly predicts over a small pool of bodies, plus metrics and
//! catalog reads and a slice of deliberately invalid predicts), one
//! fresh connection per request, and writes a `gsim-serve-bench-v1`
//! summary: sustained RPS, latency quantiles, the full status
//! breakdown, the shed rate, and how many `429`s arrived without the
//! promised `Retry-After` header (must be zero).
//!
//! Transport-level failures — refused/reset connections, mid-body
//! disconnects (as injected by `gsim-faults`), read timeouts — are
//! counted separately from HTTP statuses: a chaos run needs to tell "the
//! server answered 429" apart from "the connection died".
//!
//! The generator is *closed-loop*: each of `--concurrency` workers has
//! at most one request outstanding, so pointing more workers at the
//! service than its admission budget is exactly the "2× saturation"
//! overload the chaos harness wants.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::exit;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use gsim_json::{obj, Json};
use gsim_rng::SplitMix64;

struct Args {
    addr: String,
    duration: Duration,
    concurrency: usize,
    seed: u64,
    deadline_ms: Option<u64>,
    output: String,
}

fn usage() -> ! {
    eprintln!(
        "usage: serve_bench --addr HOST:PORT [--duration-secs N] [--concurrency N] \
         [--seed N] [--deadline-ms N] [-o FILE]"
    );
    exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: String::new(),
        duration: Duration::from_secs(10),
        concurrency: 16,
        seed: 42,
        deadline_ms: None,
        output: "BENCH_serve.json".to_string(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut num = |name: &str| -> u64 {
            it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("{name} takes an integer");
                exit(2)
            })
        };
        match a.as_str() {
            "--addr" => match it.next() {
                Some(v) => args.addr = v.clone(),
                None => usage(),
            },
            "--duration-secs" => args.duration = Duration::from_secs(num("--duration-secs").max(1)),
            "--concurrency" => args.concurrency = (num("--concurrency") as usize).max(1),
            "--seed" => args.seed = num("--seed"),
            "--deadline-ms" => args.deadline_ms = Some(num("--deadline-ms")),
            "-o" | "--output" => match it.next() {
                Some(v) => args.output = v.clone(),
                None => usage(),
            },
            _ => usage(),
        }
    }
    if args.addr.is_empty() {
        usage()
    }
    args
}

/// One worker's tallies, merged at the end.
#[derive(Default)]
struct Tally {
    /// status code → count.
    statuses: BTreeMap<u16, u64>,
    /// Connections that died before a status line arrived (refused,
    /// reset, timed out, truncated).
    transport_errors: u64,
    /// `429` responses missing the `Retry-After` header (contract
    /// violations; must stay zero).
    retry_after_missing: u64,
    /// Bodies carrying the `"degraded":true` marker.
    degraded: u64,
    /// Latency of every request that produced a status, in µs.
    latencies_us: Vec<u64>,
}

/// The deterministic request mix: `(method, path, body)` drawn from the
/// worker's seeded RNG. Roughly 70% valid predicts over a small body
/// pool (duplicates on purpose: they exercise the cache and
/// single-flight), 10% invalid predicts (negative-cache food), 10%
/// metrics reads, 10% catalog reads.
fn pick_request<'a>(
    rng: &mut SplitMix64,
    bodies: &'a [String],
    invalid: &'a [String],
) -> (&'static str, &'static str, Option<&'a str>) {
    let r = rng.next_u64() % 100;
    if r < 70 {
        let body = &bodies[(rng.next_u64() as usize) % bodies.len()];
        ("POST", "/v1/predict", Some(body.as_str()))
    } else if r < 80 {
        let body = &invalid[(rng.next_u64() as usize) % invalid.len()];
        ("POST", "/v1/predict", Some(body.as_str()))
    } else if r < 90 {
        ("GET", "/metrics", None)
    } else {
        ("GET", "/v1/workloads", None)
    }
}

/// Issues one request on a fresh connection, returning
/// `(status, has_retry_after, body)`; `Err(())` is a transport failure.
fn one_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    deadline_ms: Option<u64>,
) -> Result<(u16, bool, String), ()> {
    let stream = TcpStream::connect(addr).map_err(|_| ())?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_nodelay(true);
    let mut stream = stream;
    let mut req = format!("{method} {path} HTTP/1.1\r\nHost: gsim\r\nConnection: close\r\n");
    if let Some(ms) = deadline_ms {
        req.push_str(&format!("X-Gsim-Deadline-Ms: {ms}\r\n"));
    }
    match body {
        Some(b) => {
            req.push_str(&format!(
                "Content-Type: application/json\r\nContent-Length: {}\r\n\r\n{b}",
                b.len()
            ));
        }
        None => req.push_str("\r\n"),
    }
    stream.write_all(req.as_bytes()).map_err(|_| ())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw).map_err(|_| ())?;
    // "HTTP/1.1 NNN ..." — anything shorter is a truncated response.
    let status: u16 = raw
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.get(..3))
        .and_then(|code| code.parse().ok())
        .ok_or(())?;
    let Some((head, response_body)) = raw.split_once("\r\n\r\n") else {
        return Err(()); // injected mid-head disconnect
    };
    // A disconnect fault advertises the full length but sends half.
    let advertised: Option<usize> = head.lines().find_map(|l| {
        l.to_ascii_lowercase()
            .strip_prefix("content-length:")
            .and_then(|v| v.trim().parse().ok())
    });
    if advertised.is_some_and(|n| response_body.len() < n) {
        return Err(());
    }
    let has_retry_after = head
        .lines()
        .any(|l| l.to_ascii_lowercase().starts_with("retry-after:"));
    Ok((status, has_retry_after, response_body.to_string()))
}

fn main() {
    let args = parse_args();
    // Valid predicts: small synthetic patterns pinned to the full path
    // (cheap enough to finish, heavy enough to occupy the pool — the
    // functional-first fast path would sidestep the saturation this
    // bench is about) plus one suite benchmark left on the default
    // `auto` path so the fast path sees chaos too. Duplicates across
    // workers are intentional.
    let bodies: Arc<Vec<String>> = Arc::new(
        [
            (2.0, 1u32, 64u32),
            (4.0, 2, 64),
            (8.0, 1, 128),
            (2.0, 3, 128),
        ]
        .iter()
        .map(|(fp, passes, target)| {
            format!(
                r#"{{"pattern": {{"kind": "global_sweep", "footprint_mb": {fp}, "passes": {passes}}}, "target_sms": {target}, "path": "full"}}"#
            )
        })
        .chain([r#"{"workload": "bfs", "target_sms": 64}"#.to_string()])
        .collect(),
    );
    let invalid: Arc<Vec<String>> = Arc::new(vec![
        r#"{"pattern": {"kind": "zigzag", "footprint_mb": 1.0}, "target_sms": 64}"#.to_string(),
        r#"{"workload": "bfs", "target_sms": 64, "tyop": 1}"#.to_string(),
    ]);

    let started = Instant::now();
    let stop_at = started + args.duration;
    let tallies: Arc<Mutex<Vec<Tally>>> = Arc::new(Mutex::new(Vec::new()));
    let workers: Vec<_> = (0..args.concurrency)
        .map(|w| {
            let addr = args.addr.clone();
            let bodies = Arc::clone(&bodies);
            let invalid = Arc::clone(&invalid);
            let tallies = Arc::clone(&tallies);
            let deadline_ms = args.deadline_ms;
            let mut rng = SplitMix64::new(args.seed ^ (w as u64).wrapping_mul(0x9e37_79b9));
            std::thread::spawn(move || {
                let mut tally = Tally::default();
                while Instant::now() < stop_at {
                    let (method, path, body) = pick_request(&mut rng, &bodies, &invalid);
                    let t0 = Instant::now();
                    match one_request(&addr, method, path, body, deadline_ms) {
                        Ok((status, has_retry_after, response_body)) => {
                            let us = u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
                            tally.latencies_us.push(us);
                            *tally.statuses.entry(status).or_insert(0) += 1;
                            if status == 429 && !has_retry_after {
                                tally.retry_after_missing += 1;
                            }
                            if response_body.contains("\"degraded\":true") {
                                tally.degraded += 1;
                            }
                        }
                        Err(()) => tally.transport_errors += 1,
                    }
                }
                tallies.lock().expect("tally lock").push(tally);
            })
        })
        .collect();
    for w in workers {
        let _ = w.join();
    }
    let elapsed = started.elapsed();

    // Merge.
    let mut statuses: BTreeMap<u16, u64> = BTreeMap::new();
    let mut latencies: Vec<u64> = Vec::new();
    let (mut transport_errors, mut retry_after_missing, mut degraded) = (0u64, 0u64, 0u64);
    for t in tallies.lock().expect("tally lock").iter() {
        for (&s, &n) in &t.statuses {
            *statuses.entry(s).or_insert(0) += n;
        }
        latencies.extend_from_slice(&t.latencies_us);
        transport_errors += t.transport_errors;
        retry_after_missing += t.retry_after_missing;
        degraded += t.degraded;
    }
    latencies.sort_unstable();
    let quantile = |q: f64| -> Option<u64> {
        if latencies.is_empty() {
            return None;
        }
        let rank = ((latencies.len() as f64) * q).ceil().max(1.0) as usize;
        Some(latencies[rank.min(latencies.len()) - 1])
    };
    let answered: u64 = statuses.values().sum();
    let total = answered + transport_errors;
    let shed: u64 = statuses.get(&429).copied().unwrap_or(0);
    let rps = answered as f64 / elapsed.as_secs_f64();
    let shed_rate = if answered > 0 {
        shed as f64 / answered as f64
    } else {
        0.0
    };

    let doc = obj([
        ("schema", Json::from("gsim-serve-bench-v1")),
        ("addr", Json::from(args.addr.as_str())),
        ("duration_secs", Json::from(elapsed.as_secs_f64())),
        ("concurrency", Json::from(args.concurrency)),
        ("seed", Json::from(args.seed)),
        (
            "deadline_ms",
            match args.deadline_ms {
                Some(ms) => Json::from(ms),
                None => Json::Null,
            },
        ),
        ("requests", Json::from(total)),
        ("answered", Json::from(answered)),
        (
            "by_status",
            obj(statuses
                .iter()
                .map(|(&s, &n)| (s.to_string(), Json::from(n)))),
        ),
        ("transport_errors", Json::from(transport_errors)),
        ("rps", Json::from(rps)),
        ("p50_us", Json::from(quantile(0.50))),
        ("p99_us", Json::from(quantile(0.99))),
        ("shed", Json::from(shed)),
        ("shed_rate", Json::from(shed_rate)),
        ("retry_after_missing", Json::from(retry_after_missing)),
        ("degraded", Json::from(degraded)),
    ]);
    let rendered = doc.render();
    if let Err(e) = std::fs::write(&args.output, format!("{rendered}\n")) {
        eprintln!("cannot write {}: {e}", args.output);
        exit(1)
    }
    println!(
        "serve_bench: {answered} answered ({transport_errors} transport errors) in {:.1}s \
         = {rps:.0} rps; shed {shed} ({:.1}%); p50 {} us, p99 {} us; wrote {}",
        elapsed.as_secs_f64(),
        100.0 * shed_rate,
        quantile(0.50).unwrap_or(0),
        quantile(0.99).unwrap_or(0),
        args.output
    );
    // The bench itself enforces the one non-negotiable contract.
    if retry_after_missing > 0 {
        eprintln!("serve_bench: {retry_after_missing} 429s arrived without Retry-After");
        exit(1)
    }
}
