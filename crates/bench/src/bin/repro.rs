//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [OPTIONS] [SECTION ...]
//!   --scale N          memory divisor for the miniature (default 8)
//!   --threads N        sweep worker threads (0 = auto, the default)
//!   --sim-threads N    threads *inside* each simulation (default 1;
//!                      results are bit-identical for any value)
//!   --sync-slack S     bounded-slack relaxed sync in cycles (default 0 =
//!                      bit-exact; S > 0 trades a documented accuracy
//!                      envelope for fewer merge barriers, DESIGN.md §15)
//!   --metrics FILE     append JSONL sweep metrics to FILE
//!   --inject-panic B   replace benchmark B's job with one that panics
//!                      (failure-isolation demo; the sweep still completes)
//!   SECTION: table1 table2 table3 table4 table5
//!            fig1 fig2 fig4a fig4b fig5 fig6 fig7 fig8 appendix
//!            ablations multicliff sampling
//!   (no sections = run everything)
//! ```
//!
//! Output goes to stdout and to `results/<section>.txt`. Strong-scaling
//! simulations are run once and shared by table2/fig1/fig2/fig4/fig5/
//! appendix; weak by table4/fig6/fig7; MCM by table5/fig8. The
//! benchmark sweeps run on a gsim-runner worker pool: one job per
//! benchmark, failures recorded per job and summarised at the end
//! (nonzero exit) instead of tearing the run down.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::Arc;

use gsim_bench::{emit, mb};
use gsim_core::ablation::{
    ablate_f_mem_source, ablate_scale_model_style, cliff_threshold_sweep, ScaleModelStyle,
};
use gsim_core::experiment::{
    aggregate_error, reanalyze, BenchmarkOutcome, McmExperiment, StrongScalingExperiment,
    WeakOutcome, WeakScalingExperiment, METHODS,
};
use gsim_core::parallel::{collect, SweepFailure};
use gsim_core::report::{ipc, pct, ratio, TextTable};
use gsim_core::sampling::compare_sampling;
use gsim_core::{MultiCliffPredictor, ScaleModelInputs, ScaleModelPredictor, SizedMrc};
use gsim_mem::ReplacementPolicy;
use gsim_runner::{EventSink, Job, JsonlSink, ProgressReporter, Runner, RunnerConfig};
use gsim_sim::{collect_mrc, ChipletConfig, GpuConfig, Simulator};
use gsim_trace::suite::{strong_benchmark, strong_suite};
use gsim_trace::weak::{weak_suite, WEAK_SM_SIZES};
use gsim_trace::{Kernel, MemScale, PatternKind, PatternSpec, Workload};

const ALL_SECTIONS: [&str; 17] = [
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "fig1",
    "fig2",
    "fig4a",
    "fig4b",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "appendix",
    "ablations",
    "multicliff",
    "sampling",
];

const USAGE: &str = "usage: repro [--scale N] [--threads N] [--sim-threads N] \
                     [--sync-slack S] [--metrics FILE] [--inject-panic BENCH] [SECTION ...]";

struct Options {
    scale: MemScale,
    threads: usize,
    sim_threads: u32,
    sync_slack: u32,
    metrics: Option<String>,
    inject_panic: Option<String>,
    sections: BTreeSet<String>,
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut opts = Options {
        scale: MemScale::default(),
        threads: 0,
        sim_threads: 1,
        sync_slack: 0,
        metrics: None,
        inject_panic: None,
        sections: BTreeSet::new(),
    };
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--scale" => {
                let v = args.next().ok_or("--scale requires a value")?;
                let d: u32 = v
                    .parse()
                    .map_err(|_| format!("--scale takes a positive integer divisor, got {v:?}"))?;
                if d == 0 {
                    return Err("--scale divisor must be nonzero".into());
                }
                opts.scale = MemScale::new(d);
            }
            "--threads" => {
                let v = args.next().ok_or("--threads requires a value")?;
                opts.threads = v
                    .parse()
                    .map_err(|_| format!("--threads takes a thread count, got {v:?}"))?;
            }
            "--sim-threads" => {
                let v = args.next().ok_or("--sim-threads requires a value")?;
                opts.sim_threads = v
                    .parse()
                    .map_err(|_| format!("--sim-threads takes a thread count, got {v:?}"))?;
                if opts.sim_threads == 0 {
                    return Err("--sim-threads must be >= 1".into());
                }
            }
            "--sync-slack" => {
                let v = args.next().ok_or("--sync-slack requires a value")?;
                // u32 parse rejects negatives and garbage alike (exit 2).
                opts.sync_slack = v.parse().map_err(|_| {
                    format!("--sync-slack takes a non-negative cycle count, got {v:?}")
                })?;
            }
            "--metrics" => {
                opts.metrics = Some(args.next().ok_or("--metrics requires a file path")?);
            }
            "--inject-panic" => {
                opts.inject_panic = Some(
                    args.next()
                        .ok_or("--inject-panic requires a benchmark name")?,
                );
            }
            s => {
                let s = s.trim_start_matches("--").to_string();
                if !ALL_SECTIONS.contains(&s.as_str()) {
                    return Err(format!(
                        "unknown section or option {s:?}; sections: {}",
                        ALL_SECTIONS.join(" ")
                    ));
                }
                opts.sections.insert(s);
            }
        }
    }
    if opts.sections.is_empty() {
        opts.sections = ALL_SECTIONS.iter().map(|s| s.to_string()).collect();
    }
    Ok(opts)
}

/// Prints a suite's aggregate simulation throughput (simulated cycles per
/// wall-clock second; wall time is summed over jobs, so the rate is
/// per-worker rather than end-to-end).
fn report_sim_rate<'a>(label: &str, outcomes: impl Iterator<Item = &'a BenchmarkOutcome>) {
    let (mut cycles, mut secs) = (0u64, 0.0f64);
    for o in outcomes {
        for m in &o.measured {
            cycles += m.cycles;
            secs += m.sim_seconds;
        }
    }
    if secs > 0.0 {
        eprintln!(
            "[repro] {label}: {cycles} simulated cycles in {secs:.2} s of simulator time \
             ({:.0} cycles/sec)",
            cycles as f64 / secs
        );
    }
}

/// Replaces the job named `victim` (if present) with one that panics —
/// the failure-isolation demonstration. Returns whether a job matched.
fn inject_panic<T: Send + 'static>(jobs: &mut [Job<T>], victim: &str) -> bool {
    if let Some(j) = jobs.iter_mut().find(|j| j.name() == victim) {
        let name = victim.to_string();
        *j = Job::new(name.clone(), move || -> T {
            panic!("injected failure in {name} (--inject-panic)")
        });
        true
    } else {
        false
    }
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(msg) => {
            if msg.is_empty() {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("repro: {msg}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let scale = opts.scale;
    let want = |s: &str| opts.sections.contains(s);
    eprintln!(
        "[repro] phase B: {}{}",
        if opts.sim_threads > 1 {
            format!("owner-sharded over {} threads", opts.sim_threads)
        } else {
            "serial fallback (--sim-threads 1)".to_string()
        },
        if opts.sync_slack > 0 {
            format!(", relaxed sync slack {} cycles", opts.sync_slack)
        } else {
            ", bit-exact".to_string()
        }
    );

    let mut runner = Runner::new(RunnerConfig {
        threads: opts.threads,
        ..RunnerConfig::default()
    })
    .with_sink(ProgressReporter::new());
    if let Some(path) = &opts.metrics {
        match JsonlSink::create(path) {
            Ok(sink) => runner.add_sink(Arc::new(sink) as Arc<dyn EventSink>),
            Err(e) => {
                eprintln!("repro: cannot create metrics file {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let mut failures: Vec<SweepFailure> = Vec::new();
    let mut injected = false;

    if want("table1") {
        emit("table1", &table1(scale));
    }
    if want("table3") {
        emit("table3", &table3(scale));
    }
    if want("table5") {
        emit("table5", &table5(scale));
    }

    let strong_needed = [
        "table2", "fig1", "fig2", "fig4a", "fig4b", "fig5", "appendix",
    ]
    .iter()
    .any(|s| want(s));
    if strong_needed {
        eprintln!(
            "[repro] running strong-scaling suite ({scale}) on {} thread(s) ...",
            runner.threads()
        );
        let suite = strong_suite(scale);
        let exp = StrongScalingExperiment::new(scale)
            .with_sim_threads(opts.sim_threads)
            .with_sync_slack(opts.sync_slack);
        let mut jobs = exp.jobs(&suite);
        if let Some(victim) = &opts.inject_panic {
            injected |= inject_panic(&mut jobs, victim);
        }
        let run = collect(runner.run("strong", jobs));
        failures.extend(run.failures.iter().cloned());
        let outcomes = run.outcomes;
        report_sim_rate("strong-scaling suite", outcomes.iter());
        if want("table2") {
            emit("table2", &table2(scale, &outcomes));
        }
        if want("fig1") {
            emit("fig1", &fig1(&outcomes));
        }
        if want("fig2") {
            emit("fig2", &fig2(scale, &outcomes));
        }
        if want("fig4a") {
            emit("fig4a", &fig4(&outcomes, 128, "Figure 4a"));
        }
        if want("fig4b") {
            emit("fig4b", &fig4(&outcomes, 64, "Figure 4b"));
        }
        if want("fig5") {
            emit("fig5", &fig5(&outcomes));
        }
        if want("appendix") {
            emit("appendix", &appendix(&outcomes));
        }
    }

    let weak_needed = ["table4", "fig6", "fig7"].iter().any(|s| want(s));
    if weak_needed {
        eprintln!(
            "[repro] running weak-scaling suite ({scale}) on {} thread(s) ...",
            runner.threads()
        );
        let suite = weak_suite(scale);
        let exp = WeakScalingExperiment::new(scale)
            .with_sim_threads(opts.sim_threads)
            .with_sync_slack(opts.sync_slack);
        let mut jobs = exp.jobs(&suite);
        if let Some(victim) = &opts.inject_panic {
            injected |= inject_panic(&mut jobs, victim);
        }
        let run = collect(runner.run("weak", jobs));
        failures.extend(run.failures.iter().cloned());
        let outcomes = run.outcomes;
        report_sim_rate("weak-scaling suite", outcomes.iter().map(|o| &o.outcome));
        if want("table4") {
            emit("table4", &table4(scale));
        }
        if want("fig6") {
            emit("fig6", &fig6(&outcomes));
        }
        if want("fig7") {
            emit("fig7", &fig7(&outcomes));
        }
    }

    if want("ablations") {
        eprintln!("[repro] running ablations ({scale}) ...");
        emit("ablations", &ablations(scale));
    }
    if want("multicliff") {
        eprintln!("[repro] running multi-cliff extension study ({scale}) ...");
        emit("multicliff", &multicliff(scale, &runner));
    }
    if want("sampling") {
        eprintln!("[repro] running kernel-sampling comparison ({scale}) ...");
        emit("sampling", &sampling(scale, &runner));
    }
    if want("fig8") {
        eprintln!(
            "[repro] running multi-chiplet case study ({scale}) on {} thread(s) ...",
            runner.threads()
        );
        let suite = weak_suite(scale);
        let exp = McmExperiment::new(scale)
            .with_sim_threads(opts.sim_threads)
            .with_sync_slack(opts.sync_slack);
        let mut jobs = exp.jobs(&suite);
        if let Some(victim) = &opts.inject_panic {
            injected |= inject_panic(&mut jobs, victim);
        }
        let run = collect(runner.run("mcm", jobs));
        failures.extend(run.failures.iter().cloned());
        report_sim_rate("mcm suite", run.outcomes.iter().map(|o| &o.outcome));
        emit("fig8", &fig8(&run.outcomes));
    }

    if let Some(victim) = &opts.inject_panic {
        if !injected {
            eprintln!(
                "[repro] --inject-panic {victim}: no job with that name ran; \
                 nothing was injected"
            );
        }
    }
    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!("[repro] {} job(s) failed:", failures.len());
        for f in &failures {
            eprintln!("[repro]   {f}");
        }
        eprintln!("[repro] affected rows are missing from the emitted tables");
        ExitCode::FAILURE
    }
}

fn table1(scale: MemScale) -> String {
    let mut t = TextTable::new(vec![
        "role",
        "#SMs",
        "LLC (MB)",
        "slices",
        "NoC BW (GB/s)",
        "DRAM (GB/s)",
        "MCs",
        "GB/s per MC",
    ]);
    for (role, sms) in [
        ("target", 128u32),
        ("target", 64),
        ("target", 32),
        ("scale model", 16),
        ("scale model", 8),
    ] {
        let c = GpuConfig::paper_target(sms, scale);
        t.row(vec![
            role.into(),
            sms.to_string(),
            mb(c.llc_paper_bytes()),
            c.llc_slices.to_string(),
            format!("{:.1}", c.noc_gbs),
            format!("{:.0}", c.dram_gbs_total()),
            c.n_mcs.to_string(),
            format!("{:.0}", c.dram_gbs_per_mc),
        ]);
    }
    format!(
        "Table I: scale models derived by proportional resource scaling\n\
         (capacities shown in paper units; the simulator runs a {scale})\n\n{}",
        t.render()
    )
}

fn table2(scale: MemScale, outcomes: &[BenchmarkOutcome]) -> String {
    let suite = strong_suite(scale);
    let mut t = TextTable::new(vec![
        "abbr",
        "benchmark",
        "suite",
        "CTA sizes (paper)",
        "footprint (MB)",
        "#insns (M, paper)",
        "expected",
        "measured",
    ]);
    let mut agree = 0;
    let mut rows = 0;
    for b in &suite {
        // A benchmark whose job failed has no outcome; its row is dropped.
        let Some(o) = outcomes.iter().find(|o| o.abbr == b.abbr) else {
            continue;
        };
        rows += 1;
        if o.measured_class == b.expected {
            agree += 1;
        }
        t.row(vec![
            b.abbr.into(),
            b.full_name.into(),
            b.origin.into(),
            b.cta_sizes_paper.into(),
            format!("{:.1}", b.workload.footprint_mb_paper()),
            format!("{:.0}", b.workload.paper_minsns()),
            b.expected.to_string(),
            o.measured_class.to_string(),
        ]);
    }
    format!(
        "Table II: strong-scaling benchmarks and their scaling behaviour\n\
         (measured class from simulated IPC over 8..128 SMs; {agree}/{rows} match the paper)\n\n{}",
        t.render()
    )
}

fn table3(scale: MemScale) -> String {
    let c = GpuConfig::baseline_128sm(scale);
    let mut t = TextTable::new(vec!["parameter", "value"]);
    t.row(vec![
        "SM clock".into(),
        format!("{:.1} GHz", c.sm_clock_ghz),
    ]);
    t.row(vec![
        "threads per SM".into(),
        format!(
            "{} warps/SM, 32 threads/warp, {} threads/SM",
            c.warps_per_sm, c.max_threads_per_sm
        ),
    ]);
    t.row(vec!["CTA scheduling".into(), "round-robin".into()]);
    t.row(vec![
        "warp scheduling".into(),
        "greedy-then-oldest (GTO)".into(),
    ]);
    t.row(vec![
        "L1 per SM".into(),
        format!(
            "{} KB, {}-way, LRU, {} MSHRs",
            scale.to_paper_bytes(c.l1_bytes) / 1024,
            c.l1_ways,
            c.l1_mshrs
        ),
    ]);
    t.row(vec![
        "LLC".into(),
        format!(
            "{} MB total, {} slices, {}-way per slice",
            mb(c.llc_paper_bytes()),
            c.llc_slices,
            c.llc_ways
        ),
    ]);
    t.row(vec![
        "DRAM bandwidth".into(),
        format!("{:.2} TB/s", c.dram_gbs_total() / 1000.0),
    ]);
    t.row(vec![
        "NoC".into(),
        format!("crossbar, {:.1} TB/s bisection", c.noc_gbs / 1000.0),
    ]);
    format!("Table III: baseline 128-SM target system\n\n{}", t.render())
}

fn table4(scale: MemScale) -> String {
    let mut t = TextTable::new(vec![
        "bench",
        "MCM",
        "CTAs (paper)",
        "footprint (MB)",
        "#insns (M)",
        "expected",
    ]);
    for b in weak_suite(scale) {
        for r in &b.rows {
            t.row(vec![
                b.abbr.into(),
                if r.mcm { "x".into() } else { "".into() },
                r.ctas_paper.to_string(),
                format!("{:.2}", r.footprint_mb),
                format!("{:.1}", r.minsns),
                b.expected.to_string(),
            ]);
        }
    }
    format!(
        "Table IV: weak-scaling benchmark configurations (five inputs per\n\
         benchmark matched to 8/16/32/64/128 SMs)\n\n{}",
        t.render()
    )
}

fn table5(scale: MemScale) -> String {
    let m = ChipletConfig::paper_mcm(16, scale);
    let c = &m.chiplet;
    let mut t = TextTable::new(vec!["parameter", "value"]);
    t.row(vec!["#SMs/chiplet".into(), c.n_sms.to_string()]);
    t.row(vec![
        "SM clock".into(),
        format!("{:.1} GHz", c.sm_clock_ghz),
    ]);
    t.row(vec!["CTA scheduling".into(), "distributed".into()]);
    t.row(vec!["page allocation".into(), "first-touch".into()]);
    t.row(vec![
        "LLC".into(),
        format!(
            "{} MB per chiplet, {} slices, {}-way per slice",
            mb(scale.to_paper_bytes(c.llc_bytes_total)),
            c.llc_slices,
            c.llc_ways
        ),
    ]);
    t.row(vec![
        "intra-chiplet NoC".into(),
        format!("crossbar, {:.1} TB/s", c.noc_gbs / 1000.0),
    ]);
    t.row(vec![
        "inter-chiplet NoC".into(),
        format!(
            "fly topology, {:.0} GB/s per chiplet",
            m.interchiplet_gbs_per_chiplet
        ),
    ]);
    t.row(vec![
        "memory".into(),
        format!(
            "{} memory controllers, {:.1} TB/s per chiplet",
            c.n_mcs,
            c.dram_gbs_total() / 1000.0
        ),
    ]);
    format!(
        "Table V: the simulated 16-chiplet target system (16 x {} SMs = {} SMs)\n\n{}",
        c.n_sms,
        m.total_sms(),
        t.render()
    )
}

fn fig1(outcomes: &[BenchmarkOutcome]) -> String {
    let mut out = String::from(
        "Figure 1: IPC vs system size under strong scaling (dct super-linear,\n\
         bfs sub-linear, pf linear), with the linear-scaling reference\n\n",
    );
    for abbr in ["dct", "bfs", "pf"] {
        let Some(o) = outcomes.iter().find(|o| o.abbr == abbr) else {
            continue;
        };
        let base = o.measured[0].ipc / f64::from(o.measured[0].size);
        let mut t = TextTable::new(vec!["#SMs", "real IPC", "linear scaling"]);
        for m in &o.measured {
            t.row(vec![
                m.size.to_string(),
                ipc(m.ipc),
                ipc(base * f64::from(m.size)),
            ]);
        }
        let _ = writeln!(out, "[{abbr}]\n{}", t.render());
    }
    out
}

fn fig2(scale: MemScale, outcomes: &[BenchmarkOutcome]) -> String {
    let mut out = String::from(
        "Figure 2: miss-rate curves (LLC MPKI vs capacity) under strong scaling:\n\
         sharp cliff (dct), gradual decrease (bfs), flat (pf)\n\n",
    );
    for abbr in ["dct", "bfs", "pf"] {
        let Some(o) = outcomes.iter().find(|o| o.abbr == abbr) else {
            continue;
        };
        let mrc = o.mrc.as_ref().expect("strong outcomes carry an MRC");
        let mut t = TextTable::new(vec!["LLC (MB, paper units)", "MPKI"]);
        for &(size, mpki) in mrc.points() {
            let cap = GpuConfig::paper_target(size, scale).llc_paper_bytes();
            t.row(vec![mb(cap), format!("{mpki:.2}")]);
        }
        let _ = writeln!(out, "[{abbr}]\n{}", t.render());
    }
    out
}

fn fig4(outcomes: &[BenchmarkOutcome], target: u32, title: &str) -> String {
    let mut t = TextTable::new(vec![
        "bench",
        "class",
        "logarithmic",
        "proportional",
        "linear",
        "power-law",
        "scale-model",
    ]);
    for o in outcomes {
        let mut row = vec![o.abbr.clone(), o.expected.to_string()];
        for m in METHODS {
            let e = o
                .method(m)
                .and_then(|mo| mo.at(target))
                .map(|p| pct(p.error_pct))
                .unwrap_or_default();
            row.push(e);
        }
        t.row(row);
    }
    let mut summary = TextTable::new(vec!["method", "avg error (%)", "max error (%)"]);
    for m in METHODS {
        if let Some((avg, max)) = aggregate_error(outcomes, m, target) {
            summary.row(vec![m.into(), pct(avg), pct(max)]);
        }
    }
    format!(
        "{title}: IPC prediction error (%) under strong scaling, {target}-SM target\n\
         (8-SM and 16-SM scale models)\n\n{}\n{}",
        t.render(),
        summary.render()
    )
}

fn fig5(outcomes: &[BenchmarkOutcome]) -> String {
    let picks = [
        "dct", "fwt", "as", "lu", // super-linear row
        "bfs", "gr", "sr", "btree", // sub-linear row
        "pf", "ht", "at", "gemm", // linear row
    ];
    let mut out = String::from(
        "Figure 5: performance vs system size under strong scaling: real IPC\n\
         and the predicted curves of each method\n\n",
    );
    for abbr in picks {
        let Some(o) = outcomes.iter().find(|o| o.abbr == abbr) else {
            continue;
        };
        let mut t = TextTable::new(vec![
            "#SMs",
            "real",
            "proportional",
            "scale-model",
            "linear",
            "power-law",
        ]);
        for m in &o.measured {
            let mut row = vec![m.size.to_string(), ipc(m.ipc)];
            for method in ["proportional", "scale-model", "linear", "power-law"] {
                let cell = o
                    .method(method)
                    .and_then(|mo| mo.at(m.size))
                    .map(|p| ipc(p.predicted))
                    .unwrap_or_else(|| ipc(m.ipc)); // scale-model sizes anchor the curves
                row.push(cell);
            }
            t.row(row);
        }
        let _ = writeln!(out, "[{abbr}] ({})\n{}", o.expected, t.render());
    }
    out
}

fn fig6(outcomes: &[WeakOutcome]) -> String {
    let mut t = TextTable::new(vec![
        "bench",
        "target",
        "logarithmic",
        "proportional",
        "linear",
        "power-law",
        "scale-model",
    ]);
    let inner: Vec<BenchmarkOutcome> = outcomes.iter().map(|o| o.outcome.clone()).collect();
    for o in &inner {
        for &target in &[32u32, 64, 128] {
            let mut row = vec![o.abbr.clone(), target.to_string()];
            for m in METHODS {
                row.push(
                    o.method(m)
                        .and_then(|mo| mo.at(target))
                        .map(|p| pct(p.error_pct))
                        .unwrap_or_default(),
                );
            }
            t.row(row);
        }
    }
    let mut summary = TextTable::new(vec!["method", "avg error (%)", "max error (%)"]);
    for m in METHODS {
        let mut errs = Vec::new();
        for target in [32u32, 64, 128] {
            for o in &inner {
                if let Some(p) = o.method(m).and_then(|mo| mo.at(target)) {
                    errs.push(p.error_pct);
                }
            }
        }
        if !errs.is_empty() {
            let avg = errs.iter().sum::<f64>() / errs.len() as f64;
            let max = errs.iter().copied().fold(0.0, f64::max);
            summary.row(vec![m.into(), pct(avg), pct(max)]);
        }
    }
    format!(
        "Figure 6: IPC prediction error (%) under weak scaling for the 32-, 64-\n\
         and 128-SM targets (8/16-SM scale models with scaled inputs)\n\n{}\n{}",
        t.render(),
        summary.render()
    )
}

fn fig7(outcomes: &[WeakOutcome]) -> String {
    let mut t = TextTable::new(vec!["bench", "32 SMs", "64 SMs", "128 SMs"]);
    let mut sums = [0.0f64; 3];
    for o in outcomes {
        let mut row = vec![o.outcome.abbr.clone()];
        for (i, &(_, s)) in o.speedups.iter().enumerate() {
            row.push(ratio(s));
            sums[i] += s;
        }
        t.row(row);
    }
    let n = outcomes.len() as f64;
    t.row(vec![
        "avg".into(),
        ratio(sums[0] / n),
        ratio(sums[1] / n),
        ratio(sums[2] / n),
    ]);
    format!(
        "Figure 7: simulation-time speedup of scale-model simulation under weak\n\
         scaling (target simulation time / time for both 8- and 16-SM models)\n\n{}",
        t.render()
    )
}

fn fig8(outcomes: &[WeakOutcome]) -> String {
    let mut t = TextTable::new(vec![
        "bench",
        "logarithmic",
        "proportional",
        "linear",
        "power-law",
        "scale-model",
        "sim speedup",
    ]);
    let inner: Vec<BenchmarkOutcome> = outcomes.iter().map(|o| o.outcome.clone()).collect();
    for (o, w) in inner.iter().zip(outcomes) {
        let mut row = vec![o.abbr.clone()];
        for m in METHODS {
            row.push(
                o.method(m)
                    .and_then(|mo| mo.at(16))
                    .map(|p| pct(p.error_pct))
                    .unwrap_or_default(),
            );
        }
        row.push(
            w.speedups
                .first()
                .map(|&(_, s)| ratio(s))
                .unwrap_or_default(),
        );
        t.row(row);
    }
    let mut summary = TextTable::new(vec!["method", "avg error (%)", "max error (%)"]);
    for m in METHODS {
        if let Some((avg, max)) = aggregate_error(&inner, m, 16) {
            summary.row(vec![m.into(), pct(avg), pct(max)]);
        }
    }
    format!(
        "Figure 8: multi-chiplet IPC prediction error (%) for the 16-chiplet\n\
         target (4- and 8-chiplet scale models, 64 SMs per chiplet)\n\n{}\n{}",
        t.render(),
        summary.render()
    )
}

fn appendix(outcomes: &[BenchmarkOutcome]) -> String {
    let redone: Vec<BenchmarkOutcome> = outcomes
        .iter()
        .filter_map(|o| reanalyze(o, 16, 32).ok())
        .collect();
    let mut out = String::from(
        "Artifact appendix: 16-SM and 32-SM scale models predicting the 64-\n\
         and 128-SM targets (errors are higher than with 8/16-SM models, as\n\
         the paper reports during artifact evaluation)\n\n",
    );
    for target in [64u32, 128] {
        let mut t = TextTable::new(vec!["method", "avg error (%)", "max error (%)"]);
        for m in METHODS {
            if let Some((avg, max)) = aggregate_error(&redone, m, target) {
                t.row(vec![m.into(), pct(avg), pct(max)]);
            }
        }
        let _ = writeln!(out, "[{target}-SM target]\n{}", t.render());
    }
    out
}

// Ensure WEAK_SM_SIZES stays linked to the table-4 row order.
#[allow(dead_code)]
const _: [u32; 5] = WEAK_SM_SIZES;

fn ablations(scale: MemScale) -> String {
    let mut out = String::from(
        "Ablations: why the methodology is built the way it is\n\n         (A1) Proportional vs non-proportional scale models (Section II's\n         design rule). Scale models built once for the 128-SM system are\n         reused to predict the 64-SM target:\n\n",
    );
    let mut t = TextTable::new(vec![
        "bench",
        "style",
        "IPC(8)",
        "IPC(16)",
        "predicted",
        "real",
        "error (%)",
    ]);
    for abbr in ["dct", "pf"] {
        let bench = strong_benchmark(abbr, scale).expect("benchmark");
        for style in [
            ScaleModelStyle::Proportional,
            ScaleModelStyle::FullSizeLlc,
            ScaleModelStyle::FullBandwidth,
        ] {
            let r = ablate_scale_model_style(&bench, scale, 64, style).expect("ablation");
            t.row(vec![
                abbr.into(),
                style.label().into(),
                ipc(r.ipc_models.0),
                ipc(r.ipc_models.1),
                ipc(r.predicted),
                ipc(r.real),
                pct(r.error_pct),
            ]);
        }
    }
    let _ = writeln!(out, "{}", t.render());

    let _ = writeln!(
        out,
        "(A2) Cliff-detection threshold sensitivity (paper: >2x per\n         capacity doubling), on each benchmark's measured miss-rate curve:\n"
    );
    let exp = StrongScalingExperiment::new(scale);
    let mut t = TextTable::new(vec!["bench", "1.5x", "2.0x (paper)", "3.0x", "4.0x"]);
    for abbr in ["dct", "lu", "bfs", "pf"] {
        let bench = strong_benchmark(abbr, scale).expect("benchmark");
        let outcome = exp.run_benchmark(&bench).expect("pipeline");
        let mrc = outcome.mrc.expect("strong outcomes carry an MRC");
        let mut row = vec![abbr.to_string()];
        for (_, hit) in cliff_threshold_sweep(&mrc, &[1.5, 2.0, 3.0, 4.0]) {
            row.push(match hit {
                Some(sz) => format!("cliff@{sz}"),
                None => "-".into(),
            });
        }
        t.row(row);
    }
    let _ = writeln!(out, "{}", t.render());

    let _ = writeln!(
        out,
        "(A4) Replacement policy: miss-rate-curve cliffs are an LRU\n         artefact (Talus [11]); random LLC replacement smooths dct's cliff\n         and with it the super-linear jump:\n"
    );
    let mut t = TextTable::new(vec![
        "policy",
        "IPC(64)",
        "IPC(128)",
        "64->128 step",
        "MPKI(128)",
    ]);
    let dct = strong_benchmark("dct", scale).expect("dct exists");
    for policy in [ReplacementPolicy::Lru, ReplacementPolicy::Random] {
        let run = |sms: u32| {
            let mut cfg = GpuConfig::paper_target(sms, scale);
            cfg.llc_policy = policy;
            Simulator::new(cfg, &dct.workload).run()
        };
        let (s64, s128) = (run(64), run(128));
        t.row(vec![
            format!("{policy:?}"),
            ipc(s64.sustained_ipc()),
            ipc(s128.sustained_ipc()),
            ratio(s128.sustained_ipc() / s64.sustained_ipc()),
            format!("{:.2}", s128.mpki()),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());

    let _ = writeln!(
        out,
        "(A3) Source of the Eq. (3) memory-stall fraction: largest scale\n         model (paper) vs smallest, predicting the cliff benchmarks:\n"
    );
    let mut t = TextTable::new(vec![
        "bench",
        "target",
        "f_mem(16) err (%)",
        "f_mem(8) err (%)",
    ]);
    for (abbr, target) in [("dct", 128u32), ("lu", 64), ("bp", 128)] {
        let bench = strong_benchmark(abbr, scale).expect("benchmark");
        let r = ablate_f_mem_source(&bench, scale, target).expect("ablation");
        t.row(vec![
            abbr.into(),
            target.to_string(),
            pct(r.error_large_pct),
            pct(r.error_small_pct),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    out
}

fn multicliff(scale: MemScale, runner: &Runner) -> String {
    // A synthetic workload with two nested reused working sets: the inner
    // one fits from 32 SMs on, the outer only at 128 SMs — two cliffs,
    // the multi-level-cache scenario the paper leaves as future work
    // (Section V.D).
    let inner = PatternSpec::new(
        PatternKind::GlobalSweep { passes: 1 },
        scale.mb_to_model_lines(6.0),
    )
    .compute_per_mem(3.0);
    let outer = PatternSpec::new(
        PatternKind::GlobalSweep { passes: 1 },
        scale.mb_to_model_lines(23.4),
    )
    .compute_per_mem(3.0);
    // Five inner passes per outer pass: the inner set carries most of
    // the pre-fit misses, so *both* fits register as >2x cliffs.
    let mut kernels = Vec::new();
    for _ in 0..4 {
        for _ in 0..5 {
            kernels.push(Kernel::new("inner", 768, 256, inner.clone()));
        }
        kernels.push(Kernel::new("outer", 768, 256, outer.clone()));
    }
    let wl = Workload::new("twocliff", 4242, kernels).with_footprint_mb(29.4);

    let sizes = [8u32, 16, 32, 64, 128];
    let configs: Vec<GpuConfig> = sizes
        .iter()
        .map(|&z| GpuConfig::paper_target(z, scale))
        .collect();
    // One job per system size; the reports come back size-ordered.
    let sim_wl = wl.clone();
    let stats: Vec<_> = runner
        .map(
            "multicliff",
            configs
                .iter()
                .map(|c| (format!("{}sm", c.n_sms), c.clone()))
                .collect(),
            move |cfg: &GpuConfig| Simulator::new(cfg.clone(), &sim_wl).run(),
        )
        .into_iter()
        .filter_map(|r| r.into_ok())
        .collect();
    if stats.len() != sizes.len() {
        return "multicliff: a simulation job failed; section skipped\n".into();
    }
    let curve = collect_mrc(&wl, &configs);
    let mrc = SizedMrc::new(sizes.iter().zip(curve.points()).map(|(&z, p)| (z, p.mpki)));

    let mut out = String::from(
        "Multi-cliff extension (paper Section V.D future work): a workload\n         with two nested working sets (6 MB and 23.4 MB) produces two\n         miss-rate-curve cliffs; the generalised predictor applies one\n         partial Eq. (3) boost per cliff.\n\n",
    );
    let mut t = TextTable::new(vec!["#SMs", "MPKI", "real IPC"]);
    for (i, &z) in sizes.iter().enumerate() {
        t.row(vec![
            z.to_string(),
            format!("{:.2}", mrc.points()[i].1),
            ipc(stats[i].sustained_ipc()),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());

    let inputs = ScaleModelInputs::new(8, stats[0].sustained_ipc(), 16, stats[1].sustained_ipc())
        .with_sized_mrc(mrc.clone())
        .with_f_mem(stats[1].f_mem());
    let single = ScaleModelPredictor::new(inputs.clone()).expect("single-cliff model");
    let multi = MultiCliffPredictor::new(&inputs).expect("multi-cliff model");
    let _ = writeln!(
        out,
        "detected cliffs: single-cliff model at {:?}; multi-cliff model at {:?}\n",
        single.cliff_at(),
        multi.cliff_sizes()
    );
    let mut t = TextTable::new(vec![
        "target",
        "real",
        "single-cliff",
        "err (%)",
        "multi-cliff",
        "err (%)",
    ]);
    for (i, &z) in sizes.iter().enumerate().skip(2) {
        let real = stats[i].sustained_ipc();
        let ps = single.predict_checked(z).expect("covered");
        let pm = multi.predict_checked(z).expect("covered");
        t.row(vec![
            z.to_string(),
            ipc(real),
            ipc(ps),
            pct(gsim_core::percent_error(ps, real)),
            ipc(pm),
            pct(gsim_core::percent_error(pm, real)),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    out
}

fn sampling(scale: MemScale, runner: &Runner) -> String {
    let mut out = String::from(
        "Kernel-sampling baseline (related work [8, 32]): simulate 1/8 of\n         each kernel's CTAs on the TARGET system and extrapolate. Unlike\n         scale-model simulation this requires a target-capable simulator,\n         and truncating the grid shrinks the working set, so capacity-\n         sensitive (pre-cliff) workloads are overpredicted.\n\n",
    );
    let mut t = TextTable::new(vec![
        "bench",
        "target",
        "real IPC",
        "sampled est.",
        "error (%)",
        "sampled sim (s)",
        "full sim (s)",
    ]);
    let items: Vec<(String, (String, u32))> =
        [("dct", 64u32), ("lu", 32), ("pf", 64), ("gemm", 64)]
            .iter()
            .map(|&(abbr, target)| (format!("{abbr}@{target}"), (abbr.to_string(), target)))
            .collect();
    let rows = runner.map("sampling", items, move |(abbr, target): &(String, u32)| {
        let bench = strong_benchmark(abbr, scale).expect("benchmark");
        let cfg = GpuConfig::paper_target(*target, scale);
        let c = compare_sampling(&bench.workload, &cfg, 0.125);
        vec![
            abbr.clone(),
            target.to_string(),
            ipc(c.real_ipc),
            ipc(c.estimate.ipc_estimate),
            pct(c.error_pct),
            format!("{:.2}", c.estimate.sim_seconds),
            format!("{:.2}", c.full_sim_seconds),
        ]
    });
    for row in rows.into_iter().filter_map(|r| r.into_ok()) {
        t.row(row);
    }
    let _ = writeln!(out, "{}", t.render());
    out
}
