//! The standalone prediction tool of the paper's artifact appendix —
//! the Rust counterpart of `scaleModel.py`.
//!
//! ```text
//! scale_model_predict [--size N] [--f-mem F] <ipc_small> <ipc_large> <mpki...>
//! ```
//!
//! * `ipc_small`, `ipc_large` — measured IPC of the two scale models
//!   (the larger is assumed twice the size of the smaller);
//! * `mpki...` — the miss-rate curve: one MPKI value per system size,
//!   smallest first, covering the scale models and every target (so with
//!   five values and `--size 8`, targets 32, 64 and 128 are predicted);
//! * `--size N` — SM (or chiplet) count of the smallest scale model
//!   (default 8; the Python tool prompts for this interactively);
//! * `--f-mem F` — the largest scale model's memory-stall fraction,
//!   required only when the curve contains a cliff (the Python tool
//!   prompts for it on demand).
//!
//! Output mirrors the artifact's: (1) the measured scale-model IPCs,
//! (2) predicted IPC for each target, and (3) a text rendering of
//! performance versus system size for all prediction methods.

use gsim_core::{
    detect_cliff, LinearRegression, LogRegression, ModelError, PowerLawRegression, Proportional,
    ScaleModelInputs, ScaleModelPredictor, ScalingPredictor, SizedMrc,
};
use gsim_runner::{Job, Runner, RunnerConfig};

struct Args {
    size: u32,
    f_mem: Option<f64>,
    ipc_small: f64,
    ipc_large: f64,
    mpki: Vec<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut size = 8u32;
    let mut f_mem = None;
    let mut values = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            // Accepted for CLI uniformity with `gsim`/`repro`; this tool
            // fits analytic models from already-measured numbers, so the
            // value (validated like everywhere else) changes nothing.
            "--sim-threads" => {
                let n: u32 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--sim-threads takes an integer")?;
                if n == 0 {
                    return Err("--sim-threads must be >= 1".into());
                }
            }
            "--size" => {
                size = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--size takes an integer")?;
            }
            "--f-mem" => {
                f_mem = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--f-mem takes a fraction in [0,1)")?,
                );
            }
            "--help" | "-h" => {
                return Err("usage: scale_model_predict [--size N] [--f-mem F] \
                            <ipc_small> <ipc_large> <mpki...>"
                    .into());
            }
            v => values.push(v.parse::<f64>().map_err(|_| format!("not a number: {v}"))?),
        }
    }
    if values.len() < 3 {
        return Err("need <ipc_small> <ipc_large> and at least one MPKI value".into());
    }
    Ok(Args {
        size,
        f_mem,
        ipc_small: values[0],
        ipc_large: values[1],
        mpki: values[2..].to_vec(),
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let s = args.size;
    let l = s * 2;
    let sizes: Vec<u32> = (0..args.mpki.len() as u32).map(|i| s << i).collect();
    let mrc = SizedMrc::new(sizes.iter().copied().zip(args.mpki.iter().copied()));

    println!("(1) measured scale models:");
    println!("    {s:>4} SMs: IPC {:10.2}", args.ipc_small);
    println!("    {l:>4} SMs: IPC {:10.2}", args.ipc_large);

    if let Some(i) = detect_cliff(&mrc) {
        println!(
            "    miss-rate cliff detected between {} and {} SMs",
            mrc.points()[i].0,
            mrc.points()[i + 1].0
        );
    } else {
        println!("    no miss-rate cliff: the whole range is pre-cliff");
    }

    let mut inputs =
        ScaleModelInputs::new(s, args.ipc_small, l, args.ipc_large).with_sized_mrc(mrc.clone());
    if let Some(f) = args.f_mem {
        inputs = inputs.with_f_mem(f);
    }
    // Validate up front so cliff-without---f-mem keeps its tailored hint.
    if let Err(e) = ScaleModelPredictor::new(inputs.clone()) {
        match e {
            ModelError::MissingFMem => eprintln!(
                "the curve contains a cliff: pass --f-mem <fraction>, the fraction \
                 of cycles the largest scale model could not fetch because all \
                 warps waited on memory"
            ),
            e => eprintln!("invalid inputs: {e}"),
        }
        std::process::exit(2);
    }

    // One fit-and-predict job per method; the pool returns them in
    // submission order, so the report keeps the artifact's method order.
    const METHOD_NAMES: [&str; 5] = [
        "scale-model",
        "proportional",
        "linear",
        "power-law",
        "logarithmic",
    ];
    // (predictions at each target, values for the text graph)
    type MethodCurves = (Vec<f64>, Vec<f64>);
    let targets: Vec<u32> = sizes.iter().copied().filter(|&z| z > l).collect();
    let jobs: Vec<Job<Result<MethodCurves, ModelError>>> = METHOD_NAMES
        .iter()
        .map(|&name| {
            let inputs = inputs.clone();
            let (sizes, targets) = (sizes.clone(), targets.clone());
            let (ipc_small, ipc_large) = (args.ipc_small, args.ipc_large);
            Job::new(name, move || {
                let model: Box<dyn ScalingPredictor> = match name {
                    "scale-model" => Box::new(ScaleModelPredictor::new(inputs.clone())?),
                    "proportional" => Box::new(Proportional::fit(s, ipc_small, l, ipc_large)?),
                    "linear" => Box::new(LinearRegression::fit(s, ipc_small, l, ipc_large)?),
                    "power-law" => Box::new(PowerLawRegression::fit(s, ipc_small, l, ipc_large)?),
                    _ => Box::new(LogRegression::fit(s, ipc_small, l, ipc_large)?),
                };
                let target_preds = targets
                    .iter()
                    .map(|&t| model.predict(f64::from(t)))
                    .collect();
                // Values for the text graph: scale-model sizes show the
                // measurements, targets the prediction.
                let graph = sizes
                    .iter()
                    .map(|&z| {
                        if z == s {
                            ipc_small
                        } else if z <= l {
                            ipc_large
                        } else {
                            model.predict(f64::from(z))
                        }
                    })
                    .collect();
                Ok((target_preds, graph))
            })
        })
        .collect();
    let runner = Runner::new(RunnerConfig::default());
    let mut methods: Vec<(String, Vec<f64>, Vec<f64>)> = Vec::new();
    let mut failed = false;
    for report in runner.run("predict", jobs) {
        match report.status {
            gsim_runner::JobStatus::Done(Ok((target_preds, graph))) => {
                methods.push((report.name, target_preds, graph));
            }
            gsim_runner::JobStatus::Done(Err(e)) => {
                eprintln!("{}: cannot fit: {e}", report.name);
                failed = true;
            }
            _ => {
                eprintln!(
                    "{}: {}",
                    report.name,
                    report.failure().unwrap_or_else(|| "failed".into())
                );
                failed = true;
            }
        }
    }

    println!("\n(2) predicted IPC per target system:");
    print!("    {:>13}", "size");
    for &t in &targets {
        print!("  {t:>10}");
    }
    println!();
    for (name, target_preds, _) in &methods {
        print!("    {name:>13}");
        for p in target_preds {
            print!("  {p:>10.2}");
        }
        println!();
    }

    // (3) text graph: IPC vs size, one column per method, bar-scaled.
    println!("\n(3) performance vs system size (each row scaled to its maximum):");
    let max_ipc = methods
        .iter()
        .flat_map(|(_, _, graph)| graph.iter().copied())
        .fold(args.ipc_large, f64::max);
    for (i, &z) in sizes.iter().enumerate() {
        print!("    {z:>4} SMs ");
        for (_, _, graph) in &methods {
            let bars = ((graph[i] / max_ipc) * 20.0).round().max(0.0) as usize;
            print!(" |{:<20}", "#".repeat(bars.min(20)));
        }
        println!();
    }
    print!("             ");
    for (name, _, _) in &methods {
        print!("  {name:<20}");
    }
    println!();
    if failed {
        std::process::exit(1);
    }
}
