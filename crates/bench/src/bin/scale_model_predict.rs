//! The standalone prediction tool of the paper's artifact appendix —
//! the Rust counterpart of `scaleModel.py`.
//!
//! ```text
//! scale_model_predict [--size N] [--f-mem F] <ipc_small> <ipc_large> <mpki...>
//! ```
//!
//! * `ipc_small`, `ipc_large` — measured IPC of the two scale models
//!   (the larger is assumed twice the size of the smaller);
//! * `mpki...` — the miss-rate curve: one MPKI value per system size,
//!   smallest first, covering the scale models and every target (so with
//!   five values and `--size 8`, targets 32, 64 and 128 are predicted);
//! * `--size N` — SM (or chiplet) count of the smallest scale model
//!   (default 8; the Python tool prompts for this interactively);
//! * `--f-mem F` — the largest scale model's memory-stall fraction,
//!   required only when the curve contains a cliff (the Python tool
//!   prompts for it on demand).
//!
//! Output mirrors the artifact's: (1) the measured scale-model IPCs,
//! (2) predicted IPC for each target, and (3) a text rendering of
//! performance versus system size for all prediction methods.

use gsim_core::{
    detect_cliff, LinearRegression, LogRegression, ModelError, PowerLawRegression,
    Proportional, ScaleModelInputs, ScaleModelPredictor, ScalingPredictor, SizedMrc,
};

struct Args {
    size: u32,
    f_mem: Option<f64>,
    ipc_small: f64,
    ipc_large: f64,
    mpki: Vec<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut size = 8u32;
    let mut f_mem = None;
    let mut values = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--size" => {
                size = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--size takes an integer")?;
            }
            "--f-mem" => {
                f_mem = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--f-mem takes a fraction in [0,1)")?,
                );
            }
            "--help" | "-h" => {
                return Err("usage: scale_model_predict [--size N] [--f-mem F] \
                            <ipc_small> <ipc_large> <mpki...>"
                    .into());
            }
            v => values.push(
                v.parse::<f64>()
                    .map_err(|_| format!("not a number: {v}"))?,
            ),
        }
    }
    if values.len() < 3 {
        return Err("need <ipc_small> <ipc_large> and at least one MPKI value".into());
    }
    Ok(Args {
        size,
        f_mem,
        ipc_small: values[0],
        ipc_large: values[1],
        mpki: values[2..].to_vec(),
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let s = args.size;
    let l = s * 2;
    let sizes: Vec<u32> = (0..args.mpki.len() as u32).map(|i| s << i).collect();
    let mrc = SizedMrc::new(sizes.iter().copied().zip(args.mpki.iter().copied()));

    println!("(1) measured scale models:");
    println!("    {s:>4} SMs: IPC {:10.2}", args.ipc_small);
    println!("    {l:>4} SMs: IPC {:10.2}", args.ipc_large);

    if let Some(i) = detect_cliff(&mrc) {
        println!(
            "    miss-rate cliff detected between {} and {} SMs",
            mrc.points()[i].0,
            mrc.points()[i + 1].0
        );
    } else {
        println!("    no miss-rate cliff: the whole range is pre-cliff");
    }

    let mut inputs = ScaleModelInputs::new(s, args.ipc_small, l, args.ipc_large)
        .with_sized_mrc(mrc.clone());
    if let Some(f) = args.f_mem {
        inputs = inputs.with_f_mem(f);
    }
    let scale_model = match ScaleModelPredictor::new(inputs) {
        Ok(p) => p,
        Err(ModelError::MissingFMem) => {
            eprintln!(
                "the curve contains a cliff: pass --f-mem <fraction>, the fraction \
                 of cycles the largest scale model could not fetch because all \
                 warps waited on memory"
            );
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("invalid inputs: {e}");
            std::process::exit(2);
        }
    };

    let methods: Vec<(&str, Box<dyn ScalingPredictor>)> = vec![
        ("scale-model", Box::new(scale_model)),
        (
            "proportional",
            Box::new(Proportional::fit(s, args.ipc_small, l, args.ipc_large).expect("valid")),
        ),
        (
            "linear",
            Box::new(LinearRegression::fit(s, args.ipc_small, l, args.ipc_large).expect("valid")),
        ),
        (
            "power-law",
            Box::new(
                PowerLawRegression::fit(s, args.ipc_small, l, args.ipc_large).expect("valid"),
            ),
        ),
        (
            "logarithmic",
            Box::new(LogRegression::fit(s, args.ipc_small, l, args.ipc_large).expect("valid")),
        ),
    ];

    let targets: Vec<u32> = sizes.iter().copied().filter(|&z| z > l).collect();
    println!("\n(2) predicted IPC per target system:");
    print!("    {:>13}", "size");
    for &t in &targets {
        print!("  {t:>10}");
    }
    println!();
    for (name, model) in &methods {
        print!("    {name:>13}");
        for &t in &targets {
            print!("  {:>10.2}", model.predict(f64::from(t)));
        }
        println!();
    }

    // (3) text graph: IPC vs size, one column per method, bar-scaled.
    println!("\n(3) performance vs system size (each row scaled to its maximum):");
    let max_ipc = methods
        .iter()
        .map(|(_, m)| m.predict(f64::from(*sizes.last().expect("non-empty"))))
        .fold(args.ipc_large, f64::max);
    for &z in &sizes {
        print!("    {z:>4} SMs ");
        for (_, model) in &methods {
            let v = if z <= l {
                if z == s {
                    args.ipc_small
                } else {
                    args.ipc_large
                }
            } else {
                model.predict(f64::from(z))
            };
            let bars = ((v / max_ipc) * 20.0).round().max(0.0) as usize;
            print!(" |{:<20}", "#".repeat(bars.min(20)));
        }
        println!();
    }
    print!("             ");
    for (name, _) in &methods {
        print!("  {name:<20}");
    }
    println!();
}
