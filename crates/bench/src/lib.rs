//! Shared harness utilities for the table/figure repro binaries and the
//! micro-benchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs;
use std::path::{Path, PathBuf};

pub mod tinybench;

/// Where repro output files are written (`results/` under the workspace).
pub fn results_dir() -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .join("results");
    fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Prints `content` and also writes it to `results/<name>.txt`.
pub fn emit(name: &str, content: &str) {
    println!("{content}");
    let path = results_dir().join(format!("{name}.txt"));
    fs::write(&path, content).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
}

/// Formats bytes as MB with the paper's precision.
pub fn mb(bytes: u64) -> String {
    format!("{:.3}", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_exists() {
        assert!(results_dir().is_dir());
    }

    #[test]
    fn mb_formatting() {
        assert_eq!(mb(34 * 1024 * 1024), "34.000");
        assert_eq!(mb(2_228_224), "2.125");
    }
}
