//! Prediction cost: the artifact notes "the prediction step is
//! instantaneous" — all five models must be sub-microsecond.

use criterion::{criterion_group, criterion_main, Criterion};
use gsim_core::{
    LinearRegression, LogRegression, PowerLawRegression, Proportional, ScaleModelInputs,
    ScaleModelPredictor, ScalingPredictor,
};

fn predictor_fits(c: &mut Criterion) {
    let mut g = c.benchmark_group("fit");
    g.bench_function("proportional", |b| {
        b.iter(|| Proportional::fit(8, 120.0, 16, 232.0).unwrap())
    });
    g.bench_function("linear", |b| {
        b.iter(|| LinearRegression::fit(8, 120.0, 16, 232.0).unwrap())
    });
    g.bench_function("power_law", |b| {
        b.iter(|| PowerLawRegression::fit(8, 120.0, 16, 232.0).unwrap())
    });
    g.bench_function("logarithmic", |b| {
        b.iter(|| LogRegression::fit(8, 120.0, 16, 232.0).unwrap())
    });
    g.bench_function("scale_model_with_mrc", |b| {
        b.iter(|| {
            ScaleModelPredictor::new(
                ScaleModelInputs::new(8, 120.0, 16, 232.0)
                    .with_mrc([(8, 8.0), (16, 8.0), (32, 7.9), (64, 7.8), (128, 0.6)])
                    .with_f_mem(0.5),
            )
            .unwrap()
        })
    });
    g.finish();
}

fn predictor_queries(c: &mut Criterion) {
    let sm = ScaleModelPredictor::new(
        ScaleModelInputs::new(8, 120.0, 16, 232.0)
            .with_mrc([(8, 8.0), (16, 8.0), (32, 7.9), (64, 7.8), (128, 0.6)])
            .with_f_mem(0.5),
    )
    .unwrap();
    let pow = PowerLawRegression::fit(8, 120.0, 16, 232.0).unwrap();
    let mut g = c.benchmark_group("predict_128sm");
    g.bench_function("scale_model", |b| b.iter(|| sm.predict(128.0)));
    g.bench_function("power_law", |b| b.iter(|| pow.predict(128.0)));
    g.finish();
}

criterion_group!(benches, predictor_fits, predictor_queries);
criterion_main!(benches);
