//! Prediction cost: the artifact notes "the prediction step is
//! instantaneous" — all five models must be sub-microsecond.

use gsim_bench::tinybench::Group;
use gsim_core::{
    LinearRegression, LogRegression, PowerLawRegression, Proportional, ScaleModelInputs,
    ScaleModelPredictor, ScalingPredictor,
};

fn predictor_fits() {
    let g = Group::new("fit");
    g.bench("proportional", || {
        Proportional::fit(8, 120.0, 16, 232.0).unwrap()
    });
    g.bench("linear", || {
        LinearRegression::fit(8, 120.0, 16, 232.0).unwrap()
    });
    g.bench("power_law", || {
        PowerLawRegression::fit(8, 120.0, 16, 232.0).unwrap()
    });
    g.bench("logarithmic", || {
        LogRegression::fit(8, 120.0, 16, 232.0).unwrap()
    });
    g.bench("scale_model_with_mrc", || {
        ScaleModelPredictor::new(
            ScaleModelInputs::new(8, 120.0, 16, 232.0)
                .with_mrc([(8, 8.0), (16, 8.0), (32, 7.9), (64, 7.8), (128, 0.6)])
                .with_f_mem(0.5),
        )
        .unwrap()
    });
}

fn predictor_queries() {
    let sm = ScaleModelPredictor::new(
        ScaleModelInputs::new(8, 120.0, 16, 232.0)
            .with_mrc([(8, 8.0), (16, 8.0), (32, 7.9), (64, 7.8), (128, 0.6)])
            .with_f_mem(0.5),
    )
    .unwrap();
    let pow = PowerLawRegression::fit(8, 120.0, 16, 232.0).unwrap();
    let g = Group::new("predict_128sm");
    g.bench("scale_model", || sm.predict(128.0));
    g.bench("power_law", || pow.predict(128.0));
}

fn main() {
    predictor_fits();
    predictor_queries();
}
