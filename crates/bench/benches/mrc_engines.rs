//! Miss-rate-curve collection cost.
//!
//! Section V.A claims MRCs come "at least two orders of magnitude faster"
//! than detailed simulation. This bench compares, on the same workload:
//! the detailed timing simulation, the functional replay collector, and
//! the single-pass stack-distance engines (exact tree and SHARDS-sampled).
//!
//! Results also land in `BENCH_mrc_engines.json` at the repo root; set
//! `GSIM_BENCH_FAST=1` for a smoke-test-sized run (CI).

use std::cell::Cell;

use gsim_bench::tinybench::{fast_mode, Group, JsonReport};
use gsim_core::plan::{
    collect_sampled, synthesize_observation, Fit, PlanWorkload, SampledCollectConfig,
};
use gsim_mem::mrc::{DistanceEngine, NaiveStack, ShardsStack, TreeStack};
use gsim_runner::{RunOverrides, Runner, RunnerConfig};
use gsim_sim::{collect_mrc, GpuConfig, Simulator};
use gsim_trace::suite::strong_benchmark;
use gsim_trace::{MemScale, WarpStream};

fn scale() -> MemScale {
    MemScale::new(32)
}

fn samples() -> usize {
    if fast_mode() {
        3
    } else {
        10
    }
}

fn gather_lines(limit_ctas: u32) -> Vec<u64> {
    let bench = strong_benchmark("bfs", scale()).expect("bfs exists");
    let wl = &bench.workload;
    let mut lines = Vec::new();
    for (kidx, kernel) in wl.kernels().iter().enumerate() {
        for cta in 0..kernel.n_ctas().min(limit_ctas) {
            for warp in 0..kernel.warps_per_cta() {
                let mut s = kernel.warp_stream(wl, kidx, cta, warp);
                while let Some(op) = s.next_op() {
                    if let Some(m) = op.mem() {
                        lines.extend(m.lines());
                    }
                }
            }
        }
    }
    lines
}

fn detailed_simulation(rep: &mut JsonReport) {
    let bench = strong_benchmark("bfs", scale()).expect("bfs exists");
    let sms = if fast_mode() { 8 } else { 128 };
    let cfg = GpuConfig::paper_target(sms, scale());
    let g = Group::new("mrc_vs_detailed").samples(samples());
    let cycles = Cell::new(0u64);
    let name = format!("detailed_timing_sim_{sms}sm");
    if let Some(median) = g.bench(&name, || {
        let st = Simulator::new(cfg.clone(), &bench.workload).run();
        cycles.set(st.cycles);
        st
    }) {
        rep.record(
            format!("mrc_vs_detailed/{name}"),
            median,
            1,
            Some(cycles.get()),
        );
    }
    let configs: Vec<GpuConfig> = [8u32, 16, 32, 64, 128]
        .iter()
        .map(|&s| GpuConfig::paper_target(s, scale()))
        .collect();
    if let Some(median) = g.bench("functional_replay_5_capacities", || {
        collect_mrc(&bench.workload, &configs)
    }) {
        rep.record(
            "mrc_vs_detailed/functional_replay_5_capacities",
            median,
            1,
            None,
        );
    }
}

fn stack_engines(rep: &mut JsonReport) {
    let lines = gather_lines(if fast_mode() { 8 } else { 64 });
    let g = Group::new("stack_distance")
        .samples(samples())
        .throughput(lines.len() as u64);
    if let Some(median) = g.bench("tree_exact", || {
        let mut e = TreeStack::with_capacity(lines.len());
        e.record_all(lines.iter().copied());
        e.finish()
    }) {
        rep.record("stack_distance/tree_exact", median, 1, None);
    }
    if let Some(median) = g.bench("shards_10pct", || {
        let mut e = ShardsStack::new(0.1);
        e.record_all(lines.iter().copied());
        e.finish()
    }) {
        rep.record("stack_distance/shards_10pct", median, 1, None);
    }

    // The quadratic reference implementation, on a small prefix only.
    let small = &lines[..lines.len().min(20_000)];
    let g = Group::new("stack_distance_reference").samples(samples());
    if let Some(median) = g.bench("naive_20k", || {
        let mut e = NaiveStack::new();
        e.record_all(small.iter().copied());
        e.finish()
    }) {
        rep.record("stack_distance_reference/naive_20k", median, 1, None);
    }
}

/// Per-stage latency of the staged collect→fit→predict plan (DESIGN.md
/// §14) on bfs, a memory-bound workload the gate answers functionally.
/// `fast_path_end_to_end` is the whole cache-miss fast path — the
/// service's millisecond-class claim lives or dies on this record.
fn predict_stages(rep: &mut JsonReport) {
    let bench = strong_benchmark("bfs", scale()).expect("bfs exists");
    let wl = PlanWorkload::Synthetic(bench.workload.clone());
    let sizes = [8u32, 16, 32, 64, 128];
    let configs: Vec<GpuConfig> = sizes
        .iter()
        .map(|&s| GpuConfig::paper_target(s, scale()))
        .collect();
    let scfg = SampledCollectConfig::default();
    let runner = Runner::new(RunnerConfig::default());
    let targets = [32u32, 64, 128];

    let g = Group::new("predict_stages").samples(samples());
    if let Some(median) = g.bench("stage_collect", || {
        collect_sampled(
            &wl,
            &configs,
            &scfg,
            Some((&runner, RunOverrides::default())),
        )
        .expect("sampled collect")
    }) {
        rep.record("predict_stages/stage_collect", median, 1, None);
    }

    let collected = collect_sampled(&wl, &configs, &scfg, None).expect("sampled collect");
    let mrc = collected.sized_mrc();
    let (small_cfg, large_cfg) = (&configs[0], &configs[1]);
    if let Some(median) = g.bench("stage_fit", || {
        Fit::new(
            synthesize_observation(&collected, small_cfg),
            synthesize_observation(&collected, large_cfg),
            Some(&mrc),
        )
        .expect("fit")
    }) {
        rep.record("predict_stages/stage_fit", median, 1, None);
    }

    let fit = Fit::new(
        synthesize_observation(&collected, small_cfg),
        synthesize_observation(&collected, large_cfg),
        Some(&mrc),
    )
    .expect("fit");
    if let Some(median) = g.bench("stage_predict", || {
        fit.forecast(&targets).expect("forecast")
    }) {
        rep.record("predict_stages/stage_predict", median, 1, None);
    }

    if let Some(median) = g.bench("fast_path_end_to_end", || {
        let collected = collect_sampled(
            &wl,
            &configs,
            &scfg,
            Some((&runner, RunOverrides::default())),
        )
        .expect("sampled collect");
        let mrc = collected.sized_mrc();
        let fit = Fit::new(
            synthesize_observation(&collected, small_cfg),
            synthesize_observation(&collected, large_cfg),
            Some(&mrc),
        )
        .expect("fit");
        fit.forecast(&targets).expect("forecast")
    }) {
        rep.record("predict_stages/fast_path_end_to_end", median, 1, None);
    }
}

fn main() {
    let mut rep = JsonReport::for_target("mrc_engines");
    detailed_simulation(&mut rep);
    stack_engines(&mut rep);
    predict_stages(&mut rep);
    rep.write();
}
