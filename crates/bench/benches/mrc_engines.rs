//! Miss-rate-curve collection cost.
//!
//! Section V.A claims MRCs come "at least two orders of magnitude faster"
//! than detailed simulation. This bench compares, on the same workload:
//! the detailed timing simulation, the functional replay collector, and
//! the single-pass stack-distance engines (exact tree and SHARDS-sampled).

use gsim_bench::tinybench::Group;
use gsim_mem::mrc::{DistanceEngine, NaiveStack, ShardsStack, TreeStack};
use gsim_sim::{collect_mrc, GpuConfig, Simulator};
use gsim_trace::suite::strong_benchmark;
use gsim_trace::{MemScale, WarpStream};

fn scale() -> MemScale {
    MemScale::new(32)
}

fn gather_lines(limit_ctas: u32) -> Vec<u64> {
    let bench = strong_benchmark("bfs", scale()).expect("bfs exists");
    let wl = &bench.workload;
    let mut lines = Vec::new();
    for (kidx, kernel) in wl.kernels().iter().enumerate() {
        for cta in 0..kernel.n_ctas().min(limit_ctas) {
            for warp in 0..kernel.warps_per_cta() {
                let mut s = kernel.warp_stream(wl, kidx, cta, warp);
                while let Some(op) = s.next_op() {
                    if let Some(m) = op.mem() {
                        lines.extend(m.lines());
                    }
                }
            }
        }
    }
    lines
}

fn detailed_simulation() {
    let bench = strong_benchmark("bfs", scale()).expect("bfs exists");
    let cfg = GpuConfig::paper_target(128, scale());
    let g = Group::new("mrc_vs_detailed").samples(10);
    g.bench("detailed_timing_sim_128sm", || {
        Simulator::new(cfg.clone(), &bench.workload).run()
    });
    let configs: Vec<GpuConfig> = [8u32, 16, 32, 64, 128]
        .iter()
        .map(|&s| GpuConfig::paper_target(s, scale()))
        .collect();
    g.bench("functional_replay_5_capacities", || {
        collect_mrc(&bench.workload, &configs)
    });
}

fn stack_engines() {
    let lines = gather_lines(64);
    let g = Group::new("stack_distance")
        .samples(10)
        .throughput(lines.len() as u64);
    g.bench("tree_exact", || {
        let mut e = TreeStack::with_capacity(lines.len());
        e.record_all(lines.iter().copied());
        e.finish()
    });
    g.bench("shards_10pct", || {
        let mut e = ShardsStack::new(0.1);
        e.record_all(lines.iter().copied());
        e.finish()
    });

    // The quadratic reference implementation, on a small prefix only.
    let small = &lines[..lines.len().min(20_000)];
    let g = Group::new("stack_distance_reference").samples(10);
    g.bench("naive_20k", || {
        let mut e = NaiveStack::new();
        e.record_all(small.iter().copied());
        e.finish()
    });
}

fn main() {
    detailed_simulation();
    stack_engines();
}
