//! Miss-rate-curve collection cost.
//!
//! Section V.A claims MRCs come "at least two orders of magnitude faster"
//! than detailed simulation. This bench compares, on the same workload:
//! the detailed timing simulation, the functional replay collector, and
//! the single-pass stack-distance engines (exact tree and SHARDS-sampled).

use criterion::{criterion_group, criterion_main, Criterion};
use gsim_mem::mrc::{DistanceEngine, NaiveStack, ShardsStack, TreeStack};
use gsim_sim::{collect_mrc, GpuConfig, Simulator};
use gsim_trace::suite::strong_benchmark;
use gsim_trace::{MemScale, WarpStream};

fn scale() -> MemScale {
    MemScale::new(32)
}

fn gather_lines(limit_ctas: u32) -> Vec<u64> {
    let bench = strong_benchmark("bfs", scale()).expect("bfs exists");
    let wl = &bench.workload;
    let mut lines = Vec::new();
    for (kidx, kernel) in wl.kernels().iter().enumerate() {
        for cta in 0..kernel.n_ctas().min(limit_ctas) {
            for warp in 0..kernel.warps_per_cta() {
                let mut s = kernel.warp_stream(wl, kidx, cta, warp);
                while let Some(op) = s.next_op() {
                    if let Some(m) = op.mem() {
                        lines.extend(m.lines());
                    }
                }
            }
        }
    }
    lines
}

fn detailed_simulation(c: &mut Criterion) {
    let bench = strong_benchmark("bfs", scale()).expect("bfs exists");
    let cfg = GpuConfig::paper_target(128, scale());
    let mut g = c.benchmark_group("mrc_vs_detailed");
    g.sample_size(10);
    g.bench_function("detailed_timing_sim_128sm", |b| {
        b.iter(|| Simulator::new(cfg.clone(), &bench.workload).run())
    });
    let configs: Vec<GpuConfig> = [8u32, 16, 32, 64, 128]
        .iter()
        .map(|&s| GpuConfig::paper_target(s, scale()))
        .collect();
    g.bench_function("functional_replay_5_capacities", |b| {
        b.iter(|| collect_mrc(&bench.workload, &configs))
    });
    g.finish();
}

fn stack_engines(c: &mut Criterion) {
    let lines = gather_lines(64);
    let mut g = c.benchmark_group("stack_distance");
    g.sample_size(10);
    g.throughput(criterion::Throughput::Elements(lines.len() as u64));
    g.bench_function("tree_exact", |b| {
        b.iter(|| {
            let mut e = TreeStack::with_capacity(lines.len());
            e.record_all(lines.iter().copied());
            e.finish()
        })
    });
    g.bench_function("shards_10pct", |b| {
        b.iter(|| {
            let mut e = ShardsStack::new(0.1);
            e.record_all(lines.iter().copied());
            e.finish()
        })
    });
    g.finish();

    // The quadratic reference implementation, on a small prefix only.
    let small = &lines[..lines.len().min(20_000)];
    let mut g = c.benchmark_group("stack_distance_reference");
    g.sample_size(10);
    g.bench_function("naive_20k", |b| {
        b.iter(|| {
            let mut e = NaiveStack::new();
            e.record_all(small.iter().copied());
            e.finish()
        })
    });
    g.finish();
}

criterion_group!(benches, detailed_simulation, stack_engines);
criterion_main!(benches);
