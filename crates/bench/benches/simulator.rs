//! Timing-simulator cost: what scale-model simulation saves, and what
//! intra-simulation parallelism buys on top.
//!
//! Benchmarks the detailed simulator on scale models vs target systems
//! under both strong scaling (same workload everywhere — little saving,
//! footnote 1 of the paper) and weak scaling (input grows with the target
//! — the Figure 7 speedups come from exactly this gap), plus a 64-SM
//! memory-bound workload as a strong-scaling family over `sim_threads`
//! 1/2/4/8 (the sharded engine's headline case; results are
//! bit-identical, only wall time moves) and one relaxed-sync run at a
//! 16-cycle slack window.
//!
//! Results also land in `BENCH_simulator.json` at the repo root; set
//! `GSIM_BENCH_FAST=1` for a smoke-test-sized run (CI).

use std::cell::Cell;
use std::time::Duration;

use gsim_bench::tinybench::{fast_mode, Group, JsonReport};
use gsim_multigpu::{Placement, SystemConfig, SystemSim, Tenant};
use gsim_sim::{GpuConfig, Simulator};
use gsim_trace::suite::strong_benchmark;
use gsim_trace::weak::weak_benchmark;
use gsim_trace::{DagParams, Kernel, MemScale, PatternKind, PatternSpec, Workload};

fn scale() -> MemScale {
    MemScale::new(32)
}

fn samples() -> usize {
    if fast_mode() {
        3
    } else {
        10
    }
}

fn sm_sizes() -> &'static [u32] {
    if fast_mode() {
        &[8]
    } else {
        &[8, 16, 128]
    }
}

/// Times one simulator configuration and records it in the JSON report
/// with its deterministic cycle count (for the cycles/sec rate). Pass
/// the family's `t1` median to get a `speedup_vs_t1` in the record;
/// returns this run's median so the caller can seed that baseline.
fn bench_sim(
    g: &Group,
    rep: &mut JsonReport,
    id: &str,
    name: &str,
    cfg: &GpuConfig,
    wl: &Workload,
    t1_median: Option<Duration>,
) -> Option<Duration> {
    let cycles = Cell::new(0u64);
    let median = g.bench(name, || {
        let st = Simulator::new(cfg.clone(), wl).run();
        cycles.set(st.cycles);
        st
    })?;
    let speedup = t1_median
        .filter(|_| !median.is_zero())
        .map(|t1| t1.as_secs_f64() / median.as_secs_f64());
    rep.record_scaled(
        id,
        median,
        cfg.sim_threads.max(1),
        cfg.sync_slack,
        Some(cycles.get()),
        speedup,
    );
    Some(median)
}

fn strong_scaling_cost(rep: &mut JsonReport) {
    let bench = strong_benchmark("pf", scale()).expect("pf exists");
    let g = Group::new("simulate_strong_pf").samples(samples());
    for &sms in sm_sizes() {
        let cfg = GpuConfig::paper_target(sms, scale());
        let id = format!("simulate_strong_pf/{sms}");
        bench_sim(&g, rep, &id, &sms.to_string(), &cfg, &bench.workload, None);
    }
}

fn weak_scaling_cost(rep: &mut JsonReport) {
    let bench = weak_benchmark("va", scale()).expect("va exists");
    let g = Group::new("simulate_weak_va").samples(samples());
    for &sms in sm_sizes() {
        let wl = bench.workload_for_sms(sms);
        let cfg = GpuConfig::paper_target(sms, scale());
        let id = format!("simulate_weak_va/{sms}");
        bench_sim(&g, rep, &id, &sms.to_string(), &cfg, &wl, None);
    }
}

/// The sharded-engine case: a 64-SM target on an LLC-overflowing global
/// sweep (memory-bound, so cycles are plentiful and phase A dominates),
/// as a strong-scaling family over 1/2/4/8 intra-simulation threads
/// (each record past `t1` carries its `speedup_vs_t1`), plus one
/// relaxed-sync run showing what a 16-cycle slack window buys.
fn parallel_64sm_membound(rep: &mut JsonReport) {
    let sc = scale();
    let passes = if fast_mode() { 1 } else { 3 };
    let spec = PatternSpec::new(
        PatternKind::GlobalSweep { passes },
        sc.mb_to_model_lines(48.0),
    )
    .compute_per_mem(1.0);
    let wl = Workload::new(
        "membound64",
        6464,
        vec![Kernel::new("sweep", 2048, 256, spec)],
    );
    let g = Group::new("parallel_64sm_membound").samples(samples());
    let mut t1 = None;
    for threads in [1u32, 2, 4, 8] {
        let mut cfg = GpuConfig::paper_target(64, sc);
        cfg.sim_threads = threads;
        let id = format!("parallel_64sm_membound/t{threads}");
        let baseline = if threads == 1 { None } else { t1 };
        let median = bench_sim(&g, rep, &id, &format!("t{threads}"), &cfg, &wl, baseline);
        if threads == 1 {
            t1 = median;
        }
    }
    let mut cfg = GpuConfig::paper_target(64, sc);
    cfg.sim_threads = 8;
    cfg.sync_slack = 16;
    bench_sim(
        &g,
        rep,
        "parallel_64sm_membound/t8_slack16",
        "t8_slack16",
        &cfg,
        &wl,
        t1,
    );
}

/// The multi-GPU system model (DESIGN.md §16) as a strong-scaling family
/// over the GPU count: the same two-tenant DAG mix on 2/4/8 GPUs of
/// 8 SMs each (each record past the 2-GPU baseline carries its speedup),
/// plus one 4-GPU run under read replication so placement-policy cost is
/// diffable too.
fn multigpu_strong_scaling(rep: &mut JsonReport) {
    let sc = scale();
    let params = DagParams {
        n_kernels: if fast_mode() { 3 } else { 6 },
        max_ctas: if fast_mode() { 24 } else { 64 },
        min_footprint_lines: 1 << 10,
        max_footprint_lines: 1 << 13,
        ..DagParams::default()
    };
    let tenants: Vec<Tenant> = (0..2)
        .map(|i| Tenant::generate(format!("tenant{i}"), 8800 + i, &params))
        .collect();
    let g = Group::new("multigpu_strong").samples(samples());
    let run = |cfg: &SystemConfig| SystemSim::new(cfg.clone(), &tenants).run();
    let mut g2 = None;
    for n_gpus in [2u32, 4, 8] {
        let cfg = SystemConfig::paper_node(n_gpus, 8, sc);
        let cycles = Cell::new(0u64);
        let Some(median) = g.bench(&format!("g{n_gpus}"), || {
            let report = run(&cfg);
            cycles.set(report.stats.cycles);
            report
        }) else {
            continue;
        };
        let speedup = g2
            .filter(|_| n_gpus > 2 && !median.is_zero())
            .map(|base: Duration| base.as_secs_f64() / median.as_secs_f64());
        rep.record_multigpu(
            format!("multigpu_strong/g{n_gpus}"),
            median,
            1,
            n_gpus,
            cfg.placement.as_str(),
            Some(cycles.get()),
            speedup,
        );
        if n_gpus == 2 {
            g2 = Some(median);
        }
    }
    let mut cfg = SystemConfig::paper_node(4, 8, sc);
    cfg.placement = Placement::ReadReplicate;
    let cycles = Cell::new(0u64);
    if let Some(median) = g.bench("g4_replicate", || {
        let report = run(&cfg);
        cycles.set(report.stats.cycles);
        report
    }) {
        rep.record_multigpu(
            "multigpu_strong/g4_replicate",
            median,
            1,
            4,
            cfg.placement.as_str(),
            Some(cycles.get()),
            None,
        );
    }
}

fn main() {
    let mut rep = JsonReport::for_target("simulator");
    strong_scaling_cost(&mut rep);
    weak_scaling_cost(&mut rep);
    parallel_64sm_membound(&mut rep);
    multigpu_strong_scaling(&mut rep);
    rep.write();
}
