//! Timing-simulator cost: what scale-model simulation saves.
//!
//! Benchmarks the detailed simulator on scale models vs target systems
//! under both strong scaling (same workload everywhere — little saving,
//! footnote 1 of the paper) and weak scaling (input grows with the target
//! — the Figure 7 speedups come from exactly this gap).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gsim_sim::{GpuConfig, Simulator};
use gsim_trace::suite::strong_benchmark;
use gsim_trace::weak::weak_benchmark;
use gsim_trace::MemScale;

fn scale() -> MemScale {
    MemScale::new(32)
}

fn strong_scaling_cost(c: &mut Criterion) {
    let bench = strong_benchmark("pf", scale()).expect("pf exists");
    let mut g = c.benchmark_group("simulate_strong_pf");
    g.sample_size(10);
    for sms in [8u32, 16, 128] {
        let cfg = GpuConfig::paper_target(sms, scale());
        g.bench_with_input(BenchmarkId::from_parameter(sms), &cfg, |b, cfg| {
            b.iter(|| Simulator::new(cfg.clone(), &bench.workload).run())
        });
    }
    g.finish();
}

fn weak_scaling_cost(c: &mut Criterion) {
    let bench = weak_benchmark("va", scale()).expect("va exists");
    let mut g = c.benchmark_group("simulate_weak_va");
    g.sample_size(10);
    for sms in [8u32, 16, 128] {
        let wl = bench.workload_for_sms(sms);
        let cfg = GpuConfig::paper_target(sms, scale());
        g.bench_with_input(BenchmarkId::from_parameter(sms), &(cfg, wl), |b, (cfg, wl)| {
            b.iter(|| Simulator::new(cfg.clone(), wl).run())
        });
    }
    g.finish();
}

criterion_group!(benches, strong_scaling_cost, weak_scaling_cost);
criterion_main!(benches);
