//! Timing-simulator cost: what scale-model simulation saves.
//!
//! Benchmarks the detailed simulator on scale models vs target systems
//! under both strong scaling (same workload everywhere — little saving,
//! footnote 1 of the paper) and weak scaling (input grows with the target
//! — the Figure 7 speedups come from exactly this gap).

use gsim_bench::tinybench::Group;
use gsim_sim::{GpuConfig, Simulator};
use gsim_trace::suite::strong_benchmark;
use gsim_trace::weak::weak_benchmark;
use gsim_trace::MemScale;

fn scale() -> MemScale {
    MemScale::new(32)
}

fn strong_scaling_cost() {
    let bench = strong_benchmark("pf", scale()).expect("pf exists");
    let g = Group::new("simulate_strong_pf").samples(10);
    for sms in [8u32, 16, 128] {
        let cfg = GpuConfig::paper_target(sms, scale());
        g.bench(&sms.to_string(), || {
            Simulator::new(cfg.clone(), &bench.workload).run()
        });
    }
}

fn weak_scaling_cost() {
    let bench = weak_benchmark("va", scale()).expect("va exists");
    let g = Group::new("simulate_weak_va").samples(10);
    for sms in [8u32, 16, 128] {
        let wl = bench.workload_for_sms(sms);
        let cfg = GpuConfig::paper_target(sms, scale());
        g.bench(&sms.to_string(), || Simulator::new(cfg.clone(), &wl).run());
    }
}

fn main() {
    strong_scaling_cost();
    weak_scaling_cost();
}
