//! Memory-substrate micro-benchmarks: cache lookups at the two
//! associativities the configurations use, MSHR traffic, and the
//! bandwidth-server models — these dominate the simulator's inner loop.

use gsim_bench::tinybench::Group;
use gsim_mem::{Cache, CacheGeometry, DramModel, Mshr, SlicedLlc};
use gsim_noc::Crossbar;
use gsim_rng::Rng64;

const N: u64 = 100_000;

fn addresses(footprint: u64) -> Vec<u64> {
    let mut rng = Rng64::seed_from_u64(7);
    (0..N).map(|_| rng.gen_range(0, footprint)).collect()
}

fn cache_accesses() {
    let addrs = addresses(100_000);
    let g = Group::new("cache_access").throughput(N);
    {
        let mut cache = Cache::new(CacheGeometry::new(48 * 1024, 6, 128));
        g.bench("l1_6way", || {
            for &a in &addrs {
                cache.access(a, false);
            }
        });
    }
    {
        let mut cache = Cache::new(CacheGeometry::new(512 * 1024, 64, 128));
        g.bench("llc_slice_64way", || {
            for &a in &addrs {
                cache.access(a, false);
            }
        });
    }
    {
        let mut llc = SlicedLlc::new(34 * 1024 * 1024 / 8, 64, 64, 128);
        g.bench("sliced_llc_64_slices", || {
            for &a in &addrs {
                llc.access(a, false);
            }
        });
    }
}

fn mshr_traffic() {
    let addrs = addresses(1_000);
    let g = Group::new("mshr").throughput(N);
    g.bench("register_merge_complete", || {
        let mut m = Mshr::new(384);
        for (i, &a) in addrs.iter().enumerate() {
            let now = i as u64;
            if m.is_full() {
                m.complete_up_to(now);
            }
            let _ = m.register(a, now + 300);
        }
    });
}

fn bandwidth_servers() {
    let addrs = addresses(1 << 30);
    let g = Group::new("bandwidth_models").throughput(N);
    g.bench("dram_16mc", || {
        let mut d = DramModel::new(16, 145.0, 1.0, 150);
        for (i, &a) in addrs.iter().enumerate() {
            d.read(i as u64, a, 128);
        }
    });
    g.bench("crossbar", || {
        let mut x = Crossbar::from_gbs(2696.0, 1.0, 12);
        for i in 0..N {
            x.traverse(i as f64, 64);
        }
    });
}

fn main() {
    cache_accesses();
    mshr_traffic();
    bandwidth_servers();
}
