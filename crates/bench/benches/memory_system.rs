//! Memory-substrate micro-benchmarks: cache lookups at the two
//! associativities the configurations use, MSHR traffic, and the
//! bandwidth-server models — these dominate the simulator's inner loop.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gsim_mem::{Cache, CacheGeometry, DramModel, Mshr, SlicedLlc};
use gsim_noc::Crossbar;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const N: u64 = 100_000;

fn addresses(footprint: u64) -> Vec<u64> {
    let mut rng = SmallRng::seed_from_u64(7);
    (0..N).map(|_| rng.gen_range(0..footprint)).collect()
}

fn cache_accesses(c: &mut Criterion) {
    let addrs = addresses(100_000);
    let mut g = c.benchmark_group("cache_access");
    g.throughput(Throughput::Elements(N));
    g.bench_function("l1_6way", |b| {
        let mut cache = Cache::new(CacheGeometry::new(48 * 1024, 6, 128));
        b.iter(|| {
            for &a in &addrs {
                cache.access(a, false);
            }
        })
    });
    g.bench_function("llc_slice_64way", |b| {
        let mut cache = Cache::new(CacheGeometry::new(512 * 1024, 64, 128));
        b.iter(|| {
            for &a in &addrs {
                cache.access(a, false);
            }
        })
    });
    g.bench_function("sliced_llc_64_slices", |b| {
        let mut llc = SlicedLlc::new(34 * 1024 * 1024 / 8, 64, 64, 128);
        b.iter(|| {
            for &a in &addrs {
                llc.access(a, false);
            }
        })
    });
    g.finish();
}

fn mshr_traffic(c: &mut Criterion) {
    let addrs = addresses(1_000);
    let mut g = c.benchmark_group("mshr");
    g.throughput(Throughput::Elements(N));
    g.bench_function("register_merge_complete", |b| {
        b.iter(|| {
            let mut m = Mshr::new(384);
            for (i, &a) in addrs.iter().enumerate() {
                let now = i as u64;
                if m.is_full() {
                    m.complete_up_to(now);
                }
                let _ = m.register(a, now + 300);
            }
        })
    });
    g.finish();
}

fn bandwidth_servers(c: &mut Criterion) {
    let addrs = addresses(1 << 30);
    let mut g = c.benchmark_group("bandwidth_models");
    g.throughput(Throughput::Elements(N));
    g.bench_function("dram_16mc", |b| {
        b.iter(|| {
            let mut d = DramModel::new(16, 145.0, 1.0, 150);
            for (i, &a) in addrs.iter().enumerate() {
                d.read(i as u64, a, 128);
            }
        })
    });
    g.bench_function("crossbar", |b| {
        b.iter(|| {
            let mut x = Crossbar::from_gbs(2696.0, 1.0, 12);
            for i in 0..N {
                x.traverse(i as f64, 64);
            }
        })
    });
    g.finish();
}

criterion_group!(benches, cache_accesses, mshr_traffic, bandwidth_servers);
criterion_main!(benches);
