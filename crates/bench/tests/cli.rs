//! End-to-end checks of the CLI binaries: the `--sim-threads` flag and
//! the `gsim trace` store workflow.

use std::path::PathBuf;
use std::process::{Command, Output};

fn gsim(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_gsim"))
        .args(args)
        .output()
        .expect("spawn gsim")
}

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro")
}

fn scale_model_predict(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_scale_model_predict"))
        .args(args)
        .output()
        .expect("spawn scale_model_predict")
}

/// Extracts the simulated-cycle count from `gsim run` output.
fn cycles_line(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout)
        .lines()
        .find(|l| l.trim_start().starts_with("cycles"))
        .expect("gsim prints a cycles line")
        .to_string()
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gsim-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).to_string()
}

#[test]
fn gsim_trace_record_ingest_info_roundtrip() {
    let dir = fresh_dir("trace-roundtrip");
    let v2 = dir.join("gemm.gstr");
    let v1 = dir.join("gemm-v1.gstr");
    let store = dir.join("store");
    let s = |p: &PathBuf| p.to_str().unwrap().to_string();

    // Record the same benchmark in both formats: same content hash.
    let rec2 = gsim(&["trace", "record", "gemm", "-o", &s(&v2), "--scale", "64"]);
    assert!(rec2.status.success(), "record v2 failed: {rec2:?}");
    let rec1 = gsim(&[
        "trace",
        "record",
        "gemm",
        "-o",
        &s(&v1),
        "--scale",
        "64",
        "--format",
        "1",
    ]);
    assert!(rec1.status.success(), "record v1 failed: {rec1:?}");
    let trace_ref = stdout_of(&rec2)
        .split("ref ")
        .nth(1)
        .expect("record prints a ref")
        .trim()
        .to_string();
    assert_eq!(trace_ref.len(), 16, "{trace_ref:?}");
    assert!(
        stdout_of(&rec1).contains(&trace_ref),
        "v1 and v2 encodings of one workload must share a content hash:\n{}\n{}",
        stdout_of(&rec1),
        stdout_of(&rec2)
    );

    // Ingest the v2 file; re-ingesting the v1 encoding deduplicates
    // because the store addresses by content, not by bytes.
    let ing = gsim(&["trace", "ingest", &s(&v2), "--store", &s(&store)]);
    assert!(ing.status.success(), "ingest failed: {ing:?}");
    assert!(stdout_of(&ing).starts_with(&trace_ref), "{ing:?}");
    let dup = gsim(&["trace", "ingest", &s(&v1), "--store", &s(&store)]);
    assert!(dup.status.success(), "dedup ingest failed: {dup:?}");
    assert!(stdout_of(&dup).contains("already stored"), "{dup:?}");

    // `info` streams the file; `info <ref>` resolves through the store.
    let info = gsim(&["trace", "info", &s(&v2)]);
    assert!(info.status.success(), "info failed: {info:?}");
    let text = stdout_of(&info);
    assert!(text.contains(&trace_ref), "{text}");
    assert!(text.contains("v2 format"), "{text}");
    assert!(text.contains("warps"), "{text}");
    let by_ref = gsim(&["trace", "info", &trace_ref, "--store", &s(&store)]);
    assert!(by_ref.status.success(), "info by ref failed: {by_ref:?}");
    assert!(stdout_of(&by_ref).contains(&trace_ref));

    // `ls` shows the single stored entry.
    let ls = gsim(&["trace", "ls", "--store", &s(&store)]);
    assert!(ls.status.success(), "ls failed: {ls:?}");
    assert!(stdout_of(&ls).contains(&trace_ref), "{ls:?}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn gsim_trace_failures_map_to_distinct_exit_codes() {
    let dir = fresh_dir("trace-exits");
    let s = |p: &PathBuf| p.to_str().unwrap().to_string();

    // Not a trace at all.
    let bad = dir.join("bad.gstr");
    std::fs::write(&bad, b"definitely not a trace").unwrap();
    assert_eq!(gsim(&["trace", "info", &s(&bad)]).status.code(), Some(3));

    // Unknown version byte after a valid magic.
    let ver = dir.join("ver.gstr");
    std::fs::write(&ver, b"GSTR\x09").unwrap();
    assert_eq!(gsim(&["trace", "info", &s(&ver)]).status.code(), Some(4));

    // A real trace, truncated mid-stream.
    let good = dir.join("gemm.gstr");
    let rec = gsim(&["trace", "record", "gemm", "-o", &s(&good), "--scale", "64"]);
    assert!(rec.status.success(), "record failed: {rec:?}");
    let bytes = std::fs::read(&good).unwrap();
    let trunc = dir.join("trunc.gstr");
    std::fs::write(&trunc, &bytes[..bytes.len() / 2]).unwrap();
    assert_eq!(gsim(&["trace", "info", &s(&trunc)]).status.code(), Some(5));

    // Over the configured size budget (the gemm trace is < 1 MiB, so
    // record the larger pf workload).
    let big = dir.join("pf.gstr");
    let rec = gsim(&["trace", "record", "pf", "-o", &s(&big), "--scale", "64"]);
    assert!(rec.status.success(), "record failed: {rec:?}");
    assert!(std::fs::metadata(&big).unwrap().len() > 1024 * 1024);
    assert_eq!(
        gsim(&["trace", "info", &s(&big), "--max-trace-mb", "1"])
            .status
            .code(),
        Some(6)
    );

    // Ingest surfaces the same codes.
    let store = dir.join("store");
    assert_eq!(
        gsim(&["trace", "ingest", &s(&bad), "--store", &s(&store)])
            .status
            .code(),
        Some(3)
    );

    // Usage errors stay on the usual exit 2.
    assert_eq!(gsim(&["trace", "frobnicate"]).status.code(), Some(2));
    assert_eq!(gsim(&["trace", "record"]).status.code(), Some(2));
    assert_eq!(
        gsim(&["trace", "record", "gemm", "--format", "3"])
            .status
            .code(),
        Some(2)
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn gsim_run_accepts_sim_threads_and_stays_deterministic() {
    // A small scale model on the coarsest miniature keeps this fast.
    let serial = gsim(&["run", "pf", "--sms", "8", "--scale", "64"]);
    assert!(serial.status.success(), "serial run failed: {serial:?}");
    let sharded = gsim(&[
        "run",
        "pf",
        "--sms",
        "8",
        "--scale",
        "64",
        "--sim-threads",
        "2",
    ]);
    assert!(sharded.status.success(), "sharded run failed: {sharded:?}");
    assert_eq!(
        cycles_line(&serial),
        cycles_line(&sharded),
        "results must be bit-identical across --sim-threads"
    );
    let stdout = String::from_utf8_lossy(&sharded.stdout).to_string();
    assert!(
        stdout.contains("sim cycles/sec"),
        "summary should report simulation throughput: {stdout}"
    );
}

#[test]
fn gsim_rejects_zero_sim_threads() {
    let out = gsim(&["run", "pf", "--sim-threads", "0"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--sim-threads"));
}

#[test]
fn gsim_multigpu_runs_and_is_thread_invariant() {
    let out = gsim(&[
        "multigpu",
        "--gpus",
        "2",
        "--sms",
        "8",
        "--scale",
        "64",
        "--dag-kernels",
        "2",
        "--sim-threads",
        "2",
        "--assert-determinism",
    ]);
    assert!(out.status.success(), "multigpu run failed: {out:?}");
    let stdout = stdout_of(&out);
    assert!(stdout.contains("fabric bytes"), "{stdout}");
    assert!(
        stdout.contains("determinism: t2 bit-identical to t1"),
        "{stdout}"
    );
}

#[test]
fn gsim_multigpu_placement_changes_fabric_traffic() {
    let bytes_of = |placement: &str| -> u64 {
        let out = gsim(&[
            "multigpu",
            "--gpus",
            "2",
            "--sms",
            "8",
            "--scale",
            "64",
            "--dag-kernels",
            "2",
            "--placement",
            placement,
        ]);
        assert!(out.status.success(), "{placement} run failed: {out:?}");
        stdout_of(&out)
            .lines()
            .find(|l| l.trim_start().starts_with("fabric bytes"))
            .expect("fabric bytes line")
            .split_whitespace()
            .last()
            .unwrap()
            .parse()
            .expect("fabric bytes is an integer")
    };
    let interleave = bytes_of("interleave");
    let replicate = bytes_of("replicate");
    assert!(interleave > 0, "interleave placement must cross the fabric");
    assert!(
        replicate < interleave,
        "read replication ({replicate}) should move fewer bytes than interleave ({interleave})"
    );
}

#[test]
fn gsim_multigpu_validate_smoke_prints_all_predictors() {
    let out = gsim(&[
        "multigpu",
        "--validate",
        "--smoke",
        "--sms",
        "8",
        "--scale",
        "64",
        "--dag-kernels",
        "2",
    ]);
    assert!(out.status.success(), "validate smoke failed: {out:?}");
    let stdout = stdout_of(&out);
    assert!(stdout.contains("scale-model validation"), "{stdout}");
    assert!(stdout.contains("4 GPUs"), "{stdout}");
    for method in [
        "logarithmic",
        "proportional",
        "linear",
        "power-law",
        "scale-model",
    ] {
        assert!(stdout.contains(method), "missing {method}: {stdout}");
    }
}

#[test]
fn gsim_multigpu_rejects_flag_garbage_with_exit_2() {
    for args in [
        ["multigpu", "--gpus", "0"],
        ["multigpu", "--gpus", "two"],
        ["multigpu", "--topology", "mesh"],
        ["multigpu", "--placement", "numa"],
        ["multigpu", "--link-gbs", "0"],
        ["multigpu", "--link-gbs", "fast"],
        ["multigpu", "--sync-slack", "lots"],
        ["multigpu", "--tenants", "0"],
        ["multigpu", "--page-lines", "0"],
    ] {
        let out = gsim(&args);
        assert_eq!(out.status.code(), Some(2), "{args:?} should exit 2");
    }
    // --sharing must divide the per-GPU SM count.
    let out = gsim(&["multigpu", "--sms", "8", "--sharing", "3"]);
    assert_eq!(out.status.code(), Some(2), "indivisible sharing");
}

#[test]
fn repro_rejects_zero_sim_threads() {
    let out = repro(&["--sim-threads", "0", "table1"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--sim-threads"));
}

#[test]
fn repro_accepts_sim_threads() {
    // table1 derives configurations without running simulations, so this
    // only exercises argument handling — which is the point.
    let out = repro(&["--sim-threads", "2", "table1"]);
    assert!(out.status.success(), "repro failed: {out:?}");
}

#[test]
fn scale_model_predict_accepts_and_validates_sim_threads() {
    let ok = scale_model_predict(&[
        "--sim-threads",
        "4",
        "10.0",
        "20.0",
        "5.0",
        "5.0",
        "5.0",
        "5.0",
        "5.0",
    ]);
    assert!(ok.status.success(), "predict failed: {ok:?}");
    let bad = scale_model_predict(&["--sim-threads", "0", "10.0", "20.0", "5.0"]);
    assert_eq!(bad.status.code(), Some(2));
}
