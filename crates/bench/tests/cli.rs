//! End-to-end checks of the `--sim-threads` flag on the CLI binaries.

use std::process::{Command, Output};

fn gsim(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_gsim"))
        .args(args)
        .output()
        .expect("spawn gsim")
}

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro")
}

fn scale_model_predict(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_scale_model_predict"))
        .args(args)
        .output()
        .expect("spawn scale_model_predict")
}

/// Extracts the simulated-cycle count from `gsim run` output.
fn cycles_line(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout)
        .lines()
        .find(|l| l.trim_start().starts_with("cycles"))
        .expect("gsim prints a cycles line")
        .to_string()
}

#[test]
fn gsim_run_accepts_sim_threads_and_stays_deterministic() {
    // A small scale model on the coarsest miniature keeps this fast.
    let serial = gsim(&["run", "pf", "--sms", "8", "--scale", "64"]);
    assert!(serial.status.success(), "serial run failed: {serial:?}");
    let sharded = gsim(&[
        "run",
        "pf",
        "--sms",
        "8",
        "--scale",
        "64",
        "--sim-threads",
        "2",
    ]);
    assert!(sharded.status.success(), "sharded run failed: {sharded:?}");
    assert_eq!(
        cycles_line(&serial),
        cycles_line(&sharded),
        "results must be bit-identical across --sim-threads"
    );
    let stdout = String::from_utf8_lossy(&sharded.stdout).to_string();
    assert!(
        stdout.contains("sim cycles/sec"),
        "summary should report simulation throughput: {stdout}"
    );
}

#[test]
fn gsim_rejects_zero_sim_threads() {
    let out = gsim(&["run", "pf", "--sim-threads", "0"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--sim-threads"));
}

#[test]
fn repro_rejects_zero_sim_threads() {
    let out = repro(&["--sim-threads", "0", "table1"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--sim-threads"));
}

#[test]
fn repro_accepts_sim_threads() {
    // table1 derives configurations without running simulations, so this
    // only exercises argument handling — which is the point.
    let out = repro(&["--sim-threads", "2", "table1"]);
    assert!(out.status.success(), "repro failed: {out:?}");
}

#[test]
fn scale_model_predict_accepts_and_validates_sim_threads() {
    let ok = scale_model_predict(&[
        "--sim-threads",
        "4",
        "10.0",
        "20.0",
        "5.0",
        "5.0",
        "5.0",
        "5.0",
        "5.0",
    ]);
    assert!(ok.status.success(), "predict failed: {ok:?}");
    let bad = scale_model_predict(&["--sim-threads", "0", "10.0", "20.0", "5.0"]);
    assert_eq!(bad.status.code(), Some(2));
}
