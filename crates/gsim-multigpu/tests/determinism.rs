//! The multi-GPU determinism contract (DESIGN.md §16): aggregate
//! `SimStats` must be bit-identical across `sim_threads` for every
//! topology × placement combination, the same contract the single-package
//! engine honours (§10/§15).

use gsim_multigpu::{Placement, SystemConfig, SystemSim, Tenant, Topology};
use gsim_trace::{DagParams, MemScale};

fn tenants() -> Vec<Tenant> {
    let params = DagParams {
        n_kernels: 4,
        max_ctas: 24,
        min_footprint_lines: 1 << 10,
        max_footprint_lines: 1 << 12,
        ..DagParams::default()
    };
    (0..2)
        .map(|i| Tenant::generate(format!("tenant{i}"), 7 + i, &params))
        .collect()
}

fn run(cfg: &SystemConfig, sim_threads: u32, tenants: &[Tenant]) -> gsim_sim::SimStats {
    let mut cfg = cfg.clone();
    cfg.gpu.sim_threads = sim_threads;
    SystemSim::new(cfg, tenants).run().stats
}

#[test]
fn multi_gpu_stats_are_thread_invariant_across_topologies_and_placements() {
    let ts = tenants();
    for topology in [Topology::Ring, Topology::FullyConnected] {
        for placement in [Placement::FirstTouch, Placement::Interleave] {
            let mut cfg = SystemConfig::paper_node(2, 8, MemScale::default());
            cfg.topology = topology;
            cfg.placement = placement;
            let serial = run(&cfg, 1, &ts);
            for threads in [2, 4] {
                let parallel = run(&cfg, threads, &ts);
                serial.assert_deterministic_eq(&parallel);
            }
        }
    }
}

#[test]
fn four_gpu_sharing_run_is_thread_invariant() {
    let ts = tenants();
    let mut cfg = SystemConfig::paper_node(4, 8, MemScale::default());
    cfg.sharing = 2;
    cfg.placement = Placement::ReadReplicate;
    let serial = run(&cfg, 1, &ts);
    let parallel = run(&cfg, 4, &ts);
    serial.assert_deterministic_eq(&parallel);
    assert!(serial.cycles > 0);
}

#[test]
fn repeated_runs_are_bit_identical() {
    let ts = tenants();
    let cfg = SystemConfig::paper_node(2, 8, MemScale::default());
    let a = run(&cfg, 2, &ts);
    let b = run(&cfg, 2, &ts);
    a.assert_deterministic_eq(&b);
}

/// Randomized soak: random tenant mixes and system shapes, each checked
/// for thread invariance.
#[test]
#[cfg_attr(
    not(feature = "ext-tests"),
    ignore = "enable with --features ext-tests"
)]
fn randomized_system_determinism_soak() {
    use gsim_rng::Rng64;
    let mut rng = Rng64::seed_from_u64(0x5EED_50AC);
    for case in 0..10 {
        let params = DagParams {
            n_kernels: rng.gen_range_inclusive(2, 6) as u32,
            max_fanin: rng.gen_range_inclusive(1, 3) as u32,
            max_ctas: rng.gen_range_inclusive(8, 32) as u32,
            min_footprint_lines: 1 << 9,
            max_footprint_lines: 1 << rng.gen_range_inclusive(10, 13),
            ..DagParams::default()
        };
        let ts: Vec<Tenant> = (0..rng.gen_range_inclusive(1, 3))
            .map(|i| Tenant::generate(format!("s{case}t{i}"), rng.next_u64(), &params))
            .collect();
        let mut cfg =
            SystemConfig::paper_node(rng.gen_range_inclusive(2, 4) as u32, 8, MemScale::default());
        cfg.topology = if rng.gen_bool(0.5) {
            Topology::Ring
        } else {
            Topology::FullyConnected
        };
        cfg.placement = match rng.gen_range(0, 3) {
            0 => Placement::FirstTouch,
            1 => Placement::Interleave,
            _ => Placement::ReadReplicate,
        };
        let serial = run(&cfg, 1, &ts);
        let parallel = run(&cfg, rng.gen_range_inclusive(2, 4) as u32, &ts);
        serial.assert_deterministic_eq(&parallel);
    }
}
