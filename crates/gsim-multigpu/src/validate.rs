//! Scale-model validation at the system level: fit the five predictors on
//! small GPU counts, forecast large ones, and compare against actual
//! multi-GPU runs.
//!
//! This is the paper's methodology transplanted one level up: the
//! "system size" axis is the GPU count instead of the SM count, and the
//! observations come from whole-system runs (multi-tenant DAG scheduling
//! plus fabric contention) instead of single-package simulations. GPU
//! counts are weak-scaling-like for the predictor ladder — there is no
//! per-size LLC miss-rate curve to consult — so the fit runs without an
//! MRC, exactly like the weak-scaling pipeline.

use gsim_core::plan::{observation_of, Fit};
use gsim_core::{ModelError, Observation};

use crate::config::SystemConfig;
use crate::system::{SystemSim, Tenant};

/// One method's forecast at one target GPU count.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodResult {
    /// Method name ("scale-model", "proportional", …).
    pub method: &'static str,
    /// Predicted system IPC.
    pub predicted_ipc: f64,
    /// Signed percent error against the actual run.
    pub pct_error: f64,
}

/// Forecasts versus the actual run at one target GPU count.
#[derive(Debug, Clone, PartialEq)]
pub struct TargetResult {
    /// Target GPU count.
    pub n_gpus: u32,
    /// Sustained system IPC of the actual multi-GPU run.
    pub actual_ipc: f64,
    /// All five methods, in predictor-roster order.
    pub methods: Vec<MethodResult>,
}

/// The complete validation experiment output.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationReport {
    /// The two GPU counts the predictors were fitted on.
    pub fit_sizes: (u32, u32),
    /// The scale-model observations, small then large.
    pub observations: (Observation, Observation),
    /// One row per forecast target, in request order.
    pub targets: Vec<TargetResult>,
}

impl ValidationReport {
    /// Absolute percent error of `method` at each target, if present.
    pub fn errors_of(&self, method: &str) -> Vec<f64> {
        self.targets
            .iter()
            .filter_map(|t| {
                t.methods
                    .iter()
                    .find(|m| m.method == method)
                    .map(|m| m.pct_error.abs())
            })
            .collect()
    }
}

/// Runs the validation experiment: simulates `base` at the two `fit`
/// GPU counts, fits the five predictors on those observations, forecasts
/// every count in `targets`, then simulates each target for ground truth.
///
/// # Errors
///
/// Returns an error if the fit observations are degenerate or a target is
/// not `fit.1` times a power of two (the predictor ladder's doubling
/// rule).
///
/// # Panics
///
/// Panics if `base` is invalid for any requested GPU count or `tenants`
/// is empty (see [`SystemSim::new`]).
pub fn validate_scaling(
    base: &SystemConfig,
    tenants: &[Tenant],
    fit: (u32, u32),
    targets: &[u32],
) -> Result<ValidationReport, ModelError> {
    let run = |n_gpus: u32| {
        SystemSim::new(base.with_n_gpus(n_gpus), tenants)
            .run()
            .stats
    };
    let small = observation_of(fit.0, &run(fit.0));
    let large = observation_of(fit.1, &run(fit.1));
    // GPU-count scaling has no per-size miss-rate curve: every doubling is
    // treated as pre-cliff, the weak-scaling mode of the fit.
    let forecast = Fit::new(small, large, None)?.forecast(targets)?;
    let mut rows = Vec::with_capacity(targets.len());
    for tf in forecast.targets {
        let actual = run(tf.target).sustained_ipc();
        let methods = tf
            .by_method
            .iter()
            .map(|m| MethodResult {
                method: m.method,
                predicted_ipc: m.predicted_ipc,
                pct_error: if actual > 0.0 {
                    (m.predicted_ipc - actual) / actual * 100.0
                } else {
                    0.0
                },
            })
            .collect();
        rows.push(TargetResult {
            n_gpus: tf.target,
            actual_ipc: actual,
            methods,
        });
    }
    Ok(ValidationReport {
        fit_sizes: fit,
        observations: (small, large),
        targets: rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsim_trace::{DagParams, MemScale};

    fn tiny_tenants() -> Vec<Tenant> {
        let params = DagParams {
            n_kernels: 3,
            max_ctas: 16,
            min_footprint_lines: 1 << 9,
            max_footprint_lines: 1 << 11,
            ..DagParams::default()
        };
        (0..3)
            .map(|i| Tenant::generate(format!("t{i}"), 40 + i, &params))
            .collect()
    }

    #[test]
    fn smoke_validation_fits_2_gpus_and_forecasts_4() {
        let base = SystemConfig::paper_node(1, 8, MemScale::default());
        let report =
            validate_scaling(&base, &tiny_tenants(), (1, 2), &[4]).expect("validation runs");
        assert_eq!(report.fit_sizes, (1, 2));
        assert_eq!(report.targets.len(), 1);
        let row = &report.targets[0];
        assert_eq!(row.n_gpus, 4);
        assert!(row.actual_ipc > 0.0);
        assert_eq!(row.methods.len(), 5, "all five predictors report");
        assert!(row.methods.iter().any(|m| m.method == "scale-model"));
        for m in &row.methods {
            assert!(
                m.predicted_ipc.is_finite() && m.pct_error.is_finite(),
                "{} produced a non-finite result",
                m.method
            );
        }
    }

    #[test]
    fn non_doubling_target_is_rejected() {
        let base = SystemConfig::paper_node(1, 8, MemScale::default());
        assert!(validate_scaling(&base, &tiny_tenants(), (1, 2), &[6]).is_err());
    }
}
