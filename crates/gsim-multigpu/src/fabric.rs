//! The inter-GPU fabric: bandwidth-limited links arranged in a topology.

use gsim_noc::BandwidthLink;

use crate::config::{SystemConfig, Topology};

/// Transfers larger than this are split into equal-rate chunks so byte
/// counts fit the link API; on a work-conserving FIFO link the completion
/// time of the chunked bulk equals that of one contiguous transfer.
const CHUNK_BYTES: u64 = 1 << 20;

/// Aggregate fabric statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FabricStats {
    /// Bulk transfers requested (before chunking).
    pub transfers: u64,
    /// Bytes moved over all links (each hop counts the bytes again).
    pub link_bytes: u64,
    /// Accumulated queueing delay over all links, cycles.
    pub queue_cycles: f64,
}

/// The inter-GPU interconnect of a [`SystemConfig`]: per-topology
/// [`BandwidthLink`]s plus deterministic shortest-path routing.
///
/// Local transfers (`src == dst`) are free. Remote transfers charge every
/// link on the route in order plus a fixed latency per hop, so both
/// bandwidth pressure (queueing on busy links) and distance (ring hops)
/// are felt.
#[derive(Debug, Clone)]
pub struct GpuFabric {
    topology: Topology,
    n: u32,
    hop_latency: f64,
    /// `FullyConnected`: `n * n` links indexed `src * n + dst`.
    /// `Ring`: `2 * n` links indexed `node * 2 + dir` with dir 0 =
    /// clockwise (to `node + 1`), dir 1 = counter-clockwise.
    links: Vec<BandwidthLink>,
    transfers: u64,
}

impl GpuFabric {
    /// Builds the fabric for `cfg`.
    pub fn new(cfg: &SystemConfig) -> Self {
        let n = cfg.n_gpus;
        let bytes_per_cycle = cfg.link_gbs / cfg.gpu.sm_clock_ghz;
        let count = match cfg.topology {
            Topology::FullyConnected => (n as usize) * (n as usize),
            Topology::Ring => 2 * n as usize,
        };
        Self {
            topology: cfg.topology,
            n,
            hop_latency: f64::from(cfg.link_latency),
            links: (0..count)
                .map(|_| BandwidthLink::new(bytes_per_cycle))
                .collect(),
            transfers: 0,
        }
    }

    /// Number of GPUs the fabric connects.
    pub fn n_gpus(&self) -> u32 {
        self.n
    }

    /// Hops a transfer from `src` to `dst` crosses (0 if local).
    pub fn hops(&self, src: u32, dst: u32) -> u32 {
        if src == dst || self.n <= 1 {
            return 0;
        }
        match self.topology {
            Topology::FullyConnected => 1,
            Topology::Ring => {
                let fwd = (dst + self.n - src) % self.n;
                fwd.min(self.n - fwd)
            }
        }
    }

    /// Submits a bulk transfer of `bytes` from `src` to `dst` at time
    /// `now` (cycles); returns the arrival time at `dst`. Local transfers
    /// complete immediately at `now`.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is outside the system.
    pub fn transfer(&mut self, now: f64, src: u32, dst: u32, bytes: u64) -> f64 {
        assert!(src < self.n && dst < self.n, "GPU index out of range");
        if src == dst || bytes == 0 {
            return now;
        }
        self.transfers += 1;
        match self.topology {
            Topology::FullyConnected => {
                let idx = (src * self.n + dst) as usize;
                let done = bulk(&mut self.links[idx], now, bytes);
                done + self.hop_latency
            }
            Topology::Ring => {
                let fwd = (dst + self.n - src) % self.n;
                let clockwise = fwd <= self.n - fwd;
                let hops = fwd.min(self.n - fwd);
                let mut t = now;
                let mut node = src;
                for _ in 0..hops {
                    let (link, next) = if clockwise {
                        ((node * 2) as usize, (node + 1) % self.n)
                    } else {
                        ((node * 2 + 1) as usize, (node + self.n - 1) % self.n)
                    };
                    t = bulk(&mut self.links[link], t, bytes) + self.hop_latency;
                    node = next;
                }
                t
            }
        }
    }

    /// Aggregate statistics over all links.
    pub fn stats(&self) -> FabricStats {
        let mut s = FabricStats {
            transfers: self.transfers,
            ..FabricStats::default()
        };
        for l in &self.links {
            let ls = l.stats();
            s.link_bytes += ls.bytes;
            s.queue_cycles += ls.queue_cycles;
        }
        s
    }

    /// Peak per-link utilisation over `elapsed` cycles.
    pub fn max_utilization(&self, elapsed: f64) -> f64 {
        self.links
            .iter()
            .map(|l| l.utilization(elapsed))
            .fold(0.0, f64::max)
    }
}

/// Sends `bytes` over one link in bounded chunks; returns the completion
/// time of the last chunk.
fn bulk(link: &mut BandwidthLink, now: f64, bytes: u64) -> f64 {
    let mut t = now;
    let mut left = bytes;
    while left > 0 {
        let chunk = left.min(CHUNK_BYTES) as u32;
        t = link.transfer(now, chunk);
        left -= u64::from(chunk);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Placement;
    use gsim_sim::GpuConfig;
    use gsim_trace::MemScale;

    fn cfg(n: u32, topology: Topology) -> SystemConfig {
        SystemConfig {
            n_gpus: n,
            gpu: GpuConfig::paper_target(8, MemScale::default()),
            topology,
            link_gbs: 100.0,
            link_latency: 10,
            placement: Placement::Interleave,
            page_lines: 16,
            sharing: 1,
        }
    }

    #[test]
    fn local_transfers_are_free() {
        let mut f = GpuFabric::new(&cfg(4, Topology::Ring));
        assert_eq!(f.transfer(5.0, 2, 2, 1 << 30), 5.0);
        assert_eq!(f.hops(2, 2), 0);
        assert_eq!(f.stats().transfers, 0);
    }

    #[test]
    fn fully_connected_is_always_one_hop() {
        let mut f = GpuFabric::new(&cfg(8, Topology::FullyConnected));
        for src in 0..8 {
            for dst in 0..8 {
                if src != dst {
                    assert_eq!(f.hops(src, dst), 1);
                }
            }
        }
        // 100 B/cycle: 1000 bytes = 10 cycles service + 10 latency.
        assert_eq!(f.transfer(0.0, 0, 7, 1000), 20.0);
    }

    #[test]
    fn ring_routes_the_shorter_arc() {
        let f = GpuFabric::new(&cfg(8, Topology::Ring));
        assert_eq!(f.hops(0, 1), 1);
        assert_eq!(f.hops(0, 4), 4); // diameter
        assert_eq!(f.hops(0, 7), 1); // wraps counter-clockwise
        assert_eq!(f.hops(6, 1), 3);
    }

    #[test]
    fn ring_charges_every_hop() {
        let mut f = GpuFabric::new(&cfg(8, Topology::Ring));
        // 2 hops: each adds 10 cycles service + 10 latency.
        assert_eq!(f.transfer(0.0, 0, 2, 1000), 40.0);
        // Distinct pairs on disjoint links don't queue on each other.
        assert_eq!(f.transfer(0.0, 4, 5, 1000), 20.0);
        // Reusing a busy link queues behind the first transfer.
        let second = f.transfer(0.0, 0, 1, 1000);
        assert!(second > 20.0, "expected queueing, got {second}");
    }

    #[test]
    fn chunked_bulk_matches_one_contiguous_transfer() {
        let mut f = GpuFabric::new(&cfg(2, Topology::FullyConnected));
        let bytes = 3 * CHUNK_BYTES + 12345;
        let done = f.transfer(0.0, 0, 1, bytes);
        let service = bytes as f64 / 100.0;
        assert!((done - (service + 10.0)).abs() < 1e-6);
        assert_eq!(f.stats().link_bytes, bytes);
        assert_eq!(f.stats().transfers, 1);
    }

    #[test]
    fn utilization_and_queueing_surface_in_stats() {
        let mut f = GpuFabric::new(&cfg(2, Topology::Ring));
        f.transfer(0.0, 0, 1, 1000);
        f.transfer(0.0, 0, 1, 1000);
        let s = f.stats();
        assert!(s.queue_cycles > 0.0);
        assert!(f.max_utilization(20.0) > 0.9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_gpu() {
        let mut f = GpuFabric::new(&cfg(2, Topology::Ring));
        let _ = f.transfer(0.0, 0, 2, 1);
    }
}
