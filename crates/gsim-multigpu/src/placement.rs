//! Page-granularity data placement across GPUs.

use std::collections::HashMap;

use crate::config::Placement;

/// How one kernel's touched pages split between the executing GPU and
/// remote owners.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageShare {
    /// Pages the kernel touched in total.
    pub touched: u64,
    /// Pages owned by the executing GPU (or replicated locally).
    pub local: u64,
    /// `(owner_gpu, pages)` for remotely owned pages, ascending by owner.
    pub remote: Vec<(u32, u64)>,
}

/// Per-tenant page-ownership map.
///
/// Tenants address disjoint page spaces (their footprints are private), so
/// each tenant carries its own map. A kernel with a footprint of `F` lines
/// touches pages `0 .. ceil(F / page_lines)` of its tenant's space —
/// workload patterns index lines `[0, F)`, so page sets of a tenant's
/// kernels are nested prefixes and data flows between dependent kernels
/// through shared pages.
#[derive(Debug, Clone)]
pub struct PageMap {
    policy: Placement,
    n_gpus: u32,
    /// Offset rotating the interleave start per tenant so tenants don't
    /// all camp on GPU 0.
    offset: u32,
    /// First-touch owners (also the home for read-replication writes).
    owners: HashMap<u64, u32>,
}

impl PageMap {
    /// Creates the map for one tenant.
    pub fn new(policy: Placement, n_gpus: u32, tenant_idx: u32) -> Self {
        assert!(n_gpus > 0, "system needs at least one GPU");
        Self {
            policy,
            n_gpus,
            offset: tenant_idx % n_gpus,
            owners: HashMap::new(),
        }
    }

    /// Records a kernel running on `gpu` touching pages `0 .. pages` and
    /// returns how the pages split between local and remote owners.
    /// First-touch policies assign owners to still-unowned pages here.
    pub fn touch(&mut self, pages: u64, gpu: u32) -> PageShare {
        assert!(gpu < self.n_gpus, "GPU index out of range");
        let mut by_owner: HashMap<u32, u64> = HashMap::new();
        let mut local = 0u64;
        for page in 0..pages {
            let owner = match self.policy {
                Placement::Interleave => (page + u64::from(self.offset)) as u32 % self.n_gpus,
                Placement::FirstTouch | Placement::ReadReplicate => {
                    *self.owners.entry(page).or_insert(gpu)
                }
            };
            if owner == gpu {
                local += 1;
            } else {
                *by_owner.entry(owner).or_insert(0) += 1;
            }
        }
        let mut remote: Vec<(u32, u64)> = by_owner.into_iter().collect();
        remote.sort_unstable();
        PageShare {
            touched: pages,
            local,
            remote,
        }
    }

    /// Fraction of a kernel's *traffic* that crosses the fabric for a
    /// given page share: the remote page fraction, further scaled by the
    /// store share under read replication (reads hit local replicas).
    pub fn remote_traffic_fraction(&self, share: &PageShare, write_fraction: f64) -> f64 {
        if share.touched == 0 {
            return 0.0;
        }
        let remote_pages: u64 = share.remote.iter().map(|&(_, p)| p).sum();
        let page_frac = remote_pages as f64 / share.touched as f64;
        match self.policy {
            Placement::ReadReplicate => page_frac * write_fraction.clamp(0.0, 1.0),
            _ => page_frac,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleave_spreads_pages_evenly() {
        let mut m = PageMap::new(Placement::Interleave, 4, 0);
        let share = m.touch(100, 0);
        assert_eq!(share.touched, 100);
        assert_eq!(share.local, 25);
        assert_eq!(share.remote.iter().map(|&(_, p)| p).sum::<u64>(), 75);
        assert_eq!(share.remote.len(), 3);
        // The tenant offset rotates ownership: with a page count that is
        // not a multiple of the GPU count, the per-owner split shifts.
        let mut m0 = PageMap::new(Placement::Interleave, 4, 0);
        let mut m1 = PageMap::new(Placement::Interleave, 4, 1);
        let s0 = m0.touch(5, 0);
        let s1 = m1.touch(5, 0);
        assert_eq!(s0.local, 2); // pages 0 and 4
        assert_eq!(s1.local, 1); // page 3 only
        assert_ne!(s0.remote, s1.remote);
    }

    #[test]
    fn first_touch_pins_pages_to_the_first_gpu() {
        let mut m = PageMap::new(Placement::FirstTouch, 4, 0);
        let first = m.touch(50, 2);
        assert_eq!(first.local, 50);
        assert!(first.remote.is_empty());
        // A later kernel on another GPU finds everything remote at GPU 2,
        // plus newly touched pages local to itself.
        let second = m.touch(80, 1);
        assert_eq!(second.local, 30);
        assert_eq!(second.remote, vec![(2, 50)]);
    }

    #[test]
    fn replication_charges_only_the_store_share() {
        let mut m = PageMap::new(Placement::ReadReplicate, 2, 0);
        m.touch(40, 0);
        let share = m.touch(40, 1); // all 40 pages owned by GPU 0
        assert_eq!(share.remote, vec![(0, 40)]);
        let f = m.remote_traffic_fraction(&share, 0.25);
        assert!((f - 0.25).abs() < 1e-12);
        // First-touch charges the full remote fraction instead.
        let mut ft = PageMap::new(Placement::FirstTouch, 2, 0);
        ft.touch(40, 0);
        let s = ft.touch(40, 1);
        assert_eq!(ft.remote_traffic_fraction(&s, 0.25), 1.0);
    }

    #[test]
    fn empty_touch_is_harmless() {
        let mut m = PageMap::new(Placement::Interleave, 2, 0);
        let share = m.touch(0, 0);
        assert_eq!(share.touched, 0);
        assert_eq!(m.remote_traffic_fraction(&share, 1.0), 0.0);
    }

    #[test]
    fn single_gpu_is_always_local() {
        let mut m = PageMap::new(Placement::Interleave, 1, 0);
        let share = m.touch(64, 0);
        assert_eq!(share.local, 64);
        assert!(share.remote.is_empty());
    }
}
