//! The multi-GPU system simulator: multi-tenant DAG scheduling over
//! per-GPU timing simulations and the inter-GPU fabric.

use std::time::Instant;

use gsim_sim::{SimStats, Simulator};
use gsim_trace::{DagParams, DagWorkload, Workload};

use crate::config::{Placement, SystemConfig};
use crate::fabric::{FabricStats, GpuFabric};
use crate::placement::PageMap;

/// One tenant: a named kernel-dependency DAG workload. Tenants address
/// disjoint data, so sharing between tenants is purely contention —
/// kernel slots and fabric bandwidth.
#[derive(Debug, Clone, PartialEq)]
pub struct Tenant {
    name: String,
    dag: DagWorkload,
}

impl Tenant {
    /// Wraps an explicit DAG workload.
    pub fn new(name: impl Into<String>, dag: DagWorkload) -> Self {
        Self {
            name: name.into(),
            dag,
        }
    }

    /// Generates a deterministic random tenant (see
    /// [`DagWorkload::generate`]).
    pub fn generate(name: impl Into<String>, seed: u64, params: &DagParams) -> Self {
        let name = name.into();
        let dag = DagWorkload::generate(name.clone(), seed, params);
        Self { name, dag }
    }

    /// Tenant name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The tenant's workload DAG.
    pub fn dag(&self) -> &DagWorkload {
        &self.dag
    }
}

/// Where and when one kernel ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelSpan {
    /// Tenant index.
    pub tenant: u32,
    /// Kernel index within the tenant's DAG.
    pub kernel: u32,
    /// GPU the kernel ran on.
    pub gpu: u32,
    /// Kernel slot within the GPU.
    pub slot: u32,
    /// System cycle the kernel started.
    pub start: u64,
    /// System cycle the kernel (and its remote traffic) completed.
    pub end: u64,
}

/// The output of a system run: aggregate [`SimStats`] under the engine's
/// determinism contract, plus system-level detail.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemReport {
    /// Aggregate statistics. Bit-identical across `sim_threads` — see
    /// [`SimStats::assert_deterministic_eq`].
    pub stats: SimStats,
    /// Inter-GPU fabric statistics.
    pub fabric: FabricStats,
    /// Every kernel execution, in dispatch order.
    pub spans: Vec<KernelSpan>,
    /// Per-GPU busy cycles (summed over the GPU's kernel slots).
    pub gpu_busy_cycles: Vec<u64>,
}

/// A configured multi-GPU simulation over a set of tenants.
///
/// Scheduling model (DESIGN.md §16): each GPU exposes `sharing` identical
/// kernel slots (MIG-style static partitions). A greedy deterministic list
/// scheduler repeatedly takes the ready kernel with the smallest
/// `(ready_time, tenant, kernel)` and places it on the slot with the
/// smallest `(start_time, gpu, slot)`. Kernel timing comes from a
/// single-kernel run of the existing per-GPU engine on the slot's
/// configuration; page placement then decides how much of the kernel's
/// DRAM traffic crosses the fabric, and the kernel completes when both
/// its compute and its remote transfers have finished.
///
/// Every step is host-thread-free arithmetic over per-kernel simulations
/// that are themselves `sim_threads`-invariant, so the aggregate
/// [`SimStats`] inherit the engine's determinism contract by construction.
#[derive(Debug, Clone)]
pub struct SystemSim<'a> {
    cfg: SystemConfig,
    tenants: &'a [Tenant],
}

impl<'a> SystemSim<'a> {
    /// Creates a system simulation.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`SystemConfig::validate`]) or `tenants` is empty.
    pub fn new(cfg: SystemConfig, tenants: &'a [Tenant]) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid system config: {e}");
        }
        assert!(!tenants.is_empty(), "system needs at least one tenant");
        Self { cfg, tenants }
    }

    /// Runs the system to completion.
    pub fn run(self) -> SystemReport {
        let wall_start = Instant::now();
        let cfg = &self.cfg;
        let slot_cfg = cfg.slot_config();
        let slot_sms = u64::from(slot_cfg.n_sms);
        let n_slots = (cfg.n_gpus * cfg.sharing) as usize;
        // Slot i serves GPU i / sharing; index order is (gpu, slot).
        let mut slot_free = vec![0u64; n_slots];
        let mut fabric = GpuFabric::new(cfg);
        let mut page_maps: Vec<PageMap> = (0..self.tenants.len())
            .map(|ti| PageMap::new(cfg.placement, cfg.n_gpus, ti as u32))
            .collect();

        let mut ends: Vec<Vec<Option<u64>>> = self
            .tenants
            .iter()
            .map(|t| vec![None; t.dag().n_kernels() as usize])
            .collect();
        let mut kernel_stats: Vec<Vec<Option<SimStats>>> = self
            .tenants
            .iter()
            .map(|t| vec![None; t.dag().n_kernels() as usize])
            .collect();
        let total_kernels: usize = ends.iter().map(Vec::len).sum();
        let mut spans: Vec<KernelSpan> = Vec::with_capacity(total_kernels);

        while spans.len() < total_kernels {
            // The ready kernel with the smallest (ready_time, tenant, kernel).
            let mut best: Option<(u64, usize, u32)> = None;
            for (ti, t) in self.tenants.iter().enumerate() {
                for k in 0..t.dag().n_kernels() {
                    if ends[ti][k as usize].is_some() {
                        continue;
                    }
                    let mut ready = 0u64;
                    let mut all_done = true;
                    for &p in t.dag().deps_of(k) {
                        match ends[ti][p as usize] {
                            Some(e) => ready = ready.max(e),
                            None => {
                                all_done = false;
                                break;
                            }
                        }
                    }
                    if all_done && best.is_none_or(|b| (ready, ti, k) < b) {
                        best = Some((ready, ti, k));
                    }
                }
            }
            let (ready, ti, k) = best.expect("a DAG always has a ready kernel");

            // The slot with the smallest (start, gpu, slot).
            let (si, start) = slot_free
                .iter()
                .enumerate()
                .map(|(i, &free)| (i, free.max(ready)))
                .min_by_key(|&(i, s)| (s, i))
                .expect("at least one slot");
            let gpu = si as u32 / cfg.sharing;

            let tenant = &self.tenants[ti];
            let kernel = tenant.dag().workload().kernels()[k as usize].clone();
            let seed = mix(tenant.dag().workload().seed(), ti as u64, u64::from(k));
            let solo = Workload::new(kernel.name().to_string(), seed, vec![kernel.clone()]);
            let kstats = Simulator::new(slot_cfg.clone(), &solo).run();

            let pages = kernel.spec().footprint_lines().div_ceil(cfg.page_lines);
            let share = page_maps[ti].touch(pages, gpu);
            let traffic_scale = match cfg.placement {
                Placement::ReadReplicate => kernel.spec().write_fraction().clamp(0.0, 1.0),
                _ => 1.0,
            };
            let mut finish = start + kstats.cycles;
            if share.touched > 0 {
                for &(owner, pgs) in &share.remote {
                    let bytes = (kstats.dram_bytes as f64
                        * (pgs as f64 / share.touched as f64)
                        * traffic_scale) as u64;
                    let arrival = fabric.transfer(start as f64, gpu, owner, bytes);
                    finish = finish.max(arrival.ceil() as u64);
                }
            }

            ends[ti][k as usize] = Some(finish);
            kernel_stats[ti][k as usize] = Some(kstats);
            slot_free[si] = finish;
            spans.push(KernelSpan {
                tenant: ti as u32,
                kernel: k,
                gpu,
                slot: si as u32 % cfg.sharing,
                start,
                end: finish,
            });
        }

        let makespan = spans.iter().map(|s| s.end).max().unwrap_or(0);
        let mut stats = SimStats {
            cycles: makespan,
            ..SimStats::default()
        };
        let mut gpu_busy = vec![0u64; cfg.n_gpus as usize];
        let mut busy_sm_cycles = 0u64;
        for s in &spans {
            gpu_busy[s.gpu as usize] += s.end - s.start;
            busy_sm_cycles += (s.end - s.start) * slot_sms;
        }
        for per_tenant in &kernel_stats {
            for ks in per_tenant.iter().flatten() {
                stats.warp_instrs += ks.warp_instrs;
                stats.thread_instrs += ks.thread_instrs;
                stats.llc_accesses += ks.llc_accesses;
                stats.llc_misses += ks.llc_misses;
                stats.l1_accesses += ks.l1_accesses;
                stats.l1_misses += ks.l1_misses;
                stats.dram_bytes += ks.dram_bytes;
                stats.mem_stall_sm_cycles += ks.mem_stall_sm_cycles;
                stats.ctas_executed += ks.ctas_executed;
                stats.kernels_executed += ks.kernels_executed;
            }
        }
        stats.total_sm_cycles = makespan * cfg.total_sms();
        stats.idle_sm_cycles = stats.total_sm_cycles.saturating_sub(busy_sm_cycles);
        // kernel_cycles in (tenant, kernel) order — well defined because
        // each (tenant, kernel) runs exactly once.
        for (ti, per_tenant) in ends.iter().enumerate() {
            for (k, e) in per_tenant.iter().enumerate() {
                let end = e.expect("all kernels scheduled");
                let start = spans
                    .iter()
                    .find(|s| s.tenant == ti as u32 && s.kernel == k as u32)
                    .expect("span recorded")
                    .start;
                stats.kernel_cycles.push(end - start);
            }
        }
        // Instruction milestones over the completion timeline.
        let mut timeline: Vec<(u64, u32, u32, u64)> = spans
            .iter()
            .map(|s| {
                let wi = kernel_stats[s.tenant as usize][s.kernel as usize]
                    .as_ref()
                    .expect("stats recorded")
                    .warp_instrs;
                (s.end, s.tenant, s.kernel, wi)
            })
            .collect();
        timeline.sort_unstable();
        let total_wi: u64 = timeline.iter().map(|&(_, _, _, wi)| wi).sum();
        let mut cum = 0u64;
        let mut cum_at_10 = 0u64;
        for &(end, _, _, wi) in &timeline {
            cum += wi;
            if stats.cycle_at_10pct == 0 && cum * 10 >= total_wi {
                stats.cycle_at_10pct = end;
                cum_at_10 = cum;
            }
            if stats.cycle_at_90pct == 0 && cum * 10 >= total_wi * 9 {
                stats.cycle_at_90pct = end;
                stats.warp_instrs_window = cum - cum_at_10;
            }
        }
        stats.sim_wall_seconds = wall_start.elapsed().as_secs_f64();

        SystemReport {
            stats,
            fabric: fabric.stats(),
            spans,
            gpu_busy_cycles: gpu_busy,
        }
    }
}

/// SplitMix64-style mixing so each (tenant, kernel) solo run gets a
/// distinct deterministic stream seed.
fn mix(seed: u64, tenant: u64, kernel: u64) -> u64 {
    let mut z = seed
        .wrapping_add(tenant.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(kernel.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Topology;
    use gsim_trace::MemScale;

    fn small_params() -> DagParams {
        DagParams {
            n_kernels: 4,
            max_ctas: 24,
            min_footprint_lines: 1 << 10,
            max_footprint_lines: 1 << 12,
            ..DagParams::default()
        }
    }

    fn base_cfg(n_gpus: u32) -> SystemConfig {
        SystemConfig::paper_node(n_gpus, 8, MemScale::default())
    }

    fn tenants(n: usize) -> Vec<Tenant> {
        (0..n)
            .map(|i| Tenant::generate(format!("tenant{i}"), 100 + i as u64, &small_params()))
            .collect()
    }

    #[test]
    fn dependencies_are_respected() {
        let ts = tenants(2);
        let report = SystemSim::new(base_cfg(2), &ts).run();
        for s in &report.spans {
            let dag = ts[s.tenant as usize].dag();
            for &p in dag.deps_of(s.kernel) {
                let pred = report
                    .spans
                    .iter()
                    .find(|o| o.tenant == s.tenant && o.kernel == p)
                    .expect("predecessor ran");
                assert!(
                    pred.end <= s.start,
                    "kernel {}:{} started at {} before dep {} ended at {}",
                    s.tenant,
                    s.kernel,
                    s.start,
                    p,
                    pred.end
                );
            }
        }
        assert_eq!(report.spans.len(), 8);
        assert_eq!(report.stats.kernel_cycles.len(), 8);
        assert_eq!(report.stats.kernels_executed, 8);
    }

    #[test]
    fn more_gpus_do_not_slow_independent_tenants() {
        let ts = tenants(4);
        let one = SystemSim::new(base_cfg(1), &ts).run();
        let four = SystemSim::new(base_cfg(4), &ts).run();
        assert!(
            four.stats.cycles < one.stats.cycles,
            "4 GPUs {} vs 1 GPU {}",
            four.stats.cycles,
            one.stats.cycles
        );
        // Same work was executed either way.
        assert_eq!(four.stats.thread_instrs, one.stats.thread_instrs);
        assert_eq!(four.stats.ctas_executed, one.stats.ctas_executed);
    }

    #[test]
    fn single_gpu_moves_no_fabric_bytes() {
        let ts = tenants(2);
        let report = SystemSim::new(base_cfg(1), &ts).run();
        assert_eq!(report.fabric.link_bytes, 0);
        assert_eq!(report.fabric.transfers, 0);
    }

    #[test]
    fn interleave_crosses_the_fabric_and_replication_crosses_less() {
        let ts = tenants(2);
        let mut cfg = base_cfg(4);
        cfg.placement = Placement::Interleave;
        let inter = SystemSim::new(cfg.clone(), &ts).run();
        assert!(inter.fabric.link_bytes > 0, "interleave must go remote");
        cfg.placement = Placement::ReadReplicate;
        let repl = SystemSim::new(cfg, &ts).run();
        assert!(
            repl.fabric.link_bytes < inter.fabric.link_bytes,
            "replication {} should move fewer bytes than interleave {}",
            repl.fabric.link_bytes,
            inter.fabric.link_bytes
        );
    }

    #[test]
    fn sharing_splits_gpus_into_slots() {
        let ts = tenants(2);
        let mut cfg = base_cfg(2);
        cfg.sharing = 2;
        let report = SystemSim::new(cfg, &ts).run();
        assert!(report.spans.iter().any(|s| s.slot == 1), "second slot used");
        assert_eq!(report.stats.kernels_executed, 8);
    }

    #[test]
    fn ring_and_full_topologies_both_run() {
        let ts = tenants(2);
        for topo in [Topology::Ring, Topology::FullyConnected] {
            let mut cfg = base_cfg(4);
            cfg.topology = topo;
            let report = SystemSim::new(cfg, &ts).run();
            assert!(report.stats.cycles > 0);
            assert!(report.stats.sustained_ipc() > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "invalid system config")]
    fn rejects_invalid_config() {
        let ts = tenants(1);
        let _ = SystemSim::new(base_cfg(0), &ts);
    }

    #[test]
    #[should_panic(expected = "at least one tenant")]
    fn rejects_empty_tenants() {
        let _ = SystemSim::new(base_cfg(1), &[]);
    }
}
