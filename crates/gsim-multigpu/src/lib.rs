//! Multi-GPU system model for scale-model simulation.
//!
//! The paper validates scale-model prediction within one GPU package; this
//! crate extends the machine model to systems of 2–16 GPUs in the
//! MGSim/MGMark direction (ROADMAP item 4): each GPU is a full
//! [`gsim_sim::GpuConfig`] simulated by the existing engine, and the
//! system layer adds
//!
//! * an **inter-GPU fabric** ([`GpuFabric`]) built from
//!   [`gsim_noc::BandwidthLink`]s in ring or fully-connected topologies;
//! * **page-granularity placement** ([`PageMap`]) — first-touch,
//!   round-robin interleave, or read replication — deciding which DRAM
//!   traffic crosses the fabric;
//! * a **multi-tenant scheduler** ([`SystemSim`]) admitting concurrent
//!   kernels from per-tenant dependency DAGs
//!   ([`gsim_trace::DagWorkload`]) onto MIG-style kernel slots;
//! * the **scale-model validation experiment**
//!   ([`validate_scaling`]): the five predictors fitted on small GPU
//!   counts forecast larger systems, ground-truthed by actual runs.
//!
//! Determinism contract: [`SystemSim::run`] produces aggregate
//! [`gsim_sim::SimStats`] that are bit-identical across
//! `GpuConfig::sim_threads`, because per-kernel simulations are
//! thread-invariant (the engine contract of DESIGN.md §10/§15) and every
//! system-level step is host-thread-free arithmetic in a fixed order.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod fabric;
mod placement;
mod system;
mod validate;

pub use config::{Placement, SystemConfig, Topology};
pub use fabric::{FabricStats, GpuFabric};
pub use placement::{PageMap, PageShare};
pub use system::{KernelSpan, SystemReport, SystemSim, Tenant};
pub use validate::{validate_scaling, MethodResult, TargetResult, ValidationReport};

use gsim_sim::GpuConfig;

/// First-order fraction of a kernel's DRAM traffic that crosses the
/// fabric under `placement` on `n_gpus` GPUs: the remote page fraction
/// `(n-1)/n`, tempered by locality for first-touch and by the store share
/// for read replication.
pub fn remote_traffic_share(placement: Placement, n_gpus: u32, write_fraction: f64) -> f64 {
    if n_gpus <= 1 {
        return 0.0;
    }
    let remote_pages = f64::from(n_gpus - 1) / f64::from(n_gpus);
    match placement {
        Placement::Interleave => remote_pages,
        // First touch keeps a tenant's pages on the GPUs its kernels
        // actually run on; only migration between slots goes remote.
        Placement::FirstTouch => 0.25 * remote_pages,
        Placement::ReadReplicate => remote_pages * write_fraction.clamp(0.0, 1.0),
    }
}

/// First-order per-GPU efficiency multiplier in `(0, 1]` for scaling a
/// single-GPU IPC forecast to `n_gpus` GPUs, used by the serve fast path
/// (DESIGN.md §16).
///
/// Models only the fabric-bandwidth mechanism: the memory-stalled
/// fraction `f_mem` of the traffic competes for link bandwidth
/// `link_gbs` (divided by the mean hop count on a ring) against the
/// per-GPU DRAM bandwidth it would otherwise enjoy, so
/// `eff = 1 / (1 + f_mem · share · dram_gbs / eff_link_gbs)`.
pub fn scaling_efficiency(
    n_gpus: u32,
    placement: Placement,
    topology: Topology,
    gpu: &GpuConfig,
    link_gbs: f64,
    f_mem: f64,
    write_fraction: f64,
) -> f64 {
    if n_gpus <= 1 {
        return 1.0;
    }
    let share = remote_traffic_share(placement, n_gpus, write_fraction);
    let mean_hops = match topology {
        Topology::FullyConnected => 1.0,
        Topology::Ring => (f64::from(n_gpus) / 4.0).max(1.0),
    };
    let pressure = f_mem.clamp(0.0, 1.0) * share * gpu.dram_gbs_total() / (link_gbs / mean_hops);
    1.0 / (1.0 + pressure)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsim_trace::MemScale;

    #[test]
    fn remote_share_orders_policies() {
        let inter = remote_traffic_share(Placement::Interleave, 4, 0.2);
        let ft = remote_traffic_share(Placement::FirstTouch, 4, 0.2);
        let repl = remote_traffic_share(Placement::ReadReplicate, 4, 0.2);
        assert!(inter > ft && ft > repl, "{inter} > {ft} > {repl}");
        assert_eq!(remote_traffic_share(Placement::Interleave, 1, 0.2), 0.0);
    }

    #[test]
    fn efficiency_is_one_for_single_gpu_and_degrades_with_scale() {
        let gpu = GpuConfig::paper_target(16, MemScale::default());
        let e1 = scaling_efficiency(
            1,
            Placement::Interleave,
            Topology::Ring,
            &gpu,
            300.0,
            0.5,
            0.2,
        );
        assert_eq!(e1, 1.0);
        let e4 = scaling_efficiency(
            4,
            Placement::Interleave,
            Topology::Ring,
            &gpu,
            300.0,
            0.5,
            0.2,
        );
        let e8 = scaling_efficiency(
            8,
            Placement::Interleave,
            Topology::Ring,
            &gpu,
            300.0,
            0.5,
            0.2,
        );
        assert!(e4 < 1.0 && e8 < e4, "1.0 > {e4} > {e8}");
        // A fully connected fabric beats the ring at the same size.
        let full = scaling_efficiency(
            8,
            Placement::Interleave,
            Topology::FullyConnected,
            &gpu,
            300.0,
            0.5,
            0.2,
        );
        assert!(full > e8);
        // Compute-bound work (f_mem 0) is unaffected.
        let compute = scaling_efficiency(
            8,
            Placement::Interleave,
            Topology::Ring,
            &gpu,
            300.0,
            0.0,
            0.2,
        );
        assert_eq!(compute, 1.0);
    }
}
