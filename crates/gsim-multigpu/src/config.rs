//! Multi-GPU system configuration.

use gsim_sim::GpuConfig;
use gsim_trace::MemScale;

/// Inter-GPU link topology (DESIGN.md §16).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Bidirectional ring: each GPU has one egress link per direction;
    /// remote traffic takes the shorter arc and charges every link it
    /// crosses, so bisection pressure grows with system size.
    Ring,
    /// Fully connected: one dedicated link per ordered GPU pair, a single
    /// hop for any remote access (NVSwitch-style).
    FullyConnected,
}

impl Topology {
    /// Parses the CLI/serve spelling (`ring` / `full`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "ring" => Some(Self::Ring),
            "full" | "fully-connected" => Some(Self::FullyConnected),
            _ => None,
        }
    }

    /// Canonical spelling, the inverse of [`Topology::parse`].
    pub fn as_str(&self) -> &'static str {
        match self {
            Self::Ring => "ring",
            Self::FullyConnected => "full",
        }
    }
}

/// Page-granularity data placement policy (DESIGN.md §16).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// A page is owned by the GPU whose kernel touches it first; later
    /// accesses from other GPUs go over the fabric.
    FirstTouch,
    /// Pages are round-robin interleaved across GPUs, so a fraction
    /// `(n-1)/n` of every kernel's traffic is remote.
    Interleave,
    /// Read replication: pages are owned first-touch, reads are served
    /// from a local replica everywhere, and only the store share of the
    /// traffic crosses the fabric to the owner.
    ReadReplicate,
}

impl Placement {
    /// Parses the CLI/serve spelling
    /// (`first-touch` / `interleave` / `replicate`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "first-touch" => Some(Self::FirstTouch),
            "interleave" => Some(Self::Interleave),
            "replicate" | "read-replicate" => Some(Self::ReadReplicate),
            _ => None,
        }
    }

    /// Canonical spelling, the inverse of [`Placement::parse`].
    pub fn as_str(&self) -> &'static str {
        match self {
            Self::FirstTouch => "first-touch",
            Self::Interleave => "interleave",
            Self::ReadReplicate => "replicate",
        }
    }
}

/// A system of `n_gpus` identical GPUs joined by an inter-GPU fabric.
///
/// Each GPU is a full [`GpuConfig`] simulated by the existing engine; the
/// system layer adds the link topology, the page placement policy that
/// decides which LLC-miss traffic leaves the package, and MIG-style static
/// sharing that splits each GPU into `sharing` equal kernel slots for
/// multi-tenant runs.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Number of GPUs in the system.
    pub n_gpus: u32,
    /// Per-GPU configuration (identical across the system).
    pub gpu: GpuConfig,
    /// Inter-GPU link topology.
    pub topology: Topology,
    /// Per-link bandwidth in GB/s (per direction).
    pub link_gbs: f64,
    /// Fixed per-hop link latency in cycles.
    pub link_latency: u32,
    /// Page placement policy.
    pub placement: Placement,
    /// Page size in 128 B cache lines.
    pub page_lines: u64,
    /// Kernel slots per GPU (MIG-style static partition): each slot gets
    /// `n_sms / sharing` SMs and a proportional share of the shared
    /// resources. Must divide `gpu.n_sms`.
    pub sharing: u32,
}

impl SystemConfig {
    /// A paper-style multi-GPU node: `n_gpus` proportionally scaled
    /// per-GPU configs of `sms_per_gpu` SMs each, joined by 300 GB/s
    /// NVLink-class links (ring topology, 400-cycle hop latency), 2 KiB
    /// pages, interleaved placement, one kernel slot per GPU.
    pub fn paper_node(n_gpus: u32, sms_per_gpu: u32, scale: MemScale) -> Self {
        Self {
            n_gpus,
            gpu: GpuConfig::paper_target(sms_per_gpu, scale),
            topology: Topology::Ring,
            link_gbs: 300.0,
            link_latency: 400,
            placement: Placement::Interleave,
            page_lines: 16,
            sharing: 1,
        }
    }

    /// Validates the configuration, returning a human-readable error.
    ///
    /// # Errors
    ///
    /// Returns `Err` if any field is out of range (no GPUs, non-positive
    /// link bandwidth, empty pages, or a sharing factor that does not
    /// divide the SM count).
    pub fn validate(&self) -> Result<(), String> {
        if self.n_gpus == 0 {
            return Err("system needs at least one GPU".into());
        }
        if !(self.link_gbs > 0.0 && self.link_gbs.is_finite()) {
            return Err(format!(
                "link bandwidth must be positive and finite, got {}",
                self.link_gbs
            ));
        }
        if self.page_lines == 0 {
            return Err("page size must be at least one line".into());
        }
        if self.sharing == 0 {
            return Err("sharing must be at least 1".into());
        }
        if !self.gpu.n_sms.is_multiple_of(self.sharing) {
            return Err(format!(
                "sharing {} does not divide {} SMs per GPU",
                self.sharing, self.gpu.n_sms
            ));
        }
        Ok(())
    }

    /// The per-slot GPU configuration: the full GPU for `sharing == 1`,
    /// else a proportional `n_sms / sharing` partition.
    pub fn slot_config(&self) -> GpuConfig {
        if self.sharing == 1 {
            self.gpu.clone()
        } else {
            self.gpu.scaled_to(self.gpu.n_sms / self.sharing)
        }
    }

    /// Total SMs across the system.
    pub fn total_sms(&self) -> u64 {
        u64::from(self.n_gpus) * u64::from(self.gpu.n_sms)
    }

    /// Derives the same system at a different GPU count (the multi-GPU
    /// analogue of [`GpuConfig::scaled_to`]): everything per-GPU is
    /// unchanged, only the fabric grows.
    pub fn with_n_gpus(&self, n_gpus: u32) -> Self {
        Self {
            n_gpus,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for t in [Topology::Ring, Topology::FullyConnected] {
            assert_eq!(Topology::parse(t.as_str()), Some(t));
        }
        for p in [
            Placement::FirstTouch,
            Placement::Interleave,
            Placement::ReadReplicate,
        ] {
            assert_eq!(Placement::parse(p.as_str()), Some(p));
        }
        assert_eq!(Topology::parse("mesh"), None);
        assert_eq!(Placement::parse("numa"), None);
    }

    #[test]
    fn paper_node_validates() {
        let cfg = SystemConfig::paper_node(4, 16, MemScale::default());
        cfg.validate().unwrap();
        assert_eq!(cfg.total_sms(), 64);
        assert_eq!(cfg.with_n_gpus(8).total_sms(), 128);
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        let ok = SystemConfig::paper_node(2, 16, MemScale::default());
        assert!(ok.with_n_gpus(0).validate().is_err());
        let mut bad = ok.clone();
        bad.link_gbs = 0.0;
        assert!(bad.validate().is_err());
        let mut bad = ok.clone();
        bad.page_lines = 0;
        assert!(bad.validate().is_err());
        let mut bad = ok.clone();
        bad.sharing = 3; // does not divide 16
        assert!(bad.validate().is_err());
        bad.sharing = 0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn slot_config_partitions_the_gpu() {
        let mut cfg = SystemConfig::paper_node(2, 16, MemScale::default());
        assert_eq!(cfg.slot_config(), cfg.gpu);
        cfg.sharing = 2;
        let slot = cfg.slot_config();
        assert_eq!(slot.n_sms, 8);
        assert_eq!(slot.llc_bytes_total, cfg.gpu.llc_bytes_total / 2);
    }
}
