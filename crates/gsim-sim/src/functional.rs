//! Functional simulation for miss-rate-curve collection.
//!
//! Section V.A: miss-rate curves must come from *functional* simulation —
//! a replay of the workload's address stream — because that is orders of
//! magnitude faster than detailed timing simulation, and the curve is a
//! one-time cost reused for every target-system prediction.
//!
//! Like the GPU cache model of Nugteren et al. [49], the collector models
//! the thread-level parallelism that shapes GPU reuse distances: resident
//! CTAs are scheduled round-robin onto SMs, all resident warps advance one
//! operation per round, loads filter through their SM's L1, and the
//! post-L1 stream feeds one set-associative sliced LLC per candidate
//! capacity ([`gsim_mem::mrc::CapacityReplay`]).

use gsim_mem::mrc::{CapacityReplay, MissRateCurve};
use gsim_mem::{Cache, CacheGeometry};
use gsim_trace::{MemSpace, Op, WarpStream, WorkloadModel, THREADS_PER_WARP};

use crate::config::GpuConfig;

/// Functional replay of a workload through L1s and multi-capacity LLCs.
#[derive(Debug)]
pub struct FunctionalReplay {
    l1_geom: CacheGeometry,
    n_sms: u32,
    replay: CapacityReplay,
    thread_instrs: u64,
    mem_thread_instrs: u64,
    line_accesses: u64,
    llc_accesses: u64,
}

impl FunctionalReplay {
    /// Creates a replay with LLC candidates `(model_bytes, slices)` and the
    /// L1/occupancy parameters of `cfg`; the interleaving emulates
    /// `cfg.n_sms` SMs.
    pub fn new(cfg: &GpuConfig, capacities: &[(u64, u32)]) -> Self {
        Self {
            l1_geom: CacheGeometry::new(cfg.l1_bytes, cfg.l1_ways, cfg.line_bytes),
            n_sms: cfg.n_sms,
            replay: CapacityReplay::new(capacities, cfg.llc_ways, cfg.line_bytes),
            thread_instrs: 0,
            mem_thread_instrs: 0,
            line_accesses: 0,
            llc_accesses: 0,
        }
    }

    /// Replays the whole workload (synthetic or trace-driven). May be
    /// called once.
    pub fn run<W: WorkloadModel>(&mut self, wl: &W, ctas_per_sm_of: impl Fn(u32) -> u32) {
        for kidx in 0..wl.n_kernels() {
            let (n_ctas, threads_per_cta) = wl.grid(kidx);
            let warps_per_cta = wl.warps_per_cta(kidx);
            let max_ctas = ctas_per_sm_of(threads_per_cta).max(1);
            let mut next_cta: u32 = 0;
            // Per-SM resident warp streams (flattened CTA slots).
            let mut resident: Vec<Vec<(u32, W::Stream)>> =
                (0..self.n_sms).map(|_| Vec::new()).collect();
            let mut cta_live: Vec<u32> = vec![0; n_ctas as usize];
            let mut l1s: Vec<Cache> = (0..self.n_sms).map(|_| Cache::new(self.l1_geom)).collect();
            // Initial fill.
            for slot in resident.iter_mut() {
                while slot.len() < (max_ctas * warps_per_cta) as usize && next_cta < n_ctas {
                    let cta = next_cta;
                    next_cta += 1;
                    cta_live[cta as usize] = warps_per_cta;
                    for w in 0..warps_per_cta {
                        slot.push((cta, wl.warp_stream(kidx, cta, w)));
                    }
                }
            }
            // Round-robin advance: one op per resident warp per round.
            let mut live = true;
            while live {
                live = false;
                for sm in 0..self.n_sms as usize {
                    let mut i = 0;
                    while i < resident[sm].len() {
                        let (cta, stream) = &mut resident[sm][i];
                        match stream.next_op() {
                            Some(op) => {
                                live = true;
                                self.thread_instrs +=
                                    op.warp_instrs() * u64::from(THREADS_PER_WARP);
                                self.process(&mut l1s[sm], &op);
                                i += 1;
                            }
                            None => {
                                let cta = *cta;
                                resident[sm].swap_remove(i);
                                cta_live[cta as usize] -= 1;
                                if cta_live[cta as usize] == 0 {
                                    // Slot freed: pull the next CTA.
                                    while resident[sm].len() < (max_ctas * warps_per_cta) as usize
                                        && next_cta < n_ctas
                                    {
                                        let c = next_cta;
                                        next_cta += 1;
                                        cta_live[c as usize] = warps_per_cta;
                                        for w in 0..warps_per_cta {
                                            resident[sm].push((c, wl.warp_stream(kidx, c, w)));
                                        }
                                        live = true;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    fn process(&mut self, l1: &mut Cache, op: &Op) {
        let Some(access) = op.mem() else { return };
        self.mem_thread_instrs += op.warp_instrs() * u64::from(THREADS_PER_WARP);
        for line in access.lines() {
            self.line_accesses += 1;
            match (op, access.space) {
                (Op::Load(_), MemSpace::Global) => {
                    if l1.access(line, false).is_miss() {
                        self.llc_accesses += 1;
                        self.replay.access(line, false);
                    }
                }
                (Op::Store(_), _) => {
                    // Write-through, no-write-allocate.
                    self.llc_accesses += 1;
                    self.replay.access(line, true);
                }
                _ => {
                    // Atomics and bypassing loads skip the L1.
                    self.llc_accesses += 1;
                    self.replay.access(line, false);
                }
            }
        }
    }

    /// Thread instructions replayed.
    pub fn thread_instrs(&self) -> u64 {
        self.thread_instrs
    }

    /// Memory thread instructions replayed (loads/stores/atomics).
    pub fn mem_thread_instrs(&self) -> u64 {
        self.mem_thread_instrs
    }

    /// Pre-L1 line accesses replayed (every line of every memory
    /// operation, before L1 filtering) — the raw traffic a compute-
    /// intensity gate wants.
    pub fn line_accesses(&self) -> u64 {
        self.line_accesses
    }

    /// Post-L1 LLC accesses replayed.
    pub fn llc_accesses(&self) -> u64 {
        self.llc_accesses
    }

    /// The miss-rate curve (model-unit capacities → MPKI).
    pub fn curve(&self) -> MissRateCurve {
        let mpki = self.replay.mpki(self.thread_instrs);
        MissRateCurve::from_pairs(
            self.replay
                .capacities()
                .iter()
                .copied()
                .zip(mpki.iter().copied()),
        )
    }
}

/// Collects a workload's miss-rate curve over the LLC capacities of
/// `configs` (typically the scale models and candidate targets), using the
/// largest config's parallelism for the interleave — the one-time cost of
/// the paper's Figure 3 workflow.
///
/// # Example
///
/// ```
/// use gsim_sim::{collect_mrc, GpuConfig};
/// use gsim_trace::{Kernel, MemScale, PatternKind, PatternSpec, Workload};
///
/// let spec = PatternSpec::new(PatternKind::GlobalSweep { passes: 3 }, 3000);
/// let wl = Workload::new("demo", 5, vec![Kernel::new("k", 96, 256, spec)]);
/// let configs: Vec<GpuConfig> = [8u32, 16, 32]
///     .iter()
///     .map(|&s| GpuConfig::paper_target(s, MemScale::default()))
///     .collect();
/// let mrc = collect_mrc(&wl, &configs);
/// assert_eq!(mrc.len(), 3);
/// ```
pub fn collect_mrc<W: WorkloadModel>(wl: &W, configs: &[GpuConfig]) -> MissRateCurve {
    assert!(!configs.is_empty(), "need at least one configuration");
    let caps: Vec<(u64, u32)> = configs
        .iter()
        .map(|c| (c.llc_bytes_total, c.llc_slices))
        .collect();
    let biggest = configs
        .iter()
        .max_by_key(|c| c.n_sms)
        .expect("non-empty configs");
    let mut replay = FunctionalReplay::new(biggest, &caps);
    replay.run(wl, |threads_per_cta| biggest.ctas_per_sm(threads_per_cta));
    replay.curve()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsim_trace::{Kernel, MemScale, PatternKind, PatternSpec, Workload};

    fn configs() -> Vec<GpuConfig> {
        [8u32, 16, 32, 64, 128]
            .iter()
            .map(|&s| GpuConfig::paper_target(s, MemScale::default()))
            .collect()
    }

    #[test]
    fn cliff_appears_where_the_working_set_fits() {
        // A 6000-line working set re-swept across kernel launches:
        // thrashes the 8/16-SM LLCs (2176/4352 lines), fits from the
        // 32-SM LLC (8704 lines) up.
        let spec =
            PatternSpec::new(PatternKind::GlobalSweep { passes: 1 }, 6_000).compute_per_mem(1.0);
        let kernel = Kernel::new("k", 192, 256, spec);
        let wl = Workload::new("cliff", 2, vec![kernel; 6]);
        let mrc = collect_mrc(&wl, &configs());
        let pts = mrc.points();
        assert_eq!(pts.len(), 5);
        // 6000 lines fit the 32-SM LLC (8704 lines) but not the 16-SM one.
        assert!(
            pts[1].mpki > 2.0 * pts[2].mpki.max(0.01),
            "expected a cliff between {} and {}",
            pts[1].mpki,
            pts[2].mpki
        );
    }

    #[test]
    fn flat_curve_for_oversized_footprint() {
        let spec =
            PatternSpec::new(PatternKind::GlobalSweep { passes: 1 }, 400_000).compute_per_mem(1.0);
        let kernel = Kernel::new("k", 768, 256, spec);
        let wl = Workload::new("flat", 3, vec![kernel; 2]);
        let mrc = collect_mrc(&wl, &configs());
        let pts = mrc.points();
        let ratio = pts[0].mpki / pts[4].mpki.max(1e-9);
        assert!(
            ratio < 1.5,
            "footprint >> LLC should give a flat curve, got ratio {ratio}"
        );
    }

    #[test]
    fn mpki_is_monotonically_non_increasing() {
        let spec = PatternSpec::new(
            PatternKind::WorkingSetMix {
                levels: vec![(0.5, 0.05), (0.3, 0.3), (0.2, 1.0)],
            },
            30_000,
        )
        .mem_ops_per_warp(40);
        let wl = Workload::new("mix", 4, vec![Kernel::new("k", 384, 256, spec)]);
        let mrc = collect_mrc(&wl, &configs());
        for w in mrc.points().windows(2) {
            assert!(
                w[1].mpki <= w[0].mpki * 1.05,
                "MPKI should not grow with capacity: {:?}",
                mrc.points()
            );
        }
    }

    #[test]
    fn traced_replay_yields_bit_identical_mrc() {
        // A trace round-trip preserves streams exactly, so the functional
        // replay must produce the same curve to the last bit — the
        // property the serve layer's trace-driven predictions rely on.
        let spec =
            PatternSpec::new(PatternKind::GlobalSweep { passes: 2 }, 3_000).compute_per_mem(1.0);
        let wl = Workload::new("t", 6, vec![Kernel::new("k", 96, 256, spec)]);
        let mut bytes = Vec::new();
        gsim_trace::write_trace(&wl, &mut bytes).expect("write");
        let traced = gsim_trace::TracedWorkload::read(&bytes[..]).expect("read");
        let cfgs = configs();
        let a = collect_mrc(&wl, &cfgs);
        let b = collect_mrc(&traced, &cfgs);
        assert_eq!(a.points().len(), b.points().len());
        for (x, y) in a.points().iter().zip(b.points()) {
            assert_eq!(x.capacity_bytes, y.capacity_bytes);
            assert_eq!(x.mpki.to_bits(), y.mpki.to_bits());
        }
    }

    #[test]
    fn replay_counts_instructions() {
        let spec = PatternSpec::new(PatternKind::Streaming, 1_000).compute_per_mem(2.0);
        let wl = Workload::new("cnt", 5, vec![Kernel::new("k", 48, 256, spec)]);
        let cfg = GpuConfig::paper_target(8, MemScale::default());
        let mut r = FunctionalReplay::new(&cfg, &[(cfg.llc_bytes_total, cfg.llc_slices)]);
        r.run(&wl, |t| cfg.ctas_per_sm(t));
        assert_eq!(r.thread_instrs(), wl.approx_thread_instrs());
        assert!(r.llc_accesses() > 0);
    }
}
