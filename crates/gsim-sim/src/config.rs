//! GPU system configurations and proportional scale-model derivation.

use gsim_mem::ReplacementPolicy;
use gsim_trace::MemScale;

/// The system sizes used as scale models throughout the paper (Table I).
pub const SCALE_MODEL_SMS: [u32; 2] = [8, 16];

/// The target system sizes studied in the paper (Table I).
pub const TARGET_SMS: [u32; 3] = [32, 64, 128];

/// A complete (monolithic or per-chiplet) GPU configuration.
///
/// Capacities (`l1_bytes`, `llc_bytes_total`) are stored in *model units* —
/// already divided by the [`MemScale`] memory miniature — while bandwidths,
/// latencies and clock are full-size (see DESIGN.md §5). Construct paper
/// systems with [`GpuConfig::paper_target`] / [`GpuConfig::baseline_128sm`]
/// and derive scale models with [`GpuConfig::scaled_to`].
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors.
    pub n_sms: u32,
    /// SM clock in GHz (Table III: 1.0; Table V: 1.7).
    pub sm_clock_ghz: f64,
    /// Resident warps per SM (Table III: 48).
    pub warps_per_sm: u32,
    /// Resident threads per SM (Table III: 1,536).
    pub max_threads_per_sm: u32,
    /// L1 capacity per SM in model-unit bytes (paper: 48 KB).
    pub l1_bytes: u64,
    /// L1 associativity (Table III: 6).
    pub l1_ways: u32,
    /// L1 MSHR entries (Table III: 384).
    pub l1_mshrs: u32,
    /// L1 hit latency in cycles.
    pub l1_latency: u32,
    /// Cache-line size in bytes (128 throughout).
    pub line_bytes: u32,
    /// Total shared LLC capacity in model-unit bytes.
    pub llc_bytes_total: u64,
    /// Number of address-hashed LLC slices.
    pub llc_slices: u32,
    /// LLC associativity (64 per Table I/III).
    pub llc_ways: u32,
    /// LLC access latency in cycles.
    pub llc_latency: u32,
    /// NoC bisection bandwidth in GB/s.
    pub noc_gbs: f64,
    /// Fixed NoC traversal latency per direction, cycles.
    pub noc_hop_latency: u32,
    /// DRAM bandwidth per memory controller in GB/s (145 per Table I).
    pub dram_gbs_per_mc: f64,
    /// Number of memory controllers.
    pub n_mcs: u32,
    /// DRAM access latency in cycles (beyond queueing).
    pub dram_latency: u32,
    /// LLC slice replacement policy (true LRU per Table III; alternatives
    /// for ablations).
    pub llc_policy: ReplacementPolicy,
    /// Banks per memory controller for the row-buffer-aware DRAM model;
    /// 0 (the default) selects the flat bandwidth model the paper-level
    /// studies use.
    pub dram_banks_per_mc: u32,
    /// Worker threads the engine shards SMs across *within* one
    /// simulation (DESIGN.md §10). Purely a host-side execution knob:
    /// simulation results are bit-identical for any value. `0` and `1`
    /// both select the serial path.
    pub sim_threads: u32,
    /// Owner-sharded memory partitions per chip(let) (DESIGN.md §15):
    /// the shared memory system is divided into
    /// `min(mem_shards, llc_slices, n_mcs)` partitions, each owning a
    /// slice group, its memory controllers and a proportional share of
    /// the crossbar bisection, so the apply phase can run partition-
    /// parallel. Unlike `sim_threads` this is part of the *simulated*
    /// machine — it fixes the line-to-partition interleaving — so it must
    /// not vary with host thread count. Small scale models (one MC)
    /// collapse to a single partition, reproducing the unsharded model
    /// exactly.
    pub mem_shards: u32,
    /// Bounded-slack relaxed synchronisation window in cycles
    /// (DESIGN.md §15). `0` (the default) is bit-exact: every cycle is
    /// globally merged. With slack `s > 0`, SMs run up to `s` cycles
    /// ahead of the shared-memory merge barrier; results are still
    /// deterministic for a given slack — and thread-count-invariant —
    /// but drift from the exact run within a small documented envelope.
    pub sync_slack: u32,
    /// The memory miniature this config was built with.
    pub mem_scale: MemScale,
}

impl GpuConfig {
    /// The paper's 128-SM baseline target system (Table III / Table I top
    /// row): 34 MB LLC over 64 slices, 2.7 TB/s crossbar bisection,
    /// 2.32 TB/s DRAM over 16 MCs of 145 GB/s.
    pub fn baseline_128sm(scale: MemScale) -> Self {
        Self {
            n_sms: 128,
            sm_clock_ghz: 1.0,
            warps_per_sm: 48,
            max_threads_per_sm: 1536,
            l1_bytes: scale.to_model_bytes(48 * 1024),
            l1_ways: 6,
            l1_mshrs: 384,
            l1_latency: 25,
            line_bytes: 128,
            llc_bytes_total: scale.to_model_bytes(34 * 1024 * 1024),
            llc_slices: 64,
            llc_ways: 64,
            llc_latency: 50,
            noc_gbs: 2696.0,
            noc_hop_latency: 12,
            dram_gbs_per_mc: 145.0,
            n_mcs: 16,
            dram_latency: 150,
            llc_policy: ReplacementPolicy::Lru,
            dram_banks_per_mc: 0,
            sim_threads: 1,
            mem_shards: 8,
            sync_slack: 0,
            mem_scale: scale,
        }
    }

    /// Derives a proportionally scaled configuration with `n_sms` SMs
    /// (Section II / Table I): shared resources — LLC capacity and slices,
    /// NoC bisection bandwidth, memory-controller count — scale by
    /// `n_sms / self.n_sms`, while every per-SM resource (L1, warp count,
    /// clock, latencies, per-MC bandwidth) is left untouched.
    ///
    /// # Panics
    ///
    /// Panics if `n_sms` is zero.
    pub fn scaled_to(&self, n_sms: u32) -> Self {
        assert!(n_sms > 0, "system needs at least one SM");
        let f = f64::from(n_sms) / f64::from(self.n_sms);
        Self {
            n_sms,
            llc_bytes_total: ((self.llc_bytes_total as f64 * f) as u64).max(1),
            llc_slices: ((f64::from(self.llc_slices) * f).round() as u32).max(1),
            noc_gbs: self.noc_gbs * f,
            n_mcs: ((f64::from(self.n_mcs) * f).round() as u32).max(1),
            ..self.clone()
        }
    }

    /// The paper's target / scale-model system of `n_sms` SMs, derived
    /// from the 128-SM baseline by proportional scaling (Table I).
    ///
    /// # Example
    ///
    /// ```
    /// use gsim_sim::GpuConfig;
    /// use gsim_trace::MemScale;
    ///
    /// let cfg = GpuConfig::paper_target(8, MemScale::full());
    /// assert_eq!(cfg.n_mcs, 1); // Table I: 8-SM model has 1 MC
    /// assert_eq!(cfg.llc_bytes_total, 2_228_224); // 2.125 MB
    /// ```
    pub fn paper_target(n_sms: u32, scale: MemScale) -> Self {
        Self::baseline_128sm(scale).scaled_to(n_sms)
    }

    /// LLC capacity in *paper-unit* bytes (for reporting).
    pub fn llc_paper_bytes(&self) -> u64 {
        self.mem_scale.to_paper_bytes(self.llc_bytes_total)
    }

    /// Total DRAM bandwidth in GB/s.
    pub fn dram_gbs_total(&self) -> f64 {
        self.dram_gbs_per_mc * f64::from(self.n_mcs)
    }

    /// Resident CTAs an SM can hold for a CTA of `threads_per_cta` threads
    /// (bounded by both the thread budget and the warp budget).
    pub fn ctas_per_sm(&self, threads_per_cta: u32) -> u32 {
        let warps_per_cta = threads_per_cta.div_ceil(32);
        let by_threads = self.max_threads_per_sm / threads_per_cta.max(1);
        let by_warps = self.warps_per_sm / warps_per_cta.max(1);
        by_threads.min(by_warps).max(1)
    }

    /// The scale factor of this config relative to `other`, i.e.
    /// `self.n_sms / other.n_sms` as used in Equations (1)–(4).
    pub fn relative_scale(&self, other: &GpuConfig) -> f64 {
        f64::from(self.n_sms) / f64::from(other.n_sms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table1_rows() -> Vec<(u32, f64, u32, f64, u32)> {
        // (#SMs, LLC MB, slices, DRAM GB/s, MCs) — Table I with exact
        // proportional halving (the published NoC/DRAM cells contain two
        // transcription glitches; proportionality is the stated rule).
        vec![
            (128, 34.0, 64, 2320.0, 16),
            (64, 17.0, 32, 1160.0, 8),
            (32, 8.5, 16, 580.0, 4),
            (16, 4.25, 8, 290.0, 2),
            (8, 2.125, 4, 145.0, 1),
        ]
    }

    #[test]
    fn proportional_scaling_reproduces_table_1() {
        for (sms, llc_mb, slices, dram, mcs) in table1_rows() {
            let cfg = GpuConfig::paper_target(sms, MemScale::full());
            assert_eq!(cfg.n_sms, sms);
            assert_eq!(
                cfg.llc_bytes_total,
                (llc_mb * 1024.0 * 1024.0) as u64,
                "{sms}-SM LLC"
            );
            assert_eq!(cfg.llc_slices, slices, "{sms}-SM slices");
            assert!((cfg.dram_gbs_total() - dram).abs() < 1e-9, "{sms}-SM DRAM");
            assert_eq!(cfg.n_mcs, mcs, "{sms}-SM MCs");
        }
    }

    #[test]
    fn noc_scales_proportionally() {
        let c128 = GpuConfig::paper_target(128, MemScale::full());
        let c16 = GpuConfig::paper_target(16, MemScale::full());
        assert!((c16.noc_gbs - c128.noc_gbs / 8.0).abs() < 1e-9);
    }

    #[test]
    fn per_sm_resources_are_invariant() {
        let scale = MemScale::default();
        let big = GpuConfig::paper_target(128, scale);
        let small = GpuConfig::paper_target(8, scale);
        assert_eq!(big.l1_bytes, small.l1_bytes);
        assert_eq!(big.warps_per_sm, small.warps_per_sm);
        assert_eq!(big.sm_clock_ghz, small.sm_clock_ghz);
        assert_eq!(big.dram_gbs_per_mc, small.dram_gbs_per_mc);
        assert_eq!(big.l1_latency, small.l1_latency);
    }

    #[test]
    fn mem_scale_shrinks_capacities_only() {
        let full = GpuConfig::paper_target(128, MemScale::full());
        let mini = GpuConfig::paper_target(128, MemScale::new(8));
        assert_eq!(mini.llc_bytes_total * 8, full.llc_bytes_total);
        assert_eq!(mini.l1_bytes * 8, full.l1_bytes);
        assert_eq!(mini.noc_gbs, full.noc_gbs);
        assert_eq!(mini.n_mcs, full.n_mcs);
        assert_eq!(mini.llc_paper_bytes(), full.llc_bytes_total);
    }

    #[test]
    fn ctas_per_sm_honours_both_budgets() {
        let cfg = GpuConfig::paper_target(8, MemScale::default());
        assert_eq!(cfg.ctas_per_sm(256), 6); // 1536/256
        assert_eq!(cfg.ctas_per_sm(1024), 1);
        assert_eq!(cfg.ctas_per_sm(32), 48); // bounded by 48 warps
    }

    #[test]
    fn relative_scale_matches_equation_inputs() {
        let scale = MemScale::default();
        let s8 = GpuConfig::paper_target(8, scale);
        let s16 = GpuConfig::paper_target(16, scale);
        assert_eq!(s16.relative_scale(&s8), 2.0);
        assert_eq!(s8.relative_scale(&s16), 0.5);
    }

    #[test]
    fn scale_model_and_target_constants() {
        assert_eq!(SCALE_MODEL_SMS, [8, 16]);
        assert_eq!(TARGET_SMS, [32, 64, 128]);
    }
}
