//! Simulation statistics.

/// What the timing simulator measures — in particular the three quantities
/// the scale-model methodology consumes: [`SimStats::ipc`],
/// [`SimStats::mpki`], and [`SimStats::f_mem`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Total execution cycles.
    pub cycles: u64,
    /// Warp instructions issued.
    pub warp_instrs: u64,
    /// Thread instructions executed (warp instructions × 32).
    pub thread_instrs: u64,
    /// LLC accesses (loads, stores and atomics reaching the LLC).
    pub llc_accesses: u64,
    /// LLC misses.
    pub llc_misses: u64,
    /// L1 accesses (cached loads).
    pub l1_accesses: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// DRAM bytes moved (reads + write-backs).
    pub dram_bytes: u64,
    /// Sum over SMs of cycles in which the SM had live warps but could not
    /// issue because every live warp was waiting on memory.
    pub mem_stall_sm_cycles: u64,
    /// Sum over SMs of cycles in which the SM had no work (empty CTA
    /// slots while other SMs still executed) — the imbalance tail.
    pub idle_sm_cycles: u64,
    /// Sum over SMs of all cycles (== `cycles * n_sms`).
    pub total_sm_cycles: u64,
    /// CTAs executed.
    pub ctas_executed: u64,
    /// Kernels executed.
    pub kernels_executed: u64,
    /// Wall-clock seconds the simulation itself took (for speedup studies).
    pub sim_wall_seconds: f64,
    /// Cycle at which 10% of the expected warp instructions had issued.
    pub cycle_at_10pct: u64,
    /// Cycle at which 90% of the expected warp instructions had issued.
    pub cycle_at_90pct: u64,
    /// Warp instructions issued inside the 10%-90% window.
    pub warp_instrs_window: u64,
    /// Cycles spent in each kernel, in launch order (kernel barriers make
    /// this well defined). Used by sampling-based estimators.
    pub kernel_cycles: Vec<u64>,
}

impl SimStats {
    /// Instructions per cycle, in thread instructions (the paper's IPC).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.thread_instrs as f64 / self.cycles as f64
        }
    }

    /// Sustained IPC: thread instructions per cycle measured between the
    /// 10% and 90% instruction milestones, excluding the pipeline-fill
    /// ramp and the final drain. The model workloads are ~1000x shorter
    /// than the paper's (DESIGN.md §5), which inflates those boundary
    /// artefacts relative to a real run; the sustained window restores
    /// steady-state rates. Falls back to [`SimStats::ipc`] when the
    /// window is degenerate.
    pub fn sustained_ipc(&self) -> f64 {
        if self.cycle_at_90pct > self.cycle_at_10pct && self.warp_instrs_window > 0 {
            (self.warp_instrs_window * 32) as f64
                / (self.cycle_at_90pct - self.cycle_at_10pct) as f64
        } else {
            self.ipc()
        }
    }

    /// LLC misses per thousand thread instructions (the paper's MPKI).
    pub fn mpki(&self) -> f64 {
        if self.thread_instrs == 0 {
            0.0
        } else {
            self.llc_misses as f64 * 1000.0 / self.thread_instrs as f64
        }
    }

    /// The fraction of time an SM is unable to issue because all its warps
    /// wait for memory — `f_mem` of Equation (3).
    pub fn f_mem(&self) -> f64 {
        if self.total_sm_cycles == 0 {
            0.0
        } else {
            self.mem_stall_sm_cycles as f64 / self.total_sm_cycles as f64
        }
    }

    /// Fraction of SM cycles lost to having no CTA to run (imbalance).
    pub fn f_idle(&self) -> f64 {
        if self.total_sm_cycles == 0 {
            0.0
        } else {
            self.idle_sm_cycles as f64 / self.total_sm_cycles as f64
        }
    }

    /// L1 miss rate over L1 accesses; 0 if none.
    pub fn l1_miss_rate(&self) -> f64 {
        if self.l1_accesses == 0 {
            0.0
        } else {
            self.l1_misses as f64 / self.l1_accesses as f64
        }
    }

    /// LLC miss rate over LLC accesses; 0 if none.
    pub fn llc_miss_rate(&self) -> f64 {
        if self.llc_accesses == 0 {
            0.0
        } else {
            self.llc_misses as f64 / self.llc_accesses as f64
        }
    }

    /// Simulated cycles per wall-clock second — the simulator's own speed,
    /// for perf tracking; 0 if wall-clock time was not recorded.
    pub fn sim_cycles_per_second(&self) -> f64 {
        if self.sim_wall_seconds > 0.0 {
            self.cycles as f64 / self.sim_wall_seconds
        } else {
            0.0
        }
    }

    /// Asserts that `self` and `other` agree on every *simulated* quantity,
    /// ignoring host-side wall-clock measurements (`sim_wall_seconds`).
    ///
    /// This is the determinism contract of the engine: two runs of the same
    /// (configuration, workload) pair — including runs with different
    /// `sim_threads` — must satisfy it.
    ///
    /// # Panics
    ///
    /// Panics with the name of the first differing field.
    pub fn assert_deterministic_eq(&self, other: &Self) {
        // Exhaustive destructuring (no `..`): adding a SimStats field
        // without deciding whether determinism covers it fails to compile.
        let Self {
            cycles: _,
            warp_instrs: _,
            thread_instrs: _,
            llc_accesses: _,
            llc_misses: _,
            l1_accesses: _,
            l1_misses: _,
            dram_bytes: _,
            mem_stall_sm_cycles: _,
            idle_sm_cycles: _,
            total_sm_cycles: _,
            ctas_executed: _,
            kernels_executed: _,
            sim_wall_seconds: _,
            cycle_at_10pct: _,
            cycle_at_90pct: _,
            warp_instrs_window: _,
            kernel_cycles: _,
        } = self;
        macro_rules! check {
            ($($field:ident),+ $(,)?) => {
                $(assert_eq!(
                    self.$field, other.$field,
                    concat!("SimStats::", stringify!($field), " differs"),
                );)+
            };
        }
        check!(
            cycles,
            warp_instrs,
            thread_instrs,
            llc_accesses,
            llc_misses,
            l1_accesses,
            l1_misses,
            dram_bytes,
            mem_stall_sm_cycles,
            idle_sm_cycles,
            total_sm_cycles,
            ctas_executed,
            kernels_executed,
            cycle_at_10pct,
            cycle_at_90pct,
            warp_instrs_window,
            kernel_cycles,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let s = SimStats {
            cycles: 1000,
            warp_instrs: 500,
            thread_instrs: 16_000,
            llc_accesses: 100,
            llc_misses: 40,
            l1_accesses: 200,
            l1_misses: 100,
            mem_stall_sm_cycles: 3_000,
            idle_sm_cycles: 1_000,
            total_sm_cycles: 8_000,
            ..SimStats::default()
        };
        assert_eq!(s.ipc(), 16.0);
        assert_eq!(s.sustained_ipc(), 16.0); // degenerate window falls back
        assert_eq!(s.mpki(), 2.5);
        assert_eq!(s.f_mem(), 0.375);
        assert_eq!(s.f_idle(), 0.125);
        assert_eq!(s.l1_miss_rate(), 0.5);
        assert_eq!(s.llc_miss_rate(), 0.4);
    }

    #[test]
    fn empty_stats_are_zero_not_nan() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.mpki(), 0.0);
        assert_eq!(s.f_mem(), 0.0);
        assert_eq!(s.f_idle(), 0.0);
        assert_eq!(s.l1_miss_rate(), 0.0);
        assert_eq!(s.llc_miss_rate(), 0.0);
    }
}
