//! Multi-chip-module (MCM) GPU configuration (paper Table V).

use gsim_trace::MemScale;

use crate::config::GpuConfig;

/// Configuration of a multi-chiplet GPU: `n_chiplets` identical chiplets,
/// each described by a per-chiplet [`GpuConfig`], connected by a fly
/// topology giving every chiplet a fixed-bandwidth channel.
///
/// Following the paper's scale-model principle, the chiplet configuration
/// is fixed and only the chiplet *count* (and with it the inter-chiplet
/// network, aggregate memory bandwidth and SM count) scales with system
/// size.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipletConfig {
    /// Number of chiplets.
    pub n_chiplets: u32,
    /// Per-chiplet GPU configuration.
    pub chiplet: GpuConfig,
    /// Inter-chiplet channel bandwidth per chiplet, GB/s (Table V: 900).
    pub interchiplet_gbs_per_chiplet: f64,
    /// Chiplet-crossing latency in cycles.
    pub interchiplet_latency: u32,
    /// Page granularity for first-touch placement, in 128 B lines
    /// (32 lines = 4 KB pages). Must be a power of two.
    pub page_lines: u32,
}

impl ChipletConfig {
    /// The paper's MCM system (Table V) with `n_chiplets` chiplets:
    /// 64 SMs per chiplet at 1.7 GHz, 18 MB LLC over 64 slices per
    /// chiplet, 1.7 TB/s intra-chiplet crossbar, 900 GB/s per-chiplet
    /// inter-chiplet fly network, 8 MCs totalling 1.2 TB/s per chiplet,
    /// distributed CTA scheduling and first-touch page allocation.
    ///
    /// # Panics
    ///
    /// Panics if `n_chiplets` is zero.
    pub fn paper_mcm(n_chiplets: u32, scale: MemScale) -> Self {
        assert!(n_chiplets > 0, "need at least one chiplet");
        let chiplet = GpuConfig {
            n_sms: 64,
            sm_clock_ghz: 1.7,
            llc_bytes_total: scale.to_model_bytes(18 * 1024 * 1024),
            llc_slices: 64,
            noc_gbs: 1700.0,
            dram_gbs_per_mc: 150.0,
            n_mcs: 8,
            ..GpuConfig::baseline_128sm(scale)
        };
        Self {
            n_chiplets,
            chiplet,
            interchiplet_gbs_per_chiplet: 900.0,
            interchiplet_latency: 80,
            page_lines: 32,
        }
    }

    /// Total SMs across all chiplets.
    pub fn total_sms(&self) -> u32 {
        self.n_chiplets * self.chiplet.n_sms
    }

    /// Derives the configuration with a different chiplet count — the MCM
    /// analogue of proportional scaling (the chiplet itself is unchanged).
    pub fn scaled_to_chiplets(&self, n_chiplets: u32) -> Self {
        assert!(n_chiplets > 0, "need at least one chiplet");
        Self {
            n_chiplets,
            ..self.clone()
        }
    }

    /// Aggregate LLC capacity over all chiplets, model-unit bytes.
    pub fn llc_bytes_total(&self) -> u64 {
        self.chiplet.llc_bytes_total * u64::from(self.n_chiplets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_5_values() {
        let mcm = ChipletConfig::paper_mcm(16, MemScale::full());
        assert_eq!(mcm.total_sms(), 1024); // 16 chiplets x 64 SMs
        assert_eq!(mcm.chiplet.sm_clock_ghz, 1.7);
        assert_eq!(mcm.chiplet.llc_bytes_total, 18 * 1024 * 1024);
        assert_eq!(mcm.chiplet.llc_slices, 64);
        assert!((mcm.chiplet.dram_gbs_total() - 1200.0).abs() < 1e-9);
        assert_eq!(mcm.interchiplet_gbs_per_chiplet, 900.0);
    }

    #[test]
    fn chiplet_scaling_keeps_chiplet_fixed() {
        let c16 = ChipletConfig::paper_mcm(16, MemScale::default());
        let c4 = c16.scaled_to_chiplets(4);
        assert_eq!(c4.chiplet, c16.chiplet);
        assert_eq!(c4.total_sms(), 256);
        assert_eq!(c4.llc_bytes_total() * 4, c16.llc_bytes_total());
    }

    #[test]
    fn page_lines_power_of_two() {
        let mcm = ChipletConfig::paper_mcm(4, MemScale::default());
        assert!(mcm.page_lines.is_power_of_two());
    }
}
