//! A cycle-level GPU timing simulator for scale-model studies.
//!
//! This crate stands in for Accel-Sim \[39\], the detailed simulator the
//! paper uses to collect scale-model performance profiles. It models the
//! parts of a modern GPU whose *sharing* drives the paper's scaling
//! phenomena:
//!
//! * SMs issuing one warp instruction per cycle from up to 48 resident
//!   warps under Greedy-Then-Oldest (GTO) scheduling, with round-robin CTA
//!   dispatch (Table III);
//! * per-SM L1 caches with MSHR merge, write-through/no-write-allocate;
//! * a crossbar NoC charged at its bisection bandwidth;
//! * a shared, sliced LLC with per-slice ports (hot shared lines camp on
//!   their slice, the paper's sub-linear congestion mechanism);
//! * a multi-controller DRAM bandwidth model;
//! * an optional multi-chiplet organisation with first-touch page
//!   placement and a bandwidth-limited inter-chiplet network (Table V).
//!
//! The simulator reports exactly the quantities the scale-model
//! methodology consumes: IPC (thread instructions per cycle), LLC MPKI,
//! and the memory-stall fraction `f_mem` of Equation (3).
//!
//! # Example
//!
//! ```
//! use gsim_sim::{GpuConfig, Simulator};
//! use gsim_trace::{Kernel, MemScale, PatternKind, PatternSpec, Workload};
//!
//! let spec = PatternSpec::new(PatternKind::GlobalSweep { passes: 2 }, 4096);
//! let wl = Workload::new("demo", 1, vec![Kernel::new("k", 96, 256, spec)]);
//! let cfg = GpuConfig::paper_target(8, MemScale::default());
//! let stats = Simulator::new(cfg, &wl).run();
//! assert!(stats.ipc() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chiplet;
mod config;
mod engine;
mod functional;
mod stats;

pub use chiplet::ChipletConfig;
pub use config::{GpuConfig, SCALE_MODEL_SMS, TARGET_SMS};
pub use engine::Simulator;
pub use functional::{collect_mrc, FunctionalReplay};
pub use stats::SimStats;
