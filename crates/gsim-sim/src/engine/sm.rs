//! Per-SM state and the parallel per-SM half of a cycle (phase A).
//!
//! Everything in this module touches exactly one SM: the warp contexts,
//! the GTO scheduler queues, the L1 tag store and the MSHR file. That is
//! what makes phase A safe to run on worker threads — an SM's phase A
//! reads and writes only its own [`Sm`], and records everything that
//! needs the *shared* memory system in its [`LaneOut`] for the serial
//! apply phase (DESIGN.md §10).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use gsim_mem::{Cache, CacheGeometry, Mshr};
use gsim_trace::{MemAccess, MemSpace, Op, WarpStream};

use super::memsys::ReqKind;
use crate::config::GpuConfig;

/// The per-SM configuration slice phase A needs; `Copy` so worker threads
/// can share one instance by reference.
#[derive(Debug, Clone, Copy)]
pub(super) struct LaneParams {
    pub l1_latency: u64,
}

impl LaneParams {
    pub(super) fn from_cfg(cfg: &GpuConfig) -> Self {
        Self {
            l1_latency: u64::from(cfg.l1_latency),
        }
    }
}

/// How one staged line request must be applied to the shared memory
/// system in phase B.
#[derive(Debug, Clone, Copy)]
pub(super) enum LineKind {
    /// A cached global load that missed the L1: request at `now + l1_lat`,
    /// then register the fill with this SM's MSHR file.
    MissLoad,
    /// A write-through store: fire-and-forget at `now + l1_lat`.
    Store,
    /// An L1-bypassing access (atomics, non-global loads): request at
    /// `now` and wait for the response.
    Direct(ReqKind),
}

/// One cache line the issuing warp sends into the shared memory system.
#[derive(Debug, Clone, Copy)]
pub(super) struct LineReq {
    pub line: u64,
    pub kind: LineKind,
}

/// The memory instruction (at most one per SM per cycle) staged by phase
/// A for resolution in phase B.
#[derive(Debug, Clone, Copy)]
pub(super) struct MemIssue {
    /// The issuing warp; phase B re-queues it once its wake cycle is known.
    pub warp: u32,
    /// Wake lower bound from per-SM effects alone (L1 hits, `now + 1`).
    pub base_wake: u64,
    /// Whether the warp blocks until the response (loads/atomics) or
    /// continues immediately (stores).
    pub blocks: bool,
}

/// Everything one SM's phase A hands to the serial phase B. Owned by the
/// SM and reused across cycles so the steady state allocates nothing.
#[derive(Debug, Default)]
pub(super) struct LaneOut {
    /// Did this SM issue an instruction this cycle?
    pub issued: bool,
    /// Did this SM still hold live warps after its issue attempt?
    pub live: bool,
    /// Warp instructions issued (0 or 1).
    pub warp_instrs: u64,
    /// L1 lookups performed.
    pub l1_accesses: u64,
    /// L1 misses taken.
    pub l1_misses: u64,
    /// CTAs that fully retired on this SM this cycle.
    pub completed_ctas: u32,
    /// The staged memory instruction, if one issued.
    pub mem: Option<MemIssue>,
    /// Line requests of the staged memory instruction, in program order.
    pub reqs: Vec<LineReq>,
}

impl LaneOut {
    fn reset(&mut self) {
        self.issued = false;
        self.live = false;
        self.warp_instrs = 0;
        self.l1_accesses = 0;
        self.l1_misses = 0;
        self.completed_ctas = 0;
        self.mem = None;
        self.reqs.clear();
    }
}

pub(super) struct WarpCtx<S> {
    pub stream: S,
    pub pending_compute: u16,
    pub cta: u32,
    pub age: u64,
}

pub(super) struct Sm<S> {
    pub l1: Cache,
    pub mshr: Mshr,
    pub warps: Vec<Option<WarpCtx<S>>>,
    /// Ready warp indices sorted by age descending (back = oldest, so the
    /// GTO fallback pick is a `pop`). The greedy warp is *not* kept here
    /// while it is issuing batched compute — see `greedy_stashed`.
    pub ready: Vec<u32>,
    pub blocked: BinaryHeap<Reverse<(u64, u32)>>,
    pub last_issued: Option<u32>,
    /// True when `last_issued` re-queued via the compute fast path and is
    /// parked outside `ready`. GTO re-picks it first regardless of age, so
    /// keeping it out of the sorted vector skips an insert/search/remove
    /// round-trip per compute instruction — the issue phase's hot path.
    pub greedy_stashed: bool,
    pub free_slots: Vec<u32>,
    /// CTA id -> warps still running, for resident CTAs.
    pub cta_remaining: HashMap<u32, u32>,
    pub live_warps: u32,
    pub chiplet: u32,
    /// Phase A -> phase B handoff for the current cycle.
    pub out: LaneOut,
}

impl<S> Sm<S> {
    pub(super) fn new(cfg: &GpuConfig, chiplet: u32) -> Self {
        let n = cfg.warps_per_sm;
        Self {
            l1: Cache::new(CacheGeometry::new(
                cfg.l1_bytes,
                cfg.l1_ways,
                cfg.line_bytes,
            )),
            mshr: Mshr::new(cfg.l1_mshrs as usize),
            warps: (0..n).map(|_| None).collect(),
            ready: Vec::with_capacity(n as usize),
            blocked: BinaryHeap::with_capacity(n as usize),
            last_issued: None,
            greedy_stashed: false,
            free_slots: (0..n).rev().collect(),
            cta_remaining: HashMap::new(),
            live_warps: 0,
            chiplet,
            out: LaneOut::default(),
        }
    }

    pub(super) fn insert_ready(&mut self, warp: u32) {
        let age = self.warps[warp as usize].as_ref().expect("live warp").age;
        let pos = self
            .ready
            .partition_point(|&w| self.warps[w as usize].as_ref().expect("live").age > age);
        self.ready.insert(pos, warp);
    }

    /// Whether any warp could issue next cycle without a wake-up.
    pub(super) fn has_ready(&self) -> bool {
        !self.ready.is_empty() || self.greedy_stashed
    }

    /// Greedy-Then-Oldest: keep issuing the last-issued warp while it is
    /// ready; otherwise pick the oldest ready warp.
    fn pick(&mut self) -> Option<u32> {
        if let Some(w) = self.last_issued {
            if self.greedy_stashed {
                self.greedy_stashed = false;
                return Some(w);
            }
            if let Some(pos) = self.ready.iter().position(|&r| r == w) {
                self.ready.remove(pos);
                return Some(w);
            }
        }
        self.ready.pop()
    }

    /// The per-SM half of warp retirement: releases the slot and the CTA
    /// bookkeeping this SM owns, and reports a completed CTA (if any) for
    /// phase B to turn into dispatches and kernel advances.
    fn retire_local(&mut self, warp: u32) {
        let ctx = self.warps[warp as usize]
            .take()
            .expect("retiring a live warp");
        self.free_slots.push(warp);
        self.live_warps -= 1;
        if self.last_issued == Some(warp) {
            self.last_issued = None;
            self.greedy_stashed = false;
        }
        let remaining = self
            .cta_remaining
            .get_mut(&ctx.cta)
            .expect("warp belongs to a resident CTA");
        *remaining -= 1;
        if *remaining == 0 {
            self.cta_remaining.remove(&ctx.cta);
            self.out.completed_ctas += 1;
        }
    }
}

impl<S: WarpStream> Sm<S> {
    /// One SM's share of a cycle: drain due wake-ups, then try to issue
    /// one instruction. Touches only this SM; the staged result lands in
    /// `self.out`.
    pub(super) fn phase_a(&mut self, now: u64, p: &LaneParams) {
        self.out.reset();
        // Wake phase.
        while let Some(&Reverse((t, w))) = self.blocked.peek() {
            if t <= now {
                self.blocked.pop();
                self.insert_ready(w);
            } else {
                break;
            }
        }
        // Issue phase.
        while let Some(warp) = self.pick() {
            // Fast path: batched compute.
            {
                let ctx = self.warps[warp as usize]
                    .as_mut()
                    .expect("picked live warp");
                if ctx.pending_compute > 0 {
                    ctx.pending_compute -= 1;
                    self.last_issued = Some(warp);
                    self.greedy_stashed = true;
                    self.out.warp_instrs += 1;
                    self.out.issued = true;
                    break;
                }
            }
            let op = self.warps[warp as usize]
                .as_mut()
                .expect("picked live warp")
                .stream
                .next_op();
            match op {
                None => {
                    // Warp retired; pick another warp this same cycle.
                    self.retire_local(warp);
                    continue;
                }
                Some(Op::Compute { n }) => {
                    let ctx = self.warps[warp as usize].as_mut().expect("live");
                    ctx.pending_compute = n - 1;
                    self.last_issued = Some(warp);
                    self.greedy_stashed = true;
                    self.out.warp_instrs += 1;
                    self.out.issued = true;
                    break;
                }
                Some(op) => {
                    let access = *op.mem().expect("memory op");
                    self.stage_mem(warp, now, &op, &access, p);
                    self.out.warp_instrs += 1;
                    self.last_issued = Some(warp);
                    self.out.issued = true;
                    break;
                }
            }
        }
        self.out.live = self.live_warps > 0;
    }

    /// The per-SM part of issuing one memory op: L1 lookups and MSHR
    /// probes now; every line that needs the shared memory system is
    /// staged for phase B. The issuing warp is re-queued by phase B once
    /// its wake cycle is known.
    fn stage_mem(&mut self, warp: u32, now: u64, op: &Op, access: &MemAccess, p: &LaneParams) {
        let kind = match op {
            Op::Load(_) => ReqKind::Load,
            Op::Store(_) => ReqKind::Store,
            Op::Atomic(_) => ReqKind::Atomic,
            Op::Compute { .. } => unreachable!("compute is not a memory op"),
        };
        let mut base_wake = now + 1;
        for line in access.lines() {
            match (kind, access.space) {
                (ReqKind::Load, MemSpace::Global) => {
                    // L1 lookup (write-through caches: loads only).
                    self.out.l1_accesses += 1;
                    let t0 = now + p.l1_latency;
                    if self.l1.access(line, false).is_hit() {
                        let ready = match self.mshr.pending_fill(line) {
                            Some(fill) if fill > now => fill,
                            _ => t0,
                        };
                        base_wake = base_wake.max(ready);
                    } else {
                        self.out.l1_misses += 1;
                        self.out.reqs.push(LineReq {
                            line,
                            kind: LineKind::MissLoad,
                        });
                    }
                }
                (ReqKind::Store, _) => {
                    // Write-through, no-write-allocate: straight to the LLC.
                    self.out.reqs.push(LineReq {
                        line,
                        kind: LineKind::Store,
                    });
                }
                _ => {
                    // Atomics (and any bypassing access) skip the L1.
                    self.out.reqs.push(LineReq {
                        line,
                        kind: LineKind::Direct(kind),
                    });
                }
            }
        }
        self.out.mem = Some(MemIssue {
            warp,
            base_wake,
            blocks: op.blocks_warp(),
        });
    }
}
