//! The owner-sharded memory system of a chip(let) and the request path
//! into it.
//!
//! The shared memory system of every chip(let) is divided into
//! `min(mem_shards, llc_slices, n_mcs)` fixed *partitions* ([`MemShard`]),
//! each owning a slice group (global slice `g` belongs to partition
//! `g % K`), the memory controllers interleaved onto it, its own in-flight
//! fill tracker and a proportional share of the crossbar bisection — the
//! memory-partition structure of real GPUs, and the unit of ownership the
//! parallel apply phase hands to worker threads (DESIGN.md §15).
//!
//! A request is *routed* serially (deterministic first-touch page
//! placement and mailbox order), *applied* partition-parallel (each shard
//! replays its mailbox against purely shard-local state), and *merged*
//! serially in global (cycle, SM, request) order (MSHR registration, warp
//! wake-ups and the inter-chiplet legs, which touch cross-partition
//! state). Because mailbox order is fixed by the serial route pass and
//! every shard owns disjoint state, the results are bit-identical for any
//! thread count.

use gsim_mem::{slice_for_line, BankedDramModel, DramModel, DramTiming, FillTracker, SlicedLlc};
use gsim_noc::Crossbar;

use crate::config::GpuConfig;

/// Cycles an LLC slice port is occupied by a normal access (slices are
/// dual-banked: two accesses per cycle).
const SLICE_OCCUPANCY: f64 = 0.5;
/// Cycles an LLC slice port is occupied by an atomic read-modify-write:
/// the read-modify-write turnaround serialises at the slice, which is what
/// makes hot shared lines camp (Zhao et al.'s memory-side camping [65]).
const ATOMIC_OCCUPANCY: f64 = 8.0;
/// Effective fraction of a transfer charged against the bisection
/// bandwidth: under uniform traffic only ~half of the transfers cross the
/// bisection, and requests/responses ride separate physical networks, so a
/// 128 B data response consumes ~a quarter of its size in bisection
/// capacity. This keeps an LLC-resident working set serviceable at near
/// full issue rate — the property behind the paper's post-cliff
/// "no longer stalled waiting for memory" assumption (Section V.C.2).
const BISECTION_FRACTION: f64 = 0.25;
/// Response payload of an atomic (a word, not a line).
const ATOMIC_BYTES: u32 = 32;

/// What kind of request enters the shared memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum ReqKind {
    Load,
    Store,
    Atomic,
}

/// The DRAM backend: flat bandwidth server (default) or the banked
/// row-buffer model (`GpuConfig::dram_banks_per_mc > 0`).
pub(super) enum Dram {
    Flat(DramModel),
    Banked(BankedDramModel),
}

impl Dram {
    fn read(&mut self, now: u64, line: u64, bytes: u32) -> u64 {
        match self {
            Dram::Flat(d) => d.read(now, line, bytes),
            Dram::Banked(d) => d.read(now, line, bytes),
        }
    }

    fn write_back(&mut self, now: u64, line: u64, bytes: u32) {
        match self {
            Dram::Flat(d) => d.write_back(now, line, bytes),
            Dram::Banked(d) => d.write_back(now, line, bytes),
        }
    }
}

/// The fixed partitioning of a chip(let)'s memory system into owner
/// shards. Identical for every chiplet of an MCM (they share one
/// per-chiplet configuration); global shard id = `chiplet * per_chiplet
/// + sub_shard`.
#[derive(Debug, Clone, Copy)]
pub(super) struct ShardMap {
    /// Partitions per chip(let): `min(mem_shards, llc_slices, n_mcs)`.
    pub per_chiplet: u32,
    /// Global LLC slices per chip(let) (the hash domain).
    pub llc_slices: u32,
}

impl ShardMap {
    pub(super) fn new(cfg: &GpuConfig) -> Self {
        Self {
            per_chiplet: cfg.mem_shards.max(1).min(cfg.llc_slices).min(cfg.n_mcs),
            llc_slices: cfg.llc_slices,
        }
    }

    /// `(sub_shard, local_slice)` of `line` within its owner chip(let).
    /// The *global* slice hash is unchanged from the unsharded model;
    /// partition `k` owns global slices `{k, k + K, k + 2K, ...}`.
    #[inline]
    pub(super) fn route(&self, line: u64) -> (u32, u32) {
        let g = slice_for_line(line, self.llc_slices);
        (g % self.per_chiplet, g / self.per_chiplet)
    }
}

/// One staged request in a shard's mailbox. `t0` is the cycle the request
/// enters the memory system (the `now` of the historical `mem_request`).
pub(super) struct MailEntry {
    pub t0: u64,
    pub line: u64,
    pub local_slice: u32,
    pub kind: ReqKind,
    /// Requester chiplet differs from the owner chiplet (MCM remote).
    pub remote: bool,
}

/// A shard's answer for one mailbox entry. `local_done` is the response
/// arrival over the shard's crossbar share; `data_at_llc` is when the
/// data left the LLC (the departure time of the inter-chiplet leg, which
/// the serial merge charges for remote entries).
#[derive(Debug, Clone, Copy)]
pub(super) struct ApplyOut {
    pub local_done: f64,
    pub data_at_llc: f64,
    pub payload: u32,
    pub t0: u64,
    pub remote: bool,
}

/// The configuration slice the partition-parallel apply needs; `Copy` so
/// worker threads can share one instance.
#[derive(Debug, Clone, Copy)]
pub(super) struct ApplyParams {
    pub llc_latency: f64,
    pub line_bytes: u32,
    pub crossing_latency: f64,
}

/// One memory partition: a slice group of the LLC, the memory controllers
/// interleaved onto it, a proportional share of the crossbar bisection,
/// and its own in-flight fill tracker. Everything here is owned by
/// exactly one shard, so the apply phase touches it without locks held by
/// anyone else.
pub(super) struct MemShard {
    pub noc: Crossbar,
    pub llc: SlicedLlc,
    pub slice_free: Vec<f64>,
    pub dram: Dram,
    /// In-flight LLC fills (line -> completion cycle), for miss merging.
    pub pending: FillTracker,
    // Order-free statistic deltas, harvested once at the end of the run.
    pub llc_accesses: u64,
    pub llc_misses: u64,
    pub dram_bytes: u64,
    /// Requests staged by the serial route pass, in global
    /// (cycle, SM, request) order restricted to this shard.
    pub mailbox: Vec<MailEntry>,
    /// Per-entry answers, parallel to the mailbox of the last apply.
    pub results: Vec<ApplyOut>,
}

impl MemShard {
    /// Builds sub-shard `k` (of `map.per_chiplet`) of one chip(let).
    pub(super) fn new(cfg: &GpuConfig, map: ShardMap, k: u32) -> Self {
        let kk = map.per_chiplet;
        debug_assert!(k < kk);
        // Slice group {k, k+K, ...}: same per-slice capacity as the
        // unsharded LLC, local index g / K.
        let n_slices = (map.llc_slices - k).div_ceil(kk);
        let slice_bytes = cfg.llc_bytes_total / u64::from(cfg.llc_slices);
        let llc = SlicedLlc::partition(
            slice_bytes,
            n_slices,
            cfg.llc_ways,
            cfg.line_bytes,
            cfg.llc_policy,
        );
        // Memory controllers interleaved round-robin across partitions;
        // within the partition, lines re-hash over the owned controllers
        // (the partition is the unit that pairs slices with channels).
        let n_mcs = (cfg.n_mcs - k).div_ceil(kk);
        let dram = if cfg.dram_banks_per_mc > 0 {
            Dram::Banked(BankedDramModel::new(
                n_mcs,
                cfg.dram_banks_per_mc,
                cfg.dram_gbs_per_mc,
                cfg.sm_clock_ghz,
                DramTiming::default(),
            ))
        } else {
            Dram::Flat(DramModel::new(
                n_mcs,
                cfg.dram_gbs_per_mc,
                cfg.sm_clock_ghz,
                cfg.dram_latency,
            ))
        };
        Self {
            noc: Crossbar::from_gbs(
                cfg.noc_gbs / f64::from(kk),
                cfg.sm_clock_ghz,
                cfg.noc_hop_latency,
            ),
            slice_free: vec![0.0; n_slices as usize],
            llc,
            dram,
            pending: FillTracker::new(),
            llc_accesses: 0,
            llc_misses: 0,
            dram_bytes: 0,
            mailbox: Vec::new(),
            results: Vec::new(),
        }
    }

    /// Replays the mailbox against this shard's state, in mailbox order
    /// (= global request order restricted to this shard), filling
    /// `results` one entry per request. Touches only shard-local state,
    /// so disjoint shards apply in parallel with bit-identical outcomes.
    pub(super) fn apply(&mut self, p: &ApplyParams) {
        self.results.clear();
        let hop = f64::from(self.noc.hop_latency());
        for e in &self.mailbox {
            // Request travel: crossbar hop (+ chiplet crossing if remote).
            let mut t = e.t0 as f64 + hop;
            if e.remote {
                t += p.crossing_latency;
            }
            // Slice port (camping point).
            let occupancy = if e.kind == ReqKind::Atomic {
                ATOMIC_OCCUPANCY
            } else {
                SLICE_OCCUPANCY
            };
            let start = self.slice_free[e.local_slice as usize].max(t);
            self.slice_free[e.local_slice as usize] = start + occupancy;
            let tag_done = start + p.llc_latency;

            // Tag lookup; eager fill with an in-flight merge map for
            // timing.
            let is_write = e.kind == ReqKind::Store;
            let result = self.llc.access_in_slice(e.local_slice, e.line, is_write);
            self.llc_accesses += 1;
            let data_at_llc = if result.is_hit() {
                match self.pending.fill_after(e.line, e.t0) {
                    Some(fill) => fill as f64,
                    None => tag_done,
                }
            } else {
                self.llc_misses += 1;
                if let Some(victim) = result.evicted() {
                    if victim.dirty {
                        self.dram
                            .write_back(tag_done as u64, victim.line_addr, p.line_bytes);
                        self.dram_bytes += u64::from(p.line_bytes);
                    }
                }
                let fill = self.dram.read(tag_done as u64, e.line, p.line_bytes);
                self.dram_bytes += u64::from(p.line_bytes);
                self.pending.insert(e.line, fill, e.t0);
                fill as f64
            };

            // Response travel over this shard's bisection share.
            let payload = if e.kind == ReqKind::Atomic {
                ATOMIC_BYTES
            } else {
                p.line_bytes
            };
            let eff = ((f64::from(payload) * BISECTION_FRACTION) as u32).max(1);
            let local_done = self.noc.traverse(data_at_llc, eff);
            self.results.push(ApplyOut {
                local_done,
                data_at_llc,
                payload,
                t0: e.t0,
                remote: e.remote,
            });
        }
        self.mailbox.clear();
    }
}

/// Mutable access to every memory shard by global id, whether the shards
/// live in one `Vec` (serial) or behind per-worker mutex guards
/// (parallel).
pub(super) trait ShardSet {
    fn shard_mut(&mut self, id: usize) -> &mut MemShard;
}

impl ShardSet for Vec<MemShard> {
    fn shard_mut(&mut self, id: usize) -> &mut MemShard {
        &mut self[id]
    }
}

/// Builds the full shard set of a system: `n_chiplets * map.per_chiplet`
/// shards, chiplet-major.
pub(super) fn build_shards(cfg: &GpuConfig, map: ShardMap, n_chiplets: u32) -> Vec<MemShard> {
    (0..n_chiplets)
        .flat_map(|_| (0..map.per_chiplet).map(|k| MemShard::new(cfg, map, k)))
        .collect()
}
