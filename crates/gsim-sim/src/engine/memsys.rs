//! The shared memory system of a chip(let) and the request path into it.
//!
//! Everything here is *shared* state — LLC slices, the in-flight fill
//! tracker, the crossbar, DRAM and the inter-chiplet network — so it is
//! only ever touched from the serial apply phase (phase B), in ascending
//! SM order. That ordering, not locks, is what keeps results
//! thread-count-invariant (DESIGN.md §10).

use gsim_mem::{BankedDramModel, DramModel, DramTiming, FillTracker, SlicedLlc};
use gsim_trace::WorkloadModel;

use super::EngineCore;
use crate::config::GpuConfig;
use gsim_noc::Crossbar;

/// Cycles an LLC slice port is occupied by a normal access (slices are
/// dual-banked: two accesses per cycle).
const SLICE_OCCUPANCY: f64 = 0.5;
/// Cycles an LLC slice port is occupied by an atomic read-modify-write:
/// the read-modify-write turnaround serialises at the slice, which is what
/// makes hot shared lines camp (Zhao et al.'s memory-side camping [65]).
const ATOMIC_OCCUPANCY: f64 = 8.0;
/// Effective fraction of a transfer charged against the bisection
/// bandwidth: under uniform traffic only ~half of the transfers cross the
/// bisection, and requests/responses ride separate physical networks, so a
/// 128 B data response consumes ~a quarter of its size in bisection
/// capacity. This keeps an LLC-resident working set serviceable at near
/// full issue rate — the property behind the paper's post-cliff
/// "no longer stalled waiting for memory" assumption (Section V.C.2).
const BISECTION_FRACTION: f64 = 0.25;
/// Response payload of an atomic (a word, not a line).
const ATOMIC_BYTES: u32 = 32;

/// What kind of request enters the shared memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum ReqKind {
    Load,
    Store,
    Atomic,
}

/// The DRAM backend: flat bandwidth server (default) or the banked
/// row-buffer model (`GpuConfig::dram_banks_per_mc > 0`).
pub(super) enum Dram {
    Flat(DramModel),
    Banked(BankedDramModel),
}

impl Dram {
    fn read(&mut self, now: u64, line: u64, bytes: u32) -> u64 {
        match self {
            Dram::Flat(d) => d.read(now, line, bytes),
            Dram::Banked(d) => d.read(now, line, bytes),
        }
    }

    fn write_back(&mut self, now: u64, line: u64, bytes: u32) {
        match self {
            Dram::Flat(d) => d.write_back(now, line, bytes),
            Dram::Banked(d) => d.write_back(now, line, bytes),
        }
    }
}

/// One memory domain: the shared memory system of a chip(let).
pub(super) struct MemDomain {
    pub noc: Crossbar,
    pub llc: SlicedLlc,
    pub slice_free: Vec<f64>,
    pub dram: Dram,
    /// In-flight LLC fills (line -> completion cycle), for miss merging.
    pub pending: FillTracker,
}

impl MemDomain {
    pub(super) fn new(cfg: &GpuConfig) -> Self {
        let llc = SlicedLlc::with_policy(
            cfg.llc_bytes_total,
            cfg.llc_slices,
            cfg.llc_ways,
            cfg.line_bytes,
            cfg.llc_policy,
        );
        Self {
            noc: Crossbar::from_gbs(cfg.noc_gbs, cfg.sm_clock_ghz, cfg.noc_hop_latency),
            slice_free: vec![0.0; cfg.llc_slices as usize],
            llc,
            dram: if cfg.dram_banks_per_mc > 0 {
                Dram::Banked(BankedDramModel::new(
                    cfg.n_mcs,
                    cfg.dram_banks_per_mc,
                    cfg.dram_gbs_per_mc,
                    cfg.sm_clock_ghz,
                    DramTiming::default(),
                ))
            } else {
                Dram::Flat(DramModel::new(
                    cfg.n_mcs,
                    cfg.dram_gbs_per_mc,
                    cfg.sm_clock_ghz,
                    cfg.dram_latency,
                ))
            },
            pending: FillTracker::new(),
        }
    }
}

impl<W: WorkloadModel> EngineCore<'_, W> {
    /// Domain owning `line` (first-touch page placement for MCM; always 0
    /// for monolithic GPUs).
    fn owner_of(&mut self, line: u64, toucher: u32) -> u32 {
        if self.domains.len() == 1 {
            return 0;
        }
        let page = line >> self.page_shift;
        *self.page_owner.entry(page).or_insert(toucher)
    }

    /// Sends one transaction into the shared memory system; returns the
    /// cycle its response reaches the requesting SM.
    pub(super) fn mem_request(
        &mut self,
        now: u64,
        sm_chiplet: u32,
        line: u64,
        kind: ReqKind,
    ) -> u64 {
        let owner = self.owner_of(line, sm_chiplet);
        let remote = owner != sm_chiplet;
        let dom = &mut self.domains[owner as usize];
        let hop = f64::from(dom.noc.hop_latency());

        // Request travel: local crossbar hop (+ chiplet crossing if remote).
        let mut t = now as f64 + hop;
        if remote {
            let icn = self.icn.as_mut().expect("remote access implies MCM");
            t += f64::from(icn.crossing_latency());
        }

        // Slice port (camping point). The slice index is hashed once and
        // reused for the tag lookup below.
        let slice = dom.llc.slice_of(line);
        let occupancy = if kind == ReqKind::Atomic {
            ATOMIC_OCCUPANCY
        } else {
            SLICE_OCCUPANCY
        };
        let start = dom.slice_free[slice as usize].max(t);
        dom.slice_free[slice as usize] = start + occupancy;
        let tag_done = start + f64::from(self.cfg.llc_latency);

        // Tag lookup; eager fill with an in-flight merge map for timing.
        let is_write = kind == ReqKind::Store;
        let line_bytes = self.cfg.line_bytes;
        let result = dom.llc.access_at(slice, line, is_write);
        self.stats.llc_accesses += 1;
        let data_at_llc = if result.is_hit() {
            match dom.pending.fill_after(line, now) {
                Some(fill) => fill as f64,
                None => tag_done,
            }
        } else {
            self.stats.llc_misses += 1;
            if let Some(victim) = result.evicted() {
                if victim.dirty {
                    dom.dram
                        .write_back(tag_done as u64, victim.line_addr, line_bytes);
                    self.stats.dram_bytes += u64::from(line_bytes);
                }
            }
            let fill = dom.dram.read(tag_done as u64, line, line_bytes);
            self.stats.dram_bytes += u64::from(line_bytes);
            dom.pending.insert(line, fill, now);
            fill as f64
        };

        // Response travel: bisection bandwidth + hop (+ chiplet crossing).
        let payload = if kind == ReqKind::Atomic {
            ATOMIC_BYTES
        } else {
            line_bytes
        };
        let eff = ((f64::from(payload) * BISECTION_FRACTION) as u32).max(1);
        let mut data_at_sm = dom.noc.traverse(data_at_llc, eff);
        if remote {
            let icn = self.icn.as_mut().expect("remote access implies MCM");
            data_at_sm = data_at_sm.max(icn.traverse(data_at_llc, owner, sm_chiplet, payload));
        }
        (data_at_sm.ceil() as u64).max(now + 1)
    }
}
