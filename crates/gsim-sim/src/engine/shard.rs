//! The intra-simulation thread pool: SMs *and* memory partitions sharded
//! across worker threads.
//!
//! Each window runs in two parallel epochs (DESIGN.md §15): first the
//! workers (plus the main thread) run the phase-A window on disjoint SM
//! shards; then, after the main thread's serial route pass has filled
//! the partition mailboxes, the workers apply their *memory* shards in
//! parallel while the main thread applies its own; the main thread
//! finishes with the serial merge pass. A lightweight epoch barrier —
//! one release and one gather per epoch — synchronises the handoffs;
//! the mutexes are uncontended by construction (a worker locks its slot
//! only between "go" and "done", the main thread only after every
//! "done").

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use gsim_trace::WorkloadModel;

use super::memsys::{MemShard, ShardSet};
use super::sm::{LaneParams, Sm};
use super::{run_window, CycleOutcome, EngineCore, FlushScratch, SmPool, WindowOut};
use crate::stats::SimStats;

/// Spin briefly, then politely: a phase-A window is microseconds long, so
/// the common case resolves within the spin budget; on oversubscribed
/// hosts the yield keeps waiters from starving the workers they wait for.
fn spin_wait(mut ready: impl FnMut() -> bool) {
    let mut spins = 0u32;
    while !ready() {
        spins += 1;
        if spins < 128 {
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}

/// Shared coordination state between the main thread and the workers.
struct Control {
    /// Epoch counter; the main thread bumps it to release the workers.
    /// Odd epochs are phase-A windows, even epochs are memory applies.
    epoch: AtomicU64,
    /// Cumulative per-worker completions; epoch * n_workers when an
    /// epoch's parallel work has fully finished.
    done: AtomicU64,
    /// Window start cycle, published before each phase-A release.
    now: AtomicU64,
    /// Tells released workers to exit instead of running an epoch.
    stop: AtomicBool,
    /// Set (via drop guard) by any worker that panics, so the main thread
    /// stops coordinating and lets the scope propagate the panic.
    failed: AtomicBool,
}

/// Sets `failed` if its thread unwinds; armed for a worker's whole life.
struct PanicSentinel<'a>(&'a AtomicBool);

impl Drop for PanicSentinel<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.store(true, Ordering::Release);
        }
    }
}

/// One execution context's SM shard and its window output buffer. Slot 0
/// belongs to the main thread; slots `1..threads` to the workers.
struct SmSlot<S> {
    sms: Vec<Sm<S>>,
    out: WindowOut,
}

/// All SMs during a flush: every slot's SM slice, re-locked by the main
/// thread. Global SM index `i` lives in slot `i / chunk` at offset
/// `i % chunk` (slots hold contiguous ascending SM ranges).
struct SlicePool<'a, S> {
    chunk: usize,
    total: usize,
    parts: Vec<&'a mut [Sm<S>]>,
}

impl<S> SmPool<S> for SlicePool<'_, S> {
    fn n_sms(&self) -> usize {
        self.total
    }

    fn sm_mut(&mut self, idx: usize) -> &mut Sm<S> {
        &mut self.parts[idx / self.chunk][idx % self.chunk]
    }
}

/// All memory shards during a flush: every owner group's guard, re-locked
/// by the main thread. Global shard id `m` lives in group `m % stride` at
/// offset `m / stride` (round-robin ownership balances partitions across
/// execution contexts).
struct GroupedShards<'a, 'g> {
    groups: &'a mut [MutexGuard<'g, Vec<MemShard>>],
    stride: usize,
}

impl ShardSet for GroupedShards<'_, '_> {
    fn shard_mut(&mut self, id: usize) -> &mut MemShard {
        &mut self.groups[id % self.stride][id / self.stride]
    }
}

/// Runs the prepared simulation with SMs and memory partitions sharded
/// over `threads` execution contexts (the calling thread plus
/// `threads - 1` workers). Bit-identical to the serial path for any
/// `threads` (and, with `window > 1`, to the serial path at the same
/// window).
pub(super) fn run_sharded<W: WorkloadModel>(
    mut core: EngineCore<'_, W>,
    sms: Vec<Sm<W::Stream>>,
    mem: Vec<MemShard>,
    threads: usize,
    window: u32,
) -> SimStats
where
    W::Stream: Send,
{
    let n_sms = sms.len();
    let n_shards = mem.len();
    let chunk = n_sms.div_ceil(threads);

    // Contiguous ascending SM shards, one slot per execution context.
    let mut slots: Vec<Mutex<SmSlot<W::Stream>>> = Vec::with_capacity(threads);
    let mut iter = sms.into_iter();
    for _ in 0..threads {
        let shard: Vec<Sm<W::Stream>> = iter.by_ref().take(chunk).collect();
        slots.push(Mutex::new(SmSlot {
            sms: shard,
            out: WindowOut::default(),
        }));
    }

    // Memory partitions round-robined over the same contexts: global
    // shard id m lives in group m % threads at offset m / threads.
    let mut groups: Vec<Vec<MemShard>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, shard) in mem.into_iter().enumerate() {
        groups[i % threads].push(shard);
    }
    let mem_groups: Vec<Mutex<Vec<MemShard>>> = groups.into_iter().map(Mutex::new).collect();

    let params = LaneParams::from_cfg(&core.cfg);
    let ap = core.apply_params();
    let n_workers = (threads - 1) as u64;
    let ctrl = Control {
        epoch: AtomicU64::new(0),
        done: AtomicU64::new(0),
        now: AtomicU64::new(0),
        stop: AtomicBool::new(false),
        failed: AtomicBool::new(false),
    };

    let mut scratch = FlushScratch::default();
    let mut final_now = 0u64;
    std::thread::scope(|scope| {
        for t in 1..threads {
            let slot = &slots[t];
            let group = &mem_groups[t];
            let ctrl = &ctrl;
            let params = &params;
            let base_sm = (t * chunk) as u32;
            scope.spawn(move || {
                let _sentinel = PanicSentinel(&ctrl.failed);
                let mut seen = 0u64;
                loop {
                    spin_wait(|| ctrl.epoch.load(Ordering::Acquire) > seen);
                    seen += 1;
                    if ctrl.stop.load(Ordering::Acquire) {
                        break;
                    }
                    if seen % 2 == 1 {
                        // Phase-A window over this worker's SM shard.
                        let now = ctrl.now.load(Ordering::Relaxed);
                        let mut slot = slot.lock().expect("worker SM slot");
                        let s = &mut *slot;
                        run_window(&mut s.sms, base_sm, now, window, params, &mut s.out);
                    } else {
                        // Apply this worker's memory partitions.
                        let mut shards = group.lock().expect("worker mem group");
                        for shard in shards.iter_mut() {
                            shard.apply(&ap);
                        }
                    }
                    ctrl.done.fetch_add(1, Ordering::Release);
                }
            });
        }

        let mut now = 0u64;
        let mut epoch = 0u64;
        'sim: loop {
            // Phase-A epoch: release the workers, run our own shard.
            epoch += 1;
            ctrl.now.store(now, Ordering::Relaxed);
            ctrl.epoch.store(epoch, Ordering::Release);
            {
                let mut slot = slots[0].lock().expect("main SM slot");
                let s = &mut *slot;
                run_window(&mut s.sms, 0, now, window, &params, &mut s.out);
            }
            spin_wait(|| {
                ctrl.done.load(Ordering::Acquire) >= epoch * n_workers
                    || ctrl.failed.load(Ordering::Acquire)
            });
            if ctrl.failed.load(Ordering::Acquire) {
                break 'sim;
            }

            // Flush: serial route, parallel apply, serial merge.
            let outcome = {
                let mut slot_guards: Vec<MutexGuard<'_, SmSlot<W::Stream>>> = slots
                    .iter()
                    .map(|m| m.lock().expect("flush SM slot"))
                    .collect();
                let mut parts = Vec::with_capacity(threads);
                let mut outs: Vec<&mut WindowOut> = Vec::with_capacity(threads);
                for g in slot_guards.iter_mut() {
                    let s = &mut **g;
                    parts.push(&mut s.sms[..]);
                    outs.push(&mut s.out);
                }
                let mut pool = SlicePool {
                    chunk,
                    total: n_sms,
                    parts,
                };
                {
                    let mut mg: Vec<MutexGuard<'_, Vec<MemShard>>> = mem_groups
                        .iter()
                        .map(|m| m.lock().expect("route mem group"))
                        .collect();
                    let mut set = GroupedShards {
                        groups: &mut mg,
                        stride: threads,
                    };
                    core.flush_route(&mut pool, &mut outs, &mut set, now, window, &mut scratch);
                }

                // Apply epoch: workers take their groups, we take ours.
                epoch += 1;
                ctrl.epoch.store(epoch, Ordering::Release);
                {
                    let mut shards = mem_groups[0].lock().expect("main mem group");
                    for shard in shards.iter_mut() {
                        shard.apply(&ap);
                    }
                }
                spin_wait(|| {
                    ctrl.done.load(Ordering::Acquire) >= epoch * n_workers
                        || ctrl.failed.load(Ordering::Acquire)
                });
                if ctrl.failed.load(Ordering::Acquire) {
                    break 'sim;
                }

                let mut mg: Vec<MutexGuard<'_, Vec<MemShard>>> = mem_groups
                    .iter()
                    .map(|m| m.lock().expect("merge mem group"))
                    .collect();
                let mut set = GroupedShards {
                    groups: &mut mg,
                    stride: threads,
                };
                core.flush_merge(&mut pool, &mut outs, &mut set, now, window, &mut scratch)
            };
            match outcome {
                CycleOutcome::Advance(t) => now = t,
                CycleOutcome::Done(t) => {
                    now = t;
                    break;
                }
            }
        }
        final_now = now;
        ctrl.stop.store(true, Ordering::Release);
        ctrl.epoch.store(epoch + 1, Ordering::Release);
    });

    // Reassemble the shard set in global id order for the final harvest.
    let mut group_iters: Vec<_> = mem_groups
        .into_iter()
        .map(|m| m.into_inner().expect("mem group intact").into_iter())
        .collect();
    let mem: Vec<MemShard> = (0..n_shards)
        .map(|id| group_iters[id % threads].next().expect("shard accounted"))
        .collect();
    core.finish(final_now, n_sms, &mem)
}
