//! The intra-simulation thread pool: SMs sharded across worker threads.
//!
//! Each cycle runs in two phases (DESIGN.md §10): workers (plus the main
//! thread) run phase A on disjoint SM shards in parallel, then the main
//! thread alone runs phase B over all SMs in ascending index. A
//! lightweight epoch barrier — one release per cycle, one gather —
//! synchronises the handoff; shard mutexes are uncontended by
//! construction (a worker locks its shard only between "go" and "done",
//! the main thread only after every "done").

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use gsim_trace::WorkloadModel;

use super::sm::{LaneParams, Sm};
use super::{CycleOutcome, EngineCore, SmPool};
use crate::stats::SimStats;

/// Spin briefly, then politely: phase A is microseconds long, so the
/// common case resolves within the spin budget; on oversubscribed hosts
/// the yield keeps waiters from starving the workers they wait for.
fn spin_wait(mut ready: impl FnMut() -> bool) {
    let mut spins = 0u32;
    while !ready() {
        spins += 1;
        if spins < 128 {
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}

/// Shared coordination state between the main thread and the workers.
struct Control {
    /// Cycle epoch; the main thread bumps it to release the workers.
    epoch: AtomicU64,
    /// Cumulative per-worker completions; epoch * n_workers when a cycle's
    /// phase A has fully finished.
    done: AtomicU64,
    /// Current simulation cycle, published before each epoch bump.
    now: AtomicU64,
    /// Tells released workers to exit instead of running a cycle.
    stop: AtomicBool,
    /// Set (via drop guard) by any worker that panics, so the main thread
    /// stops coordinating and lets the scope propagate the panic.
    failed: AtomicBool,
}

/// Sets `failed` if its thread unwinds; armed for a worker's whole life.
struct PanicSentinel<'a>(&'a AtomicBool);

impl Drop for PanicSentinel<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.store(true, Ordering::Release);
        }
    }
}

/// All SMs during a parallel run: the main thread's own shard plus every
/// worker shard, re-locked for the serial phase B. Global SM index `i`
/// lives in shard `i / chunk` at offset `i % chunk`.
struct ShardedPool<'a, 'g, S> {
    chunk: usize,
    total: usize,
    main: &'a mut [Sm<S>],
    guards: Vec<MutexGuard<'g, Vec<Sm<S>>>>,
}

impl<S> SmPool<S> for ShardedPool<'_, '_, S> {
    fn n_sms(&self) -> usize {
        self.total
    }

    fn sm_mut(&mut self, idx: usize) -> &mut Sm<S> {
        let shard = idx / self.chunk;
        let off = idx % self.chunk;
        if shard == 0 {
            &mut self.main[off]
        } else {
            &mut self.guards[shard - 1][off]
        }
    }
}

/// Runs the prepared simulation with SMs sharded over `threads` execution
/// contexts (the calling thread plus `threads - 1` workers). Bit-identical
/// to the serial path for any `threads`.
pub(super) fn run_sharded<W: WorkloadModel>(
    mut core: EngineCore<'_, W>,
    sms: Vec<Sm<W::Stream>>,
    threads: usize,
) -> SimStats
where
    W::Stream: Send,
{
    let n_sms = sms.len();
    let chunk = n_sms.div_ceil(threads);
    let mut shards: Vec<Vec<Sm<W::Stream>>> = Vec::with_capacity(threads.saturating_sub(1));
    let mut iter = sms.into_iter();
    let mut main_sms: Vec<Sm<W::Stream>> = iter.by_ref().take(chunk).collect();
    loop {
        let shard: Vec<Sm<W::Stream>> = iter.by_ref().take(chunk).collect();
        if shard.is_empty() {
            break;
        }
        shards.push(shard);
    }
    let worker_shards: Vec<Mutex<Vec<Sm<W::Stream>>>> =
        shards.into_iter().map(Mutex::new).collect();
    let n_workers = worker_shards.len() as u64;
    let params = LaneParams::from_cfg(&core.cfg);
    let ctrl = Control {
        epoch: AtomicU64::new(0),
        done: AtomicU64::new(0),
        now: AtomicU64::new(0),
        stop: AtomicBool::new(false),
        failed: AtomicBool::new(false),
    };

    let mut final_now = 0u64;
    std::thread::scope(|scope| {
        for shard in &worker_shards {
            let ctrl = &ctrl;
            let params = &params;
            scope.spawn(move || {
                let _sentinel = PanicSentinel(&ctrl.failed);
                let mut seen = 0u64;
                loop {
                    spin_wait(|| ctrl.epoch.load(Ordering::Acquire) > seen);
                    seen += 1;
                    if ctrl.stop.load(Ordering::Acquire) {
                        break;
                    }
                    let now = ctrl.now.load(Ordering::Relaxed);
                    {
                        let mut sms = shard.lock().expect("worker shard lock");
                        for sm in sms.iter_mut() {
                            sm.phase_a(now, params);
                        }
                    }
                    ctrl.done.fetch_add(1, Ordering::Release);
                }
            });
        }

        let mut now = 0u64;
        let mut epoch = 0u64;
        loop {
            // Release the workers on this cycle, take our own shard.
            epoch += 1;
            ctrl.now.store(now, Ordering::Relaxed);
            ctrl.epoch.store(epoch, Ordering::Release);
            for sm in main_sms.iter_mut() {
                sm.phase_a(now, &params);
            }
            // Gather; a worker panic aborts coordination and re-raises
            // through the scope join below.
            let target = epoch * n_workers;
            spin_wait(|| {
                ctrl.done.load(Ordering::Acquire) >= target || ctrl.failed.load(Ordering::Acquire)
            });
            if ctrl.failed.load(Ordering::Acquire) {
                break;
            }
            // Serial apply over all SMs, ascending.
            let mut pool = ShardedPool {
                chunk,
                total: n_sms,
                main: &mut main_sms,
                guards: worker_shards
                    .iter()
                    .map(|m| m.lock().expect("apply-phase shard lock"))
                    .collect(),
            };
            match core.phase_b(&mut pool, now) {
                CycleOutcome::Advance(t) => now = t,
                CycleOutcome::Done(t) => {
                    now = t;
                    break;
                }
            }
        }
        final_now = now;
        ctrl.stop.store(true, Ordering::Release);
        ctrl.epoch.store(epoch + 1, Ordering::Release);
    });

    core.finish(final_now, n_sms)
}
