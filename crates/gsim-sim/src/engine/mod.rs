//! The cycle-level simulation engine.
//!
//! One engine serves both monolithic GPUs and multi-chiplet (MCM) GPUs: a
//! monolithic GPU is a single memory *domain* (crossbar + sliced LLC +
//! DRAM); an MCM GPU is one domain per chiplet plus an inter-chiplet
//! network and first-touch page placement.
//!
//! The engine advances one cycle at a time while any SM can issue, and
//! jumps directly to the next warp wake-up when none can — memory-bound
//! phases therefore cost little simulation time, exactly like the
//! event-driven cores of production simulators.
//!
//! Every cycle is executed in two phases (DESIGN.md §10):
//!
//! * **Phase A** (parallelisable): each SM independently drains its wake
//!   heap, picks a warp and issues at most one instruction, staging any
//!   shared-memory-system work in its [`sm::LaneOut`].
//! * **Phase B** (always serial, ascending SM index): staged requests are
//!   applied to the shared [`memsys::MemDomain`]s, CTA completions drive
//!   dispatch and kernel sequencing, and the cycle's control-flow decision
//!   (advance, jump, finish) is made.
//!
//! Because phase A touches only per-SM state and phase B runs in a fixed
//! order on one thread, the simulation's results are bit-identical for
//! any [`GpuConfig::sim_threads`] value.

mod memsys;
mod shard;
mod sm;

use std::cmp::Reverse;
use std::collections::HashMap;
use std::time::Instant;

use gsim_mem::MshrOutcome;
use gsim_noc::ChipletInterconnect;
use gsim_trace::{Workload, WorkloadModel};

use crate::chiplet::ChipletConfig;
use crate::config::GpuConfig;
use crate::stats::SimStats;
use memsys::{MemDomain, ReqKind};
use sm::{LaneParams, LineKind, Sm, WarpCtx};

/// Mutable access to every SM by global index, regardless of whether the
/// SMs live in one `Vec` (serial) or are spread over shard mutexes
/// (parallel). Phase B is written against this so both execution paths
/// share one code path — the determinism argument in one place.
trait SmPool<S> {
    fn n_sms(&self) -> usize;
    fn sm_mut(&mut self, idx: usize) -> &mut Sm<S>;
}

impl<S> SmPool<S> for Vec<Sm<S>> {
    fn n_sms(&self) -> usize {
        self.len()
    }

    fn sm_mut(&mut self, idx: usize) -> &mut Sm<S> {
        &mut self[idx]
    }
}

/// Phase B's verdict on how the simulation proceeds.
enum CycleOutcome {
    /// Continue at this cycle (either `now + 1` or a jump target).
    Advance(u64),
    /// The simulation is over; the final cycle count is attached.
    Done(u64),
}

/// Everything the engine owns *besides* the per-SM lanes: configuration,
/// the shared memory domains, kernel sequencing and statistics. During a
/// parallel run this stays on the coordinating thread; worker threads see
/// only their SM shard.
struct EngineCore<'wl, W: WorkloadModel> {
    cfg: GpuConfig,
    wl: &'wl W,
    domains: Vec<MemDomain>,
    icn: Option<ChipletInterconnect>,
    page_owner: HashMap<u64, u32>,
    page_shift: u32,
    // kernel sequencing
    kernel_idx: usize,
    next_cta: u32,
    ctas_in_flight: u32,
    dispatch_age: u64,
    /// Instruction milestones bounding the sustained-IPC window.
    milestone_10: u64,
    milestone_90: u64,
    /// Cycle at which the current kernel started (for per-kernel cycles).
    kernel_start_cycle: u64,
    stats: SimStats,
}

/// The GPU timing simulator.
///
/// Create one per (configuration, workload) pair and call
/// [`Simulator::run`]; the simulator is deterministic for a given workload
/// seed — including across [`GpuConfig::sim_threads`] settings, which only
/// change how the host work is scheduled.
pub struct Simulator<'wl, W: WorkloadModel = Workload> {
    core: EngineCore<'wl, W>,
    sms: Vec<Sm<W::Stream>>,
}

impl<'wl, W: WorkloadModel> Simulator<'wl, W> {
    /// Creates a monolithic-GPU simulation of `wl` on `cfg`. `wl` may be
    /// a synthetic [`Workload`] or a recorded
    /// [`TracedWorkload`](gsim_trace::TracedWorkload).
    pub fn new(cfg: GpuConfig, wl: &'wl W) -> Self {
        let sms = (0..cfg.n_sms).map(|_| Sm::new(&cfg, 0)).collect();
        let domains = vec![MemDomain::new(&cfg)];
        Self {
            core: EngineCore {
                domains,
                icn: None,
                page_owner: HashMap::new(),
                page_shift: 5,
                kernel_idx: 0,
                next_cta: 0,
                ctas_in_flight: 0,
                dispatch_age: 0,
                milestone_10: wl.approx_warp_instrs() / 10,
                milestone_90: wl.approx_warp_instrs() * 9 / 10,
                kernel_start_cycle: 0,
                stats: SimStats::default(),
                cfg,
                wl,
            },
            sms,
        }
    }

    /// Creates a multi-chiplet simulation of `wl` on `mcm` (Section VII.D):
    /// one memory domain per chiplet, first-touch page placement, and a
    /// bandwidth-limited inter-chiplet network for remote accesses.
    pub fn new_mcm(mcm: &ChipletConfig, wl: &'wl W) -> Self {
        let per = &mcm.chiplet;
        let n_chiplets = mcm.n_chiplets;
        let total_sms = per.n_sms * n_chiplets;
        let sms = (0..total_sms)
            .map(|i| Sm::new(per, i / per.n_sms))
            .collect();
        let domains = (0..n_chiplets).map(|_| MemDomain::new(per)).collect();
        let mut cfg = per.clone();
        cfg.n_sms = total_sms;
        Self {
            core: EngineCore {
                domains,
                icn: Some(ChipletInterconnect::from_gbs(
                    n_chiplets,
                    mcm.interchiplet_gbs_per_chiplet,
                    per.sm_clock_ghz,
                    mcm.interchiplet_latency,
                )),
                page_owner: HashMap::new(),
                page_shift: mcm.page_lines.trailing_zeros(),
                kernel_idx: 0,
                next_cta: 0,
                ctas_in_flight: 0,
                dispatch_age: 0,
                milestone_10: wl.approx_warp_instrs() / 10,
                milestone_90: wl.approx_warp_instrs() * 9 / 10,
                kernel_start_cycle: 0,
                stats: SimStats::default(),
                cfg,
                wl,
            },
            sms,
        }
    }

    /// The effective configuration (for MCM runs, the per-chiplet config
    /// with `n_sms` set to the system total).
    pub fn config(&self) -> &GpuConfig {
        &self.core.cfg
    }

    /// Runs the workload to completion and returns the statistics.
    ///
    /// With `sim_threads > 1` the per-SM phase of each cycle is sharded
    /// across that many execution contexts (hence `W::Stream: Send`); the
    /// results are bit-identical to the serial run either way.
    pub fn run(mut self) -> SimStats
    where
        W::Stream: Send,
    {
        let wall = Instant::now();
        let threads = (self.core.cfg.sim_threads.max(1) as usize).min(self.sms.len().max(1));
        self.core.dispatch_round_robin(&mut self.sms);
        let mut stats = if threads <= 1 {
            run_serial(self.core, self.sms)
        } else {
            shard::run_sharded(self.core, self.sms, threads)
        };
        stats.sim_wall_seconds = wall.elapsed().as_secs_f64();
        stats
    }
}

/// The serial driver: both phases inline on the calling thread.
fn run_serial<W: WorkloadModel>(
    mut core: EngineCore<'_, W>,
    mut sms: Vec<Sm<W::Stream>>,
) -> SimStats {
    let params = LaneParams::from_cfg(&core.cfg);
    let n_sms = sms.len();
    let mut now = 0u64;
    loop {
        for sm in sms.iter_mut() {
            sm.phase_a(now, &params);
        }
        match core.phase_b(&mut sms, now) {
            CycleOutcome::Advance(t) => now = t,
            CycleOutcome::Done(t) => {
                now = t;
                break;
            }
        }
    }
    core.finish(now, n_sms)
}

impl<W: WorkloadModel> EngineCore<'_, W> {
    /// `(n_ctas, threads_per_cta)` of the kernel currently dispatching.
    fn cur_grid(&self) -> (u32, u32) {
        self.wl.grid(self.kernel_idx)
    }

    /// Dispatches CTAs of the current kernel round-robin across all SMs
    /// (Table III: round-robin CTA scheduling), used at kernel launch.
    fn dispatch_round_robin<P: SmPool<W::Stream>>(&mut self, pool: &mut P) {
        loop {
            let mut progress = false;
            for i in 0..pool.n_sms() {
                if self.try_dispatch_one(pool, i) {
                    progress = true;
                }
            }
            if !progress {
                return;
            }
        }
    }

    /// Dispatches at most one CTA of the current kernel onto `sm_idx`;
    /// returns whether one was placed.
    fn try_dispatch_one<P: SmPool<W::Stream>>(&mut self, pool: &mut P, sm_idx: usize) -> bool {
        let kernel_idx = self.kernel_idx;
        if kernel_idx >= self.wl.n_kernels() {
            return false;
        }
        let (n_ctas, threads_per_cta) = self.cur_grid();
        let warps_per_cta = self.wl.warps_per_cta(kernel_idx);
        let max_ctas = self.cfg.ctas_per_sm(threads_per_cta);
        if self.next_cta >= n_ctas {
            return false;
        }
        {
            let sm = pool.sm_mut(sm_idx);
            if sm.cta_remaining.len() >= max_ctas as usize
                || (sm.free_slots.len() as u32) < warps_per_cta
            {
                return false;
            }
        }
        let cta = self.next_cta;
        self.next_cta += 1;
        self.ctas_in_flight += 1;
        for w in 0..warps_per_cta {
            let stream = self.wl.warp_stream(kernel_idx, cta, w);
            self.dispatch_age += 1;
            let age = self.dispatch_age;
            let sm = pool.sm_mut(sm_idx);
            let slot = sm.free_slots.pop().expect("checked free slots");
            sm.warps[slot as usize] = Some(WarpCtx {
                stream,
                pending_compute: 0,
                cta,
                age,
            });
            sm.live_warps += 1;
            sm.insert_ready(slot);
        }
        pool.sm_mut(sm_idx).cta_remaining.insert(cta, warps_per_cta);
        true
    }

    /// Global bookkeeping for one CTA that completed on `sm_idx` this
    /// cycle: backfill dispatch, and advance the kernel sequence when the
    /// grid has drained.
    fn on_cta_completed<P: SmPool<W::Stream>>(&mut self, pool: &mut P, sm_idx: usize, now: u64) {
        self.ctas_in_flight -= 1;
        self.stats.ctas_executed += 1;
        self.try_dispatch_one(pool, sm_idx);
        if self.ctas_in_flight == 0 && self.next_cta >= self.cur_grid().0 {
            // Kernel barrier reached: move to the next kernel.
            self.stats.kernels_executed += 1;
            self.stats.kernel_cycles.push(now - self.kernel_start_cycle);
            self.kernel_start_cycle = now;
            self.kernel_idx += 1;
            self.next_cta = 0;
            if self.kernel_idx < self.wl.n_kernels() {
                self.dispatch_round_robin(pool);
            }
        }
    }

    /// The serial half of a cycle: applies every SM's staged phase-A
    /// output to the shared state in ascending SM order, then decides how
    /// the simulation proceeds. Must be called exactly once per cycle,
    /// after every SM's `phase_a`.
    fn phase_b<P: SmPool<W::Stream>>(&mut self, pool: &mut P, now: u64) -> CycleOutcome {
        let n = pool.n_sms();
        let l1_lat = u64::from(self.cfg.l1_latency);
        let mut any_issue = false;
        for i in 0..n {
            // Per-SM counters accumulated without touching shared state.
            let (completed, issued, live) = {
                let sm = pool.sm_mut(i);
                self.stats.warp_instrs += sm.out.warp_instrs;
                self.stats.l1_accesses += sm.out.l1_accesses;
                self.stats.l1_misses += sm.out.l1_misses;
                (sm.out.completed_ctas, sm.out.issued, sm.out.live)
            };
            // CTA completions: dispatch backfill and kernel sequencing.
            for _ in 0..completed {
                self.on_cta_completed(pool, i, now);
            }
            // The staged memory instruction, applied in line order.
            let sm = pool.sm_mut(i);
            if let Some(mi) = sm.out.mem.take() {
                let chiplet = sm.chiplet;
                let mut wake = mi.base_wake;
                for r in 0..sm.out.reqs.len() {
                    let req = sm.out.reqs[r];
                    match req.kind {
                        LineKind::MissLoad => {
                            if sm.mshr.is_full() {
                                sm.mshr.complete_up_to(now);
                            }
                            let fill =
                                self.mem_request(now + l1_lat, chiplet, req.line, ReqKind::Load);
                            match sm.mshr.register(req.line, fill) {
                                MshrOutcome::Allocated | MshrOutcome::Full => {
                                    wake = wake.max(fill);
                                }
                                MshrOutcome::Merged(f) => {
                                    // A merge cannot be slower than a re-fetch.
                                    wake = wake.max(f.min(fill));
                                }
                            }
                        }
                        LineKind::Store => {
                            let _ =
                                self.mem_request(now + l1_lat, chiplet, req.line, ReqKind::Store);
                        }
                        LineKind::Direct(kind) => {
                            let ready = self.mem_request(now, chiplet, req.line, kind);
                            wake = wake.max(ready);
                        }
                    }
                }
                if mi.blocks {
                    sm.blocked.push(Reverse((wake, mi.warp)));
                } else {
                    sm.insert_ready(mi.warp);
                }
            }
            if issued {
                any_issue = true;
            } else if live {
                self.stats.mem_stall_sm_cycles += 1;
            } else {
                self.stats.idle_sm_cycles += 1;
            }
        }
        if self.stats.cycle_at_10pct == 0 && self.stats.warp_instrs >= self.milestone_10 {
            self.stats.cycle_at_10pct = now + 1;
        }
        if self.stats.cycle_at_90pct == 0 && self.stats.warp_instrs >= self.milestone_90 {
            self.stats.cycle_at_90pct = now + 1;
            self.stats.warp_instrs_window = self.stats.warp_instrs - self.milestone_10;
        }
        if self.kernel_idx >= self.wl.n_kernels() {
            return CycleOutcome::Done(now + 1);
        }
        if any_issue {
            return CycleOutcome::Advance(now + 1);
        }
        // Nothing issued anywhere: jump to the next wake-up.
        let mut next_wake: Option<u64> = None;
        let mut any_ready = false;
        for i in 0..n {
            let sm = pool.sm_mut(i);
            if let Some(&Reverse((t, _))) = sm.blocked.peek() {
                next_wake = Some(next_wake.map_or(t, |m| m.min(t)));
            }
            if sm.has_ready() {
                any_ready = true;
            }
        }
        if any_ready {
            // A kernel boundary inside this cycle made warps ready on SMs
            // that had already issued their attempt; give them the next
            // cycle.
            return CycleOutcome::Advance(now + 1);
        }
        let Some(next_wake) = next_wake else {
            // No ready warps, no blocked warps, nothing issued: completion.
            return CycleOutcome::Done(now);
        };
        let dt = next_wake.saturating_sub(now + 1);
        if dt > 0 {
            for i in 0..n {
                if pool.sm_mut(i).live_warps > 0 {
                    self.stats.mem_stall_sm_cycles += dt;
                } else {
                    self.stats.idle_sm_cycles += dt;
                }
            }
        }
        CycleOutcome::Advance(next_wake)
    }

    /// Seals the statistics once the last cycle has run.
    fn finish(mut self, now: u64, n_sms: usize) -> SimStats {
        self.stats.cycles = now;
        self.stats.total_sm_cycles = now * n_sms as u64;
        self.stats.thread_instrs = self.stats.warp_instrs * 32;
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsim_trace::{Kernel, MemScale, PatternKind, PatternSpec};

    fn small_cfg(n_sms: u32) -> GpuConfig {
        GpuConfig::paper_target(n_sms, MemScale::default())
    }

    fn sweep_workload(footprint_lines: u64, passes: u32, ctas: u32) -> Workload {
        let spec = PatternSpec::new(PatternKind::GlobalSweep { passes }, footprint_lines)
            .compute_per_mem(1.5);
        Workload::new("t", 9, vec![Kernel::new("k", ctas, 256, spec)])
    }

    /// Runs `wl` on `cfg` serially and with `sim_threads` in {2, 4} and
    /// asserts bit-identical statistics — the tentpole's determinism
    /// contract.
    fn assert_thread_invariant(cfg: &GpuConfig, wl: &Workload) {
        let serial = Simulator::new(cfg.clone(), wl).run();
        for threads in [2u32, 4] {
            let mut c = cfg.clone();
            c.sim_threads = threads;
            let parallel = Simulator::new(c, wl).run();
            serial.assert_deterministic_eq(&parallel);
        }
    }

    #[test]
    fn compute_only_workload_reaches_full_issue_rate() {
        let spec = PatternSpec::new(PatternKind::Streaming, 1)
            .compute_per_mem(0.0)
            .tail_compute(5_000);
        let wl = Workload::new("c", 1, vec![Kernel::new("k", 96, 256, spec)]);
        let stats = Simulator::new(small_cfg(8), &wl).run();
        // 8 SMs x 1 warp instr/cycle = up to 256 thread IPC.
        assert!(
            stats.ipc() > 0.9 * 256.0,
            "compute-bound IPC {} should approach 256",
            stats.ipc()
        );
        assert!(stats.f_mem() < 0.05);
    }

    #[test]
    fn memory_bound_workload_stalls() {
        let wl = sweep_workload(200_000, 2, 96);
        let stats = Simulator::new(small_cfg(8), &wl).run();
        assert!(stats.f_mem() > 0.2, "f_mem {} too low", stats.f_mem());
        assert!(stats.mpki() > 1.0, "MPKI {}", stats.mpki());
        assert!(stats.ipc() < 200.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let wl = sweep_workload(20_000, 2, 48);
        let a = Simulator::new(small_cfg(8), &wl).run();
        let b = Simulator::new(small_cfg(8), &wl).run();
        a.assert_deterministic_eq(&b);
    }

    #[test]
    fn all_instructions_are_executed() {
        let wl = sweep_workload(10_000, 2, 48);
        let stats = Simulator::new(small_cfg(8), &wl).run();
        assert_eq!(stats.warp_instrs, wl.approx_warp_instrs());
        assert_eq!(stats.ctas_executed, 48);
        assert_eq!(stats.kernels_executed, 1);
    }

    #[test]
    fn fitting_working_set_is_faster_than_thrashing() {
        // Same instruction volume; one footprint fits the 8-SM LLC
        // (2.125 MB / 8 = 2176 lines), one does not.
        let fits = sweep_workload(1_500, 8, 48);
        let thrash = sweep_workload(60_000, 8, 48);
        let f = Simulator::new(small_cfg(8), &fits).run();
        let t = Simulator::new(small_cfg(8), &thrash).run();
        assert!(
            f.ipc() > 1.5 * t.ipc() * (f.warp_instrs as f64 / t.warp_instrs as f64).min(1.0),
            "fitting {} vs thrashing {}",
            f.ipc(),
            t.ipc()
        );
        assert!(f.mpki() < t.mpki() / 2.0);
    }

    #[test]
    fn more_sms_with_proportional_resources_scale_throughput() {
        let wl = sweep_workload(60_000, 3, 768);
        let s8 = Simulator::new(small_cfg(8), &wl).run();
        let s16 = Simulator::new(small_cfg(16), &wl).run();
        let speedup = s16.ipc() / s8.ipc();
        assert!(
            (1.5..2.5).contains(&speedup),
            "8->16 SM speedup {speedup} should be ~2 for a pre-cliff sweep"
        );
    }

    #[test]
    fn too_few_ctas_leave_sms_idle() {
        // 4 CTAs round-robin onto an 8-SM machine: half the SMs idle.
        let wl = sweep_workload(20_000, 4, 4);
        let stats = Simulator::new(small_cfg(8), &wl).run();
        assert!(stats.f_idle() > 0.3, "f_idle {}", stats.f_idle());
    }

    #[test]
    fn round_robin_spreads_small_grids() {
        // 8 CTAs on 8 SMs: one per SM, so no SM sits idle.
        let wl = sweep_workload(20_000, 4, 8);
        let stats = Simulator::new(small_cfg(8), &wl).run();
        assert!(stats.f_idle() < 0.15, "f_idle {}", stats.f_idle());
    }

    #[test]
    fn tiny_mid_kernel_does_not_end_the_run() {
        // Regression: a kernel smaller than one SM's slot budget used to
        // strand its freshly dispatched warps when the previous kernel's
        // last warp retired mid-issue-phase, ending the simulation early.
        let spec = || PatternSpec::new(PatternKind::Streaming, 5_000).compute_per_mem(1.0);
        let wl = Workload::new(
            "seq",
            3,
            vec![
                Kernel::new("big1", 96, 256, spec()),
                Kernel::new("tiny", 4, 256, spec()),
                Kernel::new("big2", 96, 256, spec()),
            ],
        );
        let stats = Simulator::new(small_cfg(8), &wl).run();
        assert_eq!(stats.kernels_executed, 3);
        assert_eq!(stats.ctas_executed, 196);
        assert_eq!(stats.warp_instrs, wl.approx_warp_instrs());
    }

    #[test]
    fn trace_replay_is_cycle_identical_to_execution_driven() {
        // The trace-driven front-end (Accel-Sim's mode of operation) must
        // reproduce the execution-driven run exactly.
        let wl = sweep_workload(10_000, 2, 48);
        let mut bytes = Vec::new();
        gsim_trace::write_trace(&wl, &mut bytes).expect("trace serialises");
        let traced = gsim_trace::TracedWorkload::read(&bytes[..]).expect("trace loads");
        let a = Simulator::new(small_cfg(8), &wl).run();
        let b = Simulator::new(small_cfg(8), &traced).run();
        a.assert_deterministic_eq(&b);
    }

    #[test]
    fn banked_dram_punishes_random_traffic_more_than_streams() {
        let mut banked_cfg = small_cfg(8);
        banked_cfg.dram_banks_per_mc = 16;
        let stream = sweep_workload(60_000, 2, 96);
        let random = {
            let spec = PatternSpec::new(PatternKind::PointerChase, 60_000)
                .mem_ops_per_warp(40)
                .compute_per_mem(1.5);
            Workload::new("rnd", 5, vec![Kernel::new("k", 96, 256, spec)])
        };
        let slowdown = |wl: &Workload| {
            let flat = Simulator::new(small_cfg(8), wl).run().ipc();
            let banked = Simulator::new(banked_cfg.clone(), wl).run().ipc();
            flat / banked
        };
        let s_stream = slowdown(&stream);
        let s_random = slowdown(&random);
        assert!(
            s_random > s_stream,
            "row-buffer locality must matter: stream x{s_stream:.2} vs random x{s_random:.2}"
        );
    }

    #[test]
    fn mcm_simulation_runs_and_scales_with_chiplets() {
        use crate::chiplet::ChipletConfig;
        let spec =
            PatternSpec::new(PatternKind::GlobalSweep { passes: 1 }, 60_000).compute_per_mem(2.0);
        let kernel = Kernel::new("k", 1536, 256, spec);
        let wl2 = Workload::new("m2", 11, vec![kernel.clone()]);
        let mcm2 = ChipletConfig::paper_mcm(2, MemScale::default());
        let mcm4 = ChipletConfig::paper_mcm(4, MemScale::default());
        let s2 = Simulator::new_mcm(&mcm2, &wl2).run();
        let s4 = Simulator::new_mcm(&mcm4, &wl2).run();
        assert_eq!(s2.warp_instrs, wl2.approx_warp_instrs());
        assert!(
            s4.ipc() > 1.3 * s2.ipc(),
            "more chiplets must help: {} -> {}",
            s2.ipc(),
            s4.ipc()
        );
    }

    #[test]
    fn mcm_is_deterministic() {
        use crate::chiplet::ChipletConfig;
        let spec = PatternSpec::new(PatternKind::PointerChase, 20_000)
            .mem_ops_per_warp(10)
            .compute_per_mem(1.0);
        let wl = Workload::new("m", 12, vec![Kernel::new("k", 512, 256, spec)]);
        let mcm = ChipletConfig::paper_mcm(2, MemScale::default());
        let a = Simulator::new_mcm(&mcm, &wl).run();
        let b = Simulator::new_mcm(&mcm, &wl).run();
        a.assert_deterministic_eq(&b);
    }

    #[test]
    fn monolithic_beats_equal_size_mcm_on_shared_data() {
        // Remote first-touch traffic through the 900 GB/s inter-chiplet
        // links must cost something relative to a monolithic chip with
        // the same SM count and aggregate resources.
        use crate::chiplet::ChipletConfig;
        let spec =
            PatternSpec::new(PatternKind::GlobalSweep { passes: 1 }, 120_000).compute_per_mem(1.0);
        let kernel = Kernel::new("k", 1536, 256, spec);
        let wl = Workload::new("mono-vs-mcm", 13, vec![kernel.clone(), kernel]);
        let mcm = ChipletConfig::paper_mcm(2, MemScale::default());
        let mono = GpuConfig {
            n_sms: 128,
            sm_clock_ghz: mcm.chiplet.sm_clock_ghz,
            llc_bytes_total: mcm.chiplet.llc_bytes_total * 2,
            llc_slices: mcm.chiplet.llc_slices * 2,
            noc_gbs: mcm.chiplet.noc_gbs * 2.0,
            n_mcs: mcm.chiplet.n_mcs * 2,
            ..GpuConfig::paper_target(128, MemScale::default())
        };
        let s_mcm = Simulator::new_mcm(&mcm, &wl).run();
        let s_mono = Simulator::new(mono, &wl).run();
        assert!(
            s_mono.ipc() > s_mcm.ipc(),
            "inter-chiplet crossing must cost: mono {} vs mcm {}",
            s_mono.ipc(),
            s_mcm.ipc()
        );
    }

    #[test]
    fn kernels_execute_sequentially() {
        let spec = || PatternSpec::new(PatternKind::Streaming, 5_000).compute_per_mem(1.0);
        let wl = Workload::new(
            "seq",
            3,
            vec![
                Kernel::new("k0", 48, 256, spec()),
                Kernel::new("k1", 48, 256, spec()),
            ],
        );
        let stats = Simulator::new(small_cfg(8), &wl).run();
        assert_eq!(stats.kernels_executed, 2);
        assert_eq!(stats.ctas_executed, 96);
    }

    // ---- sim_threads determinism contract (DESIGN.md §10) ----

    #[test]
    fn sim_threads_bit_identical_8sm() {
        let wl = sweep_workload(20_000, 2, 48);
        assert_thread_invariant(&small_cfg(8), &wl);
    }

    #[test]
    fn sim_threads_bit_identical_8sm_pointer_chase() {
        let spec = PatternSpec::new(PatternKind::PointerChase, 30_000)
            .mem_ops_per_warp(16)
            .compute_per_mem(1.0);
        let wl = Workload::new("pc", 7, vec![Kernel::new("k", 64, 256, spec)]);
        assert_thread_invariant(&small_cfg(8), &wl);
    }

    #[test]
    fn sim_threads_bit_identical_64sm_memory_bound() {
        let wl = sweep_workload(150_000, 1, 512);
        assert_thread_invariant(&small_cfg(64), &wl);
    }

    #[test]
    fn sim_threads_bit_identical_multi_kernel_boundaries() {
        // Kernel boundaries mid-run exercise the dispatch/kernel-advance
        // path of the serial apply phase.
        let spec = || PatternSpec::new(PatternKind::Streaming, 5_000).compute_per_mem(1.0);
        let wl = Workload::new(
            "seq",
            3,
            vec![
                Kernel::new("big1", 96, 256, spec()),
                Kernel::new("tiny", 4, 256, spec()),
                Kernel::new("big2", 96, 256, spec()),
            ],
        );
        assert_thread_invariant(&small_cfg(8), &wl);
    }

    #[test]
    fn sim_threads_bit_identical_mcm() {
        use crate::chiplet::ChipletConfig;
        let spec = PatternSpec::new(PatternKind::PointerChase, 20_000)
            .mem_ops_per_warp(10)
            .compute_per_mem(1.0);
        let wl = Workload::new("m", 12, vec![Kernel::new("k", 512, 256, spec)]);
        let mcm = ChipletConfig::paper_mcm(2, MemScale::default());
        let serial = Simulator::new_mcm(&mcm, &wl).run();
        for threads in [2u32, 4] {
            let mut m = mcm.clone();
            m.chiplet.sim_threads = threads;
            let parallel = Simulator::new_mcm(&m, &wl).run();
            serial.assert_deterministic_eq(&parallel);
        }
    }

    #[test]
    fn sim_threads_beyond_sm_count_is_clamped() {
        let wl = sweep_workload(10_000, 1, 24);
        let serial = Simulator::new(small_cfg(8), &wl).run();
        let mut c = small_cfg(8);
        c.sim_threads = 64; // clamps to 8 execution contexts
        let parallel = Simulator::new(c, &wl).run();
        serial.assert_deterministic_eq(&parallel);
    }

    #[test]
    fn sim_threads_zero_selects_serial_path() {
        let wl = sweep_workload(5_000, 1, 16);
        let serial = Simulator::new(small_cfg(8), &wl).run();
        let mut c = small_cfg(8);
        c.sim_threads = 0;
        let zero = Simulator::new(c, &wl).run();
        serial.assert_deterministic_eq(&zero);
    }
}
