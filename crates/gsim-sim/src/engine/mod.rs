//! The cycle-level simulation engine.
//!
//! One engine serves both monolithic GPUs and multi-chiplet (MCM) GPUs: a
//! monolithic GPU is a single chip(let) whose memory system is divided
//! into owner-sharded partitions (slice groups + their memory
//! controllers); an MCM GPU has those partitions per chiplet plus an
//! inter-chiplet network and first-touch page placement.
//!
//! The engine advances in *windows* of `sync_slack + 1` cycles
//! (DESIGN.md §15). Within a window:
//!
//! * **Phase A** (parallelisable): each SM independently drains its wake
//!   heap, picks warps and issues, buffering event records
//!   ([`WinRec`]) for each cycle that staged shared-memory work or
//!   completed a CTA.
//! * **Flush** (at the window barrier): a serial *route* pass walks the
//!   records in (cycle, SM) order — CTA completions, dispatch, kernel
//!   sequencing, first-touch page placement — and bins line requests into
//!   per-partition mailboxes; the partitions then *apply* their mailboxes
//!   in parallel (each touches only its own LLC slices, DRAM channels,
//!   crossbar share and fill tracker); a serial *merge* pass finishes in
//!   global order (MSHR registration, warp wake-ups, inter-chiplet legs)
//!   and makes the control-flow decision (advance, jump, finish).
//!
//! With the default `sync_slack = 0` the window is one cycle and every
//! result is bit-identical for any [`GpuConfig::sim_threads`] value: the
//! route and merge passes run in a fixed global order, and each partition
//! sees the same mailbox sequence regardless of which thread applies it.
//! With slack `s > 0`, SMs run up to `s` cycles past the merge barrier;
//! results drift within a small envelope but stay deterministic for a
//! given slack — and still thread-count-invariant, because the window
//! structure does not depend on the host thread count.

mod memsys;
mod shard;
mod sm;

use std::cmp::Reverse;
use std::collections::HashMap;
use std::time::Instant;

use gsim_mem::MshrOutcome;
use gsim_noc::ChipletInterconnect;
use gsim_trace::{Workload, WorkloadModel};

use crate::chiplet::ChipletConfig;
use crate::config::GpuConfig;
use crate::stats::SimStats;
use memsys::{build_shards, ApplyOut, ApplyParams, MemShard, ReqKind, ShardMap, ShardSet};
use sm::{LaneParams, LineKind, LineReq, MemIssue, Sm, WarpCtx};

/// Mutable access to every SM by global index, regardless of whether the
/// SMs live in one `Vec` (serial) or are spread over shard mutexes
/// (parallel). The flush passes are written against this so both
/// execution paths share one code path — the determinism argument in one
/// place.
trait SmPool<S> {
    fn n_sms(&self) -> usize;
    fn sm_mut(&mut self, idx: usize) -> &mut Sm<S>;
}

impl<S> SmPool<S> for Vec<Sm<S>> {
    fn n_sms(&self) -> usize {
        self.len()
    }

    fn sm_mut(&mut self, idx: usize) -> &mut Sm<S> {
        &mut self[idx]
    }
}

/// The flush's verdict on how the simulation proceeds.
enum CycleOutcome {
    /// Continue at this cycle (either the next window start or a jump
    /// target).
    Advance(u64),
    /// The simulation is over; the final cycle count is attached.
    Done(u64),
}

/// One SM's buffered phase-A output for one cycle that produced events
/// (a staged memory instruction and/or completed CTAs). Pure-compute and
/// idle cycles leave no record — their statistics live in the per-cycle
/// counters of [`WindowOut`].
struct WinRec {
    cycle: u64,
    sm: u32,
    completed: u32,
    mem: Option<MemIssue>,
    reqs: Vec<LineReq>,
}

/// Everything one SM shard hands to the flush for one window. Owned by
/// the execution context that ran the shard and reused across windows so
/// the steady state allocates nothing.
#[derive(Default)]
struct WindowOut {
    /// Event records, sorted by (cycle, SM) by construction.
    recs: Vec<WinRec>,
    /// Per window-cycle counts of SMs that issued / stalled on memory /
    /// sat idle, indexed by offset from the window start. Issue counts
    /// double as per-cycle warp-instruction counts (at most one
    /// instruction issues per SM per cycle).
    issued: Vec<u32>,
    stalled: Vec<u32>,
    idle: Vec<u32>,
    l1_accesses: u64,
    l1_misses: u64,
    /// Recycled request buffers for `WinRec::reqs`.
    spare: Vec<Vec<LineReq>>,
}

/// Runs `len` cycles of phase A starting at `start` over one SM shard,
/// buffering events and per-cycle counters into `out`. Touches only the
/// shard's SMs, so disjoint shards run on worker threads.
fn run_window<S: gsim_trace::WarpStream>(
    sms: &mut [Sm<S>],
    base_sm: u32,
    start: u64,
    len: u32,
    params: &LaneParams,
    out: &mut WindowOut,
) {
    out.issued.clear();
    out.issued.resize(len as usize, 0);
    out.stalled.clear();
    out.stalled.resize(len as usize, 0);
    out.idle.clear();
    out.idle.resize(len as usize, 0);
    out.l1_accesses = 0;
    out.l1_misses = 0;
    debug_assert!(out.recs.is_empty(), "flush must drain records");
    for w in 0..len {
        let now = start + u64::from(w);
        for (j, sm) in sms.iter_mut().enumerate() {
            sm.phase_a(now, params);
            out.l1_accesses += sm.out.l1_accesses;
            out.l1_misses += sm.out.l1_misses;
            if sm.out.issued {
                out.issued[w as usize] += 1;
            } else if sm.out.live {
                out.stalled[w as usize] += 1;
            } else {
                out.idle[w as usize] += 1;
            }
            if let Some(mi) = sm.out.mem {
                // Non-blocking issuers (stores) continue immediately:
                // re-queue locally, exactly where the serial apply would.
                if !mi.blocks {
                    sm.insert_ready(mi.warp);
                }
            }
            if sm.out.mem.is_some() || sm.out.completed_ctas > 0 {
                let fresh = out.spare.pop().unwrap_or_default();
                let reqs = std::mem::replace(&mut sm.out.reqs, fresh);
                out.recs.push(WinRec {
                    cycle: now,
                    sm: base_sm + j as u32,
                    completed: sm.out.completed_ctas,
                    mem: sm.out.mem.take(),
                    reqs,
                });
            }
        }
    }
}

/// Route-pass bookkeeping reused across windows.
#[derive(Default)]
struct FlushScratch {
    /// `(shard id, mailbox index)` per routed request, in global
    /// (cycle, SM, request) order — the merge pass consumes it with a
    /// cursor.
    plan: Vec<(u32, u32)>,
    /// `(window-out index, record index)` of every record with a staged
    /// memory instruction, in global (cycle, SM) order.
    order: Vec<(u32, u32)>,
    /// Per-window-out cursor for the cycle-ordered record walk.
    cursors: Vec<usize>,
    /// Set when the route pass exhausted the kernel sequence: the cycle
    /// the last CTA completed.
    done_at: Option<u64>,
}

/// Everything the engine owns *besides* the per-SM lanes and the memory
/// partitions: configuration, interconnect, kernel sequencing and
/// statistics. During a parallel run this stays on the coordinating
/// thread; worker threads see only their SM shard and their assigned
/// memory partitions.
struct EngineCore<'wl, W: WorkloadModel> {
    cfg: GpuConfig,
    wl: &'wl W,
    map: ShardMap,
    n_chiplets: u32,
    icn: Option<ChipletInterconnect>,
    page_owner: HashMap<u64, u32>,
    page_shift: u32,
    // kernel sequencing
    kernel_idx: usize,
    next_cta: u32,
    ctas_in_flight: u32,
    dispatch_age: u64,
    /// Instruction milestones bounding the sustained-IPC window.
    milestone_10: u64,
    milestone_90: u64,
    /// Cycle at which the current kernel started (for per-kernel cycles).
    kernel_start_cycle: u64,
    stats: SimStats,
}

/// The GPU timing simulator.
///
/// Create one per (configuration, workload) pair and call
/// [`Simulator::run`]; the simulator is deterministic for a given workload
/// seed — including across [`GpuConfig::sim_threads`] settings, which only
/// change how the host work is scheduled.
pub struct Simulator<'wl, W: WorkloadModel = Workload> {
    core: EngineCore<'wl, W>,
    sms: Vec<Sm<W::Stream>>,
    mem: Vec<MemShard>,
}

impl<'wl, W: WorkloadModel> Simulator<'wl, W> {
    /// Creates a monolithic-GPU simulation of `wl` on `cfg`. `wl` may be
    /// a synthetic [`Workload`] or a recorded
    /// [`TracedWorkload`](gsim_trace::TracedWorkload).
    pub fn new(cfg: GpuConfig, wl: &'wl W) -> Self {
        let sms = (0..cfg.n_sms).map(|_| Sm::new(&cfg, 0)).collect();
        let map = ShardMap::new(&cfg);
        let mem = build_shards(&cfg, map, 1);
        Self {
            core: EngineCore {
                map,
                n_chiplets: 1,
                icn: None,
                page_owner: HashMap::new(),
                page_shift: 5,
                kernel_idx: 0,
                next_cta: 0,
                ctas_in_flight: 0,
                dispatch_age: 0,
                milestone_10: wl.approx_warp_instrs() / 10,
                milestone_90: wl.approx_warp_instrs() * 9 / 10,
                kernel_start_cycle: 0,
                stats: SimStats::default(),
                cfg,
                wl,
            },
            sms,
            mem,
        }
    }

    /// Creates a multi-chiplet simulation of `wl` on `mcm` (Section VII.D):
    /// per-chiplet memory partitions, first-touch page placement, and a
    /// bandwidth-limited inter-chiplet network for remote accesses.
    pub fn new_mcm(mcm: &ChipletConfig, wl: &'wl W) -> Self {
        let per = &mcm.chiplet;
        let n_chiplets = mcm.n_chiplets;
        let total_sms = per.n_sms * n_chiplets;
        let sms = (0..total_sms)
            .map(|i| Sm::new(per, i / per.n_sms))
            .collect();
        let map = ShardMap::new(per);
        let mem = build_shards(per, map, n_chiplets);
        let mut cfg = per.clone();
        cfg.n_sms = total_sms;
        Self {
            core: EngineCore {
                map,
                n_chiplets,
                icn: Some(ChipletInterconnect::from_gbs(
                    n_chiplets,
                    mcm.interchiplet_gbs_per_chiplet,
                    per.sm_clock_ghz,
                    mcm.interchiplet_latency,
                )),
                page_owner: HashMap::new(),
                page_shift: mcm.page_lines.trailing_zeros(),
                kernel_idx: 0,
                next_cta: 0,
                ctas_in_flight: 0,
                dispatch_age: 0,
                milestone_10: wl.approx_warp_instrs() / 10,
                milestone_90: wl.approx_warp_instrs() * 9 / 10,
                kernel_start_cycle: 0,
                stats: SimStats::default(),
                cfg,
                wl,
            },
            sms,
            mem,
        }
    }

    /// The effective configuration (for MCM runs, the per-chiplet config
    /// with `n_sms` set to the system total).
    pub fn config(&self) -> &GpuConfig {
        &self.core.cfg
    }

    /// Runs the workload to completion and returns the statistics.
    ///
    /// With `sim_threads > 1`, the per-SM phase of each cycle and the
    /// per-partition memory apply are sharded across that many execution
    /// contexts (hence `W::Stream: Send`); the results are bit-identical
    /// to the serial run either way. `sync_slack > 0` additionally lets
    /// SMs run that many cycles past the merge barrier (still
    /// deterministic per slack value, no longer bit-exact).
    pub fn run(mut self) -> SimStats
    where
        W::Stream: Send,
    {
        let wall = Instant::now();
        let threads = (self.core.cfg.sim_threads.max(1) as usize).min(self.sms.len().max(1));
        let window = self.core.cfg.sync_slack.saturating_add(1);
        self.core.dispatch_round_robin(&mut self.sms);
        let mut stats = if threads <= 1 {
            run_serial(self.core, self.sms, self.mem, window)
        } else {
            shard::run_sharded(self.core, self.sms, self.mem, threads, window)
        };
        stats.sim_wall_seconds = wall.elapsed().as_secs_f64();
        stats
    }
}

/// The serial driver: window, route, apply and merge inline on the
/// calling thread.
fn run_serial<W: WorkloadModel>(
    mut core: EngineCore<'_, W>,
    mut sms: Vec<Sm<W::Stream>>,
    mut mem: Vec<MemShard>,
    window: u32,
) -> SimStats {
    let params = LaneParams::from_cfg(&core.cfg);
    let ap = core.apply_params();
    let n_sms = sms.len();
    let mut out = WindowOut::default();
    let mut scratch = FlushScratch::default();
    let mut now = 0u64;
    loop {
        run_window(&mut sms, 0, now, window, &params, &mut out);
        let outcome = {
            let mut outs = [&mut out];
            core.flush_route(&mut sms, &mut outs, &mut mem, now, window, &mut scratch);
            for shard in mem.iter_mut() {
                shard.apply(&ap);
            }
            core.flush_merge(&mut sms, &mut outs, &mut mem, now, window, &mut scratch)
        };
        match outcome {
            CycleOutcome::Advance(t) => now = t,
            CycleOutcome::Done(t) => {
                now = t;
                break;
            }
        }
    }
    core.finish(now, n_sms, &mem)
}

impl<W: WorkloadModel> EngineCore<'_, W> {
    /// `(n_ctas, threads_per_cta)` of the kernel currently dispatching.
    fn cur_grid(&self) -> (u32, u32) {
        self.wl.grid(self.kernel_idx)
    }

    /// Dispatches CTAs of the current kernel round-robin across all SMs
    /// (Table III: round-robin CTA scheduling), used at kernel launch.
    fn dispatch_round_robin<P: SmPool<W::Stream>>(&mut self, pool: &mut P) {
        loop {
            let mut progress = false;
            for i in 0..pool.n_sms() {
                if self.try_dispatch_one(pool, i) {
                    progress = true;
                }
            }
            if !progress {
                return;
            }
        }
    }

    /// Dispatches at most one CTA of the current kernel onto `sm_idx`;
    /// returns whether one was placed.
    fn try_dispatch_one<P: SmPool<W::Stream>>(&mut self, pool: &mut P, sm_idx: usize) -> bool {
        let kernel_idx = self.kernel_idx;
        if kernel_idx >= self.wl.n_kernels() {
            return false;
        }
        let (n_ctas, threads_per_cta) = self.cur_grid();
        let warps_per_cta = self.wl.warps_per_cta(kernel_idx);
        let max_ctas = self.cfg.ctas_per_sm(threads_per_cta);
        if self.next_cta >= n_ctas {
            return false;
        }
        {
            let sm = pool.sm_mut(sm_idx);
            if sm.cta_remaining.len() >= max_ctas as usize
                || (sm.free_slots.len() as u32) < warps_per_cta
            {
                return false;
            }
        }
        let cta = self.next_cta;
        self.next_cta += 1;
        self.ctas_in_flight += 1;
        for w in 0..warps_per_cta {
            let stream = self.wl.warp_stream(kernel_idx, cta, w);
            self.dispatch_age += 1;
            let age = self.dispatch_age;
            let sm = pool.sm_mut(sm_idx);
            let slot = sm.free_slots.pop().expect("checked free slots");
            sm.warps[slot as usize] = Some(WarpCtx {
                stream,
                pending_compute: 0,
                cta,
                age,
            });
            sm.live_warps += 1;
            sm.insert_ready(slot);
        }
        pool.sm_mut(sm_idx).cta_remaining.insert(cta, warps_per_cta);
        true
    }

    /// Global bookkeeping for one CTA that completed on `sm_idx` at
    /// `now`: backfill dispatch, and advance the kernel sequence when the
    /// grid has drained.
    fn on_cta_completed<P: SmPool<W::Stream>>(&mut self, pool: &mut P, sm_idx: usize, now: u64) {
        self.ctas_in_flight -= 1;
        self.stats.ctas_executed += 1;
        self.try_dispatch_one(pool, sm_idx);
        if self.ctas_in_flight == 0 && self.next_cta >= self.cur_grid().0 {
            // Kernel barrier reached: move to the next kernel.
            self.stats.kernels_executed += 1;
            self.stats.kernel_cycles.push(now - self.kernel_start_cycle);
            self.kernel_start_cycle = now;
            self.kernel_idx += 1;
            self.next_cta = 0;
            if self.kernel_idx < self.wl.n_kernels() {
                self.dispatch_round_robin(pool);
            }
        }
    }

    fn apply_params(&self) -> ApplyParams {
        ApplyParams {
            llc_latency: f64::from(self.cfg.llc_latency),
            line_bytes: self.cfg.line_bytes,
            crossing_latency: self
                .icn
                .as_ref()
                .map_or(0.0, |i| f64::from(i.crossing_latency())),
        }
    }

    /// Chiplet owning `line` (first-touch page placement for MCM; always
    /// 0 for monolithic GPUs).
    fn owner_of(&mut self, line: u64, toucher: u32) -> u32 {
        if self.n_chiplets == 1 {
            return 0;
        }
        let page = line >> self.page_shift;
        *self.page_owner.entry(page).or_insert(toucher)
    }

    /// Routes the staged line requests of one memory instruction into the
    /// per-partition mailboxes, recording the placement in `plan`.
    fn route_reqs(
        &mut self,
        mem: &mut dyn ShardSet,
        sm_chiplet: u32,
        cycle: u64,
        reqs: &[LineReq],
        plan: &mut Vec<(u32, u32)>,
    ) {
        let l1_lat = u64::from(self.cfg.l1_latency);
        for req in reqs {
            let (t0, kind) = match req.kind {
                LineKind::MissLoad => (cycle + l1_lat, ReqKind::Load),
                LineKind::Store => (cycle + l1_lat, ReqKind::Store),
                LineKind::Direct(kind) => (cycle, kind),
            };
            let owner = self.owner_of(req.line, sm_chiplet);
            let (sub, local_slice) = self.map.route(req.line);
            let sid = owner * self.map.per_chiplet + sub;
            let shard = mem.shard_mut(sid as usize);
            shard.mailbox.push(memsys::MailEntry {
                t0,
                line: req.line,
                local_slice,
                kind,
                remote: owner != sm_chiplet,
            });
            plan.push((sid, (shard.mailbox.len() - 1) as u32));
        }
    }

    /// The serial route pass of a flush: walks the window's records in
    /// (cycle, SM) order, driving CTA completions, dispatch, kernel
    /// sequencing, milestones and stall accounting, and binning every
    /// line request into its owner partition's mailbox.
    fn flush_route<P: SmPool<W::Stream>>(
        &mut self,
        pool: &mut P,
        outs: &mut [&mut WindowOut],
        mem: &mut dyn ShardSet,
        start: u64,
        len: u32,
        scratch: &mut FlushScratch,
    ) {
        scratch.plan.clear();
        scratch.order.clear();
        scratch.done_at = None;
        scratch.cursors.clear();
        scratch.cursors.resize(outs.len(), 0);
        'cycles: for w in 0..len as usize {
            let now = start + w as u64;
            // Records of this cycle, ascending SM (shards hold contiguous
            // ascending SM ranges, and each shard's records are
            // (cycle, SM)-sorted by construction).
            for (s, out) in outs.iter().enumerate() {
                while let Some(rec) = out.recs.get(scratch.cursors[s]) {
                    if rec.cycle != now {
                        break;
                    }
                    let i = scratch.cursors[s];
                    scratch.cursors[s] += 1;
                    for _ in 0..rec.completed {
                        self.on_cta_completed(pool, rec.sm as usize, now);
                    }
                    if rec.mem.is_some() {
                        let chiplet = pool.sm_mut(rec.sm as usize).chiplet;
                        self.route_reqs(mem, chiplet, now, &rec.reqs, &mut scratch.plan);
                        scratch.order.push((s as u32, i as u32));
                    }
                }
            }
            // Cycle-level statistics and milestones, in cycle order.
            let issued: u64 = outs.iter().map(|o| u64::from(o.issued[w])).sum();
            self.stats.warp_instrs += issued;
            self.stats.mem_stall_sm_cycles +=
                outs.iter().map(|o| u64::from(o.stalled[w])).sum::<u64>();
            self.stats.idle_sm_cycles += outs.iter().map(|o| u64::from(o.idle[w])).sum::<u64>();
            if self.stats.cycle_at_10pct == 0 && self.stats.warp_instrs >= self.milestone_10 {
                self.stats.cycle_at_10pct = now + 1;
            }
            if self.stats.cycle_at_90pct == 0 && self.stats.warp_instrs >= self.milestone_90 {
                self.stats.cycle_at_90pct = now + 1;
                self.stats.warp_instrs_window = self.stats.warp_instrs - self.milestone_10;
            }
            if self.kernel_idx >= self.wl.n_kernels() {
                // The kernel sequence drained at this cycle; later window
                // cycles (necessarily event-free) are discarded.
                scratch.done_at = Some(now);
                break 'cycles;
            }
        }
        for out in outs.iter() {
            self.stats.l1_accesses += out.l1_accesses;
            self.stats.l1_misses += out.l1_misses;
        }
    }

    /// The final response time of one applied request: charges the
    /// inter-chiplet legs for remote entries (egress of the owner,
    /// ingress of the requester — cross-partition state, hence serial).
    fn finish_entry(&mut self, r: &ApplyOut, owner_chiplet: u32, sm_chiplet: u32) -> u64 {
        let mut done = r.local_done;
        if r.remote {
            let icn = self.icn.as_mut().expect("remote access implies MCM");
            done = done.max(icn.traverse(r.data_at_llc, owner_chiplet, sm_chiplet, r.payload));
        }
        (done.ceil() as u64).max(r.t0 + 1)
    }

    /// The serial merge pass of a flush: walks the routed memory
    /// instructions in global (cycle, SM, request) order, finishing each
    /// request (inter-chiplet legs), registering fills with the issuing
    /// SM's MSHR file, re-queueing warps, and deciding how the simulation
    /// proceeds.
    fn flush_merge<P: SmPool<W::Stream>>(
        &mut self,
        pool: &mut P,
        outs: &mut [&mut WindowOut],
        mem: &mut dyn ShardSet,
        start: u64,
        len: u32,
        scratch: &mut FlushScratch,
    ) -> CycleOutcome {
        let k = self.map.per_chiplet;
        let mut cursor = 0usize;
        for &(s, i) in &scratch.order {
            let rec = &outs[s as usize].recs[i as usize];
            let mi = rec.mem.expect("ordered records stage memory");
            let sm_chiplet = pool.sm_mut(rec.sm as usize).chiplet;
            let mut wake = mi.base_wake;
            for req in &rec.reqs {
                let (sid, idx) = scratch.plan[cursor];
                cursor += 1;
                let result = mem.shard_mut(sid as usize).results[idx as usize];
                let done = self.finish_entry(&result, sid / k, sm_chiplet);
                let smx = pool.sm_mut(rec.sm as usize);
                match req.kind {
                    LineKind::MissLoad => {
                        if smx.mshr.is_full() {
                            smx.mshr.complete_up_to(rec.cycle);
                        }
                        match smx.mshr.register(req.line, done) {
                            MshrOutcome::Allocated | MshrOutcome::Full => {
                                wake = wake.max(done);
                            }
                            MshrOutcome::Merged(f) => {
                                // A merge cannot be slower than a re-fetch.
                                wake = wake.max(f.min(done));
                            }
                        }
                    }
                    // Stores are fire-and-forget: the request was charged
                    // (including the inter-chiplet legs), the warp was
                    // already re-queued during the window.
                    LineKind::Store => {}
                    LineKind::Direct(_) => {
                        wake = wake.max(done);
                    }
                }
            }
            if mi.blocks {
                pool.sm_mut(rec.sm as usize)
                    .blocked
                    .push(Reverse((wake, mi.warp)));
            }
        }
        // Recycle the record buffers.
        for out in outs.iter_mut() {
            for i in 0..out.recs.len() {
                let mut reqs = std::mem::take(&mut out.recs[i].reqs);
                reqs.clear();
                out.spare.push(reqs);
            }
            out.recs.clear();
        }
        // Control flow.
        if let Some(done_cycle) = scratch.done_at {
            return CycleOutcome::Done(done_cycle + 1);
        }
        let end = start + u64::from(len);
        let last = (len - 1) as usize;
        if outs.iter().any(|o| o.issued[last] > 0) {
            return CycleOutcome::Advance(end);
        }
        // Nothing issued at the window's last cycle: jump to the next
        // wake-up unless a flush-time dispatch made warps ready.
        let n = pool.n_sms();
        let mut next_wake: Option<u64> = None;
        let mut any_ready = false;
        for i in 0..n {
            let smx = pool.sm_mut(i);
            if let Some(&Reverse((t, _))) = smx.blocked.peek() {
                next_wake = Some(next_wake.map_or(t, |m| m.min(t)));
            }
            if smx.has_ready() {
                any_ready = true;
            }
        }
        if any_ready {
            // A kernel boundary inside this window made warps ready on
            // SMs that had already issued their attempt; give them the
            // next cycle.
            return CycleOutcome::Advance(end);
        }
        let Some(next_wake) = next_wake else {
            // No ready warps, no blocked warps, nothing issued: completion.
            return CycleOutcome::Done(end - 1);
        };
        let target = next_wake.max(end);
        let dt = target - end;
        if dt > 0 {
            for i in 0..n {
                if pool.sm_mut(i).live_warps > 0 {
                    self.stats.mem_stall_sm_cycles += dt;
                } else {
                    self.stats.idle_sm_cycles += dt;
                }
            }
        }
        CycleOutcome::Advance(target)
    }

    /// Seals the statistics once the last cycle has run, harvesting the
    /// per-partition counters (order-free sums).
    fn finish(mut self, now: u64, n_sms: usize, mem: &[MemShard]) -> SimStats {
        for shard in mem {
            self.stats.llc_accesses += shard.llc_accesses;
            self.stats.llc_misses += shard.llc_misses;
            self.stats.dram_bytes += shard.dram_bytes;
        }
        self.stats.cycles = now;
        self.stats.total_sm_cycles = now * n_sms as u64;
        self.stats.thread_instrs = self.stats.warp_instrs * 32;
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsim_trace::{Kernel, MemScale, PatternKind, PatternSpec};

    fn small_cfg(n_sms: u32) -> GpuConfig {
        GpuConfig::paper_target(n_sms, MemScale::default())
    }

    fn sweep_workload(footprint_lines: u64, passes: u32, ctas: u32) -> Workload {
        let spec = PatternSpec::new(PatternKind::GlobalSweep { passes }, footprint_lines)
            .compute_per_mem(1.5);
        Workload::new("t", 9, vec![Kernel::new("k", ctas, 256, spec)])
    }

    /// Runs `wl` on `cfg` serially and with `sim_threads` in {2, 4, 8}
    /// and asserts bit-identical statistics — the tentpole's determinism
    /// contract.
    fn assert_thread_invariant(cfg: &GpuConfig, wl: &Workload) {
        let serial = Simulator::new(cfg.clone(), wl).run();
        for threads in [2u32, 4, 8] {
            let mut c = cfg.clone();
            c.sim_threads = threads;
            let parallel = Simulator::new(c, wl).run();
            serial.assert_deterministic_eq(&parallel);
        }
    }

    #[test]
    fn compute_only_workload_reaches_full_issue_rate() {
        let spec = PatternSpec::new(PatternKind::Streaming, 1)
            .compute_per_mem(0.0)
            .tail_compute(5_000);
        let wl = Workload::new("c", 1, vec![Kernel::new("k", 96, 256, spec)]);
        let stats = Simulator::new(small_cfg(8), &wl).run();
        // 8 SMs x 1 warp instr/cycle = up to 256 thread IPC.
        assert!(
            stats.ipc() > 0.9 * 256.0,
            "compute-bound IPC {} should approach 256",
            stats.ipc()
        );
        assert!(stats.f_mem() < 0.05);
    }

    #[test]
    fn memory_bound_workload_stalls() {
        let wl = sweep_workload(200_000, 2, 96);
        let stats = Simulator::new(small_cfg(8), &wl).run();
        assert!(stats.f_mem() > 0.2, "f_mem {} too low", stats.f_mem());
        assert!(stats.mpki() > 1.0, "MPKI {}", stats.mpki());
        assert!(stats.ipc() < 200.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let wl = sweep_workload(20_000, 2, 48);
        let a = Simulator::new(small_cfg(8), &wl).run();
        let b = Simulator::new(small_cfg(8), &wl).run();
        a.assert_deterministic_eq(&b);
    }

    #[test]
    fn all_instructions_are_executed() {
        let wl = sweep_workload(10_000, 2, 48);
        let stats = Simulator::new(small_cfg(8), &wl).run();
        assert_eq!(stats.warp_instrs, wl.approx_warp_instrs());
        assert_eq!(stats.ctas_executed, 48);
        assert_eq!(stats.kernels_executed, 1);
    }

    #[test]
    fn fitting_working_set_is_faster_than_thrashing() {
        // Same instruction volume; one footprint fits the 8-SM LLC
        // (2.125 MB / 8 = 2176 lines), one does not.
        let fits = sweep_workload(1_500, 8, 48);
        let thrash = sweep_workload(60_000, 8, 48);
        let f = Simulator::new(small_cfg(8), &fits).run();
        let t = Simulator::new(small_cfg(8), &thrash).run();
        assert!(
            f.ipc() > 1.5 * t.ipc() * (f.warp_instrs as f64 / t.warp_instrs as f64).min(1.0),
            "fitting {} vs thrashing {}",
            f.ipc(),
            t.ipc()
        );
        assert!(f.mpki() < t.mpki() / 2.0);
    }

    #[test]
    fn more_sms_with_proportional_resources_scale_throughput() {
        let wl = sweep_workload(60_000, 3, 768);
        let s8 = Simulator::new(small_cfg(8), &wl).run();
        let s16 = Simulator::new(small_cfg(16), &wl).run();
        let speedup = s16.ipc() / s8.ipc();
        assert!(
            (1.5..2.5).contains(&speedup),
            "8->16 SM speedup {speedup} should be ~2 for a pre-cliff sweep"
        );
    }

    #[test]
    fn too_few_ctas_leave_sms_idle() {
        // 4 CTAs round-robin onto an 8-SM machine: half the SMs idle.
        let wl = sweep_workload(20_000, 4, 4);
        let stats = Simulator::new(small_cfg(8), &wl).run();
        assert!(stats.f_idle() > 0.3, "f_idle {}", stats.f_idle());
    }

    #[test]
    fn round_robin_spreads_small_grids() {
        // 8 CTAs on 8 SMs: one per SM, so no SM sits idle.
        let wl = sweep_workload(20_000, 4, 8);
        let stats = Simulator::new(small_cfg(8), &wl).run();
        assert!(stats.f_idle() < 0.15, "f_idle {}", stats.f_idle());
    }

    #[test]
    fn tiny_mid_kernel_does_not_end_the_run() {
        // Regression: a kernel smaller than one SM's slot budget used to
        // strand its freshly dispatched warps when the previous kernel's
        // last warp retired mid-issue-phase, ending the simulation early.
        let spec = || PatternSpec::new(PatternKind::Streaming, 5_000).compute_per_mem(1.0);
        let wl = Workload::new(
            "seq",
            3,
            vec![
                Kernel::new("big1", 96, 256, spec()),
                Kernel::new("tiny", 4, 256, spec()),
                Kernel::new("big2", 96, 256, spec()),
            ],
        );
        let stats = Simulator::new(small_cfg(8), &wl).run();
        assert_eq!(stats.kernels_executed, 3);
        assert_eq!(stats.ctas_executed, 196);
        assert_eq!(stats.warp_instrs, wl.approx_warp_instrs());
    }

    #[test]
    fn trace_replay_is_cycle_identical_to_execution_driven() {
        // The trace-driven front-end (Accel-Sim's mode of operation) must
        // reproduce the execution-driven run exactly.
        let wl = sweep_workload(10_000, 2, 48);
        let mut bytes = Vec::new();
        gsim_trace::write_trace(&wl, &mut bytes).expect("trace serialises");
        let traced = gsim_trace::TracedWorkload::read(&bytes[..]).expect("trace loads");
        let a = Simulator::new(small_cfg(8), &wl).run();
        let b = Simulator::new(small_cfg(8), &traced).run();
        a.assert_deterministic_eq(&b);
    }

    #[test]
    fn banked_dram_punishes_random_traffic_more_than_streams() {
        let mut banked_cfg = small_cfg(8);
        banked_cfg.dram_banks_per_mc = 16;
        let stream = sweep_workload(60_000, 2, 96);
        let random = {
            let spec = PatternSpec::new(PatternKind::PointerChase, 60_000)
                .mem_ops_per_warp(40)
                .compute_per_mem(1.5);
            Workload::new("rnd", 5, vec![Kernel::new("k", 96, 256, spec)])
        };
        let slowdown = |wl: &Workload| {
            let flat = Simulator::new(small_cfg(8), wl).run().ipc();
            let banked = Simulator::new(banked_cfg.clone(), wl).run().ipc();
            flat / banked
        };
        let s_stream = slowdown(&stream);
        let s_random = slowdown(&random);
        assert!(
            s_random > s_stream,
            "row-buffer locality must matter: stream x{s_stream:.2} vs random x{s_random:.2}"
        );
    }

    #[test]
    fn mcm_simulation_runs_and_scales_with_chiplets() {
        use crate::chiplet::ChipletConfig;
        let spec =
            PatternSpec::new(PatternKind::GlobalSweep { passes: 1 }, 60_000).compute_per_mem(2.0);
        let kernel = Kernel::new("k", 1536, 256, spec);
        let wl2 = Workload::new("m2", 11, vec![kernel.clone()]);
        let mcm2 = ChipletConfig::paper_mcm(2, MemScale::default());
        let mcm4 = ChipletConfig::paper_mcm(4, MemScale::default());
        let s2 = Simulator::new_mcm(&mcm2, &wl2).run();
        let s4 = Simulator::new_mcm(&mcm4, &wl2).run();
        assert_eq!(s2.warp_instrs, wl2.approx_warp_instrs());
        assert!(
            s4.ipc() > 1.3 * s2.ipc(),
            "more chiplets must help: {} -> {}",
            s2.ipc(),
            s4.ipc()
        );
    }

    #[test]
    fn mcm_is_deterministic() {
        use crate::chiplet::ChipletConfig;
        let spec = PatternSpec::new(PatternKind::PointerChase, 20_000)
            .mem_ops_per_warp(10)
            .compute_per_mem(1.0);
        let wl = Workload::new("m", 12, vec![Kernel::new("k", 512, 256, spec)]);
        let mcm = ChipletConfig::paper_mcm(2, MemScale::default());
        let a = Simulator::new_mcm(&mcm, &wl).run();
        let b = Simulator::new_mcm(&mcm, &wl).run();
        a.assert_deterministic_eq(&b);
    }

    #[test]
    fn monolithic_beats_equal_size_mcm_on_shared_data() {
        // Remote first-touch traffic through the 900 GB/s inter-chiplet
        // links must cost something relative to a monolithic chip with
        // the same SM count and aggregate resources.
        use crate::chiplet::ChipletConfig;
        let spec =
            PatternSpec::new(PatternKind::GlobalSweep { passes: 1 }, 120_000).compute_per_mem(1.0);
        let kernel = Kernel::new("k", 1536, 256, spec);
        let wl = Workload::new("mono-vs-mcm", 13, vec![kernel.clone(), kernel]);
        let mcm = ChipletConfig::paper_mcm(2, MemScale::default());
        let mono = GpuConfig {
            n_sms: 128,
            sm_clock_ghz: mcm.chiplet.sm_clock_ghz,
            llc_bytes_total: mcm.chiplet.llc_bytes_total * 2,
            llc_slices: mcm.chiplet.llc_slices * 2,
            noc_gbs: mcm.chiplet.noc_gbs * 2.0,
            n_mcs: mcm.chiplet.n_mcs * 2,
            ..GpuConfig::paper_target(128, MemScale::default())
        };
        let s_mcm = Simulator::new_mcm(&mcm, &wl).run();
        let s_mono = Simulator::new(mono, &wl).run();
        assert!(
            s_mono.ipc() > s_mcm.ipc(),
            "inter-chiplet crossing must cost: mono {} vs mcm {}",
            s_mono.ipc(),
            s_mcm.ipc()
        );
    }

    #[test]
    fn kernels_execute_sequentially() {
        let spec = || PatternSpec::new(PatternKind::Streaming, 5_000).compute_per_mem(1.0);
        let wl = Workload::new(
            "seq",
            3,
            vec![
                Kernel::new("k0", 48, 256, spec()),
                Kernel::new("k1", 48, 256, spec()),
            ],
        );
        let stats = Simulator::new(small_cfg(8), &wl).run();
        assert_eq!(stats.kernels_executed, 2);
        assert_eq!(stats.ctas_executed, 96);
    }

    // ---- sim_threads determinism contract (DESIGN.md §10/§15) ----

    #[test]
    fn sim_threads_bit_identical_8sm() {
        let wl = sweep_workload(20_000, 2, 48);
        assert_thread_invariant(&small_cfg(8), &wl);
    }

    #[test]
    fn sim_threads_bit_identical_8sm_pointer_chase() {
        let spec = PatternSpec::new(PatternKind::PointerChase, 30_000)
            .mem_ops_per_warp(16)
            .compute_per_mem(1.0);
        let wl = Workload::new("pc", 7, vec![Kernel::new("k", 64, 256, spec)]);
        assert_thread_invariant(&small_cfg(8), &wl);
    }

    #[test]
    fn sim_threads_bit_identical_64sm_memory_bound() {
        let wl = sweep_workload(150_000, 1, 512);
        assert_thread_invariant(&small_cfg(64), &wl);
    }

    #[test]
    fn sim_threads_bit_identical_multi_kernel_boundaries() {
        // Kernel boundaries mid-run exercise the dispatch/kernel-advance
        // path of the serial route pass.
        let spec = || PatternSpec::new(PatternKind::Streaming, 5_000).compute_per_mem(1.0);
        let wl = Workload::new(
            "seq",
            3,
            vec![
                Kernel::new("big1", 96, 256, spec()),
                Kernel::new("tiny", 4, 256, spec()),
                Kernel::new("big2", 96, 256, spec()),
            ],
        );
        assert_thread_invariant(&small_cfg(8), &wl);
    }

    #[test]
    fn sim_threads_bit_identical_mcm() {
        use crate::chiplet::ChipletConfig;
        let spec = PatternSpec::new(PatternKind::PointerChase, 20_000)
            .mem_ops_per_warp(10)
            .compute_per_mem(1.0);
        let wl = Workload::new("m", 12, vec![Kernel::new("k", 512, 256, spec)]);
        let mcm = ChipletConfig::paper_mcm(2, MemScale::default());
        let serial = Simulator::new_mcm(&mcm, &wl).run();
        for threads in [2u32, 4, 8] {
            let mut m = mcm.clone();
            m.chiplet.sim_threads = threads;
            let parallel = Simulator::new_mcm(&m, &wl).run();
            serial.assert_deterministic_eq(&parallel);
        }
    }

    #[test]
    fn sim_threads_bit_identical_mcm_multi_kernel() {
        use crate::chiplet::ChipletConfig;
        let spec = || {
            PatternSpec::new(PatternKind::GlobalSweep { passes: 1 }, 30_000).compute_per_mem(1.0)
        };
        let wl = Workload::new(
            "m-seq",
            14,
            vec![
                Kernel::new("k0", 384, 256, spec()),
                Kernel::new("k1", 8, 256, spec()),
                Kernel::new("k2", 384, 256, spec()),
            ],
        );
        let mcm = ChipletConfig::paper_mcm(2, MemScale::default());
        let serial = Simulator::new_mcm(&mcm, &wl).run();
        for threads in [2u32, 4, 8] {
            let mut m = mcm.clone();
            m.chiplet.sim_threads = threads;
            let parallel = Simulator::new_mcm(&m, &wl).run();
            serial.assert_deterministic_eq(&parallel);
        }
    }

    #[test]
    fn sim_threads_beyond_sm_count_is_clamped() {
        let wl = sweep_workload(10_000, 1, 24);
        let serial = Simulator::new(small_cfg(8), &wl).run();
        let mut c = small_cfg(8);
        c.sim_threads = 64; // clamps to 8 execution contexts
        let parallel = Simulator::new(c, &wl).run();
        serial.assert_deterministic_eq(&parallel);
    }

    #[test]
    fn sim_threads_zero_selects_serial_path() {
        let wl = sweep_workload(5_000, 1, 16);
        let serial = Simulator::new(small_cfg(8), &wl).run();
        let mut c = small_cfg(8);
        c.sim_threads = 0;
        let zero = Simulator::new(c, &wl).run();
        serial.assert_deterministic_eq(&zero);
    }

    #[test]
    fn mem_shards_are_part_of_the_simulated_machine() {
        // Different partition counts interleave lines differently, so
        // they are different (but internally deterministic) machines;
        // the 64-SM model has 8 MCs, so shard counts 1 vs 8 diverge.
        let wl = sweep_workload(60_000, 1, 256);
        let mut one = small_cfg(64);
        one.mem_shards = 1;
        let s1 = Simulator::new(one.clone(), &wl).run();
        let s8 = Simulator::new(small_cfg(64), &wl).run();
        assert_eq!(s1.warp_instrs, s8.warp_instrs);
        assert_ne!(s1.cycles, s8.cycles, "partitioning must change timing");
        // ... and each is still thread-invariant.
        assert_thread_invariant(&one, &wl);
    }

    // ---- bounded-slack relaxed sync (DESIGN.md §15) ----

    #[test]
    fn sync_slack_zero_is_byte_identical_to_default() {
        let wl = sweep_workload(20_000, 2, 48);
        let base = Simulator::new(small_cfg(8), &wl).run();
        let mut c = small_cfg(8);
        c.sync_slack = 0;
        c.sim_threads = 4;
        let relaxed_off = Simulator::new(c, &wl).run();
        base.assert_deterministic_eq(&relaxed_off);
    }

    #[test]
    fn sync_slack_is_thread_count_invariant() {
        // Relaxed mode is *still* deterministic for a fixed slack: the
        // window structure does not depend on the host thread count.
        let wl = sweep_workload(60_000, 2, 96);
        for slack in [4u32, 16] {
            let mut c = small_cfg(8);
            c.sync_slack = slack;
            let serial = Simulator::new(c.clone(), &wl).run();
            for threads in [2u32, 4] {
                let mut ct = c.clone();
                ct.sim_threads = threads;
                let parallel = Simulator::new(ct, &wl).run();
                serial.assert_deterministic_eq(&parallel);
            }
        }
    }

    #[test]
    fn sync_slack_error_stays_within_envelope() {
        // The accuracy contract of DESIGN.md §15: predicted cycles under
        // slack in {4, 16, 64} stay within 5% of the exact run, and all
        // work is still executed.
        let workloads = [
            sweep_workload(60_000, 2, 96),
            sweep_workload(1_500, 8, 48),
            {
                let spec = PatternSpec::new(PatternKind::PointerChase, 30_000)
                    .mem_ops_per_warp(16)
                    .compute_per_mem(1.0);
                Workload::new("pc", 7, vec![Kernel::new("k", 64, 256, spec)])
            },
        ];
        for wl in &workloads {
            let exact = Simulator::new(small_cfg(8), wl).run();
            for slack in [4u32, 16, 64] {
                let mut c = small_cfg(8);
                c.sync_slack = slack;
                let relaxed = Simulator::new(c, wl).run();
                assert_eq!(relaxed.warp_instrs, exact.warp_instrs);
                assert_eq!(relaxed.ctas_executed, exact.ctas_executed);
                assert_eq!(relaxed.kernels_executed, exact.kernels_executed);
                let err = (relaxed.cycles as f64 - exact.cycles as f64).abs() / exact.cycles as f64;
                assert!(
                    err <= 0.05,
                    "slack {slack} drifted {:.2}% on {} ({} vs {} cycles)",
                    err * 100.0,
                    wl.name(),
                    relaxed.cycles,
                    exact.cycles
                );
            }
        }
    }

    #[test]
    fn sync_slack_mcm_runs_to_completion() {
        use crate::chiplet::ChipletConfig;
        let spec = PatternSpec::new(PatternKind::PointerChase, 20_000)
            .mem_ops_per_warp(10)
            .compute_per_mem(1.0);
        let wl = Workload::new("m", 12, vec![Kernel::new("k", 512, 256, spec)]);
        let mut mcm = ChipletConfig::paper_mcm(2, MemScale::default());
        let exact = Simulator::new_mcm(&mcm, &wl).run();
        mcm.chiplet.sync_slack = 16;
        mcm.chiplet.sim_threads = 4;
        let relaxed = Simulator::new_mcm(&mcm, &wl).run();
        assert_eq!(relaxed.warp_instrs, exact.warp_instrs);
        assert_eq!(relaxed.ctas_executed, exact.ctas_executed);
        let err = (relaxed.cycles as f64 - exact.cycles as f64).abs() / exact.cycles as f64;
        assert!(err <= 0.05, "MCM slack drift {:.2}%", err * 100.0);
    }
}
