//! The cycle-level simulation engine.
//!
//! One engine serves both monolithic GPUs and multi-chiplet (MCM) GPUs: a
//! monolithic GPU is a single memory *domain* (crossbar + sliced LLC +
//! DRAM); an MCM GPU is one domain per chiplet plus an inter-chiplet
//! network and first-touch page placement.
//!
//! The engine advances one cycle at a time while any SM can issue, and
//! jumps directly to the next warp wake-up when none can — memory-bound
//! phases therefore cost little simulation time, exactly like the
//! event-driven cores of production simulators.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::time::Instant;

use gsim_mem::DramModel;
use gsim_mem::{BankedDramModel, Cache, CacheGeometry, DramTiming, Mshr, MshrOutcome, SlicedLlc};
use gsim_noc::{ChipletInterconnect, Crossbar};
use gsim_trace::{MemAccess, MemSpace, Op, WarpStream, Workload, WorkloadModel};

use crate::chiplet::ChipletConfig;
use crate::config::GpuConfig;
use crate::stats::SimStats;

/// Cycles an LLC slice port is occupied by a normal access (slices are
/// dual-banked: two accesses per cycle).
const SLICE_OCCUPANCY: f64 = 0.5;
/// Cycles an LLC slice port is occupied by an atomic read-modify-write:
/// the read-modify-write turnaround serialises at the slice, which is what
/// makes hot shared lines camp (Zhao et al.'s memory-side camping [65]).
const ATOMIC_OCCUPANCY: f64 = 8.0;
/// Effective fraction of a transfer charged against the bisection
/// bandwidth: under uniform traffic only ~half of the transfers cross the
/// bisection, and requests/responses ride separate physical networks, so a
/// 128 B data response consumes ~a quarter of its size in bisection
/// capacity. This keeps an LLC-resident working set serviceable at near
/// full issue rate — the property behind the paper's post-cliff
/// "no longer stalled waiting for memory" assumption (Section V.C.2).
const BISECTION_FRACTION: f64 = 0.25;
/// Response payload of an atomic (a word, not a line).
const ATOMIC_BYTES: u32 = 32;

/// The DRAM backend: flat bandwidth server (default) or the banked
/// row-buffer model (`GpuConfig::dram_banks_per_mc > 0`).
enum Dram {
    Flat(DramModel),
    Banked(BankedDramModel),
}

impl Dram {
    fn read(&mut self, now: u64, line: u64, bytes: u32) -> u64 {
        match self {
            Dram::Flat(d) => d.read(now, line, bytes),
            Dram::Banked(d) => d.read(now, line, bytes),
        }
    }

    fn write_back(&mut self, now: u64, line: u64, bytes: u32) {
        match self {
            Dram::Flat(d) => d.write_back(now, line, bytes),
            Dram::Banked(d) => d.write_back(now, line, bytes),
        }
    }
}

/// One memory domain: the shared memory system of a chip(let).
struct MemDomain {
    noc: Crossbar,
    llc: SlicedLlc,
    slice_free: Vec<f64>,
    dram: Dram,
    /// In-flight LLC fills (line -> completion cycle), for miss merging.
    pending: HashMap<u64, u64>,
    /// Amortised purge threshold for `pending` (doubling schedule keeps
    /// the retain scans O(1) amortised per miss).
    purge_at: usize,
}

impl MemDomain {
    fn new(cfg: &GpuConfig) -> Self {
        let llc = SlicedLlc::with_policy(
            cfg.llc_bytes_total,
            cfg.llc_slices,
            cfg.llc_ways,
            cfg.line_bytes,
            cfg.llc_policy,
        );
        Self {
            noc: Crossbar::from_gbs(cfg.noc_gbs, cfg.sm_clock_ghz, cfg.noc_hop_latency),
            slice_free: vec![0.0; cfg.llc_slices as usize],
            llc,
            dram: if cfg.dram_banks_per_mc > 0 {
                Dram::Banked(BankedDramModel::new(
                    cfg.n_mcs,
                    cfg.dram_banks_per_mc,
                    cfg.dram_gbs_per_mc,
                    cfg.sm_clock_ghz,
                    DramTiming::default(),
                ))
            } else {
                Dram::Flat(DramModel::new(
                    cfg.n_mcs,
                    cfg.dram_gbs_per_mc,
                    cfg.sm_clock_ghz,
                    cfg.dram_latency,
                ))
            },
            pending: HashMap::new(),
            purge_at: 8192,
        }
    }
}

/// What kind of request enters the shared memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReqKind {
    Load,
    Store,
    Atomic,
}

struct WarpCtx<S> {
    stream: S,
    pending_compute: u16,
    cta: u32,
    age: u64,
}

struct Sm<S> {
    l1: Cache,
    mshr: Mshr,
    warps: Vec<Option<WarpCtx<S>>>,
    /// Ready warp indices sorted by age ascending (front = oldest).
    ready: Vec<u32>,
    blocked: BinaryHeap<Reverse<(u64, u32)>>,
    last_issued: Option<u32>,
    free_slots: Vec<u32>,
    /// CTA id -> warps still running, for resident CTAs.
    cta_remaining: HashMap<u32, u32>,
    live_warps: u32,
    chiplet: u32,
}

impl<S> Sm<S> {
    fn new(cfg: &GpuConfig, chiplet: u32) -> Self {
        let n = cfg.warps_per_sm;
        Self {
            l1: Cache::new(CacheGeometry::new(
                cfg.l1_bytes,
                cfg.l1_ways,
                cfg.line_bytes,
            )),
            mshr: Mshr::new(cfg.l1_mshrs as usize),
            warps: (0..n).map(|_| None).collect(),
            ready: Vec::with_capacity(n as usize),
            blocked: BinaryHeap::with_capacity(n as usize),
            last_issued: None,
            free_slots: (0..n).rev().collect(),
            cta_remaining: HashMap::new(),
            live_warps: 0,
            chiplet,
        }
    }

    fn insert_ready(&mut self, warp: u32) {
        let age = self.warps[warp as usize].as_ref().expect("live warp").age;
        let pos = self
            .ready
            .partition_point(|&w| self.warps[w as usize].as_ref().expect("live").age < age);
        self.ready.insert(pos, warp);
    }

    /// Greedy-Then-Oldest: keep issuing the last-issued warp while it is
    /// ready; otherwise pick the oldest ready warp.
    fn pick(&mut self) -> Option<u32> {
        if let Some(w) = self.last_issued {
            if let Some(pos) = self.ready.iter().position(|&r| r == w) {
                self.ready.remove(pos);
                return Some(w);
            }
        }
        if self.ready.is_empty() {
            None
        } else {
            Some(self.ready.remove(0))
        }
    }
}

/// The GPU timing simulator.
///
/// Create one per (configuration, workload) pair and call
/// [`Simulator::run`]; the simulator is deterministic for a given workload
/// seed.
pub struct Simulator<'wl, W: WorkloadModel = Workload> {
    cfg: GpuConfig,
    wl: &'wl W,
    sms: Vec<Sm<W::Stream>>,
    domains: Vec<MemDomain>,
    icn: Option<ChipletInterconnect>,
    page_owner: HashMap<u64, u32>,
    page_shift: u32,
    // kernel sequencing
    kernel_idx: usize,
    next_cta: u32,
    ctas_in_flight: u32,
    dispatch_age: u64,
    /// Instruction milestones bounding the sustained-IPC window.
    milestone_10: u64,
    milestone_90: u64,
    /// Cycle at which the current kernel started (for per-kernel cycles).
    kernel_start_cycle: u64,
    stats: SimStats,
}

impl<'wl, W: WorkloadModel> Simulator<'wl, W> {
    /// Creates a monolithic-GPU simulation of `wl` on `cfg`. `wl` may be
    /// a synthetic [`Workload`] or a recorded
    /// [`TracedWorkload`](gsim_trace::TracedWorkload).
    pub fn new(cfg: GpuConfig, wl: &'wl W) -> Self {
        let sms = (0..cfg.n_sms).map(|_| Sm::new(&cfg, 0)).collect();
        let domains = vec![MemDomain::new(&cfg)];
        Self {
            sms,
            domains,
            icn: None,
            page_owner: HashMap::new(),
            page_shift: 5,
            kernel_idx: 0,
            next_cta: 0,
            ctas_in_flight: 0,
            dispatch_age: 0,
            milestone_10: wl.approx_warp_instrs() / 10,
            milestone_90: wl.approx_warp_instrs() * 9 / 10,
            kernel_start_cycle: 0,
            stats: SimStats::default(),
            cfg,
            wl,
        }
    }

    /// Creates a multi-chiplet simulation of `wl` on `mcm` (Section VII.D):
    /// one memory domain per chiplet, first-touch page placement, and a
    /// bandwidth-limited inter-chiplet network for remote accesses.
    pub fn new_mcm(mcm: &ChipletConfig, wl: &'wl W) -> Self {
        let per = &mcm.chiplet;
        let n_chiplets = mcm.n_chiplets;
        let total_sms = per.n_sms * n_chiplets;
        let sms = (0..total_sms)
            .map(|i| Sm::new(per, i / per.n_sms))
            .collect();
        let domains = (0..n_chiplets).map(|_| MemDomain::new(per)).collect();
        let mut cfg = per.clone();
        cfg.n_sms = total_sms;
        Self {
            sms,
            domains,
            icn: Some(ChipletInterconnect::from_gbs(
                n_chiplets,
                mcm.interchiplet_gbs_per_chiplet,
                per.sm_clock_ghz,
                mcm.interchiplet_latency,
            )),
            page_owner: HashMap::new(),
            page_shift: mcm.page_lines.trailing_zeros(),
            kernel_idx: 0,
            next_cta: 0,
            ctas_in_flight: 0,
            dispatch_age: 0,
            milestone_10: wl.approx_warp_instrs() / 10,
            milestone_90: wl.approx_warp_instrs() * 9 / 10,
            kernel_start_cycle: 0,
            stats: SimStats::default(),
            cfg,
            wl,
        }
    }

    /// The effective configuration (for MCM runs, the per-chiplet config
    /// with `n_sms` set to the system total).
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// `(n_ctas, threads_per_cta)` of the kernel currently dispatching.
    fn cur_grid(&self) -> (u32, u32) {
        self.wl.grid(self.kernel_idx)
    }

    /// Domain owning `line` (first-touch page placement for MCM; always 0
    /// for monolithic GPUs).
    fn owner_of(&mut self, line: u64, toucher: u32) -> u32 {
        if self.domains.len() == 1 {
            return 0;
        }
        let page = line >> self.page_shift;
        *self.page_owner.entry(page).or_insert(toucher)
    }

    /// Sends one transaction into the shared memory system; returns the
    /// cycle its response reaches the requesting SM.
    fn mem_request(&mut self, now: u64, sm_chiplet: u32, line: u64, kind: ReqKind) -> u64 {
        let owner = self.owner_of(line, sm_chiplet);
        let remote = owner != sm_chiplet;
        let dom = &mut self.domains[owner as usize];
        let hop = f64::from(dom.noc.hop_latency());

        // Request travel: local crossbar hop (+ chiplet crossing if remote).
        let mut t = now as f64 + hop;
        if remote {
            let icn = self.icn.as_mut().expect("remote access implies MCM");
            t += f64::from(icn.crossing_latency());
        }

        // Slice port (camping point).
        let slice = dom.llc.slice_of(line) as usize;
        let occupancy = if kind == ReqKind::Atomic {
            ATOMIC_OCCUPANCY
        } else {
            SLICE_OCCUPANCY
        };
        let start = dom.slice_free[slice].max(t);
        dom.slice_free[slice] = start + occupancy;
        let tag_done = start + f64::from(self.cfg.llc_latency);

        // Tag lookup; eager fill with an in-flight merge map for timing.
        let is_write = kind == ReqKind::Store;
        let line_bytes = self.cfg.line_bytes;
        let result = dom.llc.access(line, is_write);
        self.stats.llc_accesses += 1;
        let data_at_llc = if result.is_hit() {
            match dom.pending.get(&line) {
                Some(&fill) if fill > now => fill as f64,
                _ => tag_done,
            }
        } else {
            self.stats.llc_misses += 1;
            if let Some(victim) = result.evicted() {
                if victim.dirty {
                    dom.dram
                        .write_back(tag_done as u64, victim.line_addr, line_bytes);
                    self.stats.dram_bytes += u64::from(line_bytes);
                }
            }
            let fill = dom.dram.read(tag_done as u64, line, line_bytes);
            self.stats.dram_bytes += u64::from(line_bytes);
            if dom.pending.len() >= dom.purge_at {
                dom.pending.retain(|_, done| *done > now);
                dom.purge_at = (dom.pending.len() * 2).max(8192);
            }
            dom.pending.insert(line, fill);
            fill as f64
        };

        // Response travel: bisection bandwidth + hop (+ chiplet crossing).
        let payload = if kind == ReqKind::Atomic {
            ATOMIC_BYTES
        } else {
            line_bytes
        };
        let eff = ((f64::from(payload) * BISECTION_FRACTION) as u32).max(1);
        let mut data_at_sm = dom.noc.traverse(data_at_llc, eff);
        if remote {
            let icn = self.icn.as_mut().expect("remote access implies MCM");
            data_at_sm = data_at_sm.max(icn.traverse(data_at_llc, owner, sm_chiplet, payload));
        }
        (data_at_sm.ceil() as u64).max(now + 1)
    }

    /// Issues one memory op from an SM; returns the wake cycle if the warp
    /// must block.
    fn issue_mem(&mut self, sm_idx: usize, now: u64, op: &Op, access: &MemAccess) -> Option<u64> {
        let chiplet = self.sms[sm_idx].chiplet;
        let l1_lat = u64::from(self.cfg.l1_latency);
        let kind = match op {
            Op::Load(_) => ReqKind::Load,
            Op::Store(_) => ReqKind::Store,
            Op::Atomic(_) => ReqKind::Atomic,
            Op::Compute { .. } => unreachable!("compute is not a memory op"),
        };
        let mut wake = now + 1;
        for line in access.lines() {
            match (kind, access.space) {
                (ReqKind::Load, MemSpace::Global) => {
                    // L1 lookup (write-through caches: loads only).
                    self.stats.l1_accesses += 1;
                    let t0 = now + l1_lat;
                    let sm = &mut self.sms[sm_idx];
                    if sm.l1.access(line, false).is_hit() {
                        let ready = match sm.mshr.pending_fill(line) {
                            Some(fill) if fill > now => fill,
                            _ => t0,
                        };
                        wake = wake.max(ready);
                    } else {
                        self.stats.l1_misses += 1;
                        if self.sms[sm_idx].mshr.is_full() {
                            self.sms[sm_idx].mshr.complete_up_to(now);
                        }
                        let fill = self.mem_request(t0, chiplet, line, ReqKind::Load);
                        match self.sms[sm_idx].mshr.register(line, fill) {
                            MshrOutcome::Allocated | MshrOutcome::Full => {}
                            MshrOutcome::Merged(f) => {
                                // A merge cannot be slower than a re-fetch.
                                wake = wake.max(f.min(fill));
                                continue;
                            }
                        }
                        wake = wake.max(fill);
                    }
                }
                (ReqKind::Store, _) => {
                    // Write-through, no-write-allocate: straight to the LLC.
                    let _ = self.mem_request(now + l1_lat, chiplet, line, ReqKind::Store);
                }
                _ => {
                    // Atomics (and any bypassing access) skip the L1.
                    let ready = self.mem_request(now, chiplet, line, kind);
                    wake = wake.max(ready);
                }
            }
        }
        if op.blocks_warp() {
            Some(wake)
        } else {
            None
        }
    }

    /// Dispatches CTAs of the current kernel round-robin across all SMs
    /// (Table III: round-robin CTA scheduling), used at kernel launch.
    fn dispatch_round_robin(&mut self) {
        loop {
            let mut progress = false;
            for i in 0..self.sms.len() {
                if self.try_dispatch_one(i) {
                    progress = true;
                }
            }
            if !progress {
                return;
            }
        }
    }

    /// Dispatches at most one CTA of the current kernel onto `sm`;
    /// returns whether one was placed.
    fn try_dispatch_one(&mut self, sm_idx: usize) -> bool {
        let kernel_idx = self.kernel_idx;
        if kernel_idx >= self.wl.n_kernels() {
            return false;
        }
        let (n_ctas, threads_per_cta) = self.cur_grid();
        let warps_per_cta = self.wl.warps_per_cta(kernel_idx);
        let max_ctas = self.cfg.ctas_per_sm(threads_per_cta);
        {
            if self.next_cta >= n_ctas {
                return false;
            }
            let sm = &mut self.sms[sm_idx];
            if sm.cta_remaining.len() >= max_ctas as usize
                || (sm.free_slots.len() as u32) < warps_per_cta
            {
                return false;
            }
            let cta = self.next_cta;
            self.next_cta += 1;
            self.ctas_in_flight += 1;
            for w in 0..warps_per_cta {
                let stream = self.wl.warp_stream(kernel_idx, cta, w);
                let sm = &mut self.sms[sm_idx];
                let slot = sm.free_slots.pop().expect("checked free slots");
                self.dispatch_age += 1;
                sm.warps[slot as usize] = Some(WarpCtx {
                    stream,
                    pending_compute: 0,
                    cta,
                    age: self.dispatch_age,
                });
                sm.live_warps += 1;
                sm.insert_ready(slot);
            }
            self.sms[sm_idx].cta_remaining.insert(cta, warps_per_cta);
            true
        }
    }

    /// Retires warp `warp` of SM `sm_idx` at cycle `now`; returns `true`
    /// if its CTA (and possibly the kernel) completed.
    fn retire_warp(&mut self, sm_idx: usize, warp: u32, now: u64) -> bool {
        let sm = &mut self.sms[sm_idx];
        let ctx = sm.warps[warp as usize]
            .take()
            .expect("retiring a live warp");
        sm.free_slots.push(warp);
        sm.live_warps -= 1;
        if sm.last_issued == Some(warp) {
            sm.last_issued = None;
        }
        let remaining = sm
            .cta_remaining
            .get_mut(&ctx.cta)
            .expect("warp belongs to a resident CTA");
        *remaining -= 1;
        if *remaining > 0 {
            return false;
        }
        sm.cta_remaining.remove(&ctx.cta);
        self.ctas_in_flight -= 1;
        self.stats.ctas_executed += 1;
        self.try_dispatch_one(sm_idx);
        if self.ctas_in_flight == 0 && self.next_cta >= self.cur_grid().0 {
            // Kernel barrier reached: move to the next kernel.
            self.stats.kernels_executed += 1;
            self.stats.kernel_cycles.push(now - self.kernel_start_cycle);
            self.kernel_start_cycle = now;
            self.kernel_idx += 1;
            self.next_cta = 0;
            if self.kernel_idx < self.wl.n_kernels() {
                self.dispatch_round_robin();
            }
            return true;
        }
        false
    }

    /// Tries to issue one instruction on SM `sm_idx`; returns `true` if an
    /// instruction issued this cycle.
    fn issue_sm(&mut self, sm_idx: usize, now: u64) -> bool {
        loop {
            let Some(warp) = self.sms[sm_idx].pick() else {
                return false;
            };
            // Fast path: batched compute.
            {
                let sm = &mut self.sms[sm_idx];
                let ctx = sm.warps[warp as usize].as_mut().expect("picked live warp");
                if ctx.pending_compute > 0 {
                    ctx.pending_compute -= 1;
                    sm.last_issued = Some(warp);
                    sm.insert_ready(warp);
                    self.stats.warp_instrs += 1;
                    return true;
                }
            }
            let op = {
                let sm = &mut self.sms[sm_idx];
                let ctx = sm.warps[warp as usize].as_mut().expect("picked live warp");
                ctx.stream.next_op()
            };
            match op {
                None => {
                    // Warp retired; pick another warp this same cycle.
                    self.retire_warp(sm_idx, warp, now);
                    continue;
                }
                Some(Op::Compute { n }) => {
                    let sm = &mut self.sms[sm_idx];
                    let ctx = sm.warps[warp as usize].as_mut().expect("live");
                    ctx.pending_compute = n - 1;
                    sm.last_issued = Some(warp);
                    sm.insert_ready(warp);
                    self.stats.warp_instrs += 1;
                    return true;
                }
                Some(op) => {
                    let access = *op.mem().expect("memory op");
                    let wake = self.issue_mem(sm_idx, now, &op, &access);
                    self.stats.warp_instrs += 1;
                    let sm = &mut self.sms[sm_idx];
                    sm.last_issued = Some(warp);
                    match wake {
                        Some(w) => sm.blocked.push(Reverse((w, warp))),
                        None => sm.insert_ready(warp),
                    }
                    return true;
                }
            }
        }
    }

    /// Runs the workload to completion and returns the statistics.
    pub fn run(mut self) -> SimStats {
        let wall = Instant::now();
        self.dispatch_round_robin();
        let mut now: u64 = 0;
        loop {
            // Wake phase.
            for sm in &mut self.sms {
                while let Some(&Reverse((t, w))) = sm.blocked.peek() {
                    if t <= now {
                        sm.blocked.pop();
                        sm.insert_ready(w);
                    } else {
                        break;
                    }
                }
            }
            // Issue phase.
            let mut any_issue = false;
            for i in 0..self.sms.len() {
                if self.issue_sm(i, now) {
                    any_issue = true;
                } else if self.sms[i].live_warps > 0 {
                    self.stats.mem_stall_sm_cycles += 1;
                } else {
                    self.stats.idle_sm_cycles += 1;
                }
            }
            if self.stats.cycle_at_10pct == 0 && self.stats.warp_instrs >= self.milestone_10 {
                self.stats.cycle_at_10pct = now + 1;
            }
            if self.stats.cycle_at_90pct == 0 && self.stats.warp_instrs >= self.milestone_90 {
                self.stats.cycle_at_90pct = now + 1;
                self.stats.warp_instrs_window = self.stats.warp_instrs - self.milestone_10;
            }
            if self.kernel_idx >= self.wl.n_kernels() {
                now += 1;
                break;
            }
            if any_issue {
                now += 1;
                continue;
            }
            // Nothing issued anywhere: jump to the next wake-up.
            let next_wake = self
                .sms
                .iter()
                .filter_map(|sm| sm.blocked.peek().map(|&Reverse((t, _))| t))
                .min();
            if self.sms.iter().any(|sm| !sm.ready.is_empty()) {
                // A kernel boundary inside this cycle's issue phase made
                // warps ready on SMs that were already visited; give them
                // the next cycle.
                now += 1;
                continue;
            }
            let Some(next_wake) = next_wake else {
                // No ready warps, no blocked warps, nothing issued:
                // completion.
                break;
            };
            let dt = next_wake.saturating_sub(now + 1);
            if dt > 0 {
                for sm in &self.sms {
                    if sm.live_warps > 0 {
                        self.stats.mem_stall_sm_cycles += dt;
                    } else {
                        self.stats.idle_sm_cycles += dt;
                    }
                }
            }
            now = next_wake;
        }
        self.stats.cycles = now;
        self.stats.total_sm_cycles = now * self.sms.len() as u64;
        self.stats.thread_instrs = self.stats.warp_instrs * 32;
        self.stats.sim_wall_seconds = wall.elapsed().as_secs_f64();
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsim_trace::{Kernel, MemScale, PatternKind, PatternSpec};

    fn small_cfg(n_sms: u32) -> GpuConfig {
        GpuConfig::paper_target(n_sms, MemScale::default())
    }

    fn sweep_workload(footprint_lines: u64, passes: u32, ctas: u32) -> Workload {
        let spec = PatternSpec::new(PatternKind::GlobalSweep { passes }, footprint_lines)
            .compute_per_mem(1.5);
        Workload::new("t", 9, vec![Kernel::new("k", ctas, 256, spec)])
    }

    #[test]
    fn compute_only_workload_reaches_full_issue_rate() {
        let spec = PatternSpec::new(PatternKind::Streaming, 1)
            .compute_per_mem(0.0)
            .tail_compute(5_000);
        let wl = Workload::new("c", 1, vec![Kernel::new("k", 96, 256, spec)]);
        let stats = Simulator::new(small_cfg(8), &wl).run();
        // 8 SMs x 1 warp instr/cycle = up to 256 thread IPC.
        assert!(
            stats.ipc() > 0.9 * 256.0,
            "compute-bound IPC {} should approach 256",
            stats.ipc()
        );
        assert!(stats.f_mem() < 0.05);
    }

    #[test]
    fn memory_bound_workload_stalls() {
        let wl = sweep_workload(200_000, 2, 96);
        let stats = Simulator::new(small_cfg(8), &wl).run();
        assert!(stats.f_mem() > 0.2, "f_mem {} too low", stats.f_mem());
        assert!(stats.mpki() > 1.0, "MPKI {}", stats.mpki());
        assert!(stats.ipc() < 200.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let wl = sweep_workload(20_000, 2, 48);
        let a = Simulator::new(small_cfg(8), &wl).run();
        let mut b = Simulator::new(small_cfg(8), &wl).run();
        b.sim_wall_seconds = a.sim_wall_seconds;
        assert_eq!(a, b);
    }

    #[test]
    fn all_instructions_are_executed() {
        let wl = sweep_workload(10_000, 2, 48);
        let stats = Simulator::new(small_cfg(8), &wl).run();
        assert_eq!(stats.warp_instrs, wl.approx_warp_instrs());
        assert_eq!(stats.ctas_executed, 48);
        assert_eq!(stats.kernels_executed, 1);
    }

    #[test]
    fn fitting_working_set_is_faster_than_thrashing() {
        // Same instruction volume; one footprint fits the 8-SM LLC
        // (2.125 MB / 8 = 2176 lines), one does not.
        let fits = sweep_workload(1_500, 8, 48);
        let thrash = sweep_workload(60_000, 8, 48);
        let f = Simulator::new(small_cfg(8), &fits).run();
        let t = Simulator::new(small_cfg(8), &thrash).run();
        assert!(
            f.ipc() > 1.5 * t.ipc() * (f.warp_instrs as f64 / t.warp_instrs as f64).min(1.0),
            "fitting {} vs thrashing {}",
            f.ipc(),
            t.ipc()
        );
        assert!(f.mpki() < t.mpki() / 2.0);
    }

    #[test]
    fn more_sms_with_proportional_resources_scale_throughput() {
        let wl = sweep_workload(60_000, 3, 768);
        let s8 = Simulator::new(small_cfg(8), &wl).run();
        let s16 = Simulator::new(small_cfg(16), &wl).run();
        let speedup = s16.ipc() / s8.ipc();
        assert!(
            (1.5..2.5).contains(&speedup),
            "8->16 SM speedup {speedup} should be ~2 for a pre-cliff sweep"
        );
    }

    #[test]
    fn too_few_ctas_leave_sms_idle() {
        // 4 CTAs round-robin onto an 8-SM machine: half the SMs idle.
        let wl = sweep_workload(20_000, 4, 4);
        let stats = Simulator::new(small_cfg(8), &wl).run();
        assert!(stats.f_idle() > 0.3, "f_idle {}", stats.f_idle());
    }

    #[test]
    fn round_robin_spreads_small_grids() {
        // 8 CTAs on 8 SMs: one per SM, so no SM sits idle.
        let wl = sweep_workload(20_000, 4, 8);
        let stats = Simulator::new(small_cfg(8), &wl).run();
        assert!(stats.f_idle() < 0.15, "f_idle {}", stats.f_idle());
    }

    #[test]
    fn tiny_mid_kernel_does_not_end_the_run() {
        // Regression: a kernel smaller than one SM's slot budget used to
        // strand its freshly dispatched warps when the previous kernel's
        // last warp retired mid-issue-phase, ending the simulation early.
        let spec = || PatternSpec::new(PatternKind::Streaming, 5_000).compute_per_mem(1.0);
        let wl = Workload::new(
            "seq",
            3,
            vec![
                Kernel::new("big1", 96, 256, spec()),
                Kernel::new("tiny", 4, 256, spec()),
                Kernel::new("big2", 96, 256, spec()),
            ],
        );
        let stats = Simulator::new(small_cfg(8), &wl).run();
        assert_eq!(stats.kernels_executed, 3);
        assert_eq!(stats.ctas_executed, 196);
        assert_eq!(stats.warp_instrs, wl.approx_warp_instrs());
    }

    #[test]
    fn trace_replay_is_cycle_identical_to_execution_driven() {
        // The trace-driven front-end (Accel-Sim's mode of operation) must
        // reproduce the execution-driven run exactly.
        let wl = sweep_workload(10_000, 2, 48);
        let mut bytes = Vec::new();
        gsim_trace::write_trace(&wl, &mut bytes).expect("trace serialises");
        let traced = gsim_trace::TracedWorkload::read(&bytes[..]).expect("trace loads");
        let mut a = Simulator::new(small_cfg(8), &wl).run();
        let mut b = Simulator::new(small_cfg(8), &traced).run();
        a.sim_wall_seconds = 0.0;
        b.sim_wall_seconds = 0.0;
        assert_eq!(a, b);
    }

    #[test]
    fn banked_dram_punishes_random_traffic_more_than_streams() {
        let mut banked_cfg = small_cfg(8);
        banked_cfg.dram_banks_per_mc = 16;
        let stream = sweep_workload(60_000, 2, 96);
        let random = {
            let spec = PatternSpec::new(PatternKind::PointerChase, 60_000)
                .mem_ops_per_warp(40)
                .compute_per_mem(1.5);
            Workload::new("rnd", 5, vec![Kernel::new("k", 96, 256, spec)])
        };
        let slowdown = |wl: &Workload| {
            let flat = Simulator::new(small_cfg(8), wl).run().ipc();
            let banked = Simulator::new(banked_cfg.clone(), wl).run().ipc();
            flat / banked
        };
        let s_stream = slowdown(&stream);
        let s_random = slowdown(&random);
        assert!(
            s_random > s_stream,
            "row-buffer locality must matter: stream x{s_stream:.2} vs random x{s_random:.2}"
        );
    }

    #[test]
    fn mcm_simulation_runs_and_scales_with_chiplets() {
        use crate::chiplet::ChipletConfig;
        let spec =
            PatternSpec::new(PatternKind::GlobalSweep { passes: 1 }, 60_000).compute_per_mem(2.0);
        let kernel = Kernel::new("k", 1536, 256, spec);
        let wl2 = Workload::new("m2", 11, vec![kernel.clone()]);
        let mcm2 = ChipletConfig::paper_mcm(2, MemScale::default());
        let mcm4 = ChipletConfig::paper_mcm(4, MemScale::default());
        let s2 = Simulator::new_mcm(&mcm2, &wl2).run();
        let s4 = Simulator::new_mcm(&mcm4, &wl2).run();
        assert_eq!(s2.warp_instrs, wl2.approx_warp_instrs());
        assert!(
            s4.ipc() > 1.3 * s2.ipc(),
            "more chiplets must help: {} -> {}",
            s2.ipc(),
            s4.ipc()
        );
    }

    #[test]
    fn mcm_is_deterministic() {
        use crate::chiplet::ChipletConfig;
        let spec = PatternSpec::new(PatternKind::PointerChase, 20_000)
            .mem_ops_per_warp(10)
            .compute_per_mem(1.0);
        let wl = Workload::new("m", 12, vec![Kernel::new("k", 512, 256, spec)]);
        let mcm = ChipletConfig::paper_mcm(2, MemScale::default());
        let mut a = Simulator::new_mcm(&mcm, &wl).run();
        let mut b = Simulator::new_mcm(&mcm, &wl).run();
        a.sim_wall_seconds = 0.0;
        b.sim_wall_seconds = 0.0;
        assert_eq!(a, b);
    }

    #[test]
    fn monolithic_beats_equal_size_mcm_on_shared_data() {
        // Remote first-touch traffic through the 900 GB/s inter-chiplet
        // links must cost something relative to a monolithic chip with
        // the same SM count and aggregate resources.
        use crate::chiplet::ChipletConfig;
        let spec =
            PatternSpec::new(PatternKind::GlobalSweep { passes: 1 }, 120_000).compute_per_mem(1.0);
        let kernel = Kernel::new("k", 1536, 256, spec);
        let wl = Workload::new("mono-vs-mcm", 13, vec![kernel.clone(), kernel]);
        let mcm = ChipletConfig::paper_mcm(2, MemScale::default());
        let mono = GpuConfig {
            n_sms: 128,
            sm_clock_ghz: mcm.chiplet.sm_clock_ghz,
            llc_bytes_total: mcm.chiplet.llc_bytes_total * 2,
            llc_slices: mcm.chiplet.llc_slices * 2,
            noc_gbs: mcm.chiplet.noc_gbs * 2.0,
            n_mcs: mcm.chiplet.n_mcs * 2,
            ..GpuConfig::paper_target(128, MemScale::default())
        };
        let s_mcm = Simulator::new_mcm(&mcm, &wl).run();
        let s_mono = Simulator::new(mono, &wl).run();
        assert!(
            s_mono.ipc() > s_mcm.ipc(),
            "inter-chiplet crossing must cost: mono {} vs mcm {}",
            s_mono.ipc(),
            s_mcm.ipc()
        );
    }

    #[test]
    fn kernels_execute_sequentially() {
        let spec = || PatternSpec::new(PatternKind::Streaming, 5_000).compute_per_mem(1.0);
        let wl = Workload::new(
            "seq",
            3,
            vec![
                Kernel::new("k0", 48, 256, spec()),
                Kernel::new("k1", 48, 256, spec()),
            ],
        );
        let stats = Simulator::new(small_cfg(8), &wl).run();
        assert_eq!(stats.kernels_executed, 2);
        assert_eq!(stats.ctas_executed, 96);
    }
}
