//! Cache geometry: capacity, associativity, line size, and the derived
//! set count / index mapping.

use std::fmt;

/// Geometry of a set-associative cache.
///
/// The paper's caches are always described by capacity, associativity and a
/// 128 B line (Table I and Table III); the number of sets follows. Capacities
/// that are not an exact multiple of `ways * line_bytes` are rounded down to
/// the nearest whole number of sets (with a minimum of one set), mirroring
/// how simulators like Accel-Sim accept "34 MB total" style configurations.
///
/// # Example
///
/// ```
/// use gsim_mem::CacheGeometry;
///
/// let g = CacheGeometry::new(512 * 1024, 64, 128); // one paper LLC slice
/// assert_eq!(g.sets(), 64);
/// assert_eq!(g.capacity_bytes(), 512 * 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    sets: u32,
    ways: u32,
    line_bytes: u32,
}

impl CacheGeometry {
    /// Creates a geometry for a cache of (at most) `capacity_bytes`,
    /// `ways`-way set-associative with `line_bytes` lines.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero, `line_bytes` is zero or not a power of two,
    /// or `capacity_bytes` is smaller than one line.
    pub fn new(capacity_bytes: u64, ways: u32, line_bytes: u32) -> Self {
        assert!(ways > 0, "cache must have at least one way");
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two, got {line_bytes}"
        );
        assert!(
            capacity_bytes >= u64::from(line_bytes),
            "capacity {capacity_bytes} smaller than one {line_bytes} B line"
        );
        let way_bytes = u64::from(ways) * u64::from(line_bytes);
        let sets = (capacity_bytes / way_bytes).max(1);
        let sets = u32::try_from(sets).expect("set count exceeds u32");
        Self {
            sets,
            ways,
            line_bytes,
        }
    }

    /// Creates a geometry directly from a set count.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero or `line_bytes` is not a power of two.
    pub fn from_sets(sets: u32, ways: u32, line_bytes: u32) -> Self {
        assert!(sets > 0 && ways > 0, "sets and ways must be non-zero");
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two, got {line_bytes}"
        );
        Self {
            sets,
            ways,
            line_bytes,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.sets
    }

    /// Associativity (lines per set).
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    /// Total capacity in bytes actually realised by this geometry.
    pub fn capacity_bytes(&self) -> u64 {
        u64::from(self.sets) * u64::from(self.ways) * u64::from(self.line_bytes)
    }

    /// Total number of lines the cache can hold.
    pub fn lines(&self) -> u64 {
        u64::from(self.sets) * u64::from(self.ways)
    }

    /// Set index for a line address (byte address already shifted by the
    /// line size). Plain modulo indexing, as in real caches: consecutive
    /// lines spread perfectly evenly over the sets.
    #[inline]
    pub fn set_index(&self, line_addr: u64) -> u32 {
        (line_addr % u64::from(self.sets)) as u32
    }
}

impl fmt::Display for CacheGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cap = self.capacity_bytes();
        if cap >= 1024 * 1024 {
            write!(
                f,
                "{:.3} MB, {}-way, {} B lines",
                cap as f64 / (1024.0 * 1024.0),
                self.ways,
                self.line_bytes
            )
        } else {
            write!(
                f,
                "{} KB, {}-way, {} B lines",
                cap / 1024,
                self.ways,
                self.line_bytes
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derives_set_count_from_capacity() {
        let g = CacheGeometry::new(48 * 1024, 6, 128);
        assert_eq!(g.sets(), 64);
        assert_eq!(g.ways(), 6);
        assert_eq!(g.capacity_bytes(), 48 * 1024);
    }

    #[test]
    fn paper_llc_slice_geometry() {
        // Table I caption: 64-way, 64 sets, 128 B lines = 512 KB per slice.
        let g = CacheGeometry::from_sets(64, 64, 128);
        assert_eq!(g.capacity_bytes(), 512 * 1024);
        assert_eq!(g.lines(), 4096);
    }

    #[test]
    fn rounds_down_to_whole_sets() {
        // 100 KB with 6-way 128 B lines: way_bytes = 768, 102400/768 = 133 sets.
        let g = CacheGeometry::new(100 * 1024, 6, 128);
        assert_eq!(g.sets(), 133);
        assert!(g.capacity_bytes() <= 100 * 1024);
    }

    #[test]
    fn tiny_capacity_clamps_to_one_set() {
        let g = CacheGeometry::new(128, 4, 128);
        assert_eq!(g.sets(), 1);
        assert_eq!(g.ways(), 4);
    }

    #[test]
    fn set_index_in_range() {
        let g = CacheGeometry::new(2 * 1024 * 1024, 64, 128);
        for addr in [0u64, 1, 63, 64, 12345, u64::MAX >> 7] {
            assert!(g.set_index(addr) < g.sets());
        }
    }

    #[test]
    fn sequential_lines_spread_evenly_over_sets() {
        let g = CacheGeometry::from_sets(64, 4, 128);
        let mut counts = vec![0u32; 64];
        for i in 0..6400u64 {
            counts[g.set_index(i) as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 100), "modulo indexing is exact");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_line() {
        let _ = CacheGeometry::new(1024, 2, 100);
    }

    #[test]
    fn display_is_nonempty() {
        let g = CacheGeometry::new(48 * 1024, 6, 128);
        assert!(!format!("{g}").is_empty());
        let g = CacheGeometry::new(34 * 1024 * 1024, 64, 128);
        assert!(format!("{g}").contains("MB"));
    }
}
