//! Bank- and row-buffer-aware DRAM model.
//!
//! The flat [`DramModel`](crate::DramModel) treats each memory controller
//! as one bandwidth server — the first-order behaviour scaling studies
//! need. This model adds the second-order structure of real GDDR/HBM
//! channels: each controller owns a set of banks with open-row buffers;
//! a request to the open row pays only the CAS latency, while a row miss
//! pays precharge + activate + CAS and occupies the bank, and all data
//! bursts of a controller serialise on its shared data bus. Sequential
//! (row-friendly) streams therefore sustain near-peak bandwidth while
//! random traffic degrades — the usual ~2–3× gap.
//!
//! The timing simulator uses the flat model by default (set
//! `GpuConfig::dram_banks_per_mc` to enable this one); the `dram_banks`
//! ablation bench quantifies the difference.

use crate::slice::slice_for_line;

/// Statistics of a [`BankedDramModel`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BankedDramStats {
    /// Requests serviced.
    pub requests: u64,
    /// Bytes transferred.
    pub bytes: u64,
    /// Requests that hit an open row.
    pub row_hits: u64,
    /// Requests that had to precharge + activate.
    pub row_misses: u64,
}

impl BankedDramStats {
    /// Fraction of requests hitting an open row; 0 if no requests.
    pub fn row_hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.requests as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Bank {
    open_row: Option<u64>,
    next_free: f64,
}

/// Per-controller timing parameters, in core cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramTiming {
    /// Column access latency (row already open).
    pub t_cas: u32,
    /// Row activate latency.
    pub t_rcd: u32,
    /// Precharge latency (closing a conflicting row).
    pub t_rp: u32,
}

impl Default for DramTiming {
    /// GDDR6-flavoured defaults at a 1 GHz core clock.
    fn default() -> Self {
        Self {
            t_cas: 20,
            t_rcd: 20,
            t_rp: 20,
        }
    }
}

/// A multi-controller DRAM model with banks and open-row buffers.
///
/// # Example
///
/// ```
/// use gsim_mem::{BankedDramModel, DramTiming};
///
/// let mut d = BankedDramModel::new(1, 16, 145.0, 1.0, DramTiming::default());
/// let first = d.read(0, 0, 128);   // row miss: activate + burst + cas
/// let again = d.read(1000, 1, 128); // same row: burst + cas only
/// assert!(again - 1000 < first);
/// # let _ = (first, again);
/// ```
#[derive(Debug, Clone)]
pub struct BankedDramModel {
    banks: Vec<Bank>,
    bus_free: Vec<f64>,
    n_mcs: u32,
    banks_per_mc: u32,
    bytes_per_cycle: f64,
    timing: DramTiming,
    /// Lines per DRAM row (2 KB rows of 128 B lines).
    lines_per_row: u64,
    stats: BankedDramStats,
}

impl BankedDramModel {
    /// Creates a model with `n_mcs` controllers of `banks_per_mc` banks
    /// and `gbs_per_mc` GB/s of data-bus bandwidth each, at `clock_ghz`.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero or bandwidth/clock non-positive.
    pub fn new(
        n_mcs: u32,
        banks_per_mc: u32,
        gbs_per_mc: f64,
        clock_ghz: f64,
        timing: DramTiming,
    ) -> Self {
        assert!(n_mcs > 0 && banks_per_mc > 0, "need controllers and banks");
        assert!(
            gbs_per_mc > 0.0 && clock_ghz > 0.0,
            "bandwidth and clock must be positive"
        );
        Self {
            banks: vec![
                Bank {
                    open_row: None,
                    next_free: 0.0
                };
                (n_mcs * banks_per_mc) as usize
            ],
            bus_free: vec![0.0; n_mcs as usize],
            n_mcs,
            banks_per_mc,
            bytes_per_cycle: gbs_per_mc / clock_ghz,
            timing,
            lines_per_row: 16,
            stats: BankedDramStats::default(),
        }
    }

    /// The controller owning `line_addr` (same hash as the flat model).
    #[inline]
    pub fn mc_of(&self, line_addr: u64) -> u32 {
        slice_for_line(line_addr >> 3, self.n_mcs)
    }

    /// Returns `(controller, global bank index)` for a line.
    fn route(&self, line_addr: u64) -> (usize, usize) {
        let mc = self.mc_of(line_addr) as usize;
        let row = line_addr / self.lines_per_row;
        let bank = (row % u64::from(self.banks_per_mc)) as usize;
        (mc, mc * self.banks_per_mc as usize + bank)
    }

    /// Issues a read; returns the completion cycle.
    pub fn read(&mut self, now: u64, line_addr: u64, bytes: u32) -> u64 {
        self.request(now as f64, line_addr, bytes).ceil() as u64
    }

    /// Issues a write-back (fire-and-forget bandwidth/bank occupancy).
    pub fn write_back(&mut self, now: u64, line_addr: u64, bytes: u32) {
        let _ = self.request(now as f64, line_addr, bytes);
    }

    fn request(&mut self, now: f64, line_addr: u64, bytes: u32) -> f64 {
        let (mc, bank_idx) = self.route(line_addr);
        let row = line_addr / self.lines_per_row;
        let bank = &mut self.banks[bank_idx];
        let start = bank.next_free.max(now);
        // Activation work occupies the bank; the CAS column access is
        // pipelined (it adds latency to the completion but does not hold
        // the bank), so an open-row stream is purely bus-bound.
        let activate = if bank.open_row == Some(row) {
            self.stats.row_hits += 1;
            0.0
        } else {
            self.stats.row_misses += 1;
            let close = if bank.open_row.is_some() {
                f64::from(self.timing.t_rp)
            } else {
                0.0
            };
            bank.open_row = Some(row);
            close + f64::from(self.timing.t_rcd)
        };
        // Data burst serialises on the controller's shared bus.
        let burst = f64::from(bytes) / self.bytes_per_cycle;
        let data_start = (start + activate).max(self.bus_free[mc]);
        self.bus_free[mc] = data_start + burst;
        self.banks[bank_idx].next_free = data_start + burst;
        self.stats.requests += 1;
        self.stats.bytes += u64::from(bytes);
        data_start + burst + f64::from(self.timing.t_cas)
    }

    /// Statistics so far.
    pub fn stats(&self) -> BankedDramStats {
        self.stats
    }

    /// Resets rows, queues and statistics.
    pub fn reset(&mut self) {
        for b in &mut self.banks {
            b.open_row = None;
            b.next_free = 0.0;
        }
        self.bus_free.fill(0.0);
        self.stats = BankedDramStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> BankedDramModel {
        BankedDramModel::new(1, 16, 128.0, 1.0, DramTiming::default())
    }

    #[test]
    fn row_hit_is_cheaper_than_row_miss() {
        let mut d = model();
        let miss = d.read(0, 0, 128); // activate + burst + cas
        assert_eq!(miss, 20 + 1 + 20);
        // Second access to the same row, issued much later (bank free).
        let hit = d.read(1000, 1, 128) - 1000;
        assert_eq!(hit, 1 + 20);
        assert_eq!(d.stats().row_hits, 1);
        assert_eq!(d.stats().row_misses, 1);
    }

    #[test]
    fn row_conflict_pays_precharge() {
        let mut d = model();
        d.read(0, 0, 128); // opens row 0 of bank 0
                           // Row 16 (line 256) maps to bank 16%16=0 again: conflict.
        let conflict = d.read(1000, 256, 128) - 1000;
        assert_eq!(conflict, 20 + 20 + 1 + 20);
    }

    #[test]
    fn sequential_stream_sustains_near_peak_bandwidth() {
        let mut d = model();
        let mut done = 0;
        let n = 1024u64;
        for l in 0..n {
            done = d.read(0, l, 128);
        }
        // 1024 lines at 1 cycle/line bus time, row hits 15/16.
        let efficiency = n as f64 / done as f64;
        assert!(
            efficiency > 0.85,
            "sequential stream should be bus-bound, got {efficiency}"
        );
        assert!(d.stats().row_hit_rate() > 0.9);
    }

    #[test]
    fn random_traffic_degrades_bandwidth() {
        use gsim_rng::Rng64;
        let mut d = model();
        let mut rng = Rng64::seed_from_u64(3);
        let mut done = 0;
        let n = 1024u64;
        for _ in 0..n {
            done = d.read(0, rng.gen_range(0, 1_000_000), 128);
        }
        let efficiency = n as f64 / done as f64;
        assert!(
            efficiency < 0.6,
            "random traffic should be activate-bound, got {efficiency}"
        );
        assert!(d.stats().row_hit_rate() < 0.2);
    }

    #[test]
    fn banks_provide_parallelism() {
        let mut one = BankedDramModel::new(1, 1, 128.0, 1.0, DramTiming::default());
        let mut many = model();
        let mut t1 = 0;
        let mut t16 = 0;
        // 16 concurrent row misses to distinct rows.
        for r in 0..16u64 {
            let line = r * 16; // one per row -> distinct banks in `many`
            t1 = t1.max(one.read(0, line, 128));
            t16 = t16.max(many.read(0, line, 128));
        }
        assert!(
            t16 < t1 / 2,
            "bank parallelism should overlap activates: 1 bank {t1} vs 16 banks {t16}"
        );
    }

    #[test]
    fn reset_restores_state() {
        let mut d = model();
        d.read(0, 0, 128);
        d.reset();
        assert_eq!(d.stats(), BankedDramStats::default());
        assert_eq!(d.read(0, 0, 128), 41); // full row miss again
    }
}
