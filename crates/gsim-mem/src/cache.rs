//! Set-associative, write-back tag-store cache model with selectable
//! replacement policy.

use crate::geometry::CacheGeometry;

/// Replacement policy of a [`Cache`].
///
/// The paper's configurations use true LRU (Table III); the alternatives
/// exist for ablations — in particular, miss-rate-curve *cliffs* are an
/// LRU artefact (a cyclically re-swept working set one line larger than
/// the cache misses every access), and [`ReplacementPolicy::Random`]
/// smooths them away, the observation behind Talus \[11\].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementPolicy {
    /// True least-recently-used (the default, and the paper's setting).
    #[default]
    Lru,
    /// First-in-first-out: eviction order is fill order; hits do not
    /// promote.
    Fifo,
    /// Uniformly random victim, from a deterministic xorshift stream.
    Random,
}

/// A line evicted by a cache fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// Line address of the victim.
    pub line_addr: u64,
    /// Whether the victim was dirty (a write-back to the next level is
    /// required and consumes bandwidth there).
    pub dirty: bool,
}

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessResult {
    /// The line was present.
    Hit,
    /// The line was absent and has been filled; the set's LRU victim, if the
    /// set was full, is reported so the caller can model write-back traffic.
    Miss(Option<EvictedLine>),
}

impl AccessResult {
    /// Returns `true` for [`AccessResult::Hit`].
    pub fn is_hit(&self) -> bool {
        matches!(self, AccessResult::Hit)
    }

    /// Returns `true` for [`AccessResult::Miss`].
    pub fn is_miss(&self) -> bool {
        !self.is_hit()
    }

    /// The evicted victim line, if the access caused an eviction.
    pub fn evicted(&self) -> Option<EvictedLine> {
        match self {
            AccessResult::Hit => None,
            AccessResult::Miss(e) => *e,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    line_addr: u64,
    valid: bool,
    dirty: bool,
}

const INVALID: Entry = Entry {
    line_addr: 0,
    valid: false,
    dirty: false,
};

/// A set-associative cache with selectable replacement (true LRU by
/// default) and write-back, write-allocate semantics, modelled as a tag
/// store (no data payloads).
///
/// Used for the per-SM 48 KB 6-way L1 caches and, one instance per slice,
/// for the 64-way LLC slices of the paper's configurations.
///
/// Sets are stored as contiguous way-arrays ordered most-recently-used
/// first, so a hit is a short linear scan plus a rotate, which is fast for
/// the 6- to 64-way associativities used here.
///
/// # Example
///
/// ```
/// use gsim_mem::{Cache, CacheGeometry};
///
/// let mut c = Cache::new(CacheGeometry::from_sets(2, 2, 128));
/// assert!(c.access(0, false).is_miss());
/// assert!(c.access(0, false).is_hit());
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    geom: CacheGeometry,
    policy: ReplacementPolicy,
    /// `sets * ways` entries; within a set, index 0 is MRU (LRU policy)
    /// or newest-filled (FIFO).
    entries: Vec<Entry>,
    hits: u64,
    misses: u64,
    evictions: u64,
    dirty_evictions: u64,
    /// Xorshift state for the random policy (deterministic).
    rng_state: u64,
}

impl Cache {
    /// Creates an empty LRU cache with the given geometry.
    pub fn new(geom: CacheGeometry) -> Self {
        Self::with_policy(geom, ReplacementPolicy::Lru)
    }

    /// Creates an empty cache with an explicit replacement policy.
    pub fn with_policy(geom: CacheGeometry, policy: ReplacementPolicy) -> Self {
        let n = geom.sets() as usize * geom.ways() as usize;
        Self {
            geom,
            policy,
            entries: vec![INVALID; n],
            hits: 0,
            misses: 0,
            evictions: 0,
            dirty_evictions: 0,
            rng_state: 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// The replacement policy in force.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    #[inline]
    fn next_random(&mut self) -> u64 {
        let mut x = self.rng_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng_state = x;
        x
    }

    /// The geometry this cache was built with.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// Accesses `line_addr` (a line address, not a byte address), filling on
    /// miss. `is_write` marks the line dirty on hit or fill.
    pub fn access(&mut self, line_addr: u64, is_write: bool) -> AccessResult {
        let ways = self.geom.ways() as usize;
        let set = self.geom.set_index(line_addr) as usize;
        let base = set * ways;
        let policy = self.policy;
        let set_slice = &mut self.entries[base..base + ways];

        // Hit path: scan MRU-first.
        for i in 0..ways {
            let e = set_slice[i];
            if e.valid && e.line_addr == line_addr {
                if policy == ReplacementPolicy::Lru {
                    // Move to MRU position; FIFO/Random leave order alone.
                    set_slice[..=i].rotate_right(1);
                    set_slice[0].dirty = e.dirty || is_write;
                } else {
                    set_slice[i].dirty = e.dirty || is_write;
                }
                self.hits += 1;
                return AccessResult::Hit;
            }
        }

        // Miss: pick a victim per policy. A set fills back-to-front, so
        // the last slot is invalid until the set is full.
        self.misses += 1;
        let victim_idx = if !set_slice[ways - 1].valid {
            ways - 1
        } else {
            match self.policy {
                ReplacementPolicy::Lru | ReplacementPolicy::Fifo => ways - 1,
                ReplacementPolicy::Random => (self.next_random() % ways as u64) as usize,
            }
        };
        let set_slice = &mut self.entries[base..base + ways];
        let victim = set_slice[victim_idx];
        let evicted = if victim.valid {
            self.evictions += 1;
            if victim.dirty {
                self.dirty_evictions += 1;
            }
            Some(EvictedLine {
                line_addr: victim.line_addr,
                dirty: victim.dirty,
            })
        } else {
            None
        };
        // Shift the victim slot to the front (newest position) and fill.
        set_slice[..=victim_idx].rotate_right(1);
        set_slice[0] = Entry {
            line_addr,
            valid: true,
            dirty: is_write,
        };
        AccessResult::Miss(evicted)
    }

    /// Probes for `line_addr` without updating LRU state or statistics.
    pub fn contains(&self, line_addr: u64) -> bool {
        let ways = self.geom.ways() as usize;
        let set = self.geom.set_index(line_addr) as usize;
        let base = set * ways;
        self.entries[base..base + ways]
            .iter()
            .any(|e| e.valid && e.line_addr == line_addr)
    }

    /// Invalidates `line_addr` if present; returns whether it was dirty.
    pub fn invalidate(&mut self, line_addr: u64) -> Option<bool> {
        let ways = self.geom.ways() as usize;
        let set = self.geom.set_index(line_addr) as usize;
        let base = set * ways;
        let set_slice = &mut self.entries[base..base + ways];
        for i in 0..ways {
            let e = set_slice[i];
            if e.valid && e.line_addr == line_addr {
                let dirty = e.dirty;
                // Shift the hole to the LRU end.
                set_slice[i..].rotate_left(1);
                set_slice[ways - 1] = INVALID;
                return Some(dirty);
            }
        }
        None
    }

    /// Empties the cache and resets statistics.
    pub fn reset(&mut self) {
        self.entries.fill(INVALID);
        self.hits = 0;
        self.misses = 0;
        self.evictions = 0;
        self.dirty_evictions = 0;
    }

    /// Number of hits recorded so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of misses recorded so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of evictions of valid lines.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Number of evictions of dirty lines (write-back traffic).
    pub fn dirty_evictions(&self) -> u64 {
        self.dirty_evictions
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss rate over all accesses so far; 0 if no accesses.
    pub fn miss_rate(&self) -> f64 {
        let a = self.accesses();
        if a == 0 {
            0.0
        } else {
            self.misses as f64 / a as f64
        }
    }

    /// Number of valid lines currently resident.
    pub fn resident_lines(&self) -> u64 {
        self.entries.iter().filter(|e| e.valid).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 1 set, 2 ways for easy LRU reasoning.
        Cache::new(CacheGeometry::from_sets(1, 2, 128))
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        assert!(c.access(1, false).is_miss());
        assert!(c.access(1, false).is_hit());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small();
        c.access(1, false);
        c.access(2, false);
        // Touch 1 so 2 becomes LRU.
        c.access(1, false);
        let r = c.access(3, false);
        assert_eq!(
            r.evicted(),
            Some(EvictedLine {
                line_addr: 2,
                dirty: false
            })
        );
        assert!(c.contains(1));
        assert!(c.contains(3));
        assert!(!c.contains(2));
    }

    #[test]
    fn dirty_writeback_reported() {
        let mut c = small();
        c.access(1, true);
        c.access(2, false);
        let r = c.access(3, false); // evicts 1 (LRU), which is dirty
        assert_eq!(
            r.evicted(),
            Some(EvictedLine {
                line_addr: 1,
                dirty: true
            })
        );
        assert_eq!(c.dirty_evictions(), 1);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small();
        c.access(1, false);
        c.access(1, true); // hit, marks dirty
        c.access(2, false);
        let r = c.access(3, false);
        assert!(r.evicted().expect("eviction").dirty);
    }

    #[test]
    fn fill_before_evict() {
        let mut c = small();
        assert_eq!(c.access(1, false).evicted(), None);
        assert_eq!(c.access(2, false).evicted(), None);
        assert!(c.access(3, false).evicted().is_some());
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small();
        c.access(1, true);
        assert_eq!(c.invalidate(1), Some(true));
        assert!(!c.contains(1));
        assert_eq!(c.invalidate(1), None);
        // The freed way is reused without eviction.
        c.access(2, false);
        c.access(3, false);
        assert_eq!(c.evictions(), 0);
    }

    #[test]
    fn contains_does_not_perturb_lru() {
        let mut c = small();
        c.access(1, false);
        c.access(2, false); // MRU=2, LRU=1
        assert!(c.contains(1)); // must not promote 1
        let r = c.access(3, false);
        assert_eq!(r.evicted().expect("eviction").line_addr, 1);
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = small();
        c.access(1, true);
        c.reset();
        assert_eq!(c.accesses(), 0);
        assert_eq!(c.resident_lines(), 0);
        assert!(c.access(1, false).is_miss());
    }

    #[test]
    fn working_set_within_capacity_has_only_cold_misses() {
        let geom = CacheGeometry::new(64 * 1024, 8, 128); // 512 lines
        let mut c = Cache::new(geom);
        let lines: Vec<u64> = (0..256).collect();
        for pass in 0..4 {
            for &l in &lines {
                let r = c.access(l, false);
                if pass > 0 {
                    assert!(r.is_hit(), "pass {pass} line {l} should hit");
                }
            }
        }
        assert_eq!(c.misses(), 256);
    }

    #[test]
    fn cyclic_sweep_larger_than_capacity_thrashes_lru() {
        // Classic LRU pathology: sweeping N+1 lines over an N-line
        // fully-associative cache misses every time.
        let geom = CacheGeometry::from_sets(1, 64, 128);
        let mut c = Cache::new(geom);
        for _ in 0..3 {
            for l in 0..65u64 {
                c.access(l, false);
            }
        }
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 3 * 65);
    }

    #[test]
    fn miss_rate_computation() {
        let mut c = small();
        c.access(1, false);
        c.access(1, false);
        assert!((c.miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fifo_does_not_promote_on_hit() {
        let mut c =
            Cache::with_policy(CacheGeometry::from_sets(1, 2, 128), ReplacementPolicy::Fifo);
        c.access(1, false);
        c.access(2, false);
        c.access(1, false); // hit, but 1 stays oldest under FIFO
        let r = c.access(3, false);
        assert_eq!(r.evicted().expect("eviction").line_addr, 1);
    }

    #[test]
    fn random_policy_is_deterministic_and_in_bounds() {
        let geom = CacheGeometry::from_sets(4, 8, 128);
        let run = || {
            let mut c = Cache::with_policy(geom, ReplacementPolicy::Random);
            for l in 0..10_000u64 {
                c.access(l % 97, false);
            }
            (c.hits(), c.misses())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn random_replacement_smooths_the_lru_thrash_pathology() {
        // Cyclic sweep of N+1 lines over an N-line cache: LRU misses every
        // access; random replacement retains a healthy hit rate. This is
        // the mechanism behind miss-rate-curve cliffs (Talus [11]).
        let geom = CacheGeometry::from_sets(1, 64, 128);
        let sweep = |policy| {
            let mut c = Cache::with_policy(geom, policy);
            for _ in 0..20 {
                for l in 0..65u64 {
                    c.access(l, false);
                }
            }
            c.hits() as f64 / c.accesses() as f64
        };
        assert_eq!(sweep(ReplacementPolicy::Lru), 0.0);
        assert!(sweep(ReplacementPolicy::Random) > 0.5);
    }
}
