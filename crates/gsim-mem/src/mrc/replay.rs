//! Exhaustive per-capacity cache replay.
//!
//! Replays a functional address stream through one real, set-associative,
//! sliced LLC model per candidate capacity simultaneously. This matches the
//! timing simulator's cache organisation exactly (associativity, slice
//! hashing, set indexing), at the cost of one cache lookup per capacity per
//! access. It is the engine the experiment pipeline uses to produce the
//! paper's Figure 2 miss-rate curves, since those must agree with what the
//! detailed simulator would measure.

use crate::slice::SlicedLlc;

/// Replays accesses through several LLC configurations at once.
///
/// # Example
///
/// ```
/// use gsim_mem::mrc::CapacityReplay;
///
/// let caps = [(64 * 1024, 1), (128 * 1024, 2)];
/// let mut r = CapacityReplay::new(&caps, 16, 128);
/// for pass in 0..2 {
///     for line in 0..700u64 {
///         r.access(line, false);
///     }
/// }
/// let m = r.misses();
/// assert!(m[1] <= m[0], "bigger cache cannot miss more here");
/// ```
#[derive(Debug, Clone)]
pub struct CapacityReplay {
    llcs: Vec<SlicedLlc>,
    capacities: Vec<u64>,
    accesses: u64,
}

impl CapacityReplay {
    /// Creates a replay over `(total_bytes, n_slices)` configurations, each
    /// `ways`-way associative with `line_bytes` lines.
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty or any configuration is invalid.
    pub fn new(configs: &[(u64, u32)], ways: u32, line_bytes: u32) -> Self {
        assert!(!configs.is_empty(), "need at least one capacity");
        let llcs: Vec<SlicedLlc> = configs
            .iter()
            .map(|&(bytes, slices)| SlicedLlc::new(bytes, slices, ways, line_bytes))
            .collect();
        Self {
            capacities: configs.iter().map(|&(b, _)| b).collect(),
            llcs,
            accesses: 0,
        }
    }

    /// Feeds one line access to every configuration.
    pub fn access(&mut self, line_addr: u64, is_write: bool) {
        self.accesses += 1;
        for llc in &mut self.llcs {
            llc.access(line_addr, is_write);
        }
    }

    /// Nominal capacities in bytes, in construction order.
    pub fn capacities(&self) -> &[u64] {
        &self.capacities
    }

    /// Miss counts per configuration, in construction order.
    pub fn misses(&self) -> Vec<u64> {
        self.llcs.iter().map(SlicedLlc::misses).collect()
    }

    /// Miss rates per configuration.
    pub fn miss_rates(&self) -> Vec<f64> {
        self.llcs.iter().map(SlicedLlc::miss_rate).collect()
    }

    /// Total accesses fed so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// MPKI per configuration given the total *instruction* count of the
    /// traced execution (thread instructions, per the paper's definition).
    pub fn mpki(&self, total_instructions: u64) -> Vec<f64> {
        let k = total_instructions as f64 / 1000.0;
        self.misses()
            .iter()
            .map(|&m| if k > 0.0 { m as f64 / k } else { 0.0 })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn larger_capacity_catches_cyclic_reuse() {
        // 700 lines of footprint: thrashes a 512-line cache, fits 1024.
        let caps = [(512 * 128, 1), (1024 * 128, 1)];
        let mut r = CapacityReplay::new(&caps, 64, 128);
        for _ in 0..4 {
            for l in 0..700u64 {
                r.access(l, false);
            }
        }
        let m = r.misses();
        assert!(
            m[0] > 3 * m[1],
            "small cache should thrash: {m:?} (small vs large)"
        );
        assert_eq!(m[1], 700, "large cache takes only cold misses");
    }

    #[test]
    fn mpki_scales_with_instruction_count() {
        let mut r = CapacityReplay::new(&[(64 * 1024, 1)], 16, 128);
        for l in 0..1000u64 {
            r.access(l, false);
        }
        let mpki = r.mpki(1_000_000);
        assert!(
            (mpki[0] - 1.0).abs() < 1e-9,
            "1000 misses / 1000 kilo-instrs"
        );
        assert_eq!(r.mpki(0), vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "at least one capacity")]
    fn rejects_empty_config() {
        let _ = CapacityReplay::new(&[], 16, 128);
    }
}
