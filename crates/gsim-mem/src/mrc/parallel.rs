//! Parallel sharded stack-distance collection.
//!
//! The SHARDS observation (see [`ShardsStack`](super::ShardsStack)) —
//! spatially-hashed sampling at rate `R` shrinks stack distances by `R` in
//! expectation — also yields a *parallel decomposition*: route each line
//! to one of `N` disjoint spatial shards, compute an exact stack-distance
//! histogram per shard independently (each shard is itself a spatial
//! sample at rate `keep_rate / N`), then rescale and merge. Shard
//! histograms commute under addition, so the merge is deterministic as
//! long as callers combine them in ascending shard order — which lets a
//! thread pool collect the shards concurrently without any effect on the
//! result. This is the shard-parallel approach of "Parallelizing a modern
//! GPU simulator" (arXiv 2502.14691) applied to MRC collection.
//!
//! The router also folds in SHARDS sampling proper: with `keep_rate < 1`
//! only that fraction of the distinct-line hash space is kept at all, so
//! the per-shard tree work shrinks by another constant factor.

use super::histogram::StackDistanceHistogram;

/// Modulus for the sampling decision (matches
/// [`ShardsStack`](super::ShardsStack)).
const SAMPLE_MOD: u64 = 1 << 24;

/// Deterministically routes line addresses to spatial shards, dropping
/// `1 - keep_rate` of the distinct-line hash space on the way.
///
/// All accesses to one line land in the same shard (or are all dropped):
/// the decision depends only on the line address, which is what makes
/// per-shard stack distances meaningful.
#[derive(Debug, Clone)]
pub struct LineRouter {
    threshold: u64,
    n_shards: u32,
}

impl LineRouter {
    /// Creates a router over `n_shards` shards keeping `keep_rate` of the
    /// distinct-line space.
    ///
    /// # Panics
    ///
    /// Panics if `n_shards` is zero or `keep_rate` is not in `(0, 1]`.
    pub fn new(n_shards: u32, keep_rate: f64) -> Self {
        assert!(n_shards > 0, "need at least one shard");
        assert!(
            keep_rate > 0.0 && keep_rate <= 1.0,
            "keep_rate must be in (0, 1]"
        );
        Self {
            threshold: ((keep_rate * SAMPLE_MOD as f64).round() as u64).max(1),
            n_shards,
        }
    }

    /// Number of shards lines are routed across.
    pub fn n_shards(&self) -> u32 {
        self.n_shards
    }

    /// The keep rate actually realised by the integer threshold.
    pub fn keep_rate(&self) -> f64 {
        self.threshold as f64 / SAMPLE_MOD as f64
    }

    /// The shard of `line_addr`, or `None` when the line is sampled out.
    /// Purely a function of the address — deterministic everywhere.
    #[inline]
    pub fn route(&self, line_addr: u64) -> Option<u32> {
        // The same multiplicative mix ShardsStack uses; the low 24 bits
        // decide sampling, higher bits pick the shard so the two choices
        // stay independent.
        let mut h = line_addr.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        h = h.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
        h ^= h >> 33;
        if h % SAMPLE_MOD >= self.threshold {
            return None;
        }
        Some(((h >> 24) % u64::from(self.n_shards)) as u32)
    }

    /// Reconstructs the full-stream histogram estimate from the per-shard
    /// histograms this router produced. `shards` must be supplied **in
    /// ascending shard order** and contain exactly
    /// [`n_shards`](Self::n_shards) entries; with a fixed order the
    /// floating-point merge is deterministic regardless of how (or how
    /// concurrently) the shards were collected.
    ///
    /// Each shard is a spatial sample at rate `keep_rate / n_shards`, so
    /// distances scale up by `n_shards / keep_rate` and each access
    /// weighs `1 / keep_rate` (mass dropped by sampling, not by
    /// sharding, must be re-added).
    ///
    /// # Panics
    ///
    /// Panics if the shard count does not match.
    pub fn merge(&self, shards: &[StackDistanceHistogram]) -> StackDistanceHistogram {
        assert_eq!(
            shards.len(),
            self.n_shards as usize,
            "one histogram per shard, in shard order"
        );
        let keep = self.keep_rate();
        let distance_scale = f64::from(self.n_shards) / keep;
        let weight_scale = 1.0 / keep;
        let mut merged = StackDistanceHistogram::new();
        for hist in shards {
            merged.merge(&hist.rescaled(distance_scale, weight_scale));
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::super::{DistanceEngine, TreeStack};
    use super::*;

    /// A deterministic pseudo-stream with heavy reuse: four sweeps over
    /// `n` lines.
    fn sweep_stream(n: u64, passes: u32) -> Vec<u64> {
        (0..passes)
            .flat_map(|_| (0..n).map(|l| l.wrapping_mul(2654435761) % n))
            .collect()
    }

    fn exact_misses(lines: &[u64], capacity: u64) -> f64 {
        let mut t = TreeStack::new();
        t.record_all(lines.iter().copied());
        t.finish().misses_at(capacity)
    }

    fn sharded_misses(lines: &[u64], router: &LineRouter, capacity: u64) -> f64 {
        let mut trees: Vec<TreeStack> = (0..router.n_shards()).map(|_| TreeStack::new()).collect();
        for &l in lines {
            if let Some(s) = router.route(l) {
                trees[s as usize].record(l);
            }
        }
        let hists: Vec<_> = trees.into_iter().map(TreeStack::finish).collect();
        router.merge(&hists).misses_at(capacity)
    }

    #[test]
    fn routing_is_spatial_and_total_at_rate_one() {
        let router = LineRouter::new(4, 1.0);
        for l in 0..10_000u64 {
            let a = router.route(l);
            assert!(a.is_some(), "keep_rate 1.0 drops nothing");
            assert_eq!(a, router.route(l), "same line, same shard");
            assert!(a.unwrap() < 4);
        }
        // All shards get used.
        let mut seen = [false; 4];
        for l in 0..64u64 {
            seen[router.route(l).unwrap() as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn sharded_estimate_tracks_exact_histogram() {
        let lines = sweep_stream(4_000, 4);
        let router = LineRouter::new(8, 1.0);
        for capacity in [500u64, 2_000, 5_000] {
            let exact = exact_misses(&lines, capacity);
            let est = sharded_misses(&lines, &router, capacity);
            let err = (est - exact).abs() / exact.max(1.0);
            assert!(
                err < 0.15,
                "capacity {capacity}: exact {exact}, sharded {est} (err {err})"
            );
        }
    }

    #[test]
    fn sampling_rescales_total_mass() {
        let lines = sweep_stream(4_000, 4);
        let router = LineRouter::new(4, 0.25);
        let mut trees: Vec<TreeStack> = (0..4).map(|_| TreeStack::new()).collect();
        for &l in &lines {
            if let Some(s) = router.route(l) {
                trees[s as usize].record(l);
            }
        }
        let hists: Vec<_> = trees.into_iter().map(TreeStack::finish).collect();
        let merged = router.merge(&hists);
        let err = (merged.total_accesses() - lines.len() as f64).abs() / lines.len() as f64;
        assert!(
            err < 0.15,
            "mass {} vs {} accesses",
            merged.total_accesses(),
            lines.len()
        );
    }

    #[test]
    fn merge_order_is_the_contract() {
        // Same shard histograms, same order → bit-identical merge, no
        // matter how the shards were produced.
        let lines = sweep_stream(1_000, 3);
        let router = LineRouter::new(3, 0.5);
        let collect = || {
            let mut trees: Vec<TreeStack> = (0..3).map(|_| TreeStack::new()).collect();
            for &l in &lines {
                if let Some(s) = router.route(l) {
                    trees[s as usize].record(l);
                }
            }
            let hists: Vec<_> = trees.into_iter().map(TreeStack::finish).collect();
            router.merge(&hists)
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    #[should_panic(expected = "one histogram per shard")]
    fn merge_rejects_wrong_shard_count() {
        LineRouter::new(4, 1.0).merge(&[StackDistanceHistogram::new()]);
    }
}
