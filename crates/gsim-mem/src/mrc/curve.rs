//! The miss-rate curve data type.

use std::fmt;

use super::histogram::StackDistanceHistogram;

/// One sample of a miss-rate curve: the LLC capacity and the misses per
/// thousand (thread) instructions measured or predicted at that capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MrcPoint {
    /// LLC capacity in bytes.
    pub capacity_bytes: u64,
    /// LLC misses per thousand instructions at this capacity.
    pub mpki: f64,
}

/// A miss-rate curve: MPKI as a function of LLC capacity, sampled at the
/// capacities of the scale models and candidate target systems (the paper's
/// Figure 2). Points are kept sorted by capacity.
///
/// # Example
///
/// ```
/// use gsim_mem::mrc::MissRateCurve;
///
/// let mrc = MissRateCurve::from_pairs([
///     (2_228_224, 8.1),
///     (4_456_448, 7.6),
///     (8_912_896, 7.0),
/// ]);
/// assert_eq!(mrc.len(), 3);
/// assert!(mrc.mpki_at(4_456_448).unwrap() > 7.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MissRateCurve {
    points: Vec<MrcPoint>,
}

impl MissRateCurve {
    /// Creates an empty curve.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a curve from `(capacity_bytes, mpki)` pairs; sorts by capacity.
    pub fn from_pairs<I: IntoIterator<Item = (u64, f64)>>(pairs: I) -> Self {
        let mut points: Vec<MrcPoint> = pairs
            .into_iter()
            .map(|(capacity_bytes, mpki)| MrcPoint {
                capacity_bytes,
                mpki,
            })
            .collect();
        points.sort_by_key(|p| p.capacity_bytes);
        Self { points }
    }

    /// Derives a curve from a stack-distance histogram, sampling it at the
    /// given capacities (bytes), for a trace of `total_instructions` thread
    /// instructions and `line_bytes` cache lines.
    pub fn from_histogram(
        hist: &StackDistanceHistogram,
        capacities_bytes: &[u64],
        total_instructions: u64,
        line_bytes: u32,
    ) -> Self {
        let k = total_instructions as f64 / 1000.0;
        Self::from_pairs(capacities_bytes.iter().map(|&cap| {
            let lines = cap / u64::from(line_bytes);
            let misses = hist.misses_at(lines);
            (cap, if k > 0.0 { misses / k } else { 0.0 })
        }))
    }

    /// Adds a point, keeping the curve sorted; replaces an existing point at
    /// the same capacity.
    pub fn insert(&mut self, capacity_bytes: u64, mpki: f64) {
        match self
            .points
            .binary_search_by_key(&capacity_bytes, |p| p.capacity_bytes)
        {
            Ok(i) => self.points[i].mpki = mpki,
            Err(i) => self.points.insert(
                i,
                MrcPoint {
                    capacity_bytes,
                    mpki,
                },
            ),
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the curve has no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The samples, sorted by capacity.
    pub fn points(&self) -> &[MrcPoint] {
        &self.points
    }

    /// MPKI at exactly `capacity_bytes`, if sampled.
    pub fn mpki_at(&self, capacity_bytes: u64) -> Option<f64> {
        self.points
            .binary_search_by_key(&capacity_bytes, |p| p.capacity_bytes)
            .ok()
            .map(|i| self.points[i].mpki)
    }

    /// MPKI at `capacity_bytes` with log-linear interpolation between
    /// samples (clamped at the ends). Returns `None` on an empty curve.
    pub fn mpki_interpolated(&self, capacity_bytes: u64) -> Option<f64> {
        let pts = self.points.as_slice();
        match pts {
            [] => None,
            [only] => Some(only.mpki),
            _ => {
                if capacity_bytes <= pts[0].capacity_bytes {
                    return Some(pts[0].mpki);
                }
                if capacity_bytes >= pts[pts.len() - 1].capacity_bytes {
                    return Some(pts[pts.len() - 1].mpki);
                }
                let i = pts
                    .partition_point(|p| p.capacity_bytes <= capacity_bytes)
                    .min(pts.len() - 1);
                let (a, b) = (pts[i - 1], pts[i]);
                let x = (capacity_bytes as f64).ln();
                let (xa, xb) = (
                    (a.capacity_bytes as f64).ln(),
                    (b.capacity_bytes as f64).ln(),
                );
                let t = (x - xa) / (xb - xa);
                Some(a.mpki + t * (b.mpki - a.mpki))
            }
        }
    }

    /// Iterates over the points.
    pub fn iter(&self) -> std::slice::Iter<'_, MrcPoint> {
        self.points.iter()
    }
}

impl FromIterator<(u64, f64)> for MissRateCurve {
    fn from_iter<I: IntoIterator<Item = (u64, f64)>>(iter: I) -> Self {
        Self::from_pairs(iter)
    }
}

impl fmt::Display for MissRateCurve {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MRC[")?;
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(
                f,
                "{:.3} MB: {:.2}",
                p.capacity_bytes as f64 / (1024.0 * 1024.0),
                p.mpki
            )?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_are_sorted() {
        let mrc = MissRateCurve::from_pairs([(200, 1.0), (100, 2.0)]);
        assert_eq!(mrc.points()[0].capacity_bytes, 100);
        assert_eq!(mrc.points()[1].capacity_bytes, 200);
    }

    #[test]
    fn insert_replaces_same_capacity() {
        let mut mrc = MissRateCurve::new();
        mrc.insert(100, 5.0);
        mrc.insert(100, 3.0);
        assert_eq!(mrc.len(), 1);
        assert_eq!(mrc.mpki_at(100), Some(3.0));
    }

    #[test]
    fn interpolation_clamps_and_blends() {
        let mrc = MissRateCurve::from_pairs([(100, 10.0), (400, 2.0)]);
        assert_eq!(mrc.mpki_interpolated(50), Some(10.0));
        assert_eq!(mrc.mpki_interpolated(1000), Some(2.0));
        // Log midpoint of 100 and 400 is 200.
        let mid = mrc.mpki_interpolated(200).unwrap();
        assert!((mid - 6.0).abs() < 1e-9, "log-linear midpoint, got {mid}");
        assert_eq!(MissRateCurve::new().mpki_interpolated(100), None);
    }

    #[test]
    fn from_histogram_converts_capacities_to_lines() {
        let mut h = StackDistanceHistogram::new();
        h.add_cold(100.0);
        h.add(10, 900.0); // misses for caches smaller than 11 lines
        let mrc = MissRateCurve::from_histogram(&h, &[10 * 128, 11 * 128], 1_000_000, 128);
        assert_eq!(mrc.mpki_at(10 * 128), Some(1.0)); // 1000 misses / 1000 KI
        assert_eq!(mrc.mpki_at(11 * 128), Some(0.1)); // only cold misses
    }

    #[test]
    fn display_mentions_capacity() {
        let mrc = MissRateCurve::from_pairs([(2_228_224, 8.0)]);
        assert!(format!("{mrc}").contains("2.125 MB"));
    }
}
