//! Stack-distance histograms.

/// A histogram of LRU stack distances (reuse distances measured in *unique*
/// intervening lines), plus the count of cold (first-touch) accesses.
///
/// A fully-associative LRU cache of capacity `C` lines hits an access iff
/// its stack distance is `< C`; the miss count at capacity `C` is therefore
/// the cold count plus the histogram mass at distances `>= C`. Fractional
/// weights are supported so sampled engines (SHARDS) can scale their
/// contributions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StackDistanceHistogram {
    /// `counts[d]` = (possibly scaled) number of accesses with distance `d`.
    counts: Vec<f64>,
    cold: f64,
    total: f64,
}

impl StackDistanceHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `weight` accesses at stack distance `distance`.
    pub fn add(&mut self, distance: u64, weight: f64) {
        let d = usize::try_from(distance).expect("distance exceeds usize");
        if d >= self.counts.len() {
            self.counts.resize(d + 1, 0.0);
        }
        self.counts[d] += weight;
        self.total += weight;
    }

    /// Adds `weight` cold (first-touch) accesses, which miss at any capacity.
    pub fn add_cold(&mut self, weight: f64) {
        self.cold += weight;
        self.total += weight;
    }

    /// Total (scaled) accesses recorded.
    pub fn total_accesses(&self) -> f64 {
        self.total
    }

    /// Total (scaled) cold accesses.
    pub fn cold_accesses(&self) -> f64 {
        self.cold
    }

    /// Largest distance with non-zero mass, if any reuse was recorded.
    pub fn max_distance(&self) -> Option<u64> {
        self.counts.iter().rposition(|&c| c > 0.0).map(|d| d as u64)
    }

    /// Number of misses a fully-associative LRU cache of `capacity_lines`
    /// would take on this trace: cold misses plus all accesses whose
    /// distance is `>= capacity_lines`.
    pub fn misses_at(&self, capacity_lines: u64) -> f64 {
        let c = usize::try_from(capacity_lines).unwrap_or(usize::MAX);
        let reuse_misses: f64 = if c >= self.counts.len() {
            0.0
        } else {
            self.counts[c..].iter().sum()
        };
        self.cold + reuse_misses
    }

    /// Miss *rate* (fraction of accesses missing) at `capacity_lines`;
    /// 0 if the histogram is empty.
    pub fn miss_rate_at(&self, capacity_lines: u64) -> f64 {
        if self.total == 0.0 {
            0.0
        } else {
            self.misses_at(capacity_lines) / self.total
        }
    }

    /// Returns a copy with every distance multiplied by `distance_factor`
    /// (rounded to the nearest integer distance) and every weight —
    /// including cold mass — multiplied by `weight_factor`.
    ///
    /// This is the SHARDS rescaling step: a spatial sample at rate `r`
    /// observes distances shrunk by `r`, so reconstructing the full-stream
    /// histogram takes `distance_factor = 1/r` and a weight factor that
    /// restores the sampled-out mass.
    pub fn rescaled(&self, distance_factor: f64, weight_factor: f64) -> StackDistanceHistogram {
        assert!(
            distance_factor > 0.0 && weight_factor > 0.0,
            "rescale factors must be positive"
        );
        let mut out = StackDistanceHistogram::new();
        for (d, &w) in self.counts.iter().enumerate() {
            if w > 0.0 {
                out.add(
                    (d as f64 * distance_factor).round() as u64,
                    w * weight_factor,
                );
            }
        }
        out.add_cold(self.cold * weight_factor);
        out
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &StackDistanceHistogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0.0);
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.cold += other.cold;
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn misses_decrease_with_capacity() {
        let mut h = StackDistanceHistogram::new();
        h.add_cold(4.0);
        h.add(0, 10.0);
        h.add(5, 3.0);
        h.add(100, 2.0);
        let caps = [0u64, 1, 6, 101, 1_000_000];
        let misses: Vec<f64> = caps.iter().map(|&c| h.misses_at(c)).collect();
        assert_eq!(misses, vec![19.0, 9.0, 6.0, 4.0, 4.0]);
        for w in misses.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }

    #[test]
    fn cold_misses_never_disappear() {
        let mut h = StackDistanceHistogram::new();
        h.add_cold(7.0);
        assert_eq!(h.misses_at(u64::MAX), 7.0);
        assert_eq!(h.miss_rate_at(u64::MAX), 1.0);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = StackDistanceHistogram::new();
        assert_eq!(h.misses_at(0), 0.0);
        assert_eq!(h.miss_rate_at(10), 0.0);
        assert_eq!(h.max_distance(), None);
    }

    #[test]
    fn merge_sums_mass() {
        let mut a = StackDistanceHistogram::new();
        a.add(1, 2.0);
        a.add_cold(1.0);
        let mut b = StackDistanceHistogram::new();
        b.add(3, 4.0);
        a.merge(&b);
        assert_eq!(a.total_accesses(), 7.0);
        assert_eq!(a.misses_at(2), 5.0); // cold 1 + distance-3 mass 4
        assert_eq!(a.max_distance(), Some(3));
    }
}
