//! Miss-rate-curve (MRC) collection engines.
//!
//! GPU scale-model simulation needs, for each workload, the number of LLC
//! misses per thousand instructions (MPKI) as a function of LLC capacity —
//! the *miss rate curve* of the paper's Figure 2. Section V.A stresses that
//! these curves can be obtained from a functional address trace orders of
//! magnitude faster than detailed timing simulation. This module provides
//! four engines with different speed/accuracy trade-offs:
//!
//! * [`NaiveStack`] — the textbook Mattson LRU stack, O(n) per access.
//!   Only used as a reference implementation in tests.
//! * [`TreeStack`] — the same exact reuse distances computed with a Fenwick
//!   tree in O(log n) per access (Conte et al.'s single-pass approach).
//! * [`ShardsStack`] — SHARDS-style spatially-hashed sampling on top of the
//!   tree engine; approximate, with a configurable sampling rate, for a
//!   further constant-factor speedup on long traces.
//! * [`CapacityReplay`] — exhaustive replay through one real set-associative
//!   [`SlicedLlc`](crate::SlicedLlc) per candidate capacity. Slower, but
//!   captures associativity and slicing exactly as the timing simulator
//!   sees them.
//!
//! All exact/approximate stack engines produce a [`StackDistanceHistogram`],
//! which converts to a [`MissRateCurve`] for any set of capacities.
//!
//! For multi-core collection, [`parallel`] routes lines across disjoint
//! spatial shards whose per-shard histograms can be computed concurrently
//! and merged deterministically.

mod curve;
mod histogram;
mod naive;
pub mod parallel;
mod replay;
mod shards;
mod tree;

pub use curve::{MissRateCurve, MrcPoint};
pub use histogram::StackDistanceHistogram;
pub use naive::NaiveStack;
pub use parallel::LineRouter;
pub use replay::CapacityReplay;
pub use shards::ShardsStack;
pub use tree::TreeStack;

/// A single-pass reuse-distance engine.
///
/// Feed it the line-address stream of a workload via [`record`], then call
/// [`finish`] to obtain the stack-distance histogram from which a miss-rate
/// curve for *any* capacity can be derived.
///
/// [`record`]: DistanceEngine::record
/// [`finish`]: DistanceEngine::finish
pub trait DistanceEngine {
    /// Records one access to `line_addr` (a line address, i.e. the byte
    /// address shifted right by the line-size log2).
    fn record(&mut self, line_addr: u64);

    /// Consumes the engine and returns the accumulated histogram.
    fn finish(self) -> StackDistanceHistogram;

    /// Records every address in an iterator.
    fn record_all<I: IntoIterator<Item = u64>>(&mut self, lines: I)
    where
        Self: Sized,
    {
        for l in lines {
            self.record(l);
        }
    }
}
