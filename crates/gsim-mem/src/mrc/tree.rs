//! Exact single-pass reuse distances in O(log n) per access.
//!
//! This is the tree-accelerated formulation of the Mattson stack used by
//! single-pass MRC tools (Conte et al.): each line's most recent access is
//! marked at its (logical) time position in a Fenwick tree; the stack
//! distance of a new access to the line is the number of marks strictly
//! after its previous access, i.e. the number of *distinct* lines touched in
//! between. The time axis is compacted whenever it fills up, so the engine
//! handles arbitrarily long traces in O(u) memory for u unique lines.

use std::collections::HashMap;

use super::histogram::StackDistanceHistogram;
use super::DistanceEngine;

#[derive(Debug, Clone)]
struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Self {
            tree: vec![0; n + 1],
        }
    }

    fn len(&self) -> usize {
        self.tree.len() - 1
    }

    /// Adds `delta` at 0-based position `i`.
    fn add(&mut self, i: usize, delta: i32) {
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] = self.tree[i].wrapping_add(delta as u32);
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of positions `0..=i` (0-based, inclusive).
    fn prefix(&self, i: usize) -> u64 {
        let mut i = i + 1;
        let mut s = 0u64;
        while i > 0 {
            s += u64::from(self.tree[i]);
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// Exact reuse-distance engine with a Fenwick tree over logical time.
///
/// # Example
///
/// ```
/// use gsim_mem::mrc::{DistanceEngine, TreeStack};
///
/// let mut e = TreeStack::new();
/// e.record_all([1, 2, 3, 1]);
/// let h = e.finish();
/// assert_eq!(h.cold_accesses(), 3.0);
/// assert_eq!(h.misses_at(3), 3.0);
/// ```
#[derive(Debug, Clone)]
pub struct TreeStack {
    fenwick: Fenwick,
    /// line address -> time slot of its most recent access.
    last_slot: HashMap<u64, usize>,
    /// Next free time slot.
    next_slot: usize,
    hist: StackDistanceHistogram,
}

impl Default for TreeStack {
    fn default() -> Self {
        Self::new()
    }
}

impl TreeStack {
    /// Creates an engine with a small initial time axis (it grows/compacts
    /// automatically).
    pub fn new() -> Self {
        Self::with_capacity(1 << 16)
    }

    /// Creates an engine with a pre-sized time axis; useful when the trace
    /// length is known to avoid early compactions.
    pub fn with_capacity(slots: usize) -> Self {
        let slots = slots.max(16);
        Self {
            fenwick: Fenwick::new(slots),
            last_slot: HashMap::new(),
            next_slot: 0,
            hist: StackDistanceHistogram::new(),
        }
    }

    /// Number of distinct lines seen so far.
    pub fn unique_lines(&self) -> usize {
        self.last_slot.len()
    }

    /// Rebuilds the time axis, renumbering the surviving marks (one per
    /// unique line) densely in their original order. Amortised cost is
    /// O(log n) per access because a compaction only happens after at least
    /// `capacity - unique` fresh accesses.
    fn compact(&mut self) {
        let mut entries: Vec<(u64, usize)> = self.last_slot.iter().map(|(&a, &s)| (a, s)).collect();
        entries.sort_unstable_by_key(|&(_, s)| s);
        // Grow so that at least half the axis is free after compaction.
        let needed = (entries.len() * 2).max(16);
        let cap = self.fenwick.len().max(needed).next_power_of_two();
        self.fenwick = Fenwick::new(cap);
        self.last_slot.clear();
        for (i, (addr, _)) in entries.iter().enumerate() {
            self.fenwick.add(i, 1);
            self.last_slot.insert(*addr, i);
        }
        self.next_slot = entries.len();
    }
}

impl DistanceEngine for TreeStack {
    fn record(&mut self, line_addr: u64) {
        if self.next_slot >= self.fenwick.len() {
            self.compact();
        }
        let now = self.next_slot;
        self.next_slot += 1;
        match self.last_slot.insert(line_addr, now) {
            Some(prev) => {
                // Marks strictly after `prev`: total marks minus prefix(prev).
                let total = self.fenwick.prefix(self.fenwick.len() - 1);
                let upto_prev = self.fenwick.prefix(prev);
                // `prev` itself is marked, so distinct lines in between:
                let distance = total - upto_prev;
                self.hist.add(distance, 1.0);
                self.fenwick.add(prev, -1);
            }
            None => self.hist.add_cold(1.0),
        }
        self.fenwick.add(now, 1);
    }

    fn finish(self) -> StackDistanceHistogram {
        self.hist
    }
}

#[cfg(test)]
mod tests {
    use super::super::naive::NaiveStack;
    use super::*;
    use gsim_rng::Rng64;

    #[test]
    fn matches_naive_on_classic_sequence() {
        let trace = [10u64, 20, 30, 10, 20, 20, 40, 10];
        let mut t = TreeStack::new();
        let mut n = NaiveStack::new();
        t.record_all(trace);
        n.record_all(trace);
        assert_eq!(t.finish(), n.finish());
    }

    #[test]
    fn matches_naive_on_random_trace() {
        let mut rng = Rng64::seed_from_u64(42);
        let trace: Vec<u64> = (0..5000).map(|_| rng.gen_range(0, 500)).collect();
        let mut t = TreeStack::with_capacity(64); // force many compactions
        let mut n = NaiveStack::new();
        t.record_all(trace.iter().copied());
        n.record_all(trace.iter().copied());
        let (ht, hn) = (t.finish(), n.finish());
        for cap in [0u64, 1, 2, 10, 100, 499, 500, 1000] {
            assert_eq!(
                ht.misses_at(cap),
                hn.misses_at(cap),
                "mismatch at capacity {cap}"
            );
        }
    }

    #[test]
    fn compaction_preserves_unique_count() {
        let mut t = TreeStack::with_capacity(16);
        for i in 0..1000u64 {
            t.record(i % 37);
        }
        assert_eq!(t.unique_lines(), 37);
        let h = t.finish();
        assert_eq!(h.cold_accesses(), 37.0);
        assert_eq!(h.total_accesses(), 1000.0);
    }

    #[test]
    fn cyclic_sweep_step_function() {
        let mut t = TreeStack::new();
        let footprint = 256u64;
        for _ in 0..4 {
            t.record_all(0..footprint);
        }
        let h = t.finish();
        // Fits exactly at `footprint` lines; thrashes at one less.
        assert_eq!(h.misses_at(footprint), footprint as f64);
        assert_eq!(h.misses_at(footprint - 1), 4.0 * footprint as f64);
    }

    #[test]
    fn fenwick_prefix_sums() {
        let mut f = Fenwick::new(8);
        f.add(0, 1);
        f.add(3, 1);
        f.add(7, 1);
        assert_eq!(f.prefix(0), 1);
        assert_eq!(f.prefix(2), 1);
        assert_eq!(f.prefix(3), 2);
        assert_eq!(f.prefix(7), 3);
        f.add(3, -1);
        assert_eq!(f.prefix(7), 2);
    }
}
