//! SHARDS-style sampled reuse-distance analysis.
//!
//! SHARDS (spatially hashed approximate reuse distance sampling) observes
//! that if lines are sampled by a uniform hash with rate `R`, the stack
//! distance of an access in the *sampled* stream is, in expectation, `R`
//! times its true distance — so scaling sampled distances by `1/R` and
//! weighting each sample by `1/R` reconstructs the full histogram from a
//! small fraction of the trace. This is the same family of statistical
//! MRC techniques the paper cites (Berg & Hagersten's StatCache/StatStack,
//! Eklov's StatStack) for collecting miss-rate curves cheaply.

use super::histogram::StackDistanceHistogram;
use super::tree::TreeStack;
use super::DistanceEngine;

/// Modulus for the sampling hash.
const SAMPLE_MOD: u64 = 1 << 24;

/// Approximate reuse-distance engine with spatial sampling rate `rate`
/// (e.g. `0.01` analyses ~1 % of distinct lines).
///
/// # Example
///
/// ```
/// use gsim_mem::mrc::{DistanceEngine, ShardsStack};
///
/// let mut e = ShardsStack::new(0.5);
/// for pass in 0..4 { for l in 0..1000u64 { e.record(l); } }
/// let h = e.finish();
/// // Roughly 4000 total accesses are reconstructed from ~2000 samples.
/// assert!((h.total_accesses() - 4000.0).abs() < 800.0);
/// ```
#[derive(Debug, Clone)]
pub struct ShardsStack {
    inner: TreeStack,
    threshold: u64,
    sampled: u64,
    seen: u64,
}

impl ShardsStack {
    /// Creates an engine with the given sampling `rate` in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `(0, 1]`.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0 && rate <= 1.0, "rate must be in (0, 1]");
        Self {
            inner: TreeStack::new(),
            threshold: ((rate * SAMPLE_MOD as f64).round() as u64).max(1),
            sampled: 0,
            seen: 0,
        }
    }

    /// The configured sampling rate actually realised by the integer
    /// threshold.
    pub fn effective_rate(&self) -> f64 {
        self.threshold as f64 / SAMPLE_MOD as f64
    }

    /// Fraction of accesses that were sampled so far.
    pub fn observed_rate(&self) -> f64 {
        if self.seen == 0 {
            0.0
        } else {
            self.sampled as f64 / self.seen as f64
        }
    }

    #[inline]
    fn is_sampled(&self, line_addr: u64) -> bool {
        // Strong multiplicative mix; only the line address decides, so all
        // accesses to a line are consistently kept or dropped (spatial
        // sampling), which SHARDS requires.
        let mut h = line_addr.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        h = h.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
        h ^= h >> 33;
        (h % SAMPLE_MOD) < self.threshold
    }
}

impl DistanceEngine for ShardsStack {
    fn record(&mut self, line_addr: u64) {
        self.seen += 1;
        if self.is_sampled(line_addr) {
            self.sampled += 1;
            self.inner.record(line_addr);
        }
    }

    fn finish(self) -> StackDistanceHistogram {
        let r = self.effective_rate();
        let sampled_hist = self.inner.finish();
        let mut out = StackDistanceHistogram::new();
        out.add_cold(sampled_hist.cold_accesses() / r);
        if let Some(max_d) = sampled_hist.max_distance() {
            // Rescale each sampled distance d to d/r with weight 1/r.
            // Reconstruct per-distance mass via the misses_at deltas.
            for d in 0..=max_d {
                let mass = sampled_hist.misses_at(d) - sampled_hist.misses_at(d + 1);
                if mass > 0.0 {
                    let scaled_d = (d as f64 / r).round() as u64;
                    out.add(scaled_d, mass / r);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::naive::NaiveStack;
    use super::*;
    use gsim_rng::Rng64;

    #[test]
    fn rate_one_matches_exact() {
        let trace = [1u64, 2, 3, 1, 2, 3, 4, 1];
        let mut s = ShardsStack::new(1.0);
        let mut n = NaiveStack::new();
        s.record_all(trace);
        n.record_all(trace);
        let (hs, hn) = (s.finish(), n.finish());
        for cap in [0u64, 1, 2, 3, 4, 10] {
            assert_eq!(hs.misses_at(cap), hn.misses_at(cap));
        }
    }

    #[test]
    fn sampled_curve_tracks_exact_curve() {
        let mut rng = Rng64::seed_from_u64(7);
        // Zipf-ish mixture over 16k lines.
        let trace: Vec<u64> = (0..400_000)
            .map(|_| {
                if rng.gen_bool(0.5) {
                    rng.gen_range(0, 800)
                } else {
                    rng.gen_range(0, 16_000)
                }
            })
            .collect();
        let mut exact = TreeStack::new();
        let mut approx = ShardsStack::new(0.25);
        exact.record_all(trace.iter().copied());
        approx.record_all(trace.iter().copied());
        let (he, ha) = (exact.finish(), approx.finish());
        for cap in [256u64, 1024, 4096, 16_384] {
            let e = he.miss_rate_at(cap);
            let a = ha.miss_rate_at(cap);
            assert!(
                (e - a).abs() < 0.08,
                "capacity {cap}: exact {e:.3} vs sampled {a:.3}"
            );
        }
    }

    #[test]
    fn sampling_reduces_analyzed_accesses() {
        let mut s = ShardsStack::new(0.05);
        for l in 0..100_000u64 {
            s.record(l % 10_000);
        }
        let observed = s.observed_rate();
        assert!(
            (0.01..0.12).contains(&observed),
            "observed sampling rate {observed}"
        );
    }

    #[test]
    #[should_panic(expected = "rate must be in")]
    fn rejects_zero_rate() {
        let _ = ShardsStack::new(0.0);
    }
}
