//! Reference Mattson stack: exact, O(n) per access.

use super::histogram::StackDistanceHistogram;
use super::DistanceEngine;

/// The textbook LRU-stack reuse-distance algorithm: maintain the stack of
/// lines ordered most-recently-used first; the distance of an access is the
/// depth at which its line is found.
///
/// Quadratic in trace length — only use it on short traces (it exists as an
/// executable specification against which [`TreeStack`](super::TreeStack)
/// and [`ShardsStack`](super::ShardsStack) are property-tested).
#[derive(Debug, Clone, Default)]
pub struct NaiveStack {
    stack: Vec<u64>,
    hist: StackDistanceHistogram,
}

impl NaiveStack {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Self::default()
    }
}

impl DistanceEngine for NaiveStack {
    fn record(&mut self, line_addr: u64) {
        match self.stack.iter().position(|&l| l == line_addr) {
            Some(depth) => {
                self.hist.add(depth as u64, 1.0);
                self.stack[..=depth].rotate_right(1);
            }
            None => {
                self.hist.add_cold(1.0);
                self.stack.insert(0, line_addr);
            }
        }
    }

    fn finish(self) -> StackDistanceHistogram {
        self.hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_sequence() {
        // Trace a b c a: distances are cold, cold, cold, 2.
        let mut e = NaiveStack::new();
        e.record_all([10, 20, 30, 10]);
        let h = e.finish();
        assert_eq!(h.cold_accesses(), 3.0);
        assert_eq!(h.misses_at(3), 3.0); // distance 2 < 3 lines => hit
        assert_eq!(h.misses_at(2), 4.0); // distance 2 >= 2 lines => miss
    }

    #[test]
    fn immediate_reuse_has_distance_zero() {
        let mut e = NaiveStack::new();
        e.record_all([5, 5, 5]);
        let h = e.finish();
        assert_eq!(h.cold_accesses(), 1.0);
        assert_eq!(h.misses_at(1), 1.0); // only the cold miss
    }

    #[test]
    fn cyclic_sweep_distance_equals_footprint() {
        let mut e = NaiveStack::new();
        for _ in 0..3 {
            e.record_all(0..10u64);
        }
        let h = e.finish();
        // Every reuse has distance 9 (9 unique lines in between).
        assert_eq!(h.misses_at(10), 10.0); // fits: only cold misses
        assert_eq!(h.misses_at(9), 30.0); // one line short: LRU thrash
    }
}
