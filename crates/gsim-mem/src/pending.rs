//! Tracking of in-flight LLC fills.
//!
//! The timing simulator keeps, per memory domain, the set of lines whose
//! DRAM fill has not yet landed in the LLC: a hit on such a line must wait
//! for the in-flight fill instead of completing at tag latency. The naive
//! representation (a `HashMap` probed on every LLC hit plus a periodic
//! `retain` rescan) sits on the simulator's hottest path; [`FillTracker`]
//! keeps the same observable behaviour while skipping the probe entirely
//! once every tracked fill has completed, and bounding the cost of stale
//! entries with an amortized purge that never rescans more than once per
//! doubling of the map.

use std::collections::HashMap;

/// Minimum purge threshold; matches the historical `MemDomain` constant so
/// purge timing (and therefore map contents at any instant) is unchanged.
const MIN_PURGE_AT: usize = 8192;

/// In-flight fill completion times, keyed by line address.
///
/// Semantically a `HashMap<line, fill_done_cycle>` with two fast paths:
///
/// * **Empty-horizon probe skip** — the tracker remembers the maximum
///   `fill_done` ever inserted; once `now` passes it, every entry is stale,
///   so a probe clears the map and answers without hashing.
/// * **Amortized purge** — stale entries are evicted in bulk only when the
///   map doubles past a threshold, so the per-insert cost stays O(1)
///   amortized and no purge rescans a mostly-live map.
///
/// # Example
///
/// ```
/// use gsim_mem::FillTracker;
///
/// let mut t = FillTracker::new();
/// t.insert(7, 100, 50);
/// assert_eq!(t.fill_after(7, 60), Some(100)); // still in flight
/// assert_eq!(t.fill_after(7, 100), None); // landed exactly now
/// assert_eq!(t.fill_after(9, 60), None); // never requested
/// ```
#[derive(Debug, Clone, Default)]
pub struct FillTracker {
    map: HashMap<u64, u64>,
    /// Latest fill completion time currently tracked; 0 when empty.
    max_done: u64,
    /// Purge the map when its length reaches this.
    purge_at: usize,
}

impl FillTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self {
            map: HashMap::new(),
            max_done: 0,
            purge_at: MIN_PURGE_AT,
        }
    }

    /// Completion time of the in-flight fill for `line`, if it is still
    /// strictly in the future at `now`.
    #[inline]
    pub fn fill_after(&mut self, line: u64, now: u64) -> Option<u64> {
        if now >= self.max_done {
            // Every tracked fill has landed; drop them all so subsequent
            // probes are a single branch.
            if !self.map.is_empty() {
                self.map.clear();
            }
            return None;
        }
        match self.map.get(&line) {
            Some(&done) if done > now => Some(done),
            _ => None,
        }
    }

    /// Records that `line`'s fill completes at `done`. `now` drives the
    /// amortized purge of entries that have already landed.
    #[inline]
    pub fn insert(&mut self, line: u64, done: u64, now: u64) {
        if self.map.len() >= self.purge_at {
            self.map.retain(|_, d| *d > now);
            self.purge_at = (self.map.len() * 2).max(MIN_PURGE_AT);
        }
        self.max_done = self.max_done.max(done);
        self.map.insert(line, done);
    }

    /// Number of tracked (possibly stale) entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no entry is tracked.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_before_and_after_fill() {
        let mut t = FillTracker::new();
        t.insert(1, 100, 0);
        assert_eq!(t.fill_after(1, 50), Some(100));
        assert_eq!(t.fill_after(1, 99), Some(100));
        assert_eq!(t.fill_after(1, 100), None);
        assert_eq!(t.fill_after(1, 150), None);
    }

    #[test]
    fn unknown_line_is_none() {
        let mut t = FillTracker::new();
        t.insert(1, 100, 0);
        assert_eq!(t.fill_after(2, 50), None);
    }

    #[test]
    fn horizon_pass_clears_map() {
        let mut t = FillTracker::new();
        t.insert(1, 100, 0);
        t.insert(2, 90, 0);
        assert_eq!(t.len(), 2);
        assert_eq!(t.fill_after(3, 100), None);
        assert!(t.is_empty());
        // A later insert restarts tracking.
        t.insert(4, 200, 100);
        assert_eq!(t.fill_after(4, 150), Some(200));
    }

    #[test]
    fn reinsert_overwrites_completion_time() {
        let mut t = FillTracker::new();
        t.insert(1, 100, 0);
        t.insert(1, 300, 0);
        assert_eq!(t.fill_after(1, 200), Some(300));
    }

    #[test]
    fn purge_drops_stale_entries_only() {
        let mut t = FillTracker::new();
        // Fill past the purge threshold with stale entries...
        for l in 0..MIN_PURGE_AT as u64 {
            t.insert(l, 10, 0);
        }
        // ...then insert at a time past their completion: the purge fires.
        t.insert(u64::MAX, 1_000, 500);
        assert_eq!(t.len(), 1);
        assert_eq!(t.fill_after(u64::MAX, 600), Some(1_000));
    }
}
