//! Miss-status holding registers (MSHRs).
//!
//! The paper's L1 configuration (Table III) provides 384 MSHRs per SM.
//! An MSHR tracks an outstanding miss to one cache line; further misses to
//! the same line while the fill is in flight merge into the existing entry
//! instead of issuing duplicate memory traffic.

use std::collections::HashMap;

/// Outcome of registering a miss with the MSHR file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// First miss to this line: a new entry was allocated and a memory
    /// request must be sent.
    Allocated,
    /// A miss to a line that already has an outstanding request; the new
    /// requester piggybacks on the in-flight fill. The fill completion time
    /// of the primary miss is returned.
    Merged(u64),
    /// No free MSHR entry: the requester must stall and retry. No state was
    /// modified.
    Full,
}

/// A fixed-capacity MSHR file keyed by line address.
///
/// Completion times are tracked in cycles so merged (secondary) misses can
/// reuse the primary miss's fill time.
///
/// # Example
///
/// ```
/// use gsim_mem::{Mshr, MshrOutcome};
///
/// let mut m = Mshr::new(2);
/// assert_eq!(m.register(7, 100), MshrOutcome::Allocated);
/// assert_eq!(m.register(7, 100), MshrOutcome::Merged(100));
/// m.complete(7);
/// assert_eq!(m.register(7, 120), MshrOutcome::Allocated);
/// ```
#[derive(Debug, Clone)]
pub struct Mshr {
    capacity: usize,
    pending: HashMap<u64, u64>,
    merges: u64,
    allocations: u64,
    full_stalls: u64,
}

impl Mshr {
    /// Creates an MSHR file with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR file needs at least one entry");
        Self {
            capacity,
            pending: HashMap::with_capacity(capacity.min(1024)),
            merges: 0,
            allocations: 0,
            full_stalls: 0,
        }
    }

    /// Registers a miss to `line_addr` whose fill will complete at
    /// `fill_done` (cycles). See [`MshrOutcome`].
    pub fn register(&mut self, line_addr: u64, fill_done: u64) -> MshrOutcome {
        if let Some(&done) = self.pending.get(&line_addr) {
            self.merges += 1;
            return MshrOutcome::Merged(done);
        }
        if self.pending.len() >= self.capacity {
            self.full_stalls += 1;
            return MshrOutcome::Full;
        }
        self.pending.insert(line_addr, fill_done);
        self.allocations += 1;
        MshrOutcome::Allocated
    }

    /// Looks up the completion time of an in-flight fill, if any.
    pub fn pending_fill(&self, line_addr: u64) -> Option<u64> {
        self.pending.get(&line_addr).copied()
    }

    /// Overwrites the completion time of the in-flight fill for `line_addr`.
    /// Returns `true` if an entry existed.
    ///
    /// Used by the two-phase engine: the parallel per-SM phase allocates the
    /// entry with a placeholder time, and the serial apply phase patches in
    /// the real fill time once the shared memory system has been consulted.
    pub fn update_fill(&mut self, line_addr: u64, fill_done: u64) -> bool {
        match self.pending.get_mut(&line_addr) {
            Some(done) => {
                *done = fill_done;
                true
            }
            None => false,
        }
    }

    /// Releases the entry for `line_addr` once its fill has completed.
    /// Returns `true` if an entry existed.
    pub fn complete(&mut self, line_addr: u64) -> bool {
        self.pending.remove(&line_addr).is_some()
    }

    /// Releases every entry whose fill time is `<= now`, returning how many
    /// were freed. This lets the simulator lazily retire fills.
    pub fn complete_up_to(&mut self, now: u64) -> usize {
        let before = self.pending.len();
        self.pending.retain(|_, done| *done > now);
        before - self.pending.len()
    }

    /// Number of in-flight entries.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Whether no entry is free.
    pub fn is_full(&self) -> bool {
        self.pending.len() >= self.capacity
    }

    /// Total primary-miss allocations.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Total secondary misses merged into in-flight entries.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Times a requester found the file full.
    pub fn full_stalls(&self) -> u64 {
        self.full_stalls
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_then_merge() {
        let mut m = Mshr::new(4);
        assert_eq!(m.register(1, 50), MshrOutcome::Allocated);
        assert_eq!(m.register(1, 999), MshrOutcome::Merged(50));
        assert_eq!(m.merges(), 1);
        assert_eq!(m.allocations(), 1);
        assert_eq!(m.in_flight(), 1);
    }

    #[test]
    fn full_file_rejects_new_lines_but_still_merges() {
        let mut m = Mshr::new(2);
        assert_eq!(m.register(1, 10), MshrOutcome::Allocated);
        assert_eq!(m.register(2, 20), MshrOutcome::Allocated);
        assert!(m.is_full());
        assert_eq!(m.register(3, 30), MshrOutcome::Full);
        assert_eq!(m.register(1, 99), MshrOutcome::Merged(10));
        assert_eq!(m.full_stalls(), 1);
    }

    #[test]
    fn complete_frees_entry() {
        let mut m = Mshr::new(1);
        m.register(1, 10);
        assert!(m.complete(1));
        assert!(!m.complete(1));
        assert_eq!(m.register(2, 20), MshrOutcome::Allocated);
    }

    #[test]
    fn complete_up_to_retires_finished_fills() {
        let mut m = Mshr::new(8);
        m.register(1, 10);
        m.register(2, 20);
        m.register(3, 30);
        assert_eq!(m.complete_up_to(20), 2);
        assert_eq!(m.in_flight(), 1);
        assert_eq!(m.pending_fill(3), Some(30));
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = Mshr::new(0);
    }
}
