//! Main-memory bandwidth model.
//!
//! The paper's memory interface is a set of memory controllers (MCs), each
//! providing 145 GB/s (Table I); the scale models scale the MC count with
//! system size. We model each MC as a work-conserving queueing server with a
//! fixed service bandwidth: a request occupies its (address-hashed) MC for
//! `bytes / bytes_per_cycle` cycles starting no earlier than the MC's
//! previous completion, which yields queueing delay under load and an
//! aggregate-bandwidth ceiling, the first-order behaviour that matters for
//! scaling studies.

use crate::slice::slice_for_line;

/// Aggregate DRAM statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DramStats {
    /// Total requests serviced.
    pub requests: u64,
    /// Total bytes transferred (reads + write-backs).
    pub bytes: u64,
    /// Sum over requests of queueing delay (cycles spent waiting for the MC).
    pub queue_cycles: f64,
}

impl DramStats {
    /// Mean queueing delay per request in cycles; 0 if no requests.
    pub fn mean_queue_cycles(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.queue_cycles / self.requests as f64
        }
    }
}

/// A multi-controller DRAM bandwidth model.
///
/// # Example
///
/// ```
/// use gsim_mem::DramModel;
///
/// // One 145 GB/s controller at 1 GHz: 145 bytes per cycle.
/// let mut dram = DramModel::new(1, 145.0, 1.0, 100);
/// let done = dram.read(0, 0x40, 128);
/// assert!(done > 100); // latency plus service time
/// ```
#[derive(Debug, Clone)]
pub struct DramModel {
    /// Per-MC time at which the controller becomes free, in cycles.
    next_free: Vec<f64>,
    /// Service bandwidth per MC, bytes per core cycle.
    bytes_per_cycle: f64,
    /// Fixed access latency (row access, on-package transit), cycles.
    latency: u32,
    stats: DramStats,
}

impl DramModel {
    /// Creates a model with `n_mcs` controllers of `gbs_per_mc` GB/s each,
    /// for a core clock of `clock_ghz`, and a fixed `latency` in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `n_mcs` is zero or bandwidth/clock are non-positive.
    pub fn new(n_mcs: u32, gbs_per_mc: f64, clock_ghz: f64, latency: u32) -> Self {
        assert!(n_mcs > 0, "need at least one memory controller");
        assert!(
            gbs_per_mc > 0.0 && clock_ghz > 0.0,
            "bandwidth and clock must be positive"
        );
        Self {
            next_free: vec![0.0; n_mcs as usize],
            bytes_per_cycle: gbs_per_mc / clock_ghz,
            latency,
            stats: DramStats::default(),
        }
    }

    /// Number of memory controllers.
    pub fn n_mcs(&self) -> u32 {
        self.next_free.len() as u32
    }

    /// Aggregate bandwidth in bytes per cycle.
    pub fn total_bytes_per_cycle(&self) -> f64 {
        self.bytes_per_cycle * self.next_free.len() as f64
    }

    /// The controller owning `line_addr`.
    #[inline]
    pub fn mc_of(&self, line_addr: u64) -> u32 {
        // Shift so that MC interleaving uses different address bits than
        // LLC-slice interleaving.
        slice_for_line(line_addr >> 3, self.n_mcs())
    }

    /// Issues a read of `bytes` for `line_addr` at time `now` (cycles);
    /// returns the completion time, including queueing and fixed latency.
    pub fn read(&mut self, now: u64, line_addr: u64, bytes: u32) -> u64 {
        self.request(now as f64, line_addr, bytes).ceil() as u64
    }

    /// Issues a write-back of `bytes`; write-backs consume bandwidth but the
    /// requester does not wait, so only the bandwidth occupancy matters.
    pub fn write_back(&mut self, now: u64, line_addr: u64, bytes: u32) {
        let _ = self.request(now as f64, line_addr, bytes);
    }

    fn request(&mut self, now: f64, line_addr: u64, bytes: u32) -> f64 {
        let mc = self.mc_of(line_addr) as usize;
        let start = self.next_free[mc].max(now);
        let service = f64::from(bytes) / self.bytes_per_cycle;
        self.next_free[mc] = start + service;
        self.stats.requests += 1;
        self.stats.bytes += u64::from(bytes);
        self.stats.queue_cycles += start - now;
        start + service + f64::from(self.latency)
    }

    /// Earliest time any controller is free (useful for back-pressure).
    pub fn earliest_free(&self) -> f64 {
        self.next_free.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Statistics so far.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Resets queue state and statistics.
    pub fn reset(&mut self) {
        self.next_free.fill(0.0);
        self.stats = DramStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_read_takes_latency_plus_service() {
        let mut d = DramModel::new(1, 128.0, 1.0, 100);
        // 128 bytes at 128 B/cycle = 1 cycle service.
        let done = d.read(10, 0, 128);
        assert_eq!(done, 111);
        assert_eq!(d.stats().requests, 1);
        assert_eq!(d.stats().bytes, 128);
    }

    #[test]
    fn back_to_back_reads_queue() {
        let mut d = DramModel::new(1, 128.0, 1.0, 0);
        let a = d.read(0, 0, 128);
        let b = d.read(0, 0, 128);
        assert_eq!(a, 1);
        assert_eq!(b, 2);
        assert!(d.stats().queue_cycles > 0.0);
    }

    #[test]
    fn multiple_mcs_increase_parallel_bandwidth() {
        let mut d1 = DramModel::new(1, 128.0, 1.0, 0);
        let mut d4 = DramModel::new(4, 128.0, 1.0, 0);
        let mut last1 = 0;
        let mut last4 = 0;
        for l in 0..64u64 {
            last1 = last1.max(d1.read(0, l * 997, 128));
            last4 = last4.max(d4.read(0, l * 997, 128));
        }
        assert!(
            last4 < last1,
            "4 MCs ({last4}) should drain faster than 1 ({last1})"
        );
    }

    #[test]
    fn write_back_consumes_bandwidth() {
        let mut d = DramModel::new(1, 128.0, 1.0, 0);
        d.write_back(0, 0, 128);
        let done = d.read(0, 0, 128);
        assert_eq!(done, 2, "read queues behind the write-back");
    }

    #[test]
    fn mc_hash_spreads_lines() {
        let d = DramModel::new(8, 145.0, 1.0, 100);
        let mut counts = [0u64; 8];
        for l in 0..8000u64 {
            counts[d.mc_of(l * 8) as usize] += 1;
        }
        for &c in &counts {
            assert!((500..=1600).contains(&c), "unbalanced MC hash: {counts:?}");
        }
    }

    #[test]
    fn clock_scales_service_time() {
        // 145 GB/s at 1 GHz = 145 B/cycle; at 2 GHz cycles are shorter so
        // bytes-per-cycle halves.
        let d1 = DramModel::new(1, 145.0, 1.0, 0);
        let d2 = DramModel::new(1, 145.0, 2.0, 0);
        assert!((d1.total_bytes_per_cycle() - 145.0).abs() < 1e-9);
        assert!((d2.total_bytes_per_cycle() - 72.5).abs() < 1e-9);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut d = DramModel::new(2, 100.0, 1.0, 10);
        d.read(0, 0, 128);
        d.reset();
        assert_eq!(d.stats(), DramStats::default());
        assert_eq!(d.earliest_free(), 0.0);
    }
}
