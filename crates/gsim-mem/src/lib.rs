//! GPU memory-hierarchy substrate for scale-model simulation.
//!
//! This crate implements the cache and memory models that the GPU timing
//! simulator (`gsim-sim`) and the scale-model prediction methodology build on:
//!
//! * [`Cache`] — a set-associative, LRU, write-back tag store used for the
//!   per-SM L1 caches and for each last-level-cache (LLC) slice.
//! * [`SlicedLlc`] — a shared LLC made of address-hashed slices, matching the
//!   organisation the paper assumes (a cache line lives in exactly one slice,
//!   selected by its address; all SMs can access all slices).
//! * [`Mshr`] — miss-status holding registers that merge concurrent misses to
//!   the same line.
//! * [`DramModel`] — a multi-controller main-memory bandwidth model
//!   (one queueing server per memory controller).
//! * [`mrc`] — miss-rate-curve collection engines: an exact Mattson stack
//!   algorithm (naive and O(log n) tree-accelerated variants), a SHARDS-style
//!   sampled approximation, and an exhaustive per-capacity cache replay.
//!
//! Miss-rate curves (LLC misses per thousand instructions as a function of
//! LLC capacity) are one of the two inputs of GPU scale-model simulation; the
//! engines in [`mrc`] collect them from a functional address trace orders of
//! magnitude faster than detailed timing simulation, as the paper requires.
//!
//! # Example
//!
//! ```
//! use gsim_mem::{Cache, CacheGeometry};
//!
//! // A 48 KB, 6-way L1 with 128 B lines, as in the paper's Table III.
//! let geom = CacheGeometry::new(48 * 1024, 6, 128);
//! let mut l1 = Cache::new(geom);
//! assert!(l1.access(0x1000, false).is_miss());
//! assert!(l1.access(0x1000, false).is_hit());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod banked;
mod cache;
mod dram;
mod geometry;
mod mshr;
mod pending;
mod slice;

pub mod mrc;

pub use banked::{BankedDramModel, BankedDramStats, DramTiming};
pub use cache::{AccessResult, Cache, EvictedLine, ReplacementPolicy};
pub use dram::{DramModel, DramStats};
pub use geometry::CacheGeometry;
pub use mshr::{Mshr, MshrOutcome};
pub use pending::FillTracker;
pub use slice::{slice_for_line, SlicedLlc};

/// Number of bytes in a cache line used throughout the paper's configuration
/// (Table I: 128 B cachelines).
pub const LINE_BYTES: u64 = 128;

/// Log2 of [`LINE_BYTES`]; byte addresses are converted to line addresses by
/// shifting right by this amount.
pub const LINE_SHIFT: u32 = 7;

/// Converts a byte address to its cache-line address.
#[inline]
pub fn line_of(byte_addr: u64) -> u64 {
    byte_addr >> LINE_SHIFT
}
