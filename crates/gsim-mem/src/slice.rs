//! The sliced, shared last-level cache.
//!
//! The paper's LLC is a shared cache physically distributed over slices:
//! every SM can access every slice, and a cache line is stored in exactly one
//! slice determined by its address (Section IV.3). Because of this, CTAs on
//! different SMs touching the same shared data "camp" in front of the slice
//! that owns it — one of the two mechanisms behind sub-linear scaling.

use crate::cache::{AccessResult, Cache, ReplacementPolicy};
use crate::geometry::CacheGeometry;

/// Maps a line address to its owning slice.
///
/// A multiplicative hash decorrelates slice selection from set indexing so
/// strided traffic spreads over slices the way real memory-side hashes do.
#[inline]
pub fn slice_for_line(line_addr: u64, n_slices: u32) -> u32 {
    debug_assert!(n_slices > 0);
    // Fibonacci hashing on the line address.
    let h = line_addr.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((h >> 32) % u64::from(n_slices)) as u32
}

/// A shared LLC organised as `n_slices` address-hashed slices, each an
/// independent set-associative [`Cache`].
///
/// Per-slice access counts are tracked so the timing simulator can model
/// slice-port contention (camping) and so tests can verify the hash spreads
/// load.
///
/// # Example
///
/// ```
/// use gsim_mem::{CacheGeometry, SlicedLlc};
///
/// // The paper's 8-SM scale model: 2.125 MB over 2 slices (Table I).
/// let llc = SlicedLlc::new(2_228_224, 2, 64, 128);
/// assert_eq!(llc.n_slices(), 2);
/// assert!(llc.capacity_bytes() <= 2_228_224);
/// # let _ = CacheGeometry::new(1024, 2, 128);
/// ```
#[derive(Debug, Clone)]
pub struct SlicedLlc {
    slices: Vec<Cache>,
}

impl SlicedLlc {
    /// Builds an LLC of `total_bytes` split evenly over `n_slices` slices,
    /// each `ways`-way associative with `line_bytes` lines.
    ///
    /// # Panics
    ///
    /// Panics if `n_slices` is zero or a slice would be smaller than one line.
    pub fn new(total_bytes: u64, n_slices: u32, ways: u32, line_bytes: u32) -> Self {
        Self::with_policy(
            total_bytes,
            n_slices,
            ways,
            line_bytes,
            ReplacementPolicy::Lru,
        )
    }

    /// [`SlicedLlc::new`] with an explicit slice replacement policy.
    ///
    /// # Panics
    ///
    /// Panics if `n_slices` is zero or a slice would be smaller than one line.
    pub fn with_policy(
        total_bytes: u64,
        n_slices: u32,
        ways: u32,
        line_bytes: u32,
        policy: ReplacementPolicy,
    ) -> Self {
        assert!(n_slices > 0, "LLC needs at least one slice");
        let per_slice = total_bytes / u64::from(n_slices);
        let geom = CacheGeometry::new(per_slice, ways, line_bytes);
        Self {
            slices: vec![Cache::with_policy(geom, policy); n_slices as usize],
        }
    }

    /// Builds one memory partition's share of a larger LLC: `n_slices`
    /// slices of exactly `slice_bytes` each. Unlike [`SlicedLlc::new`],
    /// the caller owns the address-to-slice mapping (typically the global
    /// hash of the full LLC restricted to the slices this partition
    /// owns), so lookups must go through [`SlicedLlc::access_in_slice`].
    ///
    /// # Panics
    ///
    /// Panics if `n_slices` is zero or a slice is smaller than one line.
    pub fn partition(
        slice_bytes: u64,
        n_slices: u32,
        ways: u32,
        line_bytes: u32,
        policy: ReplacementPolicy,
    ) -> Self {
        assert!(n_slices > 0, "LLC partition needs at least one slice");
        let geom = CacheGeometry::new(slice_bytes, ways, line_bytes);
        Self {
            slices: vec![Cache::with_policy(geom, policy); n_slices as usize],
        }
    }

    /// Number of slices.
    pub fn n_slices(&self) -> u32 {
        self.slices.len() as u32
    }

    /// Realised total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.slices
            .iter()
            .map(|s| s.geometry().capacity_bytes())
            .sum()
    }

    /// Slice index owning `line_addr`.
    #[inline]
    pub fn slice_of(&self, line_addr: u64) -> u32 {
        slice_for_line(line_addr, self.n_slices())
    }

    /// Accesses `line_addr` in its owning slice.
    pub fn access(&mut self, line_addr: u64, is_write: bool) -> AccessResult {
        let s = self.slice_of(line_addr) as usize;
        self.slices[s].access(line_addr, is_write)
    }

    /// Accesses `line_addr` in `slice`, previously computed via
    /// [`SlicedLlc::slice_of`]. Lets callers that already hashed the address
    /// (e.g. for slice-port arbitration) avoid hashing it a second time.
    ///
    /// # Panics
    ///
    /// Panics if `slice` is out of range; debug-asserts that it matches the
    /// owning slice of `line_addr`.
    pub fn access_at(&mut self, slice: u32, line_addr: u64, is_write: bool) -> AccessResult {
        debug_assert_eq!(slice, self.slice_of(line_addr));
        self.slices[slice as usize].access(line_addr, is_write)
    }

    /// Accesses `line_addr` in `slice`, where the slice index comes from
    /// an *external* hash (a [`SlicedLlc::partition`] of a larger LLC);
    /// no consistency with the built-in hash is assumed.
    ///
    /// # Panics
    ///
    /// Panics if `slice` is out of range.
    pub fn access_in_slice(&mut self, slice: u32, line_addr: u64, is_write: bool) -> AccessResult {
        self.slices[slice as usize].access(line_addr, is_write)
    }

    /// Probes without updating LRU state.
    pub fn contains(&self, line_addr: u64) -> bool {
        let s = self.slice_of(line_addr) as usize;
        self.slices[s].contains(line_addr)
    }

    /// Total hits across slices.
    pub fn hits(&self) -> u64 {
        self.slices.iter().map(Cache::hits).sum()
    }

    /// Total misses across slices.
    pub fn misses(&self) -> u64 {
        self.slices.iter().map(Cache::misses).sum()
    }

    /// Total accesses across slices.
    pub fn accesses(&self) -> u64 {
        self.slices.iter().map(Cache::accesses).sum()
    }

    /// Total dirty evictions across slices (write-back DRAM traffic).
    pub fn dirty_evictions(&self) -> u64 {
        self.slices.iter().map(Cache::dirty_evictions).sum()
    }

    /// Per-slice access counts (for load-balance diagnostics).
    pub fn per_slice_accesses(&self) -> Vec<u64> {
        self.slices.iter().map(Cache::accesses).collect()
    }

    /// Overall miss rate; 0 if no accesses.
    pub fn miss_rate(&self) -> f64 {
        let a = self.accesses();
        if a == 0 {
            0.0
        } else {
            self.misses() as f64 / a as f64
        }
    }

    /// Empties all slices and resets statistics.
    pub fn reset(&mut self) {
        for s in &mut self.slices {
            s.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_maps_to_stable_slice() {
        let llc = SlicedLlc::new(1024 * 1024, 8, 16, 128);
        for l in 0..100u64 {
            assert_eq!(llc.slice_of(l), llc.slice_of(l));
            assert!(llc.slice_of(l) < 8);
        }
    }

    #[test]
    fn hash_spreads_sequential_lines() {
        let llc = SlicedLlc::new(1024 * 1024, 8, 16, 128);
        let mut counts = [0u64; 8];
        for l in 0..8000u64 {
            counts[llc.slice_of(l) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (600..=1400).contains(&c),
                "slice {i} got {c} of 8000 sequential lines"
            );
        }
    }

    #[test]
    fn access_hits_after_fill() {
        let mut llc = SlicedLlc::new(256 * 1024, 4, 16, 128);
        assert!(llc.access(42, false).is_miss());
        assert!(llc.access(42, false).is_hit());
        assert_eq!(llc.hits(), 1);
        assert_eq!(llc.misses(), 1);
    }

    #[test]
    fn capacity_split_over_slices() {
        // Paper 128-SM LLC: 34 MB over 32 slices.
        let total = 34 * 1024 * 1024;
        let llc = SlicedLlc::new(total, 32, 64, 128);
        assert_eq!(llc.capacity_bytes(), total); // divides exactly
        assert_eq!(llc.n_slices(), 32);
    }

    #[test]
    fn hot_line_camps_on_one_slice() {
        let mut llc = SlicedLlc::new(256 * 1024, 4, 16, 128);
        for _ in 0..1000 {
            llc.access(7, false);
        }
        let per = llc.per_slice_accesses();
        assert_eq!(per.iter().sum::<u64>(), 1000);
        assert_eq!(per.iter().filter(|&&c| c > 0).count(), 1);
    }

    #[test]
    fn reset_clears_slices() {
        let mut llc = SlicedLlc::new(256 * 1024, 4, 16, 128);
        llc.access(1, true);
        llc.reset();
        assert_eq!(llc.accesses(), 0);
        assert!(llc.access(1, false).is_miss());
    }
}
