//! Small, deterministic, dependency-free PRNGs.
//!
//! The workspace needs random numbers in two places: the synthetic
//! workload generators (runtime) and randomized tests. Both must be
//! reproducible from a seed and must not pull in external crates (the
//! build has to succeed without network access), so this crate provides
//! the two classic generators those uses need:
//!
//! * [`SplitMix64`] — a tiny stateless-feeling stream generator, used to
//!   expand one `u64` seed into independent streams.
//! * [`Rng64`] — xoshiro256\*\*, seeded via SplitMix64 as its authors
//!   recommend; fast, 256-bit state, passes BigCrush. This is the
//!   workhorse generator.
//!
//! Sequences are stable: the same seed always yields the same stream, on
//! every platform, forever — simulator traces depend on it.
//!
//! ```
//! use gsim_rng::Rng64;
//!
//! let mut a = Rng64::seed_from_u64(42);
//! let mut b = Rng64::seed_from_u64(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! assert!(a.next_f64() < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Sebastiano Vigna's SplitMix64: one multiply-xorshift round per output.
///
/// Used to derive per-stream seeds and to bootstrap [`Rng64`] state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Produces the next value in the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256\*\* (Blackman & Vigna), the general-purpose generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Seeds the generator by expanding `seed` through [`SplitMix64`],
    /// as the xoshiro reference implementation recommends.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Produces the next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with the full 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform integer in `[lo, hi)` via Lemire rejection (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi - lo;
        // Lemire's multiply-shift with rejection of the biased zone.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (span as u128);
        let mut l = m as u64;
        if l < span {
            let t = span.wrapping_neg() % span;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (span as u128);
                l = m as u64;
            }
        }
        lo + (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn gen_range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        self.gen_range(lo, hi + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First outputs for seed 0, from the reference C code.
        let mut sm = SplitMix64::new(0);
        let first = sm.next_u64();
        let second = sm.next_u64();
        assert_ne!(first, second);
        // Stability check: these values must never change.
        assert_eq!(first, 0xE220_A839_7B1D_CDAF);
        assert_eq!(second, 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn streams_are_deterministic() {
        let mut a = Rng64::seed_from_u64(99);
        let mut b = Rng64::seed_from_u64(99);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng64::seed_from_u64(100);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng64::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = Rng64::seed_from_u64(11);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = r.gen_range(10, 20);
            assert!((10..20).contains(&v));
            let w = r.gen_range_inclusive(1, 3);
            assert!((1..=3).contains(&w));
            seen_lo |= w == 1;
            seen_hi |= w == 3;
        }
        assert!(seen_lo && seen_hi);
        assert_eq!(r.gen_range(5, 6), 5, "singleton range");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Rng64::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((0.29..0.31).contains(&frac), "frac {frac}");
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut r = Rng64::seed_from_u64(17);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.gen_range(0, 8) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }
}
