//! Failure-policy composition: timeout + retry-once interacting, and the
//! JSONL metrics stream they produce.

use std::io::Write;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use gsim_runner::{Job, JsonlSink, Runner, RunnerConfig};

/// A shared in-memory writer to capture JsonlSink output across threads.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn text(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// The composed policy: attempt 1 exceeds the timeout and is abandoned,
/// attempt 2 returns promptly — the job must come back `Done` with
/// `attempts == 2`, and the metrics stream must show exactly the
/// timed-out attempt followed by the successful retry, in order.
#[test]
fn timeout_then_successful_retry_is_recorded_in_order() {
    let buf = SharedBuf::default();
    let runner = Runner::new(RunnerConfig {
        threads: 2,
        timeout: Some(Duration::from_millis(50)),
        retry_once: true,
    })
    .with_sink(JsonlSink::new(buf.clone()));

    let attempts = Arc::new(AtomicU32::new(0));
    let seen = Arc::clone(&attempts);
    let flaky = Job::new("flaky", move || {
        if seen.fetch_add(1, Ordering::SeqCst) == 0 {
            // First attempt: overrun the timeout so the pool abandons it.
            std::thread::sleep(Duration::from_millis(400));
        }
        99u32
    });
    let steady = Job::new("steady", || 7u32);

    let reports = runner.run("policy", vec![flaky, steady]);

    // The flaky job recovered on its retry.
    assert_eq!(reports[0].name, "flaky");
    assert_eq!(reports[0].attempts, 2, "one timeout, one successful retry");
    assert_eq!(reports[0].ok(), Some(&99));
    assert!(!reports[0].is_failed());
    // Its neighbour was untouched by the failure policy.
    assert_eq!(reports[1].ok(), Some(&7));
    assert_eq!(reports[1].attempts, 1);

    // Replay the JSONL stream: every line parses, and the flaky job's
    // events appear in exactly the order the policy executes them.
    let text = buf.text();
    let events: Vec<gsim_json::Json> = text
        .lines()
        .map(|l| gsim_json::parse(l).expect("metrics line is valid JSON"))
        .collect();
    let field = |e: &gsim_json::Json, k: &str| e.get(k).cloned();
    let flaky_events: Vec<(String, u64, Option<String>)> = events
        .iter()
        .filter(|e| {
            field(e, "job")
                .and_then(|j| j.as_str().map(String::from))
                .as_deref()
                == Some("flaky")
        })
        .map(|e| {
            (
                field(e, "event").unwrap().as_str().unwrap().to_string(),
                field(e, "attempt").unwrap().as_u64().unwrap(),
                field(e, "outcome").and_then(|o| o.as_str().map(String::from)),
            )
        })
        .collect();
    assert_eq!(
        flaky_events,
        vec![
            ("job_started".to_string(), 1, None),
            ("job_finished".to_string(), 1, Some("timed-out".to_string())),
            ("job_started".to_string(), 2, None),
            ("job_finished".to_string(), 2, Some("ok".to_string())),
        ],
        "full stream:\n{text}"
    );

    // The sweep banner counts the job as completed, not failed.
    let finished = events
        .iter()
        .find(|e| field(e, "event").unwrap().as_str() == Some("sweep_finished"))
        .expect("sweep_finished event present");
    assert_eq!(finished.get("completed").unwrap().as_u64(), Some(2));
    assert_eq!(finished.get("failed").unwrap().as_u64(), Some(0));
}

/// Without the retry budget the same timeout is terminal.
#[test]
fn timeout_without_retry_fails_the_job() {
    let runner = Runner::new(RunnerConfig {
        threads: 1,
        timeout: Some(Duration::from_millis(50)),
        retry_once: false,
    });
    let job = Job::new("slow", || {
        std::thread::sleep(Duration::from_millis(400));
        1u32
    });
    let reports = runner.run("no-retry", vec![job]);
    assert!(reports[0].is_failed());
    assert_eq!(reports[0].attempts, 1);
    assert_eq!(reports[0].failure().as_deref(), Some("timed out"));
}
