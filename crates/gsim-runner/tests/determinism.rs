//! Determinism and failure-isolation guarantees of the runner.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use gsim_runner::{Job, JobStatus, Runner, RunnerConfig};

fn runner(threads: usize) -> Runner {
    Runner::new(RunnerConfig {
        threads,
        ..RunnerConfig::default()
    })
}

/// A deterministic but non-trivial workload: collatz step count.
fn collatz(mut n: u64) -> u64 {
    let mut steps = 0;
    while n != 1 {
        n = if n.is_multiple_of(2) {
            n / 2
        } else {
            3 * n + 1
        };
        steps += 1;
    }
    steps
}

fn collatz_jobs() -> Vec<Job<u64>> {
    (1..=200u64)
        .map(|n| Job::new(format!("collatz-{n}"), move || collatz(n)))
        .collect()
}

#[test]
fn one_thread_and_many_threads_aggregate_identically() {
    let serial = runner(1).run("serial", collatz_jobs());
    let parallel = runner(8).run("parallel", collatz_jobs());
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(parallel.iter()) {
        assert_eq!(s.index, p.index);
        assert_eq!(s.name, p.name);
        assert_eq!(s.ok(), p.ok(), "value mismatch at {}", s.name);
    }
    // The aggregated value streams are byte-identical.
    let sv: Vec<u64> = serial.into_iter().filter_map(|r| r.into_ok()).collect();
    let pv: Vec<u64> = parallel.into_iter().filter_map(|r| r.into_ok()).collect();
    assert_eq!(sv, pv);
}

#[test]
fn panicking_job_is_recorded_without_aborting_the_sweep() {
    let attempts = Arc::new(AtomicUsize::new(0));
    let a = Arc::clone(&attempts);
    let mut jobs: Vec<Job<u64>> = vec![
        Job::new("ok-before", || 1),
        Job::new("bomb", move || {
            a.fetch_add(1, Ordering::SeqCst);
            panic!("injected failure");
        }),
    ];
    jobs.push(Job::new("ok-after", || 3));

    let reports = runner(2).run("faulty", jobs);
    assert_eq!(reports.len(), 3);
    assert_eq!(reports[0].ok(), Some(&1));
    assert_eq!(reports[2].ok(), Some(&3));

    let bomb = &reports[1];
    assert!(bomb.is_failed());
    assert_eq!(bomb.attempts, 2, "failed job is retried once");
    assert_eq!(attempts.load(Ordering::SeqCst), 2);
    match &bomb.status {
        JobStatus::Panicked(msg) => assert!(msg.contains("injected failure")),
        other => panic!("expected Panicked, got {:?}", other.label()),
    }
}

#[test]
fn retry_can_be_disabled() {
    let attempts = Arc::new(AtomicUsize::new(0));
    let a = Arc::clone(&attempts);
    let r = Runner::new(RunnerConfig {
        threads: 1,
        retry_once: false,
        ..RunnerConfig::default()
    });
    let reports = r.run(
        "no-retry",
        vec![Job::new("bomb", move || -> u64 {
            a.fetch_add(1, Ordering::SeqCst);
            panic!("once only");
        })],
    );
    assert_eq!(reports[0].attempts, 1);
    assert_eq!(attempts.load(Ordering::SeqCst), 1);
}

#[test]
fn overrunning_job_times_out_without_stalling_the_sweep() {
    let r = Runner::new(RunnerConfig {
        threads: 2,
        timeout: Some(Duration::from_millis(50)),
        retry_once: false,
    });
    let jobs: Vec<Job<u64>> = vec![
        Job::new("sleeper", || {
            std::thread::sleep(Duration::from_secs(10));
            0
        }),
        Job::new("quick", || 7),
    ];
    let t0 = std::time::Instant::now();
    let reports = r.run("timeouts", jobs);
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "sweep must not wait out the sleeper"
    );
    assert_eq!(reports[0].status, JobStatus::TimedOut);
    assert_eq!(reports[0].failure().unwrap(), "timed out");
    assert_eq!(reports[1].ok(), Some(&7));
}

#[test]
fn retried_transient_failure_succeeds_on_second_attempt() {
    let tries = Arc::new(AtomicUsize::new(0));
    let t = Arc::clone(&tries);
    let reports = runner(1).run(
        "transient",
        vec![Job::new("flaky", move || {
            if t.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("first attempt fails");
            }
            99u64
        })],
    );
    assert_eq!(reports[0].ok(), Some(&99));
    assert_eq!(reports[0].attempts, 2);
}
