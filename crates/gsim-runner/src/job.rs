//! The unit of work and its execution report.

use std::time::Duration;

/// One named, re-invocable unit of sweep work.
///
/// The closure is `Fn` (not `FnOnce`) so the pool can invoke it a second
/// time under the retry-once failure policy; it must therefore produce its
/// result from its captures alone. Simulation pipelines fit naturally:
/// configs and workloads are immutable inputs.
pub struct Job<T> {
    name: String,
    work: Box<dyn Fn() -> T + Send + Sync>,
}

impl<T> Job<T> {
    /// Wraps `work` as a job called `name` (the name appears in events,
    /// progress lines, and metrics).
    pub fn new(name: impl Into<String>, work: impl Fn() -> T + Send + Sync + 'static) -> Self {
        Self {
            name: name.into(),
            work: Box::new(work),
        }
    }

    /// The job's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Invokes the work closure.
    pub fn run(&self) -> T {
        (self.work)()
    }
}

impl<T> std::fmt::Debug for Job<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job").field("name", &self.name).finish()
    }
}

/// How a job ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus<T> {
    /// The job returned a value.
    Done(T),
    /// The job panicked on its final attempt; the payload message is kept.
    Panicked(String),
    /// The job exceeded the configured wall-clock timeout on its final
    /// attempt and was abandoned.
    TimedOut,
}

impl<T> JobStatus<T> {
    /// Stable label for events and metrics ("ok", "panicked",
    /// "timed-out").
    pub fn label(&self) -> &'static str {
        match self {
            JobStatus::Done(_) => "ok",
            JobStatus::Panicked(_) => "panicked",
            JobStatus::TimedOut => "timed-out",
        }
    }
}

/// The full record of one job's execution.
#[derive(Debug, Clone, PartialEq)]
pub struct JobReport<T> {
    /// Submission index: reports returned by the pool are sorted by it.
    pub index: usize,
    /// The job's name.
    pub name: String,
    /// Attempts made (1, or 2 after a retry).
    pub attempts: u32,
    /// Wall-clock duration of the final attempt.
    pub duration: Duration,
    /// Outcome of the final attempt.
    pub status: JobStatus<T>,
}

impl<T> JobReport<T> {
    /// The job's value, if it completed.
    pub fn ok(&self) -> Option<&T> {
        match &self.status {
            JobStatus::Done(v) => Some(v),
            _ => None,
        }
    }

    /// Consumes the report into the job's value, if it completed.
    pub fn into_ok(self) -> Option<T> {
        match self.status {
            JobStatus::Done(v) => Some(v),
            _ => None,
        }
    }

    /// Whether the job failed (panicked or timed out) after all attempts.
    pub fn is_failed(&self) -> bool {
        !matches!(self.status, JobStatus::Done(_))
    }

    /// A human-readable failure description, if the job failed.
    pub fn failure(&self) -> Option<String> {
        match &self.status {
            JobStatus::Done(_) => None,
            JobStatus::Panicked(msg) => Some(format!("panicked: {msg}")),
            JobStatus::TimedOut => Some("timed out".to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_is_reinvocable_and_named() {
        let job = Job::new("double", || 21 * 2);
        assert_eq!(job.name(), "double");
        assert_eq!(job.run(), 42);
        assert_eq!(job.run(), 42);
    }

    #[test]
    fn report_accessors() {
        let ok = JobReport {
            index: 0,
            name: "a".into(),
            attempts: 1,
            duration: Duration::ZERO,
            status: JobStatus::Done(5u32),
        };
        assert_eq!(ok.ok(), Some(&5));
        assert!(!ok.is_failed());
        assert_eq!(ok.failure(), None);
        assert_eq!(ok.status.label(), "ok");

        let bad: JobReport<u32> = JobReport {
            index: 1,
            name: "b".into(),
            attempts: 2,
            duration: Duration::ZERO,
            status: JobStatus::Panicked("boom".into()),
        };
        assert!(bad.is_failed());
        assert_eq!(bad.failure().unwrap(), "panicked: boom");
        assert_eq!(bad.into_ok(), None);
    }
}
