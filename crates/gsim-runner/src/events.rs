//! Observability: sweep/job lifecycle events and the built-in sinks.

use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One lifecycle event emitted by the pool.
///
/// Events are borrowed views — sinks that need to keep them must copy the
/// fields out.
#[derive(Debug, Clone, Copy)]
pub enum Event<'a> {
    /// A sweep began.
    SweepStarted {
        /// The sweep's label.
        label: &'a str,
        /// Number of jobs submitted.
        jobs: usize,
        /// Worker threads serving the sweep.
        threads: usize,
    },
    /// A job attempt began.
    JobStarted {
        /// The sweep's label.
        label: &'a str,
        /// Submission index of the job.
        index: usize,
        /// The job's name.
        name: &'a str,
        /// 1 for the first attempt, 2 for the retry.
        attempt: u32,
    },
    /// A job attempt ended.
    JobFinished {
        /// The sweep's label.
        label: &'a str,
        /// Submission index of the job.
        index: usize,
        /// The job's name.
        name: &'a str,
        /// 1 for the first attempt, 2 for the retry.
        attempt: u32,
        /// Outcome label: "ok", "panicked", or "timed-out".
        outcome: &'static str,
        /// Wall-clock milliseconds of this attempt.
        millis: u128,
    },
    /// A sweep ran out of work and all reports are in.
    SweepFinished {
        /// The sweep's label.
        label: &'a str,
        /// Jobs that produced a value.
        completed: usize,
        /// Jobs that panicked or timed out after all attempts.
        failed: usize,
        /// Wall-clock milliseconds of the whole sweep.
        millis: u128,
    },
}

/// A pluggable consumer of [`Event`]s.
///
/// Sinks are shared across worker threads; implementations synchronise
/// internally (the built-ins use a `Mutex`/atomics). Sinks must not
/// panic: they run on worker threads in the middle of a sweep.
pub trait EventSink: Send + Sync {
    /// Called for every event, from whichever thread produced it.
    fn on_event(&self, event: &Event<'_>);
}

/// Terminal progress: one stderr line per finished job plus sweep
/// banners, in the style of the repro binary's `[repro] ...` notes.
#[derive(Debug, Default)]
pub struct ProgressReporter {
    done: AtomicUsize,
    total: AtomicUsize,
}

impl ProgressReporter {
    /// Creates the reporter.
    pub fn new() -> Self {
        Self::default()
    }
}

impl EventSink for ProgressReporter {
    fn on_event(&self, event: &Event<'_>) {
        match *event {
            Event::SweepStarted {
                label,
                jobs,
                threads,
            } => {
                self.done.store(0, Ordering::SeqCst);
                self.total.store(jobs, Ordering::SeqCst);
                eprintln!("[{label}] {jobs} jobs on {threads} thread(s)");
            }
            Event::JobStarted { .. } => {}
            Event::JobFinished {
                label,
                name,
                attempt,
                outcome,
                millis,
                ..
            } => {
                // Count a job once: its final attempt is the one that is
                // either ok or past the retry budget; intermediate failed
                // first attempts are reported but not counted.
                let retried = outcome != "ok" && attempt == 1;
                let done = if retried {
                    self.done.load(Ordering::SeqCst)
                } else {
                    self.done.fetch_add(1, Ordering::SeqCst) + 1
                };
                let total = self.total.load(Ordering::SeqCst);
                let note = if retried { ", retrying" } else { "" };
                eprintln!(
                    "[{label}] {done}/{total} {name} {outcome}{note} ({:.2}s)",
                    millis as f64 / 1000.0
                );
            }
            Event::SweepFinished {
                label,
                completed,
                failed,
                millis,
            } => {
                eprintln!(
                    "[{label}] done: {completed} ok, {failed} failed ({:.2}s)",
                    millis as f64 / 1000.0
                );
            }
        }
    }
}

/// Structured metrics: one JSON object per event, newline-delimited.
///
/// The schema (all events carry `"event"` and `"elapsed_ms"` since sink
/// creation):
///
/// ```json
/// {"event":"sweep_started","sweep":"strong","jobs":21,"threads":4,"elapsed_ms":0}
/// {"event":"job_started","sweep":"strong","index":0,"job":"dct","attempt":1,"elapsed_ms":1}
/// {"event":"job_finished","sweep":"strong","index":0,"job":"dct","attempt":1,
///  "outcome":"ok","duration_ms":5123,"elapsed_ms":5124}
/// {"event":"sweep_finished","sweep":"strong","completed":21,"failed":0,"elapsed_ms":99000}
/// ```
///
/// `outcome` is `"ok"`, `"panicked"`, or `"timed-out"`.
pub struct JsonlSink {
    out: Mutex<Box<dyn Write + Send>>,
    t0: Instant,
}

impl JsonlSink {
    /// Wraps any writer (a `File`, a `Vec<u8>` in tests, …).
    pub fn new(writer: impl Write + Send + 'static) -> Self {
        Self {
            out: Mutex::new(Box::new(writer)),
            t0: Instant::now(),
        }
    }

    /// Creates (truncating) a metrics file at `path`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the file.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(Self::new(std::fs::File::create(path)?))
    }

    fn write_line(&self, line: &str) {
        if let Ok(mut out) = self.out.lock() {
            // Metrics are best-effort; a full disk must not kill a sweep.
            let _ = writeln!(out, "{line}");
            let _ = out.flush();
        }
    }
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink").finish_non_exhaustive()
    }
}

impl EventSink for JsonlSink {
    fn on_event(&self, event: &Event<'_>) {
        let elapsed = self.t0.elapsed().as_millis();
        let line = match *event {
            Event::SweepStarted {
                label,
                jobs,
                threads,
            } => format!(
                r#"{{"event":"sweep_started","sweep":{},"jobs":{jobs},"threads":{threads},"elapsed_ms":{elapsed}}}"#,
                json_string(label)
            ),
            Event::JobStarted {
                label,
                index,
                name,
                attempt,
            } => format!(
                r#"{{"event":"job_started","sweep":{},"index":{index},"job":{},"attempt":{attempt},"elapsed_ms":{elapsed}}}"#,
                json_string(label),
                json_string(name)
            ),
            Event::JobFinished {
                label,
                index,
                name,
                attempt,
                outcome,
                millis,
            } => format!(
                r#"{{"event":"job_finished","sweep":{},"index":{index},"job":{},"attempt":{attempt},"outcome":"{outcome}","duration_ms":{millis},"elapsed_ms":{elapsed}}}"#,
                json_string(label),
                json_string(name)
            ),
            Event::SweepFinished {
                label,
                completed,
                failed,
                millis,
            } => format!(
                r#"{{"event":"sweep_finished","sweep":{},"completed":{completed},"failed":{failed},"duration_ms":{millis},"elapsed_ms":{elapsed}}}"#,
                json_string(label)
            ),
        };
        self.write_line(&line);
    }
}

/// Renders `s` as a JSON string literal (quotes included) — the shared
/// implementation from `gsim-json`, re-exported for existing callers.
pub use gsim_json::json_string;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A shared in-memory writer to observe JsonlSink output.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_sink_emits_one_object_per_event() {
        let buf = SharedBuf::default();
        let sink = JsonlSink::new(buf.clone());
        sink.on_event(&Event::SweepStarted {
            label: "s",
            jobs: 2,
            threads: 1,
        });
        sink.on_event(&Event::JobFinished {
            label: "s",
            index: 0,
            name: "a \"quoted\" job",
            attempt: 1,
            outcome: "ok",
            millis: 5,
        });
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains(r#""event":"sweep_started""#));
        assert!(lines[0].contains(r#""jobs":2"#));
        assert!(lines[1].contains(r#""job":"a \"quoted\" job""#));
        assert!(lines[1].contains(r#""outcome":"ok""#));
        for l in &lines {
            gsim_json::parse(l).expect("every metrics line is valid JSON");
        }
    }
}
