//! The work-stealing worker pool.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::events::{Event, EventSink};
use crate::job::{Job, JobReport, JobStatus};

/// Pool configuration.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Worker threads. `0` resolves to the `GSIM_RUNNER_THREADS`
    /// environment variable if set, else the machine's available
    /// parallelism.
    pub threads: usize,
    /// Per-job wall-clock timeout. When set, each job attempt runs on a
    /// sacrificial thread so an overrunning job can be abandoned (the
    /// thread is detached — standard library threads cannot be killed).
    /// `None` runs jobs directly on the workers.
    pub timeout: Option<Duration>,
    /// Retry a panicked or timed-out job once before recording it as
    /// failed.
    pub retry_once: bool,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            timeout: None,
            retry_once: true,
        }
    }
}

impl RunnerConfig {
    /// The actual worker count `threads == 0` resolves to.
    pub fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        if let Some(n) = std::env::var("GSIM_RUNNER_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            return n;
        }
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }
}

/// Per-run overrides of the pool's failure policy, for callers whose
/// budget varies per sweep (a request deadline, a no-retry fast path)
/// while the pool itself is long-lived and shared.
///
/// `None` fields keep the [`RunnerConfig`] setting; `Some` replaces it
/// for this run only.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunOverrides {
    /// Replaces the per-job timeout: `Some(None)` disables it,
    /// `Some(Some(d))` sets it to `d`.
    pub timeout: Option<Option<Duration>>,
    /// Replaces the retry-once policy.
    pub retry_once: Option<bool>,
}

impl RunOverrides {
    /// Overrides with a per-job timeout and retries disabled — the shape
    /// a deadline-bound caller wants: a retry would double the worst-case
    /// wall time, and a job that timed out against the deadline once will
    /// again.
    pub fn deadline(timeout: Duration) -> Self {
        Self {
            timeout: Some(Some(timeout)),
            retry_once: Some(false),
        }
    }
}

/// A configured sweep executor. Cheap to build; reusable across sweeps.
pub struct Runner {
    cfg: RunnerConfig,
    sinks: Vec<Arc<dyn EventSink>>,
}

impl std::fmt::Debug for Runner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runner")
            .field("cfg", &self.cfg)
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

/// Everything a worker thread shares with its peers.
struct Shared<T> {
    jobs: Vec<Job<T>>,
    /// One deque per worker; a worker pops its own from the front and
    /// steals from peers' backs.
    deques: Vec<Mutex<VecDeque<usize>>>,
    sinks: Vec<Arc<dyn EventSink>>,
    label: String,
    timeout: Option<Duration>,
    retry_once: bool,
}

impl<T> Shared<T> {
    fn emit(&self, event: &Event<'_>) {
        for sink in &self.sinks {
            sink.on_event(event);
        }
    }
}

impl Runner {
    /// Creates a runner with no sinks attached.
    pub fn new(cfg: RunnerConfig) -> Self {
        Self {
            cfg,
            sinks: Vec::new(),
        }
    }

    /// The worker count sweeps will use.
    pub fn threads(&self) -> usize {
        self.cfg.resolved_threads()
    }

    /// Attaches an event sink (builder style).
    #[must_use]
    pub fn with_sink(mut self, sink: impl EventSink + 'static) -> Self {
        self.sinks.push(Arc::new(sink));
        self
    }

    /// Attaches an already-shared event sink.
    pub fn add_sink(&mut self, sink: Arc<dyn EventSink>) {
        self.sinks.push(sink);
    }

    /// Executes `jobs` and returns one report per job, **sorted by
    /// submission index** regardless of completion order.
    ///
    /// Jobs are dealt round-robin onto per-worker deques; idle workers
    /// steal from the back of their peers', so an unlucky deal behind a
    /// slow job cannot serialise the sweep. The calling thread only
    /// aggregates.
    pub fn run<T: Send + 'static>(&self, label: &str, jobs: Vec<Job<T>>) -> Vec<JobReport<T>> {
        self.run_with(label, jobs, RunOverrides::default())
    }

    /// [`run`](Self::run) with this sweep's failure policy adjusted by
    /// `overrides` — the pool, sinks, and scheduling are unchanged.
    pub fn run_with<T: Send + 'static>(
        &self,
        label: &str,
        jobs: Vec<Job<T>>,
        overrides: RunOverrides,
    ) -> Vec<JobReport<T>> {
        let n = jobs.len();
        let threads = self.cfg.resolved_threads().min(n.max(1));
        let start = Instant::now();

        let mut deques: Vec<Mutex<VecDeque<usize>>> = Vec::with_capacity(threads);
        for _ in 0..threads {
            deques.push(Mutex::new(VecDeque::new()));
        }
        for idx in 0..n {
            deques[idx % threads]
                .lock()
                .expect("fresh deque lock")
                .push_back(idx);
        }
        let shared = Arc::new(Shared {
            jobs,
            deques,
            sinks: self.sinks.clone(),
            label: label.to_string(),
            timeout: overrides.timeout.unwrap_or(self.cfg.timeout),
            retry_once: overrides.retry_once.unwrap_or(self.cfg.retry_once),
        });

        shared.emit(&Event::SweepStarted {
            label,
            jobs: n,
            threads,
        });

        let (tx, rx) = mpsc::channel::<JobReport<T>>();
        let mut handles = Vec::with_capacity(threads);
        for worker in 0..threads {
            let shared = Arc::clone(&shared);
            let tx = tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("gsim-runner-{worker}"))
                .spawn(move || worker_loop(worker, &shared, &tx))
                .expect("spawn worker thread");
            handles.push(handle);
        }
        drop(tx);

        let mut slots: Vec<Option<JobReport<T>>> = (0..n).map(|_| None).collect();
        while let Ok(report) = rx.recv() {
            let idx = report.index;
            slots[idx] = Some(report);
        }
        for handle in handles {
            let _ = handle.join();
        }

        let reports: Vec<JobReport<T>> = slots
            .into_iter()
            .enumerate()
            .map(|(idx, slot)| {
                slot.unwrap_or_else(|| JobReport {
                    index: idx,
                    name: shared.jobs[idx].name().to_string(),
                    attempts: 0,
                    duration: Duration::ZERO,
                    status: JobStatus::Panicked("worker thread died".to_string()),
                })
            })
            .collect();

        let failed = reports.iter().filter(|r| r.is_failed()).count();
        shared.emit(&Event::SweepFinished {
            label,
            completed: n - failed,
            failed,
            millis: start.elapsed().as_millis(),
        });
        reports
    }

    /// Convenience: one job per `(name, item)` pair, all applying `f`.
    /// Equivalent to a serial `items.map(f)` with the pool underneath.
    pub fn map<I, T, F>(&self, label: &str, items: Vec<(String, I)>, f: F) -> Vec<JobReport<T>>
    where
        I: Send + Sync + 'static,
        T: Send + 'static,
        F: Fn(&I) -> T + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let jobs = items
            .into_iter()
            .map(|(name, item)| {
                let f = Arc::clone(&f);
                Job::new(name, move || f(&item))
            })
            .collect();
        self.run(label, jobs)
    }
}

/// Takes the next job index: own deque front first, then steal from the
/// back of each peer. Returns `None` only when every deque is empty —
/// jobs are never re-enqueued, so that means the sweep is drained.
fn next_index<T>(worker: usize, shared: &Shared<T>) -> Option<usize> {
    if let Some(idx) = shared.deques[worker]
        .lock()
        .expect("deque lock")
        .pop_front()
    {
        return Some(idx);
    }
    let n = shared.deques.len();
    for off in 1..n {
        let victim = (worker + off) % n;
        if let Some(idx) = shared.deques[victim].lock().expect("deque lock").pop_back() {
            return Some(idx);
        }
    }
    None
}

fn worker_loop<T: Send + 'static>(
    worker: usize,
    shared: &Arc<Shared<T>>,
    tx: &mpsc::Sender<JobReport<T>>,
) {
    while let Some(idx) = next_index(worker, shared) {
        let report = execute(idx, shared);
        if tx.send(report).is_err() {
            return; // aggregator is gone; nothing useful left to do
        }
    }
}

/// Runs job `idx` under the failure policy: catch panics, enforce the
/// timeout, retry once.
fn execute<T: Send + 'static>(idx: usize, shared: &Arc<Shared<T>>) -> JobReport<T> {
    let max_attempts = if shared.retry_once { 2 } else { 1 };
    let mut attempt = 1;
    loop {
        shared.emit(&Event::JobStarted {
            label: &shared.label,
            index: idx,
            name: shared.jobs[idx].name(),
            attempt,
        });
        let t0 = Instant::now();
        let status = run_attempt(idx, shared);
        let duration = t0.elapsed();
        shared.emit(&Event::JobFinished {
            label: &shared.label,
            index: idx,
            name: shared.jobs[idx].name(),
            attempt,
            outcome: status.label(),
            millis: duration.as_millis(),
        });
        if matches!(status, JobStatus::Done(_)) || attempt >= max_attempts {
            return JobReport {
                index: idx,
                name: shared.jobs[idx].name().to_string(),
                attempts: attempt,
                duration,
                status,
            };
        }
        attempt += 1;
    }
}

fn run_attempt<T: Send + 'static>(idx: usize, shared: &Arc<Shared<T>>) -> JobStatus<T> {
    match shared.timeout {
        None => wrap_panic(catch_unwind(AssertUnwindSafe(|| shared.jobs[idx].run()))),
        Some(timeout) => {
            // A sacrificial thread makes the attempt abandonable: on
            // timeout the zombie keeps running detached (it holds its own
            // Arc on the shared state) while the worker moves on.
            let (tx, rx) = mpsc::channel();
            let shared = Arc::clone(shared);
            let spawned = std::thread::Builder::new()
                .name(format!("gsim-runner-job-{idx}"))
                .spawn(move || {
                    let result = catch_unwind(AssertUnwindSafe(|| shared.jobs[idx].run()));
                    let _ = tx.send(result);
                });
            match spawned {
                Err(e) => JobStatus::Panicked(format!("could not spawn job thread: {e}")),
                Ok(_) => match rx.recv_timeout(timeout) {
                    Ok(result) => wrap_panic(result),
                    Err(mpsc::RecvTimeoutError::Timeout) => JobStatus::TimedOut,
                    Err(mpsc::RecvTimeoutError::Disconnected) => {
                        JobStatus::Panicked("job thread vanished".to_string())
                    }
                },
            }
        }
    }
}

fn wrap_panic<T>(result: Result<T, Box<dyn std::any::Any + Send>>) -> JobStatus<T> {
    match result {
        Ok(v) => JobStatus::Done(v),
        Err(payload) => {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            JobStatus::Panicked(msg)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet() -> Runner {
        Runner::new(RunnerConfig {
            threads: 4,
            ..RunnerConfig::default()
        })
    }

    #[test]
    fn empty_sweep_returns_no_reports() {
        let reports: Vec<JobReport<u32>> = quiet().run("empty", Vec::new());
        assert!(reports.is_empty());
    }

    #[test]
    fn reports_come_back_in_submission_order() {
        let jobs: Vec<Job<usize>> = (0..64)
            .map(|i| {
                Job::new(format!("j{i}"), move || {
                    // Earlier jobs sleep longer: completion order is the
                    // reverse of submission order.
                    std::thread::sleep(Duration::from_millis((64 - i) as u64 / 8));
                    i
                })
            })
            .collect();
        let reports = quiet().run("order", jobs);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.index, i);
            assert_eq!(r.ok(), Some(&i));
            assert_eq!(r.attempts, 1);
        }
    }

    #[test]
    fn config_resolves_explicit_threads() {
        let cfg = RunnerConfig {
            threads: 3,
            ..RunnerConfig::default()
        };
        assert_eq!(cfg.resolved_threads(), 3);
        let auto = RunnerConfig::default();
        assert!(auto.resolved_threads() >= 1);
    }

    #[test]
    fn run_overrides_replace_timeout_and_retry_for_one_run() {
        // Pool configured with no timeout and retries on.
        let runner = quiet();

        // Deadline overrides: a slow job times out and is NOT retried.
        let slow = vec![Job::new("slow", || {
            std::thread::sleep(Duration::from_millis(400));
            1u32
        })];
        let reports = runner.run_with(
            "deadline",
            slow,
            RunOverrides::deadline(Duration::from_millis(20)),
        );
        assert!(matches!(reports[0].status, JobStatus::TimedOut));
        assert_eq!(reports[0].attempts, 1, "deadline run must not retry");

        // The same runner afterwards still uses its own config: no
        // timeout, retry once.
        let flaky_runs = Arc::new(std::sync::atomic::AtomicU32::new(0));
        let counter = Arc::clone(&flaky_runs);
        let flaky = vec![Job::new("flaky", move || {
            if counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst) == 0 {
                panic!("first attempt fails");
            }
            7u32
        })];
        let reports = runner.run("after", flaky);
        assert_eq!(reports[0].ok(), Some(&7));
        assert_eq!(reports[0].attempts, 2, "config retry_once still applies");
    }

    #[test]
    fn map_applies_shared_function() {
        let items: Vec<(String, u64)> = (0..10u64).map(|i| (format!("i{i}"), i)).collect();
        let reports = quiet().map("map", items, |&i| i * 3);
        let values: Vec<u64> = reports.into_iter().filter_map(JobReport::into_ok).collect();
        assert_eq!(values, (0..10u64).map(|i| i * 3).collect::<Vec<_>>());
    }
}
