//! Job handles: one producer publishes a result, any number of waiters
//! block on it.
//!
//! [`Runner::run`] is a batch API — the caller owns every report. A
//! *service* sitting on top of the runner needs something the batch API
//! cannot express: several independent threads waiting on the same unit
//! of work (the `gsim-serve` single-flight path, where N identical HTTP
//! requests share one simulation). [`job_handle`] provides that
//! primitive:
//!
//! * [`Promise`] — the producer side. Consumed by [`Promise::set`]; if it
//!   is dropped without publishing (the producing closure panicked or was
//!   abandoned), every waiter wakes with [`Abandoned`] instead of
//!   deadlocking.
//! * [`JobHandle`] — the consumer side. Cheap to clone; every clone's
//!   [`JobHandle::wait`] returns the same shared `Arc<T>`.
//!
//! ```
//! use gsim_runner::handle::job_handle;
//!
//! let (promise, handle) = job_handle::<u64>();
//! let waiter = handle.clone();
//! let t = std::thread::spawn(move || *waiter.wait().unwrap());
//! promise.set(42);
//! assert_eq!(*handle.wait().unwrap(), 42);
//! assert_eq!(t.join().unwrap(), 42);
//! ```
//!
//! [`Runner::run`]: crate::Runner::run

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// The producer vanished without publishing a result (dropped its
/// [`Promise`], typically because the producing closure panicked).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Abandoned;

impl std::fmt::Display for Abandoned {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job abandoned before publishing a result")
    }
}

impl std::error::Error for Abandoned {}

enum SlotState<T> {
    Pending,
    Done(Arc<T>),
    Abandoned,
}

struct Slot<T> {
    state: Mutex<SlotState<T>>,
    cv: Condvar,
}

/// The producer side of a [`job_handle`] pair. Publish with [`set`];
/// dropping it unpublished wakes every waiter with [`Abandoned`].
///
/// [`set`]: Promise::set
pub struct Promise<T> {
    slot: Arc<Slot<T>>,
}

impl<T> std::fmt::Debug for Promise<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Promise").finish_non_exhaustive()
    }
}

impl<T> Promise<T> {
    /// Publishes the result, waking every current and future waiter.
    pub fn set(self, value: T) {
        let mut state = self.slot.state.lock().expect("handle lock");
        *state = SlotState::Done(Arc::new(value));
        drop(state);
        self.slot.cv.notify_all();
        // Forgetting nothing: Drop sees the published state and leaves it.
    }
}

impl<T> Drop for Promise<T> {
    fn drop(&mut self) {
        let mut state = self.slot.state.lock().expect("handle lock");
        if matches!(*state, SlotState::Pending) {
            *state = SlotState::Abandoned;
            drop(state);
            self.slot.cv.notify_all();
        }
    }
}

/// The consumer side of a [`job_handle`] pair: clone freely, every clone
/// observes the same published result.
pub struct JobHandle<T> {
    slot: Arc<Slot<T>>,
}

impl<T> Clone for JobHandle<T> {
    fn clone(&self) -> Self {
        Self {
            slot: Arc::clone(&self.slot),
        }
    }
}

impl<T> std::fmt::Debug for JobHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle").finish_non_exhaustive()
    }
}

impl<T> JobHandle<T> {
    /// Blocks until the producer publishes (or abandons) the result.
    ///
    /// # Errors
    ///
    /// Returns [`Abandoned`] if the producer dropped its [`Promise`]
    /// without publishing.
    pub fn wait(&self) -> Result<Arc<T>, Abandoned> {
        let mut state = self.slot.state.lock().expect("handle lock");
        loop {
            match &*state {
                SlotState::Done(v) => return Ok(Arc::clone(v)),
                SlotState::Abandoned => return Err(Abandoned),
                SlotState::Pending => {
                    state = self.slot.cv.wait(state).expect("handle lock");
                }
            }
        }
    }

    /// Like [`wait`](JobHandle::wait) but gives up after `timeout`,
    /// returning `Ok(None)`.
    ///
    /// # Errors
    ///
    /// Returns [`Abandoned`] if the producer dropped its [`Promise`]
    /// without publishing.
    pub fn wait_timeout(&self, timeout: Duration) -> Result<Option<Arc<T>>, Abandoned> {
        let deadline = Instant::now() + timeout;
        let mut state = self.slot.state.lock().expect("handle lock");
        loop {
            match &*state {
                SlotState::Done(v) => return Ok(Some(Arc::clone(v))),
                SlotState::Abandoned => return Err(Abandoned),
                SlotState::Pending => {
                    let left = deadline.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        return Ok(None);
                    }
                    let (guard, _) = self.slot.cv.wait_timeout(state, left).expect("handle lock");
                    state = guard;
                }
            }
        }
    }

    /// The published result, if any, without blocking.
    pub fn try_get(&self) -> Option<Arc<T>> {
        match &*self.slot.state.lock().expect("handle lock") {
            SlotState::Done(v) => Some(Arc::clone(v)),
            _ => None,
        }
    }

    /// Whether the producer vanished without publishing. A registry
    /// holding handles (single-flight) uses this to detect stale entries
    /// without blocking.
    pub fn is_abandoned(&self) -> bool {
        matches!(
            &*self.slot.state.lock().expect("handle lock"),
            SlotState::Abandoned
        )
    }
}

/// Creates a connected [`Promise`]/[`JobHandle`] pair.
pub fn job_handle<T>() -> (Promise<T>, JobHandle<T>) {
    let slot = Arc::new(Slot {
        state: Mutex::new(SlotState::Pending),
        cv: Condvar::new(),
    });
    (
        Promise {
            slot: Arc::clone(&slot),
        },
        JobHandle { slot },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn many_waiters_observe_one_result() {
        let (promise, handle) = job_handle::<String>();
        let waiters: Vec<_> = (0..8)
            .map(|_| {
                let h = handle.clone();
                std::thread::spawn(move || h.wait().unwrap())
            })
            .collect();
        std::thread::sleep(Duration::from_millis(10));
        promise.set("done".to_string());
        let results: Vec<Arc<String>> = waiters.into_iter().map(|t| t.join().unwrap()).collect();
        for r in &results {
            assert_eq!(**r, "done");
            // All waiters share the same allocation, not copies.
            assert!(Arc::ptr_eq(r, &results[0]));
        }
    }

    #[test]
    fn dropped_promise_abandons_waiters() {
        let (promise, handle) = job_handle::<u32>();
        let h = handle.clone();
        let t = std::thread::spawn(move || h.wait());
        std::thread::sleep(Duration::from_millis(10));
        drop(promise);
        assert_eq!(t.join().unwrap(), Err(Abandoned));
        assert_eq!(handle.wait(), Err(Abandoned));
    }

    #[test]
    fn try_get_and_timeout() {
        let (promise, handle) = job_handle::<u32>();
        assert!(handle.try_get().is_none());
        assert_eq!(handle.wait_timeout(Duration::from_millis(5)), Ok(None));
        promise.set(7);
        assert_eq!(*handle.try_get().unwrap(), 7);
        assert_eq!(
            handle.wait_timeout(Duration::from_millis(5)).unwrap(),
            Some(Arc::new(7))
        );
    }

    #[test]
    fn set_before_wait_is_immediate() {
        let (promise, handle) = job_handle::<u32>();
        promise.set(1);
        assert_eq!(*handle.wait().unwrap(), 1);
    }
}
