//! Parallel sweep execution for the scale-model experiment pipelines.
//!
//! Every figure and table of the paper is a *sweep*: many independent
//! simulation/prediction units of work (21 benchmarks × five system sizes
//! × miss-rate-curve probes). This crate runs such sweeps on a
//! work-stealing `std::thread` pool while preserving the one property the
//! repro pipeline depends on: **parallel output is indistinguishable from
//! serial output**. It has no dependencies outside `std`.
//!
//! # The model
//!
//! * [`Job`] — one named, re-invocable unit of work (a closure returning
//!   the unit's result). Re-invocability is what allows the retry-once
//!   failure policy.
//! * [`Runner`] — a configured pool ([`RunnerConfig`]: thread count,
//!   per-job wall-clock timeout, retry policy). [`Runner::run`] executes a
//!   batch of jobs and returns one [`JobReport`] per job **ordered by job
//!   index**, independent of completion order.
//! * [`EventSink`] — observability: the runner streams
//!   started/finished/sweep events to any number of sinks.
//!   [`ProgressReporter`] renders them on stderr; [`JsonlSink`] appends
//!   one JSON object per event to a writer (the structured metrics file).
//! * [`handle`] — [`Promise`]/[`JobHandle`] pairs: one producer, many
//!   blocked waiters sharing the published result. The building block
//!   services (gsim-serve's single-flight request deduplication) layer on
//!   top of the pool.
//!
//! # Failure policy
//!
//! A job that panics is caught (`catch_unwind`); a job that exceeds the
//! configured timeout is abandoned on a sacrificial thread. Either way the
//! job is retried once (if [`RunnerConfig::retry_once`] is set, the
//! default) and, failing again, recorded as [`JobStatus::Panicked`] or
//! [`JobStatus::TimedOut`] in its report — the sweep itself always runs
//! to completion; one pathological configuration cannot kill a night of
//! results.
//!
//! # Determinism
//!
//! Reports come back sorted by submission index and carry the job's value
//! verbatim, so any aggregation that is deterministic over a serial loop
//! is byte-identical over the pool (wall-clock fields excepted, which
//! differ even between two serial runs).
//!
//! ```
//! use gsim_runner::{Job, Runner, RunnerConfig};
//!
//! let runner = Runner::new(RunnerConfig {
//!     threads: 4,
//!     ..RunnerConfig::default()
//! });
//! let jobs: Vec<Job<u64>> = (0..16u64)
//!     .map(|i| Job::new(format!("square-{i}"), move || i * i))
//!     .collect();
//! let reports = runner.run("demo", jobs);
//! let squares: Vec<u64> = reports.into_iter().filter_map(|r| r.into_ok()).collect();
//! assert_eq!(squares, (0..16u64).map(|i| i * i).collect::<Vec<_>>());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod handle;
pub mod job;
pub mod pool;

pub use events::{Event, EventSink, JsonlSink, ProgressReporter};
pub use handle::{job_handle, Abandoned, JobHandle, Promise};
pub use job::{Job, JobReport, JobStatus};
pub use pool::{RunOverrides, Runner, RunnerConfig};
