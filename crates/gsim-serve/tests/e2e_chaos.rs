//! Fault-injection e2e: a `gsim-faults` plan is installed process-wide,
//! so this test lives in its own binary — it must not share a process
//! with the clean-path e2e suites.
//!
//! With `job_panic_p=1.0` every simulation job attempt panics. The
//! contract under that worst case: the client sees a `503` with a
//! `Retry-After` header (never a hang, never a raw `500` from a worker
//! panic), cheap endpoints keep answering, and `/metrics` reports the
//! injected faults so a chaos run is auditable.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use gsim_serve::{PredictService, ServeConfig, Server, ServerConfig, ShutdownFlag};

fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    s.write_all(raw.as_bytes()).expect("send");
    let mut out = Vec::new();
    s.read_to_end(&mut out).expect("read response");
    let header_end = out
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header terminator");
    let head = std::str::from_utf8(&out[..header_end]).expect("utf8 head");
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|c| c.parse().ok())
        .expect("status code");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    (status, headers, out[header_end + 4..].to_vec())
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

#[test]
fn injected_job_panics_surface_as_503_with_retry_after() {
    let plan = gsim_faults::FaultPlan::parse("seed=7,job_panic_p=1.0").expect("plan parses");
    assert!(gsim_faults::install(plan), "first install wins");

    let shutdown = ShutdownFlag::new();
    let service = PredictService::new(
        ServeConfig {
            runner_threads: 1,
            ..ServeConfig::default()
        },
        shutdown.clone(),
    )
    .expect("service starts");
    let server = Server::bind("127.0.0.1:0", ServerConfig::default(), shutdown.clone())
        .expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let join = std::thread::spawn(move || {
        server
            .serve(Arc::new(move |req| service.handle(req)))
            .expect("serve loop")
    });

    // Pinned to the full path: the fault site is the timing-simulation
    // job, which an auto (fast-path) predict would never schedule.
    let body = r#"{"pattern": {"kind": "streaming", "footprint_mb": 1.0}, "target_sms": 64, "path": "full"}"#;
    let (status, headers, resp) = request(addr, "POST", "/v1/predict", body);
    assert_eq!(
        status,
        503,
        "a doomed simulation must fail closed: {}",
        String::from_utf8_lossy(&resp)
    );
    assert!(
        header(&headers, "retry-after").is_some(),
        "503 under faults still tells clients when to come back: {headers:?}"
    );

    // Cheap endpoints are unaffected by simulation-job chaos.
    let (status, _, body) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let doc = gsim_json::parse(std::str::from_utf8(&body).expect("utf8")).expect("metrics json");
    let panics = doc
        .get("faults")
        .and_then(|f| f.get("job.panic"))
        .and_then(gsim_json::Json::as_u64)
        .unwrap_or(0);
    assert!(
        panics >= 1,
        "injected faults must be audited: {}",
        doc.render()
    );

    shutdown.trigger();
    join.join().expect("server thread");
}
