//! End-to-end test of the prediction service over real HTTP sockets.
//!
//! Drives the acceptance scenario from the service's design brief:
//! two concurrent identical `POST /v1/predict` requests must trigger
//! exactly one simulation run and return byte-identical bodies, and a
//! third request after a server restart with the same `--cache-dir`
//! must be served from the persisted cache.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Barrier};
use std::thread::JoinHandle;

use gsim_serve::{PredictService, ServeConfig, Server, ServerConfig, ShutdownFlag};

/// A cheap request: tiny streaming pattern, two targets. The 8/16-SM
/// scale models plus the MRC job finish in well under a second.
const PREDICT_BODY: &str =
    r#"{"pattern": {"kind": "streaming", "footprint_mb": 1.0}, "targets": [32, 64]}"#;

struct RunningServer {
    addr: SocketAddr,
    shutdown: ShutdownFlag,
    join: JoinHandle<()>,
}

impl RunningServer {
    fn start(cache_dir: &Path) -> Self {
        let shutdown = ShutdownFlag::new();
        let service = PredictService::new(
            ServeConfig {
                runner_threads: 2,
                cache_capacity: 0,
                cache_dir: Some(cache_dir.to_path_buf()),
                ..ServeConfig::default()
            },
            shutdown.clone(),
        )
        .expect("service starts");
        let server = Server::bind(
            "127.0.0.1:0",
            ServerConfig {
                threads: 4,
                ..ServerConfig::default()
            },
            shutdown.clone(),
        )
        .expect("bind ephemeral port");
        let addr = server.local_addr().expect("local addr");
        let join = std::thread::spawn(move || {
            server
                .serve(Arc::new(move |req| service.handle(req)))
                .expect("serve loop")
        });
        Self {
            addr,
            shutdown,
            join,
        }
    }

    fn stop(self) {
        self.shutdown.trigger();
        self.join.join().expect("server thread");
    }
}

/// Minimal one-shot HTTP client: sends a `Connection: close` request and
/// returns (status, lowercased headers, body).
fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut s = TcpStream::connect(addr).expect("connect");
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    s.write_all(raw.as_bytes()).expect("send");
    let mut raw = Vec::new();
    s.read_to_end(&mut raw).expect("read response");
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header terminator");
    let head = std::str::from_utf8(&raw[..header_end]).expect("utf8 head");
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|c| c.parse().ok())
        .expect("status code");
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    (status, headers, raw[header_end + 4..].to_vec())
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

fn metrics(addr: SocketAddr) -> gsim_json::Json {
    let (status, _, body) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    gsim_json::parse(std::str::from_utf8(&body).expect("utf8 metrics")).expect("metrics json")
}

fn metric(doc: &gsim_json::Json, group: &str, name: &str) -> u64 {
    doc.get(group)
        .and_then(|g| g.get(name))
        .and_then(gsim_json::Json::as_u64)
        .unwrap_or_else(|| panic!("missing metric {group}.{name} in {}", doc.render()))
}

fn fresh_cache_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gsim-serve-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create cache dir");
    dir
}

#[test]
fn concurrent_predicts_run_once_and_cache_survives_restart() {
    let cache_dir = fresh_cache_dir("accept");

    // --- Phase 1: two concurrent identical requests, one simulation run.
    let server = RunningServer::start(&cache_dir);
    let addr = server.addr;
    let barrier = Arc::new(Barrier::new(2));
    let workers: Vec<_> = (0..2)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                request(addr, "POST", "/v1/predict", PREDICT_BODY)
            })
        })
        .collect();
    let results: Vec<_> = workers
        .into_iter()
        .map(|w| w.join().expect("worker"))
        .collect();
    for (status, _, _) in &results {
        assert_eq!(*status, 200, "predict must succeed");
    }
    assert_eq!(
        results[0].2, results[1].2,
        "concurrent responses must be byte-identical"
    );

    let m = metrics(addr);
    assert_eq!(
        metric(&m, "predict", "computations"),
        1,
        "exactly one simulation run for identical concurrent requests: {}",
        m.render()
    );
    assert_eq!(metric(&m, "predict", "cache_misses"), 1, "{}", m.render());
    // The second request is either coalesced onto the in-flight leader or,
    // if the leader already finished, a plain cache hit — never a recompute.
    assert_eq!(
        metric(&m, "predict", "coalesced") + metric(&m, "predict", "cache_hits"),
        1,
        "{}",
        m.render()
    );

    let reference_body = results[0].2.clone();
    server.stop();

    // --- Phase 2: restart with the same cache dir; request is a disk hit.
    let server = RunningServer::start(&cache_dir);
    let (status, headers, body) = request(server.addr, "POST", "/v1/predict", PREDICT_BODY);
    assert_eq!(status, 200);
    assert_eq!(
        header(&headers, "x-gsim-cache"),
        Some("hit"),
        "restarted server must serve from the persisted cache"
    );
    assert_eq!(
        body, reference_body,
        "cached body must be byte-identical across restarts"
    );
    let m = metrics(server.addr);
    assert_eq!(metric(&m, "predict", "computations"), 0, "{}", m.render());
    assert_eq!(metric(&m, "predict", "cache_hits"), 1, "{}", m.render());
    server.stop();

    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn full_api_surface_responds_over_http() {
    let cache_dir = fresh_cache_dir("surface");
    let server = RunningServer::start(&cache_dir);
    let addr = server.addr;

    let (status, _, body) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert_eq!(body, br#"{"status":"ok"}"#);

    let (status, _, body) = request(addr, "GET", "/v1/workloads", "");
    assert_eq!(status, 200);
    let doc = gsim_json::parse(std::str::from_utf8(&body).unwrap()).expect("workloads json");
    assert!(
        doc.get("strong")
            .is_some_and(|s| matches!(s, gsim_json::Json::Arr(v) if !v.is_empty())),
        "{}",
        doc.render()
    );

    // Malformed request body: rejected with 400 and a JSON error.
    let (status, _, body) = request(addr, "POST", "/v1/predict", r#"{"workload": 7}"#);
    assert_eq!(status, 400);
    assert!(std::str::from_utf8(&body).unwrap().contains("error"));

    // Wrong method on a known path.
    let (status, _, _) = request(addr, "GET", "/v1/predict", "");
    assert_eq!(status, 405);

    // Shutdown endpoint stops the accept loop; the join below would hang
    // if the flag were not honoured.
    let (status, _, body) = request(addr, "POST", "/v1/shutdown", "");
    assert_eq!(status, 200);
    assert_eq!(body, br#"{"status":"shutting-down"}"#);
    server
        .join
        .join()
        .expect("server thread exits after shutdown");

    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn multigpu_predicts_scale_and_cache_separately() {
    let cache_dir = fresh_cache_dir("multigpu");
    let server = RunningServer::start(&cache_dir);
    let addr = server.addr;

    let single = r#"{"pattern": {"kind": "streaming", "footprint_mb": 1.0}, "targets": [32]}"#;
    let multi = r#"{"pattern": {"kind": "streaming", "footprint_mb": 1.0}, "targets": [32],
                    "system": "multigpu", "n_gpus": 4}"#;
    let scale_model_ipc = |body: &[u8]| -> f64 {
        let doc = gsim_json::parse(std::str::from_utf8(body).unwrap()).expect("predict json");
        let gsim_json::Json::Arr(predictions) = doc.get("predictions").expect("predictions") else {
            panic!("predictions is an array: {}", doc.render());
        };
        predictions[0]
            .get("ipc_by_method")
            .and_then(|m| m.get("scale-model"))
            .and_then(gsim_json::Json::as_f64)
            .unwrap_or_else(|| panic!("scale-model ipc missing: {}", doc.render()))
    };

    let (status, _, body) = request(addr, "POST", "/v1/predict", single);
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    let base = scale_model_ipc(&body);

    let (status, headers, body) = request(addr, "POST", "/v1/predict", multi);
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    assert_eq!(header(&headers, "x-gsim-cache"), Some("miss"));
    let text = std::str::from_utf8(&body).unwrap();
    assert!(text.contains("\"system\":\"multigpu\""), "{text}");
    assert!(text.contains("\"n_gpus\":4"), "{text}");
    let scaled = scale_model_ipc(&body);
    assert!(
        scaled > base && scaled < 4.0 * base,
        "4-GPU forecast must scale sublinearly: {base} -> {scaled}"
    );

    // The system shape is part of the content address: a repeat hits,
    // but only for the identical shape.
    let (_, headers, repeat) = request(addr, "POST", "/v1/predict", multi);
    assert_eq!(header(&headers, "x-gsim-cache"), Some("hit"));
    assert_eq!(repeat, body);
    let other = multi.replace("\"n_gpus\": 4", "\"n_gpus\": 8");
    let (_, headers, _) = request(addr, "POST", "/v1/predict", &other);
    assert_eq!(header(&headers, "x-gsim-cache"), Some("miss"));

    // Bad combinations are 400s, not silent defaults.
    let (status, _, _) = request(
        addr,
        "POST",
        "/v1/predict",
        r#"{"pattern": {"kind": "streaming", "footprint_mb": 1.0}, "targets": [32], "n_gpus": 4}"#,
    );
    assert_eq!(status, 400);

    server.stop();
    let _ = std::fs::remove_dir_all(&cache_dir);
}
