//! Crash-recovery e2e: kill the server, tear the tail of its persisted
//! prediction cache mid-record (as a crash mid-append would), restart,
//! and verify that only the torn record is lost — every intact record
//! still serves as a byte-identical cache hit.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use gsim_serve::{PredictService, ServeConfig, Server, ServerConfig, ShutdownFlag};

const BODY_A: &str = r#"{"pattern": {"kind": "streaming", "footprint_mb": 1.0}, "target_sms": 64}"#;
const BODY_B: &str = r#"{"pattern": {"kind": "streaming", "footprint_mb": 2.0}, "target_sms": 64}"#;

struct RunningServer {
    addr: SocketAddr,
    shutdown: ShutdownFlag,
    join: JoinHandle<()>,
}

impl RunningServer {
    fn start(cache_dir: &Path) -> Self {
        let shutdown = ShutdownFlag::new();
        let service = PredictService::new(
            ServeConfig {
                runner_threads: 2,
                cache_dir: Some(cache_dir.to_path_buf()),
                ..ServeConfig::default()
            },
            shutdown.clone(),
        )
        .expect("service starts");
        let server = Server::bind("127.0.0.1:0", ServerConfig::default(), shutdown.clone())
            .expect("bind ephemeral port");
        let addr = server.local_addr().expect("local addr");
        let join = std::thread::spawn(move || {
            server
                .serve(Arc::new(move |req| service.handle(req)))
                .expect("serve loop")
        });
        Self {
            addr,
            shutdown,
            join,
        }
    }

    fn stop(self) {
        self.shutdown.trigger();
        self.join.join().expect("server thread");
    }
}

fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    s.write_all(raw.as_bytes()).expect("send");
    let mut out = Vec::new();
    s.read_to_end(&mut out).expect("read response");
    let header_end = out
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header terminator");
    let head = std::str::from_utf8(&out[..header_end]).expect("utf8 head");
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|c| c.parse().ok())
        .expect("status code");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    (status, headers, out[header_end + 4..].to_vec())
}

fn cache_header(headers: &[(String, String)]) -> Option<&str> {
    headers
        .iter()
        .find(|(k, _)| k == "x-gsim-cache")
        .map(|(_, v)| v.as_str())
}

fn fresh_cache_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gsim-serve-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create cache dir");
    dir
}

#[test]
fn torn_cache_tail_drops_only_the_torn_record() {
    let cache_dir = fresh_cache_dir("crash");

    // Populate the persistent cache with two predictions, in order.
    let server = RunningServer::start(&cache_dir);
    let (status, _, body_a) = request(server.addr, "POST", "/v1/predict", BODY_A);
    assert_eq!(status, 200);
    let (status, _, _) = request(server.addr, "POST", "/v1/predict", BODY_B);
    assert_eq!(status, 200);
    server.stop();

    // Tear the tail as a crash mid-append would: the file is append-only
    // (A's line first, then B's), so cutting bytes off the end leaves
    // B's record syntactically broken while A's stays intact.
    let file = cache_dir.join("predictions.jsonl");
    let bytes = std::fs::read(&file).expect("read cache file");
    let lines: Vec<&[u8]> = bytes.split_inclusive(|&b| b == b'\n').collect();
    assert!(lines.len() >= 2, "expected two persisted records");
    let last_len = lines.last().unwrap().len();
    let keep = bytes.len() - last_len / 2;
    std::fs::write(&file, &bytes[..keep]).expect("truncate mid-record");

    // Restart: A must still be a byte-identical hit, B is recomputed.
    let server = RunningServer::start(&cache_dir);
    let (status, headers, body) = request(server.addr, "POST", "/v1/predict", BODY_A);
    assert_eq!(status, 200);
    assert_eq!(
        cache_header(&headers),
        Some("hit"),
        "intact record must survive a torn tail"
    );
    assert_eq!(body, body_a, "recovered body must be byte-identical");

    let (status, headers, _) = request(server.addr, "POST", "/v1/predict", BODY_B);
    assert_eq!(status, 200);
    assert_eq!(
        cache_header(&headers),
        Some("miss"),
        "the torn record must be dropped, not half-served"
    );
    server.stop();
}
