//! End-to-end tests of the staged functional-first fast path over real
//! HTTP sockets: memory-bound `auto` predicts answer from replayed-MRC
//! fits without scheduling a single timing simulation, repeat requests
//! for the same content reuse the per-stage caches (zero redundant
//! collections), compute-sensitive workloads escalate to a body that is
//! byte-identical to a forced-full computation, and every response
//! names the path it took in `X-Gsim-Path`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use gsim_serve::{PredictService, ServeConfig, Server, ServerConfig, ShutdownFlag};

struct RunningServer {
    addr: SocketAddr,
    shutdown: ShutdownFlag,
    join: JoinHandle<()>,
}

impl RunningServer {
    fn start(cfg: ServeConfig) -> Self {
        let shutdown = ShutdownFlag::new();
        let service = PredictService::new(cfg, shutdown.clone()).expect("service starts");
        let server = Server::bind("127.0.0.1:0", ServerConfig::default(), shutdown.clone())
            .expect("bind ephemeral port");
        let addr = server.local_addr().expect("local addr");
        let join = std::thread::spawn(move || {
            server
                .serve(Arc::new(move |req| service.handle(req)))
                .expect("serve loop")
        });
        Self {
            addr,
            shutdown,
            join,
        }
    }

    fn stop(self) {
        self.shutdown.trigger();
        self.join.join().expect("server thread");
    }
}

fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    s.write_all(raw.as_bytes()).expect("send");
    let mut out = Vec::new();
    s.read_to_end(&mut out).expect("read response");
    let header_end = out
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header terminator");
    let head = std::str::from_utf8(&out[..header_end]).expect("utf8 head");
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|c| c.parse().ok())
        .expect("status code");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    (status, headers, out[header_end + 4..].to_vec())
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

fn metrics(addr: SocketAddr) -> gsim_json::Json {
    let (status, _, body) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    gsim_json::parse(std::str::from_utf8(&body).expect("utf8 metrics")).expect("metrics json")
}

fn metric_at(doc: &gsim_json::Json, path: &[&str]) -> u64 {
    let mut node = doc;
    for key in path {
        node = node
            .get(key)
            .unwrap_or_else(|| panic!("missing metric {} in {}", path.join("."), doc.render()));
    }
    node.as_u64().unwrap_or_else(|| {
        panic!(
            "metric {} is not a counter: {}",
            path.join("."),
            doc.render()
        )
    })
}

#[test]
fn memory_bound_auto_predicts_answer_from_the_fast_path_without_timing_sims() {
    let server = RunningServer::start(ServeConfig::default());
    let addr = server.addr;

    // bfs is memory-bound (measured pressure well above the default
    // gate of 1.0), so the default `auto` path answers functionally.
    let body = r#"{"workload": "bfs", "targets": [32, 64]}"#;
    let (status, headers, first) = request(addr, "POST", "/v1/predict", body);
    assert_eq!(
        status,
        200,
        "fast predict failed: {}",
        String::from_utf8_lossy(&first)
    );
    assert_eq!(header(&headers, "x-gsim-cache"), Some("miss"));
    assert_eq!(header(&headers, "x-gsim-path"), Some("fast"));
    let text = std::str::from_utf8(&first).expect("utf8 body");
    assert!(
        text.contains("\"schema\":\"gsim-serve-predict-fast-v1\""),
        "{text}"
    );
    assert!(text.contains("\"fast_path\":true"), "{text}");
    assert!(text.contains("\"forced\":false"), "{text}");
    assert!(text.contains("\"predictions\""), "{text}");

    let m = metrics(addr);
    assert_eq!(
        metric_at(&m, &["predict", "fast_path"]),
        1,
        "{}",
        m.render()
    );
    assert_eq!(
        metric_at(&m, &["predict", "escalated"]),
        0,
        "{}",
        m.render()
    );
    assert_eq!(
        metric_at(&m, &["timing_sims_started"]),
        0,
        "the fast path must not schedule timing simulations: {}",
        m.render()
    );
    assert_eq!(metric_at(&m, &["collects_started"]), 1, "{}", m.render());

    // A byte-identical repeat is a result-cache hit that still reports
    // the path its cached body took.
    let (status, headers, again) = request(addr, "POST", "/v1/predict", body);
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-gsim-cache"), Some("hit"));
    assert_eq!(header(&headers, "x-gsim-path"), Some("fast"));
    assert_eq!(first, again, "cached fast bodies replay byte-identically");

    // Same content, different targets: Stage 1 and Stage 2 replay from
    // the stage caches — no new collection, still zero timing sims.
    let other = r#"{"workload": "bfs", "targets": [128]}"#;
    let (status, headers, _) = request(addr, "POST", "/v1/predict", other);
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-gsim-cache"), Some("miss"));
    assert_eq!(header(&headers, "x-gsim-path"), Some("fast"));
    let m = metrics(addr);
    assert_eq!(
        metric_at(&m, &["collects_started"]),
        1,
        "a stage-cache hit must not re-collect: {}",
        m.render()
    );
    assert!(
        metric_at(&m, &["predict", "stage_collect_hits"]) >= 1,
        "{}",
        m.render()
    );
    assert!(
        metric_at(&m, &["predict", "stage_fit_hits"]) >= 1,
        "{}",
        m.render()
    );
    assert_eq!(metric_at(&m, &["timing_sims_started"]), 0, "{}", m.render());

    // Stage latencies were observed for the cold request.
    assert!(
        metric_at(&m, &["stage_collect_us", "count"]) >= 1,
        "{}",
        m.render()
    );
    assert!(
        metric_at(&m, &["stage_fit_us", "count"]) >= 1,
        "{}",
        m.render()
    );
    assert!(
        metric_at(&m, &["stage_predict_us", "count"]) >= 2,
        "{}",
        m.render()
    );
    server.stop();
}

#[test]
fn forced_fast_reuses_the_fit_staged_by_an_auto_predict() {
    let server = RunningServer::start(ServeConfig::default());
    let addr = server.addr;

    let (status, _, _) = request(
        addr,
        "POST",
        "/v1/predict",
        r#"{"workload": "dct", "targets": [32]}"#,
    );
    assert_eq!(status, 200);
    let before = metrics(addr);
    let fit_hits = metric_at(&before, &["predict", "stage_fit_hits"]);

    // Forcing the fast path on the same content addresses a different
    // result-cache entry (the body records `forced`), but Stages 1 and
    // 2 are shared: the fit staged by the auto predict is reused as-is.
    let (status, headers, body) = request(
        addr,
        "POST",
        "/v1/predict",
        r#"{"workload": "dct", "targets": [32], "path": "fast"}"#,
    );
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-gsim-cache"), Some("miss"));
    assert_eq!(header(&headers, "x-gsim-path"), Some("fast"));
    let text = std::str::from_utf8(&body).expect("utf8 body");
    assert!(text.contains("\"forced\":true"), "{text}");

    let m = metrics(addr);
    assert_eq!(metric_at(&m, &["collects_started"]), 1, "{}", m.render());
    assert!(
        metric_at(&m, &["predict", "stage_fit_hits"]) > fit_hits,
        "the forced-fast predict must reuse the staged fit: {}",
        m.render()
    );
    assert_eq!(metric_at(&m, &["timing_sims_started"]), 0, "{}", m.render());
    server.stop();
}

#[test]
fn compute_bound_auto_escalates_to_bytes_identical_to_forced_full() {
    let server = RunningServer::start(ServeConfig::default());
    let addr = server.addr;

    // gemm's measured pressure sits below the gate: the collection runs
    // for the gate's sake, then the predict escalates to real sims.
    let (status, headers, escalated) = request(
        addr,
        "POST",
        "/v1/predict",
        r#"{"workload": "gemm", "targets": [32, 64]}"#,
    );
    assert_eq!(
        status,
        200,
        "escalated predict failed: {}",
        String::from_utf8_lossy(&escalated)
    );
    assert_eq!(header(&headers, "x-gsim-path"), Some("full"));
    let text = std::str::from_utf8(&escalated).expect("utf8 body");
    assert!(
        text.contains("\"schema\":\"gsim-serve-predict-v1\""),
        "{text}"
    );
    assert!(!text.contains("\"fast_path\""), "{text}");

    let m = metrics(addr);
    assert_eq!(
        metric_at(&m, &["predict", "escalated"]),
        1,
        "{}",
        m.render()
    );
    assert_eq!(
        metric_at(&m, &["predict", "fast_path"]),
        0,
        "{}",
        m.render()
    );
    assert_eq!(
        metric_at(&m, &["timing_sims_started"]),
        2,
        "escalation runs the 8- and 16-SM sims: {}",
        m.render()
    );

    // The same content forced onto the full path addresses a different
    // result-cache entry, so this is a fresh computation — and its body
    // must be byte-identical to what the escalation produced.
    let (status, headers, forced) = request(
        addr,
        "POST",
        "/v1/predict",
        r#"{"workload": "gemm", "targets": [32, 64], "path": "full"}"#,
    );
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-gsim-cache"), Some("miss"));
    assert_eq!(header(&headers, "x-gsim-path"), Some("full"));
    assert_eq!(
        escalated, forced,
        "escalated and forced-full bodies must match byte for byte"
    );
    server.stop();
}

#[test]
fn an_infinite_gate_escalates_even_memory_bound_workloads() {
    let server = RunningServer::start(ServeConfig {
        fast_path_gate: f64::INFINITY,
        ..ServeConfig::default()
    });
    let addr = server.addr;

    let (status, headers, _) = request(
        addr,
        "POST",
        "/v1/predict",
        r#"{"workload": "bfs", "targets": [32]}"#,
    );
    assert_eq!(status, 200);
    assert_eq!(
        header(&headers, "x-gsim-path"),
        Some("full"),
        "an infinite gate must force every auto predict onto the full path"
    );
    let m = metrics(addr);
    assert_eq!(
        metric_at(&m, &["predict", "escalated"]),
        1,
        "{}",
        m.render()
    );
    assert_eq!(metric_at(&m, &["timing_sims_started"]), 2, "{}", m.render());
    server.stop();
}
