//! End-to-end test of trace ingestion and trace-driven prediction.
//!
//! Drives the acceptance scenario of the tracestore design brief over
//! real HTTP sockets: a trace uploaded to `POST /v1/traces` deduplicates
//! by content, and a `POST /v1/predict` naming its `trace_ref` returns
//! the *same prediction, byte for byte,* as the equivalent synthetic
//! request — without scheduling a single additional timing simulation,
//! because both paths share the semantic-hash stage cache. A cold trace
//! predict (content the server has never simulated) runs exactly the
//! two scale models.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::thread::JoinHandle;

use gsim_serve::{PredictService, ServeConfig, Server, ServerConfig, ShutdownFlag};
use gsim_trace::{Kernel, MemScale, PatternKind, PatternSpec, Workload};

struct RunningServer {
    addr: SocketAddr,
    shutdown: ShutdownFlag,
    join: JoinHandle<()>,
}

impl RunningServer {
    fn start(cache_dir: &Path) -> Self {
        let shutdown = ShutdownFlag::new();
        let service = PredictService::new(
            ServeConfig {
                runner_threads: 2,
                cache_capacity: 0,
                cache_dir: Some(cache_dir.to_path_buf()),
                ..ServeConfig::default()
            },
            shutdown.clone(),
        )
        .expect("service starts");
        let server = Server::bind(
            "127.0.0.1:0",
            ServerConfig {
                threads: 4,
                ..ServerConfig::default()
            },
            shutdown.clone(),
        )
        .expect("bind ephemeral port");
        let addr = server.local_addr().expect("local addr");
        let join = std::thread::spawn(move || {
            server
                .serve(Arc::new(move |req| service.handle(req)))
                .expect("serve loop")
        });
        Self {
            addr,
            shutdown,
            join,
        }
    }

    fn stop(self) {
        self.shutdown.trigger();
        self.join.join().expect("server thread");
    }
}

/// Minimal one-shot HTTP client for a binary body.
fn request_bytes(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> (u16, Vec<u8>) {
    let mut s = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    s.write_all(head.as_bytes()).expect("send head");
    s.write_all(body).expect("send body");
    let mut raw = Vec::new();
    s.read_to_end(&mut raw).expect("read response");
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header terminator");
    let status: u16 = std::str::from_utf8(&raw[..header_end])
        .expect("utf8 head")
        .split("\r\n")
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|c| c.parse().ok())
        .expect("status code");
    (status, raw[header_end + 4..].to_vec())
}

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, Vec<u8>) {
    request_bytes(addr, method, path, body.as_bytes())
}

fn json_of(body: &[u8]) -> gsim_json::Json {
    gsim_json::parse(std::str::from_utf8(body).expect("utf8 body")).expect("json body")
}

fn metrics(addr: SocketAddr) -> gsim_json::Json {
    let (status, body) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    json_of(&body)
}

fn metric(doc: &gsim_json::Json, group: &str, name: &str) -> u64 {
    doc.get(group)
        .and_then(|g| g.get(name))
        .and_then(gsim_json::Json::as_u64)
        .unwrap_or_else(|| panic!("missing metric {group}.{name} in {}", doc.render()))
}

fn top_metric(doc: &gsim_json::Json, name: &str) -> u64 {
    doc.get(name)
        .and_then(gsim_json::Json::as_u64)
        .unwrap_or_else(|| panic!("missing metric {name} in {}", doc.render()))
}

fn fresh_cache_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("gsim-serve-trace-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create cache dir");
    dir
}

/// The pattern request used throughout: a seeded randomized working-set
/// mix — unlike the deterministic sweep kinds, its address streams (and
/// therefore its semantic hash) depend on the seed, letting the tests
/// build distinct trace contents on demand.
fn pattern_request(seed: u64) -> String {
    // Pinned to the full path: this file's assertions are about the
    // timing-simulation stage cache, which the functional-first fast
    // path would bypass entirely.
    format!(
        r#"{{"pattern": {{"kind": "working_set_mix", "footprint_mb": 4.0,
            "levels": [[1.0, 0.5]], "ctas": 128, "seed": {seed}}},
            "targets": [32, 64], "path": "full"}}"#
    )
}

/// Rebuilds exactly the workload `parse_pattern` derives from
/// [`pattern_request`] with every other field defaulted — the contract
/// the bit-for-bit assertion below depends on.
fn pattern_workload(seed: u64) -> Workload {
    let scale = MemScale::default();
    let spec = PatternSpec::new(
        PatternKind::WorkingSetMix {
            levels: vec![(1.0, 0.5)],
        },
        scale.mb_to_model_lines(4.0),
    )
    .mem_ops_per_warp(64)
    .compute_per_mem(2.0)
    .write_frac(0.0)
    .divergence(1)
    .tail_compute(0);
    Workload::new(
        "pattern",
        seed,
        vec![Kernel::new("pattern", 128, 256, spec)],
    )
    .with_footprint_mb(4.0)
}

fn trace_of(wl: &Workload) -> Vec<u8> {
    let mut bytes = Vec::new();
    gsim_trace::write_trace(wl, &mut bytes).expect("write trace");
    bytes
}

/// The deterministic prediction subdocuments: everything except the
/// echoed request (which legitimately differs between a pattern request
/// and a trace_ref request).
fn prediction_fields(doc: &gsim_json::Json) -> String {
    [
        "scale_models",
        "mrc",
        "correction_factor",
        "cliff_at",
        "predictions",
    ]
    .iter()
    .map(|k| {
        doc.get(k)
            .unwrap_or_else(|| panic!("missing {k} in {}", doc.render()))
            .render()
    })
    .collect::<Vec<_>>()
    .join("|")
}

#[test]
fn trace_predict_matches_synthetic_bit_for_bit_without_new_sims() {
    let cache_dir = fresh_cache_dir("predict");
    let server = RunningServer::start(&cache_dir);
    let addr = server.addr;

    // --- Synthetic prediction first: 2 timing sims + the MRC replay.
    let synthetic_body = pattern_request(42);
    let (status, body) = request(addr, "POST", "/v1/predict", &synthetic_body);
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    let synthetic = json_of(&body);
    let m = metrics(addr);
    assert_eq!(top_metric(&m, "timing_sims_started"), 2, "{}", m.render());

    // --- Upload the trace of the identical workload; re-upload dedupes.
    let wl = pattern_workload(42); // matches the synthetic request above
    let trace = trace_of(&wl);
    assert!(trace.len() > 64 * 1024, "want a multi-chunk trace");
    let (status, body) = request_bytes(addr, "POST", "/v1/traces", &trace);
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    let meta = json_of(&body);
    let trace_ref = meta
        .get("ref")
        .and_then(|r| r.as_str())
        .expect("ref")
        .to_string();
    assert_eq!(
        meta.get("deduplicated").and_then(gsim_json::Json::as_bool),
        Some(false)
    );
    let (status, body) = request_bytes(addr, "POST", "/v1/traces", &trace);
    assert_eq!(status, 200);
    assert_eq!(
        json_of(&body)
            .get("deduplicated")
            .and_then(gsim_json::Json::as_bool),
        Some(true),
        "identical upload must deduplicate"
    );

    // --- Predict from the trace: prediction is byte-identical and no
    // new timing simulation runs (both stages hit the semantic cache).
    let trace_body =
        format!(r#"{{"trace_ref": "{trace_ref}", "targets": [32, 64], "path": "full"}}"#);
    let (status, body) = request(addr, "POST", "/v1/predict", &trace_body);
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    let traced = json_of(&body);
    assert_eq!(
        prediction_fields(&synthetic),
        prediction_fields(&traced),
        "trace-driven prediction must be byte-identical to the synthetic path"
    );
    let m = metrics(addr);
    assert_eq!(
        top_metric(&m, "timing_sims_started"),
        2,
        "stage-cache hits must schedule zero timing sims: {}",
        m.render()
    );
    assert_eq!(metric(&m, "predict", "from_trace"), 1, "{}", m.render());
    assert_eq!(metric(&m, "predict", "stage_obs_hits"), 1, "{}", m.render());
    assert_eq!(metric(&m, "predict", "stage_mrc_hits"), 1, "{}", m.render());
    assert_eq!(metric(&m, "trace_store", "ingests"), 1, "{}", m.render());
    assert_eq!(metric(&m, "trace_store", "dedup_hits"), 1, "{}", m.render());
    assert_eq!(metric(&m, "trace_store", "entries"), 1, "{}", m.render());

    // --- A trace the server has never simulated: exactly 2 scale-model
    // sims (the MRC comes from functional replay, not the timing core).
    let cold = trace_of(&pattern_workload(7));
    let (status, body) = request_bytes(addr, "POST", "/v1/traces", &cold);
    assert_eq!(status, 200);
    let cold_ref = json_of(&body)
        .get("ref")
        .and_then(|r| r.as_str())
        .expect("ref")
        .to_string();
    assert_ne!(cold_ref, trace_ref, "different seed, different content");
    let (status, _) = request(
        addr,
        "POST",
        "/v1/predict",
        &format!(r#"{{"trace_ref": "{cold_ref}", "targets": [32, 64], "path": "full"}}"#),
    );
    assert_eq!(status, 200);
    let m = metrics(addr);
    assert_eq!(
        top_metric(&m, "timing_sims_started"),
        4,
        "a cold trace predict runs exactly the two scale models: {}",
        m.render()
    );

    server.stop();
    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn trace_api_lists_rejects_and_reports() {
    let cache_dir = fresh_cache_dir("api");
    let server = RunningServer::start(&cache_dir);
    let addr = server.addr;

    // Garbage uploads are rejected and counted.
    let (status, body) = request_bytes(addr, "POST", "/v1/traces", b"not a trace");
    assert_eq!(status, 400);
    assert!(String::from_utf8_lossy(&body).contains("invalid trace"));
    let (status, _) = request_bytes(addr, "POST", "/v1/traces", b"");
    assert_eq!(status, 400);

    // A valid upload appears in the catalog with its metadata.
    let wl = pattern_workload(5);
    let (status, body) = request_bytes(addr, "POST", "/v1/traces", &trace_of(&wl));
    assert_eq!(status, 200);
    let meta = json_of(&body);
    let trace_ref = meta
        .get("ref")
        .and_then(|r| r.as_str())
        .expect("ref")
        .to_string();
    assert_eq!(
        meta.get("kernels").and_then(gsim_json::Json::as_u64),
        Some(1)
    );
    assert_eq!(
        meta.get("warps").and_then(gsim_json::Json::as_u64),
        Some(128 * 8),
        "{}",
        meta.render()
    );

    let (status, body) = request(addr, "GET", "/v1/traces", "");
    assert_eq!(status, 200);
    let listing = json_of(&body);
    let traces = listing.get("traces").expect("traces array");
    let gsim_json::Json::Arr(items) = traces else {
        panic!("traces must be an array: {}", listing.render())
    };
    assert_eq!(items.len(), 1);
    assert_eq!(
        items[0].get("ref").and_then(|r| r.as_str()),
        Some(trace_ref.as_str())
    );

    // Predicting an unknown reference is a 404, not a 400 or 500.
    let (status, _) = request(
        addr,
        "POST",
        "/v1/predict",
        r#"{"trace_ref": "00000000000000ab", "targets": [32]}"#,
    );
    assert_eq!(status, 404);

    let m = metrics(addr);
    assert_eq!(
        metric(&m, "trace_store", "validation_failures"),
        1,
        "{}",
        m.render()
    );
    assert_eq!(metric(&m, "trace_store", "entries"), 1, "{}", m.render());
    assert!(
        metric(&m, "trace_store", "store_bytes") > 0,
        "{}",
        m.render()
    );
    assert_eq!(metric(&m, "requests", "traces"), 4, "{}", m.render());

    server.stop();
    let _ = std::fs::remove_dir_all(&cache_dir);
}
