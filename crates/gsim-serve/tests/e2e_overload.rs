//! End-to-end tests of the overload behavior over real HTTP sockets:
//! admission control sheds with `429` + `Retry-After`, deadlines cut
//! predicts off with `504`, a saturated pool degrades to the MRC-only
//! fast path (never cached as the real answer), and byte-identical bad
//! requests replay their `400` verdict from the negative cache.
//!
//! No fault plan is installed here — fault-injecting tests live in
//! `e2e_chaos.rs`, a separate binary, because a `gsim-faults` plan is
//! process-global and would leak into every test in this one.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gsim_serve::{PredictService, ServeConfig, Server, ServerConfig, ShutdownFlag};

/// Heavy enough to hold its admission slot while the test probes the
/// gate, light enough to finish in a few seconds. Pinned to the full
/// path: these tests are about timing-simulation saturation, which the
/// functional-first fast path would sidestep.
const SLOW_BODY: &str = r#"{"pattern": {"kind": "global_sweep", "footprint_mb": 8.0, "passes": 4}, "target_sms": 64, "path": "full"}"#;

struct RunningServer {
    addr: SocketAddr,
    shutdown: ShutdownFlag,
    join: JoinHandle<()>,
}

impl RunningServer {
    fn start(cfg: ServeConfig) -> Self {
        let shutdown = ShutdownFlag::new();
        let service = PredictService::new(cfg, shutdown.clone()).expect("service starts");
        let server = Server::bind(
            "127.0.0.1:0",
            ServerConfig {
                threads: 8,
                ..ServerConfig::default()
            },
            shutdown.clone(),
        )
        .expect("bind ephemeral port");
        let addr = server.local_addr().expect("local addr");
        let join = std::thread::spawn(move || {
            server
                .serve(Arc::new(move |req| service.handle(req)))
                .expect("serve loop")
        });
        Self {
            addr,
            shutdown,
            join,
        }
    }

    fn stop(self) {
        self.shutdown.trigger();
        self.join.join().expect("server thread");
    }
}

/// One-shot HTTP client with optional extra headers; returns
/// (status, lowercased headers, body).
fn request_with(
    addr: SocketAddr,
    method: &str,
    path: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    let mut raw = format!("{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n");
    for (k, v) in extra_headers {
        raw.push_str(&format!("{k}: {v}\r\n"));
    }
    raw.push_str(&format!("Content-Length: {}\r\n\r\n{body}", body.len()));
    s.write_all(raw.as_bytes()).expect("send");
    let mut out = Vec::new();
    s.read_to_end(&mut out).expect("read response");
    parse_response(&out)
}

fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, Vec<(String, String)>, Vec<u8>) {
    request_with(addr, method, path, &[], body)
}

fn parse_response(raw: &[u8]) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header terminator");
    let head = std::str::from_utf8(&raw[..header_end]).expect("utf8 head");
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|c| c.parse().ok())
        .expect("status code");
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    (status, headers, raw[header_end + 4..].to_vec())
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

fn metrics(addr: SocketAddr) -> gsim_json::Json {
    let (status, _, body) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    gsim_json::parse(std::str::from_utf8(&body).expect("utf8 metrics")).expect("metrics json")
}

fn metric(doc: &gsim_json::Json, group: &str, name: &str) -> u64 {
    doc.get(group)
        .and_then(|g| g.get(name))
        .and_then(gsim_json::Json::as_u64)
        .unwrap_or_else(|| panic!("missing metric {group}.{name} in {}", doc.render()))
}

/// Polls `/metrics` until `f` observes what it wants or ~5s elapse.
fn wait_for(addr: SocketAddr, what: &str, f: impl Fn(&gsim_json::Json) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if f(&metrics(addr)) {
            return;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn inflight_heavy(doc: &gsim_json::Json) -> u64 {
    doc.get("overload")
        .and_then(|o| o.get("admission"))
        .and_then(|a| a.get("inflight_heavy"))
        .and_then(gsim_json::Json::as_u64)
        .unwrap_or(0)
}

#[test]
fn over_budget_predicts_shed_with_429_and_retry_after() {
    let server = RunningServer::start(ServeConfig {
        runner_threads: 1,
        max_inflight_predicts: 1,
        ..ServeConfig::default()
    });
    let addr = server.addr;

    // Occupy the single predict slot with a slow computation.
    let slow = std::thread::spawn(move || request(addr, "POST", "/v1/predict", SLOW_BODY));
    wait_for(addr, "the slow predict to be admitted", |m| {
        inflight_heavy(m) >= 1
    });

    // Everything else bounces immediately — distinct bodies so none of
    // them could coalesce onto the in-flight leader even in principle.
    let mut shed = 0;
    for i in 0..3 {
        let body = format!(
            r#"{{"pattern": {{"kind": "streaming", "footprint_mb": {}.0}}, "target_sms": 64}}"#,
            i + 1
        );
        let (status, headers, _) = request(addr, "POST", "/v1/predict", &body);
        assert_eq!(status, 429, "over-budget predict must shed, not queue");
        let retry_after = header(&headers, "retry-after")
            .unwrap_or_else(|| panic!("429 without Retry-After: {headers:?}"));
        let secs: u64 = retry_after
            .parse()
            .expect("Retry-After is integral seconds");
        assert!((1..=60).contains(&secs), "Retry-After {secs} out of range");
        shed += 1;
    }

    // The admitted predict is unharmed by the shedding around it.
    let (status, _, _) = slow.join().expect("slow predict thread");
    assert_eq!(status, 200, "the admitted predict must still succeed");

    let m = metrics(addr);
    assert_eq!(
        metric(&m, "overload", "shed_heavy"),
        shed,
        "shed counter must match the rejected requests: {}",
        m.render()
    );
    assert_eq!(metric(&m, "overload", "shed_cheap"), 0, "{}", m.render());
    server.stop();
}

#[test]
fn deadline_header_cuts_predicts_off_with_504() {
    let server = RunningServer::start(ServeConfig {
        runner_threads: 1,
        ..ServeConfig::default()
    });
    let addr = server.addr;

    let (status, _, body) = request_with(
        addr,
        "POST",
        "/v1/predict",
        &[("X-Gsim-Deadline-Ms", "1")],
        SLOW_BODY,
    );
    assert_eq!(
        status,
        504,
        "a 1ms deadline must expire: {}",
        String::from_utf8_lossy(&body)
    );
    let m = metrics(addr);
    assert!(
        metric(&m, "predict", "deadline_timeouts") >= 1,
        "{}",
        m.render()
    );

    // A malformed deadline is the client's fault, not a timeout.
    let (status, _, _) = request_with(
        addr,
        "POST",
        "/v1/predict",
        &[("X-Gsim-Deadline-Ms", "soon")],
        SLOW_BODY,
    );
    assert_eq!(status, 400);
    server.stop();
}

#[test]
fn saturated_pool_degrades_to_mrc_only_and_never_caches_it() {
    let server = RunningServer::start(ServeConfig {
        runner_threads: 1,
        max_inflight_predicts: 4,
        degrade_threshold: 1, // one leader in the pool already saturates
        ..ServeConfig::default()
    });
    let addr = server.addr;

    let slow = std::thread::spawn(move || request(addr, "POST", "/v1/predict", SLOW_BODY));
    wait_for(addr, "the slow predict to occupy the pool", |m| {
        m.get("sims_inflight")
            .and_then(gsim_json::Json::as_u64)
            .unwrap_or(0)
            >= 1
    });

    // An MRC-capable full-path predict sent into the saturated pool
    // degrades. (An `auto` request would sidestep saturation entirely
    // via the fast path — see e2e_fastpath.rs.)
    let body = r#"{"pattern": {"kind": "streaming", "footprint_mb": 2.0}, "target_sms": 64, "path": "full"}"#;
    let (status, _, resp) = request(addr, "POST", "/v1/predict", body);
    assert_eq!(status, 200);
    let text = std::str::from_utf8(&resp).expect("utf8 body");
    assert!(text.contains("\"degraded\":true"), "{text}");
    assert!(
        text.contains("gsim-serve-predict-degraded-v1"),
        "degraded bodies carry their own schema: {text}"
    );
    assert!(
        !text.contains("\"predictions\""),
        "a degraded body must not fabricate predictions: {text}"
    );

    let (status, _, _) = slow.join().expect("slow predict thread");
    assert_eq!(status, 200);

    // The degraded body was never result-cached: once the pool is calm,
    // the same request computes the full answer (a miss, not a hit).
    let (status, headers, resp) = request(addr, "POST", "/v1/predict", body);
    assert_eq!(status, 200);
    assert_eq!(
        header(&headers, "x-gsim-cache"),
        Some("miss"),
        "degraded bodies must not poison the result cache"
    );
    let text = std::str::from_utf8(&resp).expect("utf8 body");
    assert!(text.contains("\"predictions\""), "{text}");
    assert!(!text.contains("\"degraded\":true"), "{text}");

    let m = metrics(addr);
    assert_eq!(metric(&m, "predict", "degraded"), 1, "{}", m.render());
    server.stop();
}

#[test]
fn repeated_bad_requests_replay_the_400_verdict_from_the_negative_cache() {
    let server = RunningServer::start(ServeConfig::default());
    let addr = server.addr;

    let bad = r#"{"workload": "bfs", "target_sms": 64, "tyop": 1}"#;
    let (status, _, first) = request(addr, "POST", "/v1/predict", bad);
    assert_eq!(status, 400);
    let (status, _, second) = request(addr, "POST", "/v1/predict", bad);
    assert_eq!(status, 400);
    assert_eq!(first, second, "the replayed verdict must be identical");

    let m = metrics(addr);
    assert_eq!(metric(&m, "cache", "negative_hits"), 1, "{}", m.render());

    // A well-formed unknown trace_ref is a 404 and must NOT be
    // negative-cached: the trace may be uploaded a moment later.
    let miss = r#"{"trace_ref": "00000000000000aa", "target_sms": 64}"#;
    let (status, _, _) = request(addr, "POST", "/v1/predict", miss);
    assert_eq!(status, 404);
    let (status, _, _) = request(addr, "POST", "/v1/predict", miss);
    assert_eq!(status, 404);
    let m = metrics(addr);
    assert_eq!(
        metric(&m, "cache", "negative_hits"),
        1,
        "404s must bypass the negative cache: {}",
        m.render()
    );
    server.stop();
}
