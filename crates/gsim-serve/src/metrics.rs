//! Service counters and an in-tree latency histogram.
//!
//! Everything is cheap enough to update on every request: plain atomics
//! for counters, one mutex-guarded fixed-size histogram for latency.
//! [`Metrics::to_json`] renders the `GET /metrics` document
//! (`gsim-serve-metrics-v1`).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use gsim_json::{obj, Json};
use gsim_runner::{Event, EventSink};

/// Log-scale latency histogram: bucket `i` counts observations in
/// `[2^i, 2^(i+1))` microseconds, the last bucket is open-ended. 32
/// buckets cover a microsecond to over an hour.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [u64; 32],
    count: u64,
    sum_us: u128,
}

impl Histogram {
    /// Records one observation.
    pub fn record(&mut self, latency: Duration) {
        let us = latency.as_micros();
        let idx = (128 - u128::leading_zeros(us.max(1)) - 1).min(31) as usize;
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_us += us;
    }

    /// Observation count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Approximate quantile (`q` in 0..=1) in microseconds: the upper
    /// edge of the bucket holding the q-th observation. `None` when
    /// empty.
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(if i >= 63 { u64::MAX } else { 1u64 << (i + 1) });
            }
        }
        None
    }

    /// Mean in microseconds (`None` when empty).
    pub fn mean_us(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum_us as f64 / self.count as f64)
    }
}

/// All counters the service exports. One instance per service, shared
/// (`Arc`) with the handler, the runner sink, and `GET /metrics`.
#[derive(Debug, Default)]
pub struct Metrics {
    /// `GET /healthz` requests served.
    pub healthz: AtomicU64,
    /// `GET /v1/workloads` requests served.
    pub workloads: AtomicU64,
    /// `POST /v1/predict` requests served (any outcome).
    pub predict: AtomicU64,
    /// `POST /v1/traces` and `GET /v1/traces` requests served.
    pub traces: AtomicU64,
    /// `GET /metrics` requests served.
    pub metrics: AtomicU64,
    /// `POST /v1/shutdown` requests served.
    pub shutdown: AtomicU64,
    /// Requests to any unknown route or wrong method.
    pub other: AtomicU64,
    /// Predict requests answered from the result cache.
    pub cache_hits: AtomicU64,
    /// Predict requests that missed the cache.
    pub cache_misses: AtomicU64,
    /// Predict misses that piggybacked on an in-flight identical
    /// computation (single-flight followers).
    pub coalesced: AtomicU64,
    /// Prediction computations actually executed (single-flight leaders:
    /// the number of times simulations were scheduled).
    pub computations: AtomicU64,
    /// Predict requests rejected with a client error.
    pub predict_errors: AtomicU64,
    /// Predict requests that named a `trace_ref` (any outcome).
    pub predict_from_trace: AtomicU64,
    /// Predict computations whose scale-model observations came from the
    /// semantic-hash stage cache (no timing simulations scheduled).
    pub stage_obs_hits: AtomicU64,
    /// Predict computations whose miss-rate curve came from the
    /// semantic-hash stage cache (no functional replay scheduled).
    pub stage_mrc_hits: AtomicU64,
    /// Staged predicts whose sampled Stage-1 collection came from the
    /// stage cache (no collection work scheduled at all).
    pub stage_collect_hits: AtomicU64,
    /// Staged predicts whose Stage-2 predictor fits came from the stage
    /// cache.
    pub stage_fit_hits: AtomicU64,
    /// Predict computations answered by the functional-first fast path
    /// (replayed-MRC fits, zero timing simulations).
    pub fast_path: AtomicU64,
    /// Auto-path predict computations the compute-intensity gate
    /// escalated to the full timing-simulation path.
    pub escalated: AtomicU64,
    /// Sampled Stage-1 collections actually executed (stage misses).
    pub collects_started: AtomicU64,
    /// Detailed timing simulations actually started (excludes the
    /// functional MRC replay job) — the counter trace-driven prediction
    /// tests assert stays flat on stage-cache hits.
    pub timing_sims_started: AtomicU64,
    /// Jobs started on the simulation runner pool (every attempt).
    pub runner_jobs_started: AtomicU64,
    /// Cheap-class requests shed with 429 by the admission gate.
    pub shed_cheap: AtomicU64,
    /// Heavy-class (predict) requests shed with 429.
    pub shed_heavy: AtomicU64,
    /// Predict requests that hit their deadline and were answered 504.
    pub deadline_timeouts: AtomicU64,
    /// Predict requests answered by the degraded MRC-only fast path.
    pub degraded: AtomicU64,
    /// Predict requests whose 400 verdict was replayed from the
    /// negative cache without re-parsing.
    pub negative_hits: AtomicU64,
    /// Requests currently inside the handler.
    pub in_flight: AtomicI64,
    /// Predict leaders currently blocked in `Runner::run` — the gauge
    /// the degraded fast path compares against its threshold.
    pub sims_inflight: AtomicI64,
    /// Per-request wall latency, all endpoints.
    pub latency: Mutex<Histogram>,
    /// Wall latency of predict leaders only (cache misses that computed);
    /// its p50 prices the `Retry-After` on shed responses.
    pub heavy_latency: Mutex<Histogram>,
    /// Wall latency of executed Stage-1 sampled collections (stage-cache
    /// misses only).
    pub stage_collect: Mutex<Histogram>,
    /// Wall latency of executed Stage-2 predictor fits (stage-cache
    /// misses only).
    pub stage_fit: Mutex<Histogram>,
    /// Wall latency of Stage-3 target evaluation on the fast path.
    pub stage_predict: Mutex<Histogram>,
}

impl Metrics {
    /// Records one finished request's latency.
    pub fn observe_latency(&self, latency: Duration) {
        self.latency
            .lock()
            .expect("latency histogram poisoned")
            .record(latency);
    }

    /// Records one predict leader's full computation latency.
    pub fn observe_heavy(&self, latency: Duration) {
        self.heavy_latency
            .lock()
            .expect("heavy latency histogram poisoned")
            .record(latency);
    }

    /// Records one executed stage's wall latency into a per-stage
    /// histogram (one of [`Metrics::stage_collect`] /
    /// [`Metrics::stage_fit`] / [`Metrics::stage_predict`]).
    pub fn observe_stage(hist: &Mutex<Histogram>, latency: Duration) {
        hist.lock()
            .expect("stage histogram poisoned")
            .record(latency);
    }

    /// The observed p50 of predict-leader latency (`None` until the
    /// first computation finishes).
    pub fn heavy_p50_us(&self) -> Option<u64> {
        self.heavy_latency
            .lock()
            .expect("heavy latency histogram poisoned")
            .quantile_us(0.50)
    }

    /// Renders the `/metrics` document. `cache_entries` comes from the
    /// cache and `trace_store` from the trace store (they own those
    /// counts); pass `Json::Null` when no store is attached. `admission`
    /// is the gate's limits/in-flight snapshot (or `Json::Null` when the
    /// caller has no gate, e.g. unit tests).
    pub fn to_json(&self, cache_entries: usize, trace_store: Json, admission: Json) -> Json {
        let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let hist = self.latency.lock().expect("latency histogram poisoned");
        let heavy = self
            .heavy_latency
            .lock()
            .expect("heavy latency histogram poisoned");
        obj([
            ("schema", Json::from("gsim-serve-metrics-v1")),
            (
                "requests",
                obj([
                    ("healthz", Json::from(get(&self.healthz))),
                    ("workloads", Json::from(get(&self.workloads))),
                    ("predict", Json::from(get(&self.predict))),
                    ("traces", Json::from(get(&self.traces))),
                    ("metrics", Json::from(get(&self.metrics))),
                    ("shutdown", Json::from(get(&self.shutdown))),
                    ("other", Json::from(get(&self.other))),
                ]),
            ),
            (
                "predict",
                obj([
                    ("cache_hits", Json::from(get(&self.cache_hits))),
                    ("cache_misses", Json::from(get(&self.cache_misses))),
                    ("coalesced", Json::from(get(&self.coalesced))),
                    ("computations", Json::from(get(&self.computations))),
                    ("errors", Json::from(get(&self.predict_errors))),
                    ("from_trace", Json::from(get(&self.predict_from_trace))),
                    ("stage_obs_hits", Json::from(get(&self.stage_obs_hits))),
                    ("stage_mrc_hits", Json::from(get(&self.stage_mrc_hits))),
                    (
                        "stage_collect_hits",
                        Json::from(get(&self.stage_collect_hits)),
                    ),
                    ("stage_fit_hits", Json::from(get(&self.stage_fit_hits))),
                    ("fast_path", Json::from(get(&self.fast_path))),
                    ("escalated", Json::from(get(&self.escalated))),
                    ("degraded", Json::from(get(&self.degraded))),
                    (
                        "deadline_timeouts",
                        Json::from(get(&self.deadline_timeouts)),
                    ),
                ]),
            ),
            (
                "overload",
                obj([
                    ("shed_cheap", Json::from(get(&self.shed_cheap))),
                    ("shed_heavy", Json::from(get(&self.shed_heavy))),
                    (
                        "deadline_timeouts",
                        Json::from(get(&self.deadline_timeouts)),
                    ),
                    ("degraded", Json::from(get(&self.degraded))),
                    ("admission", admission),
                ]),
            ),
            (
                "cache",
                obj([
                    ("entries", Json::from(cache_entries)),
                    ("negative_hits", Json::from(get(&self.negative_hits))),
                ]),
            ),
            ("faults", faults_json()),
            ("trace_store", trace_store),
            (
                "timing_sims_started",
                Json::from(get(&self.timing_sims_started)),
            ),
            (
                "runner_jobs_started",
                Json::from(get(&self.runner_jobs_started)),
            ),
            ("collects_started", Json::from(get(&self.collects_started))),
            (
                "in_flight",
                Json::from(self.in_flight.load(Ordering::Relaxed)),
            ),
            (
                "sims_inflight",
                Json::from(self.sims_inflight.load(Ordering::Relaxed)),
            ),
            ("cache_entries", Json::from(cache_entries)),
            (
                "latency_us",
                obj([
                    ("count", Json::from(hist.count())),
                    ("p50", Json::from(hist.quantile_us(0.50))),
                    ("p99", Json::from(hist.quantile_us(0.99))),
                    ("mean", Json::from(hist.mean_us())),
                ]),
            ),
            (
                "heavy_latency_us",
                obj([
                    ("count", Json::from(heavy.count())),
                    ("p50", Json::from(heavy.quantile_us(0.50))),
                    ("p99", Json::from(heavy.quantile_us(0.99))),
                    ("mean", Json::from(heavy.mean_us())),
                ]),
            ),
            ("stage_collect_us", stage_json(&self.stage_collect)),
            ("stage_fit_us", stage_json(&self.stage_fit)),
            ("stage_predict_us", stage_json(&self.stage_predict)),
        ])
    }
}

/// Renders one per-stage latency histogram's quantile group.
fn stage_json(hist: &Mutex<Histogram>) -> Json {
    let h = hist.lock().expect("stage histogram poisoned");
    obj([
        ("count", Json::from(h.count())),
        ("p50", Json::from(h.quantile_us(0.50))),
        ("p99", Json::from(h.quantile_us(0.99))),
        ("mean", Json::from(h.mean_us())),
    ])
}

/// Per-site injected-fault tallies from the process-global
/// [`gsim_faults`] plan; `Json::Null` when no plan is installed. Lets
/// the chaos harness confirm faults actually fired at the advertised
/// density rather than silently validating a calm run.
fn faults_json() -> Json {
    match gsim_faults::active() {
        None => Json::Null,
        Some(inj) => obj(inj
            .injected()
            .into_iter()
            .map(|(site, n)| (site, Json::from(n)))),
    }
}

/// An [`EventSink`] that counts runner job starts into
/// [`Metrics::runner_jobs_started`] — how the integration tests observe
/// "exactly one simulation ran".
pub struct RunnerJobCounter(pub Arc<Metrics>);

impl EventSink for RunnerJobCounter {
    fn on_event(&self, event: &Event<'_>) {
        if matches!(event, Event::JobStarted { .. }) {
            self.0.runner_jobs_started.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_observations() {
        let mut h = Histogram::default();
        for _ in 0..99 {
            h.record(Duration::from_micros(100)); // bucket [64, 128)
        }
        h.record(Duration::from_millis(50)); // an outlier
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_us(0.5), Some(128));
        // p99 still sits in the common bucket; p100 sees the outlier.
        assert_eq!(h.quantile_us(0.99), Some(128));
        assert!(h.quantile_us(1.0).unwrap() >= 50_000);
        let mean = h.mean_us().unwrap();
        assert!(mean > 100.0 && mean < 1000.0, "{mean}");
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::default();
        assert_eq!(h.quantile_us(0.5), None);
        assert_eq!(h.mean_us(), None);
    }

    #[test]
    fn metrics_document_shape() {
        let m = Metrics::default();
        m.predict.fetch_add(3, Ordering::Relaxed);
        m.cache_hits.fetch_add(2, Ordering::Relaxed);
        m.observe_latency(Duration::from_micros(10));
        m.shed_heavy.fetch_add(4, Ordering::Relaxed);
        m.negative_hits.fetch_add(1, Ordering::Relaxed);
        m.observe_heavy(Duration::from_millis(3));
        let doc = m.to_json(7, Json::Null, Json::Null);
        assert_eq!(
            doc.get("schema").unwrap().as_str(),
            Some("gsim-serve-metrics-v1")
        );
        let predict = doc.get("predict").unwrap();
        assert_eq!(predict.get("cache_hits").unwrap().as_u64(), Some(2));
        assert_eq!(doc.get("cache_entries").unwrap().as_u64(), Some(7));
        let overload = doc.get("overload").unwrap();
        assert_eq!(overload.get("shed_heavy").unwrap().as_u64(), Some(4));
        assert_eq!(overload.get("shed_cheap").unwrap().as_u64(), Some(0));
        let cache = doc.get("cache").unwrap();
        assert_eq!(cache.get("entries").unwrap().as_u64(), Some(7));
        assert_eq!(cache.get("negative_hits").unwrap().as_u64(), Some(1));
        let lat = doc.get("latency_us").unwrap();
        assert_eq!(lat.get("count").unwrap().as_u64(), Some(1));
        let heavy = doc.get("heavy_latency_us").unwrap();
        assert_eq!(heavy.get("count").unwrap().as_u64(), Some(1));
        assert!(m.heavy_p50_us().unwrap() >= 3_000);
        assert_eq!(predict.get("fast_path").unwrap().as_u64(), Some(0));
        assert_eq!(predict.get("escalated").unwrap().as_u64(), Some(0));
        assert_eq!(predict.get("stage_collect_hits").unwrap().as_u64(), Some(0));
        assert_eq!(doc.get("collects_started").unwrap().as_u64(), Some(0));
        Metrics::observe_stage(&m.stage_collect, Duration::from_micros(700));
        let doc = m.to_json(7, Json::Null, Json::Null);
        let stage = doc.get("stage_collect_us").unwrap();
        assert_eq!(stage.get("count").unwrap().as_u64(), Some(1));
        assert_eq!(
            doc.get("stage_fit_us")
                .unwrap()
                .get("count")
                .unwrap()
                .as_u64(),
            Some(0)
        );
        // Round-trips through the parser.
        gsim_json::parse(&doc.render()).unwrap();
    }
}
