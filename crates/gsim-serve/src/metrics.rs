//! Service counters and an in-tree latency histogram.
//!
//! Everything is cheap enough to update on every request: plain atomics
//! for counters, one mutex-guarded fixed-size histogram for latency.
//! [`Metrics::to_json`] renders the `GET /metrics` document
//! (`gsim-serve-metrics-v1`).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use gsim_json::{obj, Json};
use gsim_runner::{Event, EventSink};

/// Log-scale latency histogram: bucket `i` counts observations in
/// `[2^i, 2^(i+1))` microseconds, the last bucket is open-ended. 32
/// buckets cover a microsecond to over an hour.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [u64; 32],
    count: u64,
    sum_us: u128,
}

impl Histogram {
    /// Records one observation.
    pub fn record(&mut self, latency: Duration) {
        let us = latency.as_micros();
        let idx = (128 - u128::leading_zeros(us.max(1)) - 1).min(31) as usize;
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_us += us;
    }

    /// Observation count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Approximate quantile (`q` in 0..=1) in microseconds: the upper
    /// edge of the bucket holding the q-th observation. `None` when
    /// empty.
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(if i >= 63 { u64::MAX } else { 1u64 << (i + 1) });
            }
        }
        None
    }

    /// Mean in microseconds (`None` when empty).
    pub fn mean_us(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum_us as f64 / self.count as f64)
    }
}

/// All counters the service exports. One instance per service, shared
/// (`Arc`) with the handler, the runner sink, and `GET /metrics`.
#[derive(Debug, Default)]
pub struct Metrics {
    /// `GET /healthz` requests served.
    pub healthz: AtomicU64,
    /// `GET /v1/workloads` requests served.
    pub workloads: AtomicU64,
    /// `POST /v1/predict` requests served (any outcome).
    pub predict: AtomicU64,
    /// `POST /v1/traces` and `GET /v1/traces` requests served.
    pub traces: AtomicU64,
    /// `GET /metrics` requests served.
    pub metrics: AtomicU64,
    /// `POST /v1/shutdown` requests served.
    pub shutdown: AtomicU64,
    /// Requests to any unknown route or wrong method.
    pub other: AtomicU64,
    /// Predict requests answered from the result cache.
    pub cache_hits: AtomicU64,
    /// Predict requests that missed the cache.
    pub cache_misses: AtomicU64,
    /// Predict misses that piggybacked on an in-flight identical
    /// computation (single-flight followers).
    pub coalesced: AtomicU64,
    /// Prediction computations actually executed (single-flight leaders:
    /// the number of times simulations were scheduled).
    pub computations: AtomicU64,
    /// Predict requests rejected with a client error.
    pub predict_errors: AtomicU64,
    /// Predict requests that named a `trace_ref` (any outcome).
    pub predict_from_trace: AtomicU64,
    /// Predict computations whose scale-model observations came from the
    /// semantic-hash stage cache (no timing simulations scheduled).
    pub stage_obs_hits: AtomicU64,
    /// Predict computations whose miss-rate curve came from the
    /// semantic-hash stage cache (no functional replay scheduled).
    pub stage_mrc_hits: AtomicU64,
    /// Detailed timing simulations actually started (excludes the
    /// functional MRC replay job) — the counter trace-driven prediction
    /// tests assert stays flat on stage-cache hits.
    pub timing_sims_started: AtomicU64,
    /// Jobs started on the simulation runner pool (every attempt).
    pub runner_jobs_started: AtomicU64,
    /// Requests currently inside the handler.
    pub in_flight: AtomicI64,
    /// Per-request wall latency, all endpoints.
    pub latency: Mutex<Histogram>,
}

impl Metrics {
    /// Records one finished request's latency.
    pub fn observe_latency(&self, latency: Duration) {
        self.latency
            .lock()
            .expect("latency histogram poisoned")
            .record(latency);
    }

    /// Renders the `/metrics` document. `cache_entries` comes from the
    /// cache and `trace_store` from the trace store (they own those
    /// counts); pass `Json::Null` when no store is attached.
    pub fn to_json(&self, cache_entries: usize, trace_store: Json) -> Json {
        let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let hist = self.latency.lock().expect("latency histogram poisoned");
        obj([
            ("schema", Json::from("gsim-serve-metrics-v1")),
            (
                "requests",
                obj([
                    ("healthz", Json::from(get(&self.healthz))),
                    ("workloads", Json::from(get(&self.workloads))),
                    ("predict", Json::from(get(&self.predict))),
                    ("traces", Json::from(get(&self.traces))),
                    ("metrics", Json::from(get(&self.metrics))),
                    ("shutdown", Json::from(get(&self.shutdown))),
                    ("other", Json::from(get(&self.other))),
                ]),
            ),
            (
                "predict",
                obj([
                    ("cache_hits", Json::from(get(&self.cache_hits))),
                    ("cache_misses", Json::from(get(&self.cache_misses))),
                    ("coalesced", Json::from(get(&self.coalesced))),
                    ("computations", Json::from(get(&self.computations))),
                    ("errors", Json::from(get(&self.predict_errors))),
                    ("from_trace", Json::from(get(&self.predict_from_trace))),
                    ("stage_obs_hits", Json::from(get(&self.stage_obs_hits))),
                    ("stage_mrc_hits", Json::from(get(&self.stage_mrc_hits))),
                ]),
            ),
            ("trace_store", trace_store),
            (
                "timing_sims_started",
                Json::from(get(&self.timing_sims_started)),
            ),
            (
                "runner_jobs_started",
                Json::from(get(&self.runner_jobs_started)),
            ),
            (
                "in_flight",
                Json::from(self.in_flight.load(Ordering::Relaxed)),
            ),
            ("cache_entries", Json::from(cache_entries)),
            (
                "latency_us",
                obj([
                    ("count", Json::from(hist.count())),
                    ("p50", Json::from(hist.quantile_us(0.50))),
                    ("p99", Json::from(hist.quantile_us(0.99))),
                    ("mean", Json::from(hist.mean_us())),
                ]),
            ),
        ])
    }
}

/// An [`EventSink`] that counts runner job starts into
/// [`Metrics::runner_jobs_started`] — how the integration tests observe
/// "exactly one simulation ran".
pub struct RunnerJobCounter(pub Arc<Metrics>);

impl EventSink for RunnerJobCounter {
    fn on_event(&self, event: &Event<'_>) {
        if matches!(event, Event::JobStarted { .. }) {
            self.0.runner_jobs_started.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_observations() {
        let mut h = Histogram::default();
        for _ in 0..99 {
            h.record(Duration::from_micros(100)); // bucket [64, 128)
        }
        h.record(Duration::from_millis(50)); // an outlier
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_us(0.5), Some(128));
        // p99 still sits in the common bucket; p100 sees the outlier.
        assert_eq!(h.quantile_us(0.99), Some(128));
        assert!(h.quantile_us(1.0).unwrap() >= 50_000);
        let mean = h.mean_us().unwrap();
        assert!(mean > 100.0 && mean < 1000.0, "{mean}");
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::default();
        assert_eq!(h.quantile_us(0.5), None);
        assert_eq!(h.mean_us(), None);
    }

    #[test]
    fn metrics_document_shape() {
        let m = Metrics::default();
        m.predict.fetch_add(3, Ordering::Relaxed);
        m.cache_hits.fetch_add(2, Ordering::Relaxed);
        m.observe_latency(Duration::from_micros(10));
        let doc = m.to_json(7, Json::Null);
        assert_eq!(
            doc.get("schema").unwrap().as_str(),
            Some("gsim-serve-metrics-v1")
        );
        let predict = doc.get("predict").unwrap();
        assert_eq!(predict.get("cache_hits").unwrap().as_u64(), Some(2));
        assert_eq!(doc.get("cache_entries").unwrap().as_u64(), Some(7));
        let lat = doc.get("latency_us").unwrap();
        assert_eq!(lat.get("count").unwrap().as_u64(), Some(1));
        // Round-trips through the parser.
        gsim_json::parse(&doc.render()).unwrap();
    }
}
